#!/usr/bin/env python
"""Tier-1 line-coverage gate over the CAM/shard/serve/retrieval packages.

Runs the test suite under a line tracer and fails unless the measured
packages clear the coverage floor (``make coverage``):

* with ``coverage.py`` installed, it is the engine;
* otherwise the stdlib fallback in :mod:`repro.devtools.linecov` collects
  executed lines through ``sys.settrace`` / ``threading.settrace`` (server
  worker threads included) and joins them against the ``co_lines`` census
  of every source file under the measured roots.

The tracer must be live before the measured packages are imported (their
module-level lines execute at import), so this script loads the fallback
module by file path -- never through ``import repro`` -- and only then
hands control to pytest.

Usage::

    PYTHONPATH=src python scripts/coverage_run.py               # make coverage
    python scripts/coverage_run.py --fail-under 90 tests/serve
    python scripts/coverage_run.py --packages cam shard -- -k topk

Exit status: 1 when the tests fail, 2 when coverage is below the floor.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

#: Packages the floor applies to (src/repro/<name>).
DEFAULT_PACKAGES = ("cam", "shard", "serve", "retrieval", "net", "exec",
                    "obs")
DEFAULT_FAIL_UNDER = 85.0


def load_linecov_module():
    """Load repro/devtools/linecov.py *by path*, bypassing ``repro.__init__``.

    Importing the ``repro`` package would pull the measured packages into
    ``sys.modules`` before tracing starts and silently uncover their
    module-level lines.
    """
    path = SRC_ROOT / "repro" / "devtools" / "linecov.py"
    spec = importlib.util.spec_from_file_location("_repro_linecov", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    # Registered before exec: dataclass construction looks the module up
    # in sys.modules while the body is still executing.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def run_with_coverage_py(roots, tests, pytest_args):
    """Engine A: coverage.py (preferred when installed)."""
    import coverage

    cov = coverage.Coverage(source=[str(root) for root in roots])
    cov.start()
    import pytest

    status = pytest.main(["-q", "-p", "no:cacheprovider", *tests,
                          *pytest_args])
    cov.stop()
    percent = cov.report(show_missing=False)
    return int(status), float(percent), None


def run_with_fallback(roots, tests, pytest_args):
    """Engine B: the stdlib settrace collector."""
    linecov = load_linecov_module()
    collector = linecov.LineCollector(roots)
    collector.start()
    try:
        import pytest

        status = pytest.main(["-q", "-p", "no:cacheprovider", *tests,
                              *pytest_args])
    finally:
        collector.stop()
    report = linecov.measure(collector.executed, roots)
    return int(status), report.percent, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("tests", nargs="*", default=None,
                        help="pytest targets (default: tests/)")
    parser.add_argument("--fail-under", type=float,
                        default=DEFAULT_FAIL_UNDER,
                        help="minimum total line coverage in percent")
    parser.add_argument("--packages", nargs="+", default=list(DEFAULT_PACKAGES),
                        help="src/repro subpackages the floor applies to")
    parser.add_argument("--pytest-args", nargs=argparse.REMAINDER, default=[],
                        help="extra arguments forwarded to pytest")
    args = parser.parse_args(argv)

    roots = [SRC_ROOT / "repro" / package for package in args.packages]
    for root in roots:
        if not root.is_dir():
            parser.error(f"no such package directory: {root}")
    tests = args.tests or [str(REPO_ROOT / "tests")]

    sys.path.insert(0, str(SRC_ROOT))
    try:
        import coverage  # noqa: F401
        engine = "coverage.py"
        runner = run_with_coverage_py
    except ImportError:
        engine = "repro.devtools.linecov (stdlib fallback)"
        runner = run_with_fallback

    print(f"[coverage] engine: {engine}")
    print(f"[coverage] measuring: "
          f"{', '.join(f'src/repro/{p}' for p in args.packages)}")
    status, percent, report = runner(roots, tests, args.pytest_args)

    if report is not None:
        print(report.render(relative_to=REPO_ROOT))
    print(f"[coverage] total line coverage: {percent:.1f}% "
          f"(floor {args.fail_under:.1f}%)")
    if status != 0:
        print("[coverage] FAILED: test run was not clean")
        return 1
    if percent < args.fail_under:
        print(f"[coverage] FAILED: coverage {percent:.1f}% is below the "
              f"{args.fail_under:.1f}% floor")
        return 2
    print("[coverage] OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
