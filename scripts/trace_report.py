#!/usr/bin/env python
"""Reconstruct run trees from a JSONL span export and attribute latency.

Reads the file a :class:`repro.obs.JsonlExporter` wrote (one span per
line), reassembles every request's run tree -- enqueue, batch, the
execute sub-stages (fan-out, per-shard search, gather, digitise), cache
write, reply -- and prints the per-stage latency attribution across all
of them.  With ``--tree N`` it also renders the first N trees in full.

Usage::

    PYTHONPATH=src python scripts/loadgen.py --trace --trace-out /tmp/spans.jsonl
    PYTHONPATH=src python scripts/trace_report.py /tmp/spans.jsonl
    PYTHONPATH=src python scripts/trace_report.py /tmp/spans.jsonl --tree 3
    PYTHONPATH=src python scripts/trace_report.py /tmp/spans.jsonl --expect 1000

Exit status is nonzero when ``--expect`` is given and the export does not
reconstruct into exactly that many complete run trees.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import report  # noqa: E402  (path bootstrap above)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", type=Path,
                        help="JSONL span export (JsonlExporter output)")
    parser.add_argument("--tree", type=int, default=0, metavar="N",
                        help="render the first N run trees in full")
    parser.add_argument("--expect", type=int, default=None, metavar="REQUESTS",
                        help="fail unless exactly this many complete run "
                             "trees reconstruct")
    parser.add_argument("--slowest", type=int, default=0, metavar="N",
                        help="render the N slowest run trees in full")
    args = parser.parse_args(argv)

    spans = report.load_spans(args.path)
    trees = report.build_run_trees(spans)
    print(f"[trace] {len(spans)} spans -> {len(trees)} run trees")
    if not trees:
        return 0 if args.expect in (None, 0) else 1

    print(report.render_stage_table(report.stage_table(trees)))

    for tree in trees[: args.tree]:
        print()
        print(report.render_tree(tree))
    if args.slowest > 0:
        ranked = sorted(trees, key=lambda tree: tree.root.duration_ms,
                        reverse=True)
        for tree in ranked[: args.slowest]:
            print()
            print(report.render_tree(tree))

    if args.expect is not None:
        ok, problems = report.verify_run_trees(trees,
                                               expected_requests=args.expect)
        for problem in problems:
            print(f"[trace] problem: {problem}")
        print(f"[trace] verification: {'OK' if ok else 'FAIL'} "
              f"({len(trees)}/{args.expect} run trees)")
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
