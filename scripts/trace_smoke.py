#!/usr/bin/env python
"""Observability smoke gate: full-lifecycle run trees at <5% overhead.

Serves the same compute-heavy sharded workload twice -- untraced and
traced (``sample_rate=1.0``, every span exported) -- and asserts the three
properties the tracing pipeline promises:

1. **Completeness** -- every request reconstructs into exactly one run
   tree naming its exact micro-batch, and every tree carries the full
   lifecycle: ``enqueue``, ``batch``, ``prepare``, ``cache_lookup``,
   ``execute`` (with ``fanout`` / ``shard_search`` / ``gather`` /
   ``digitise`` under it), ``cache_write`` and ``reply``.
2. **Transparency** -- traced responses are bit-identical to untraced
   ones: observability never changes an answer.
3. **Cheapness** -- best-of-N traced serving time is within
   ``--max-overhead-pct`` (default 5%) of best-of-N untraced.  The gate
   compares minima, not medians: scheduler noise on a loaded box only
   ever *adds* time, so the fastest run of each flavour is the cleanest
   estimate of its true cost (the same reasoning as ``timeit``).  It is
   also adaptive: after the first ``--trials`` paired runs it keeps
   adding pairs (up to ``--max-trials``) while the comparison still
   fails, so a lucky dip on one side cannot flake the gate -- a *real*
   regression keeps the traced minimum high no matter how many pairs
   run.  Medians are still printed for the trajectory record.

The workload is deliberately compute-heavy (large CAM, cache misses
everywhere) because that is the regime tracing must be cheap in: span
bookkeeping is a fixed few microseconds per request, so it is measured
against requests that do real work, not against empty no-op requests.

Usage::

    PYTHONPATH=src python scripts/trace_smoke.py            # make trace-smoke
    PYTHONPATH=src python scripts/trace_smoke.py --trials 5

Exit status is nonzero on any failed property.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import (  # noqa: E402  (path bootstrap above)
    InMemoryExporter,
    TailSampler,
    Tracer,
    report,
)
from repro.serve import MicroBatchServer, ServeConfig  # noqa: E402
from repro.shard import build_demo_sharded_engine  # noqa: E402

#: Stages every traced request must attribute time to (the sharded,
#: cache-missing workload exercises the complete lifecycle).
REQUIRED_STAGES = ("enqueue", "batch", "prepare", "cache_lookup", "execute",
                   "fanout", "shard_search", "gather", "digitise",
                   "cache_write", "reply")


def serve_once(args: argparse.Namespace,
               traced: bool) -> tuple[np.ndarray, float, InMemoryExporter | None]:
    """One serving run; returns (responses, serving_s, exporter|None)."""
    engine = build_demo_sharded_engine(
        classes=args.classes, input_dim=args.input_dim,
        hash_length=args.hash_length, seed=args.seed,
        num_shards=args.shards)
    exporter = InMemoryExporter() if traced else None
    tracer = None
    if traced:
        # The traced arm carries the full metrics plane: every span also
        # flows through a tail sampler with a live rolling-quantile
        # policy, so the <5% overhead gate covers tail buffering too
        # (the serve metrics instruments are always on in both arms).
        tail = TailSampler([InMemoryExporter()], keep_slow_quantile=0.99)
        tracer = Tracer(exporters=[exporter], tail_sampler=tail)
    config = ServeConfig(max_batch=args.max_batch, max_wait_ms=2.0,
                         cache_capacity=args.requests)
    server = MicroBatchServer(engine, config=config, tracer=tracer).start()
    rng = np.random.default_rng(args.seed)
    queries = rng.standard_normal((args.requests, args.input_dim))
    try:
        start = time.perf_counter()
        futures = [server.submit(query) for query in queries]
        responses = [future.result(args.timeout_s) for future in futures]
        serving_s = time.perf_counter() - start
    finally:
        server.stop(drain=True)
        close = getattr(engine, "close", None)
        if callable(close):
            close()
        if tracer is not None:
            tracer.shutdown()
    return np.stack(responses), serving_s, exporter


def check_trees(args: argparse.Namespace,
                exporter: InMemoryExporter) -> list[str]:
    """Completeness problems of one traced run ([] when clean)."""
    trees = report.build_run_trees(exporter.spans())
    ok, problems = report.verify_run_trees(trees,
                                           expected_requests=args.requests)
    for tree in trees:
        stages = tree.stage_ms()
        missing = [name for name in REQUIRED_STAGES if stages[name] <= 0.0]
        if missing:
            problems.append(
                f"request {tree.root.span.get('span_id')} is missing "
                f"lifecycle stages: {missing}")
            break  # one example is enough; they would all repeat
    if not problems:
        print(f"[trace-smoke] {len(trees)} run trees, all complete; "
              f"stage attribution:")
        for line in report.render_stage_table(
                report.stage_table(trees)).splitlines():
            print(f"[trace-smoke]   {line}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--classes", type=int, default=4096)
    parser.add_argument("--input-dim", type=int, default=256)
    parser.add_argument("--hash-length", type=int, default=1024)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--trials", type=int, default=5,
                        help="paired (untraced, traced) timing runs; the "
                             "overhead gate compares the best (fastest) "
                             "run of each flavour")
    parser.add_argument("--max-trials", type=int, default=12,
                        help="keep adding paired runs past --trials while "
                             "the overhead gate still fails, up to this "
                             "many (absorbs one-sided scheduler noise)")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0)
    parser.add_argument("--timeout-s", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    failures: list[str] = []

    # Warmup (allocator, thread pools, numpy caches) -- not timed.
    warm = argparse.Namespace(**vars(args))
    warm.requests = max(32, args.requests // 8)
    serve_once(warm, traced=False)

    untraced_s: list[float] = []
    traced_s: list[float] = []
    reference: np.ndarray | None = None
    max_trials = max(args.trials, args.max_trials)

    def overhead() -> float:
        return 100.0 * (min(traced_s) - min(untraced_s)) / min(untraced_s)

    for trial in range(max_trials):
        plain, plain_s, _ = serve_once(args, traced=False)
        traced, traced_s_one, exporter = serve_once(args, traced=True)
        untraced_s.append(plain_s)
        traced_s.append(traced_s_one)
        print(f"[trace-smoke] trial {trial + 1}: "
              f"untraced {plain_s * 1e3:.1f} ms, "
              f"traced {traced_s_one * 1e3:.1f} ms")
        if reference is None:
            reference = plain
        if not np.array_equal(plain, reference):
            failures.append("untraced runs are not deterministic")
        if not np.array_equal(traced, reference):
            failures.append(
                "traced responses differ from untraced (trial "
                f"{trial + 1}) -- tracing changed an answer")
        if trial == 0:
            failures.extend(check_trees(args, exporter))
        if trial + 1 >= args.trials and overhead() <= args.max_overhead_pct:
            break  # gate satisfied; extra pairs prove nothing more

    overhead_pct = overhead()
    print(f"[trace-smoke] median untraced "
          f"{statistics.median(untraced_s) * 1e3:.1f} ms, traced "
          f"{statistics.median(traced_s) * 1e3:.1f} ms "
          f"({len(untraced_s)} paired trials)")
    print(f"[trace-smoke] best untraced {min(untraced_s) * 1e3:.1f} ms, "
          f"traced {min(traced_s) * 1e3:.1f} ms, "
          f"overhead {overhead_pct:+.2f}% "
          f"(gate {args.max_overhead_pct:.1f}%)")
    if overhead_pct > args.max_overhead_pct:
        failures.append(
            f"tracing overhead {overhead_pct:+.2f}% exceeds "
            f"{args.max_overhead_pct:.1f}% after {len(untraced_s)} "
            f"paired trials")

    for failure in failures:
        print(f"[trace-smoke] FAIL: {failure}")
    print(f"[trace-smoke] {'FAILED' if failures else 'OK'}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
