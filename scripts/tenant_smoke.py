#!/usr/bin/env python
"""Multi-tenant smoke gate: a flood tenant must not hurt its neighbours.

Runs the loadgen ``tenants`` scenario twice on identical knobs -- once
with only the well-behaved tenants (the baseline), once with the flood
tenant submitting at ``--flood-factor`` times its token-bucket rate --
and gates three properties:

1. **Isolation.**  Every well-behaved tenant's client-side p99 under
   flood stays within ``--p99-ratio`` (default 1.5x) of its no-flood
   baseline, plus a small absolute epsilon so sub-millisecond baselines
   don't gate on scheduler noise.
2. **Admission.**  The flood tenant's admitted count stays within its
   token bucket's arithmetic: ``burst + rate * elapsed`` plus slack for
   timer jitter.  The bucket is actually limiting, too: with the pump
   submitting at 10x, at least half of the flood's submits are shed.
3. **Correctness.**  Both runs verify every served answer against
   direct execution on an independently built engine (``--verify`` is
   forced on), so admission control never changes a bit of any answer.

Exits nonzero on any failed property.  Wired up as ``make tenant-smoke``
inside ``make check``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import loadgen  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=300,
                        help="requests per well-behaved tenant per run")
    parser.add_argument("--tenant-rate", type=float, default=20.0)
    parser.add_argument("--flood-factor", type=float, default=10.0)
    parser.add_argument("--wb-rate", type=float, default=200.0)
    parser.add_argument("--p99-ratio", type=float, default=1.5,
                        help="flood p99 must stay within this multiple of "
                             "the baseline p99 per well-behaved tenant")
    parser.add_argument("--p99-epsilon-ms", type=float, default=5.0,
                        help="absolute headroom added to the ratio gate")
    parser.add_argument("--seed", type=int, default=0)
    ns = parser.parse_args(argv)

    # Reuse loadgen's own parser so defaults never drift.
    base_args = loadgen.build_parser().parse_args([
        "--scenario", "tenants", "--requests", str(ns.requests),
        "--tenant-rate", str(ns.tenant_rate),
        "--flood-factor", str(ns.flood_factor),
        "--wb-rate", str(ns.wb_rate), "--seed", str(ns.seed), "--verify",
    ])

    print("[tenant-smoke] baseline run (no flood)")
    baseline = loadgen.run_tenants_scenario(base_args, flood=False)
    loadgen.print_tenants_report(baseline)
    print("[tenant-smoke] flood run "
          f"({ns.flood_factor:g}x the flood tenant's bucket rate)")
    flooded = loadgen.run_tenants_scenario(base_args, flood=True)
    loadgen.print_tenants_report(flooded)

    failures = []

    # 1. Isolation: well-behaved p99 within ratio x baseline (+ epsilon).
    for name, _ in loadgen.WELL_BEHAVED:
        base_p99 = baseline["tenants"][name]["p99_ms"]
        flood_p99 = flooded["tenants"][name]["p99_ms"]
        ceiling = ns.p99_ratio * base_p99 + ns.p99_epsilon_ms
        print(f"[tenant-smoke] {name}: baseline p99={base_p99:.2f}ms "
              f"flood p99={flood_p99:.2f}ms ceiling={ceiling:.2f}ms")
        if flood_p99 > ceiling:
            failures.append(
                f"{name} p99 {flood_p99:.2f}ms exceeds {ceiling:.2f}ms "
                f"({ns.p99_ratio:g}x baseline {base_p99:.2f}ms "
                f"+ {ns.p99_epsilon_ms:g}ms)")

    # 2. Admission: the flood stays inside its token bucket's arithmetic.
    flood_entry = flooded["tenants"]["flood"]
    burst = flooded["tenant_burst"]
    elapsed = flooded["elapsed_s"]
    admitted_ceiling = burst + ns.tenant_rate * elapsed * 1.25 + 2.0
    print(f"[tenant-smoke] flood: admitted={flood_entry['admitted']} "
          f"of {flood_entry['submitted']} "
          f"(bucket ceiling ~{admitted_ceiling:.0f} over {elapsed:.2f}s)")
    if flood_entry["admitted"] > admitted_ceiling:
        failures.append(
            f"flood admitted {flood_entry['admitted']} exceeds the bucket "
            f"ceiling {admitted_ceiling:.0f}")
    if flood_entry["submitted"] > 0 \
            and flood_entry["rejected"] < flood_entry["submitted"] * 0.5:
        failures.append(
            f"flood shed only {flood_entry['rejected']} of "
            f"{flood_entry['submitted']} submits; the bucket is not limiting")

    # 3. Correctness: both runs verified bit-identical to direct execution.
    for label, report in (("baseline", baseline), ("flood", flooded)):
        if not report.get("verified", False):
            failures.append(f"{label} run failed response verification")

    if failures:
        for failure in failures:
            print(f"[tenant-smoke] FAIL: {failure}")
        return 1
    print("[tenant-smoke] OK: flood isolated, bucket enforced, "
          "answers bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
