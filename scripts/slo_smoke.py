#!/usr/bin/env python
"""Metrics & SLO smoke gate: burn-rate verdicts, tail capture, exemplars.

Three properties of the metrics plane, checked end to end on a seeded
serving run (``make slo-smoke``):

1. **SLO verdicts** -- a deliberately tight spec (sub-microsecond p99
   ceiling) must report ``breach`` and a loose one (1000 s ceiling, 99%
   error budget) must report ``ok`` over the same traffic; the burn-rate
   math may not be trivially always-hot or always-cold.
2. **Tail capture at 1% head sampling** -- with ``sample_rate=0.01`` the
   head exporter sees almost nothing, but every request slower than the
   calibrated threshold must still export as a *complete* run tree
   through the tail sampler -- including traces the head sampler dropped.
3. **Exemplars resolve** -- the trace id riding the p99 histogram bucket
   must reconstruct into a run tree via :mod:`repro.obs.report`.

The slow threshold is calibrated from a first fully-traced run (the
median request latency), so the gate adapts to the machine instead of
hard-coding milliseconds.

Usage::

    PYTHONPATH=src python scripts/slo_smoke.py            # make slo-smoke
    PYTHONPATH=src python scripts/slo_smoke.py --requests 400

Exit status is nonzero on any failed property.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import (  # noqa: E402  (path bootstrap above)
    InMemoryExporter,
    SloEngine,
    SloSpec,
    TailSampler,
    Tracer,
    report,
)
from repro.serve import (  # noqa: E402
    MicroBatchServer,
    ServeConfig,
    build_demo_engine,
)

#: Stages every tail-kept request tree must attribute time to.
REQUIRED_STAGES = ("enqueue", "batch", "prepare", "execute", "reply")

#: The verdict pair of property 1: same traffic, opposite ceilings.
SLO_SPECS = (
    (SloSpec(name="tight", latency_p99_ms=1e-6), "breach"),
    (SloSpec(name="loose", latency_p99_ms=1e6, error_rate_max=0.99), "ok"),
)


def serve_run(args: argparse.Namespace, sample_rate: float,
              tail: TailSampler | None, slo_specs=()):
    """One seeded serving run.

    Returns ``(metrics, head_sink, verdicts)`` where ``verdicts`` maps
    each spec name to its post-run status.  The SLO engines are
    constructed *before* traffic (on the server's live registry), so
    their construction-time baseline makes the whole run the evaluation
    window.
    """
    engine = build_demo_engine(classes=args.classes,
                               input_dim=args.input_dim,
                               hash_length=args.hash_length, seed=args.seed)
    head_sink = InMemoryExporter()
    tracer = Tracer(exporters=[head_sink], sample_rate=sample_rate,
                    tail_sampler=tail, flush_interval_s=0.01)
    config = ServeConfig(max_batch=args.max_batch, max_wait_ms=1.0,
                         cache_capacity=args.requests)
    rng = np.random.default_rng(args.seed)
    queries = rng.standard_normal((args.requests, args.input_dim))
    server = MicroBatchServer(engine, config=config, tracer=tracer).start()
    engines = {spec.name: SloEngine([spec], server.metrics.registry)
               for spec in slo_specs}
    try:
        futures = [server.submit(query) for query in queries]
        for future in futures:
            future.result(timeout=args.timeout_s)
        verdicts = {name: engine.evaluate()["status"]
                    for name, engine in engines.items()}
        metrics = server.metrics
    finally:
        server.stop(drain=True)
        tracer.shutdown()
    return metrics, head_sink, verdicts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--classes", type=int, default=256)
    parser.add_argument("--input-dim", type=int, default=64)
    parser.add_argument("--hash-length", type=int, default=512)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--sample-rate", type=float, default=0.01)
    parser.add_argument("--timeout-s", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    failures: list[str] = []

    # -- calibration run: fully traced, no tail; yields the slow
    # threshold, the SLO verdicts, and the exemplar property on a
    # complete span set.
    metrics, head_sink, verdicts = serve_run(
        args, sample_rate=1.0, tail=None,
        slo_specs=[spec for spec, _ in SLO_SPECS])
    latency = metrics.registry.get("serve_request_latency_ms")
    threshold_ms = latency.percentile(50.0)
    print(f"[slo-smoke] calibrated keep-slow threshold: p50 = "
          f"{threshold_ms:.3f} ms over {latency.count} requests")

    # Property 1: tight breaches, loose passes.
    for spec, expected in SLO_SPECS:
        status = verdicts[spec.name]
        if status != expected:
            failures.append(f"{spec.name} SLO reported {status!r}, "
                            f"expected {expected!r}")
        else:
            print(f"[slo-smoke] {spec.name} spec "
                  f"(p99 <= {spec.latency_p99_ms:g} ms): "
                  f"{status} as expected")

    # Property 3: the p99 bucket exemplar names a reconstructable trace.
    _, exemplar = latency.percentile_bucket(99.0)
    if exemplar is None:
        failures.append("p99 bucket carries no exemplar on a traced run")
    else:
        trees = [tree for tree in report.build_run_trees(head_sink.spans())
                 if tree.root.span["trace_id"] == exemplar.trace_id]
        if len(trees) == 1 and trees[0].root.name == "request":
            print(f"[slo-smoke] p99 exemplar trace {exemplar.trace_id} "
                  f"({exemplar.value:.3f} ms) reconstructs into a run tree")
        else:
            failures.append(
                f"p99 exemplar trace {exemplar.trace_id} did not "
                f"reconstruct into exactly one request tree "
                f"({len(trees)} matched)")

    # -- the real run: 1% head sampling plus the calibrated tail sampler.
    tail_sink = InMemoryExporter()
    tail = TailSampler([tail_sink], keep_slow_ms=threshold_ms,
                       flush_interval_s=0.01)
    metrics, head_sink, _ = serve_run(args, args.sample_rate, tail)
    tail_snap = tail.snapshot()
    head_traces = {span["trace_id"] for span in head_sink.spans()}
    tail_trees = report.build_run_trees(tail_sink.spans())
    request_trees = [tree for tree in tail_trees
                     if tree.root.name == "request"]
    print(f"[slo-smoke] head sampling {args.sample_rate:.0%}: "
          f"{len(head_traces)} head traces; tail kept "
          f"{tail_snap['kept_traces']} traces "
          f"({tail_snap['kept_slow']} slow) of "
          f"{tail_snap['roots_seen']} roots")

    # Property 2a: every slow request exported as a complete run tree.
    if tail_snap["kept_slow"] == 0:
        failures.append("tail sampler kept no slow traces at the "
                        "calibrated p50 threshold")
    if len(request_trees) != tail_snap["kept_slow"]:
        failures.append(
            f"{tail_snap['kept_slow']} slow roots kept but "
            f"{len(request_trees)} request trees reconstructed")
    incomplete = 0
    for tree in request_trees:
        stages = tree.stage_ms()
        if any(stages[name] <= 0.0 for name in REQUIRED_STAGES):
            incomplete += 1
    if incomplete:
        failures.append(f"{incomplete} tail-kept request trees are missing "
                        f"lifecycle stages")
    elif request_trees:
        print(f"[slo-smoke] all {len(request_trees)} tail-kept request "
              f"trees carry the full lifecycle")

    # Property 2b: the tail keeps traces the head sampler dropped.
    tail_only = {tree.root.span["trace_id"] for tree in request_trees} \
        - head_traces
    if not tail_only:
        failures.append("every tail-kept trace was also head-sampled -- "
                        "tail capture proved nothing beyond head sampling")
    else:
        print(f"[slo-smoke] {len(tail_only)} slow traces exported by the "
              f"tail only (head-sampled out)")

    for failure in failures:
        print(f"[slo-smoke] FAIL: {failure}")
    print(f"[slo-smoke] {'FAILED' if failures else 'OK'}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
