#!/usr/bin/env python
"""Perf-trajectory harness: write BENCH_kernels.json and BENCH_e2e.json.

Runs two suites and records median wall-clock per workload, stamped with
the commit and timestamp, so every PR has a perf baseline to beat:

* kernel microbench -- packed XOR+popcount Hamming kernel vs the legacy
  +-1 int16 GEMM across a rows x hash-length grid (includes the 2048x2048,
  k=128 acceptance workload, which must show >= 5x speedup);
* end-to-end -- DeepCAM approximate inference, bit-level CAM batch search,
  batch hashing, the serving/sharding/retrieval/net suites, the executor
  scaling curve (inline vs threads vs processes on one cluster search),
  the traced-vs-untraced observability overhead pair (report-only),
  and (in full mode) the pytest-benchmark timings of the paper-figure
  workloads under ``benchmarks/``.

Usage::

    PYTHONPATH=src python scripts/bench.py             # full run (make bench)
    PYTHONPATH=src python scripts/bench.py --quick     # smoke run (make bench-quick)
    PYTHONPATH=src python scripts/bench.py --skip-paper --out-dir /tmp

Exit status is nonzero when the kernel acceptance criterion fails, so CI
can gate on perf regressions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.bench import (  # noqa: E402  (path bootstrap above)
    DEFAULT_KERNEL_GRID,
    QUICK_KERNEL_GRID,
    collect_environment,
    e2e_benchmarks,
    executor_benchmarks,
    kernel_microbench,
    net_benchmarks,
    obs_benchmarks,
    retrieval_benchmarks,
    run_paper_benchmarks,
    serve_benchmarks,
    shard_benchmarks,
    write_bench_report,
)

#: Paper-figure benchmark files exercised in --quick mode (fast ones).
QUICK_PAPER_FILES = (
    "benchmarks/test_bench_fig2_dot_product.py",
    "benchmarks/test_bench_fig8_cam_overhead.py",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: smaller grid, fewer rounds, "
                             "only the fast paper benchmarks")
    parser.add_argument("--skip-paper", action="store_true",
                        help="skip the pytest-benchmark paper workloads")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override timed rounds per workload")
    parser.add_argument("--out-dir", type=Path, default=REPO_ROOT,
                        help="directory for the BENCH_*.json files")
    args = parser.parse_args(argv)

    environment = collect_environment(REPO_ROOT)
    mode = "quick" if args.quick else "full"
    rounds = args.rounds if args.rounds is not None else (3 if args.quick else 5)

    # -- kernels --------------------------------------------------------------
    grid = QUICK_KERNEL_GRID if args.quick else DEFAULT_KERNEL_GRID
    print(f"[bench] kernel microbench ({mode}): grid={list(grid)}, rounds={rounds}")
    kernel_records, kernel_summary = kernel_microbench(grid=grid, rounds=rounds)
    kernels_path = args.out_dir / "BENCH_kernels.json"
    write_bench_report(kernels_path, kernel_records, environment,
                       extra={"mode": mode, "summary": kernel_summary})
    for cell, speedup in kernel_summary["speedups"].items():
        print(f"[bench]   packed vs unpacked {cell}: {speedup:.1f}x")
    for cell, by_threads in kernel_summary["threaded_speedups"].items():
        for label, speedup in by_threads.items():
            print(f"[bench]   threaded packed ({label}) vs serial {cell}: "
                  f"{speedup:.2f}x")
    for label, speedup in kernel_summary["worker_scaling"].items():
        print(f"[bench]   process engine ({label}) vs serial: {speedup:.2f}x")
    print(f"[bench] wrote {kernels_path}")

    # -- end to end -----------------------------------------------------------
    print(f"[bench] end-to-end workloads ({mode})")
    e2e_records = e2e_benchmarks(quick=args.quick, rounds=rounds)
    print(f"[bench] serving workloads ({mode})")
    serve_records, serve_summary = serve_benchmarks(quick=args.quick)
    e2e_records.extend(serve_records)
    print(f"[bench] sharded serving workloads ({mode})")
    shard_records, shard_summary = shard_benchmarks(quick=args.quick)
    e2e_records.extend(shard_records)
    print(f"[bench] executor scaling workloads ({mode})")
    executor_records, executor_summary = executor_benchmarks(quick=args.quick)
    e2e_records.extend(executor_records)
    print(f"[bench] retrieval workloads ({mode})")
    retrieval_records, retrieval_summary = retrieval_benchmarks(quick=args.quick)
    e2e_records.extend(retrieval_records)
    print(f"[bench] network overhead workloads ({mode})")
    net_records, net_summary = net_benchmarks(quick=args.quick)
    e2e_records.extend(net_records)
    print(f"[bench] observability overhead workloads ({mode})")
    obs_records, obs_summary = obs_benchmarks(quick=args.quick)
    e2e_records.extend(obs_records)
    if not args.skip_paper:
        files = list(QUICK_PAPER_FILES) if args.quick else None
        max_time = 0.2 if args.quick else 0.5
        print(f"[bench] paper workloads via pytest-benchmark "
              f"({'subset' if files else 'all'})")
        e2e_records.extend(run_paper_benchmarks(REPO_ROOT, files=files,
                                                max_time_s=max_time))
    e2e_path = args.out_dir / "BENCH_e2e.json"
    write_bench_report(e2e_path, e2e_records, environment,
                       extra={"mode": mode, "serve": serve_summary,
                              "shard": shard_summary,
                              "executor": executor_summary,
                              "retrieval": retrieval_summary,
                              "net": net_summary,
                              "obs": obs_summary})
    for record in e2e_records:
        if record.group in ("e2e", "serve"):
            print(f"[bench]   {record.name}: median {record.median_s * 1e3:.2f} ms")
    for name, rps in serve_summary["throughput_rps"].items():
        print(f"[bench]   serve throughput {name}: {rps:,.0f} req/s")
    print(f"[bench]   serve zipf cache hit rate: "
          f"{serve_summary['zipf_cache_hit_rate']:.2f}")
    for name, rps in shard_summary["scaling_throughput_rps"].items():
        print(f"[bench]   shard scaling {name}: {rps:,.0f} req/s")
    for name, rps in shard_summary["throughput_rps"].items():
        print(f"[bench]   shard throughput {name}: {rps:,.0f} req/s")
    for name, qps in executor_summary["throughput_qps"].items():
        print(f"[bench]   executor scaling {name}: {qps:,.0f} q/s")
    for name, speedup in retrieval_summary["speedups"].items():
        print(f"[bench]   retrieval partial vs full gather {name}: "
              f"{speedup:.1f}x")
    # Report-only: the wire's loopback overhead factor, no gate attached.
    for op, factor in net_summary["remote_vs_inproc"].items():
        print(f"[bench]   net remote vs in-process {op}: {factor:.1f}x")
    # Report-only: tracing overhead trajectory (the gate is `make trace-smoke`).
    print(f"[bench]   obs tracing overhead: "
          f"{obs_summary['overhead_pct']:+.2f}% "
          f"({obs_summary['spans_per_request']:.1f} spans/request)")
    print(f"[bench] wrote {e2e_path}")

    # -- acceptance gates -----------------------------------------------------
    failed = False
    acceptance = kernel_summary.get("acceptance")
    if acceptance is not None:
        verdict = "PASS" if acceptance["passed"] else "FAIL"
        print(f"[bench] kernel acceptance {acceptance['workload']}: "
              f"{acceptance['speedup']:.1f}x "
              f"(required >= {acceptance['min_required_speedup']}x) -> {verdict}")
        failed = failed or not acceptance["passed"]
    serve_acceptance = serve_summary["acceptance"]
    verdict = "PASS" if serve_acceptance["passed"] else "FAIL"
    print(f"[bench] serve acceptance {serve_acceptance['workload']}: "
          f"{serve_acceptance['speedup']:.1f}x "
          f"(required >= {serve_acceptance['min_required_speedup']}x) -> {verdict}")
    failed = failed or not serve_acceptance["passed"]
    shard_acceptance = shard_summary["acceptance"]
    verdict = "PASS" if shard_acceptance["passed"] else "FAIL"
    print(f"[bench] shard acceptance {shard_acceptance['workload']}: "
          f"{shard_acceptance['speedup']:.1f}x "
          f"(required >= {shard_acceptance['min_required_speedup']}x) -> {verdict}")
    failed = failed or not shard_acceptance["passed"]
    executor_acceptance = executor_summary["acceptance"]
    verdict = "PASS" if executor_acceptance["passed"] else "FAIL"
    if "skipped" in executor_acceptance:
        print(f"[bench] executor acceptance {executor_acceptance['workload']}: "
              f"speedup gate skipped ({executor_acceptance['skipped']}, "
              f"{executor_acceptance['cores']} core(s)); parity "
              f"{executor_acceptance['parity_ratio']:.2f}x "
              f"(allowed <= {executor_acceptance['max_allowed_ratio']}x) "
              f"-> {verdict}")
    else:
        print(f"[bench] executor acceptance {executor_acceptance['workload']}: "
              f"processes vs threads {executor_acceptance['speedup']:.2f}x "
              f"(required >= "
              f"{executor_acceptance['min_required_speedup']}x) -> {verdict}")
    failed = failed or not executor_acceptance["passed"]
    retrieval_acceptance = retrieval_summary["acceptance"]
    verdict = "PASS" if retrieval_acceptance["passed"] else "FAIL"
    print(f"[bench] retrieval acceptance {retrieval_acceptance['workload']}: "
          f"{retrieval_acceptance['speedup']:.1f}x "
          f"(required >= {retrieval_acceptance['min_required_speedup']}x) "
          f"-> {verdict}")
    failed = failed or not retrieval_acceptance["passed"]
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
