#!/usr/bin/env python
"""Loopback network smoke: remote loadgen, self-verification, forced failover.

The full client -> serve-plane server -> remote shard cluster path on
loopback sockets, verified end to end (``make net-smoke``):

1. a :class:`~repro.net.cluster.LocalShardCluster` provisions a grid of
   shard-plane servers (2 shards x 2 replicas by default);
2. :func:`~repro.net.remote.build_demo_remote_engine` builds the remote
   sharded engine over that grid, with the cluster's
   ``spawn_replacement`` wired as the re-replication factory;
3. a serve-plane :class:`~repro.net.server.NetServer` fronts the engine
   and a :class:`~repro.net.client.NetClient` drives classify and top-k
   chunks through it;
4. **every** remote response is checked bit-identical against an
   in-process :class:`~repro.serve.client.ServeClient` on an identically
   seeded :func:`~repro.serve.engine.build_demo_engine`;
5. halfway through, one shard replica is killed outright (port unbound,
   connections severed); the run must keep answering identically, and the
   cluster must report at least one failover and one re-replication.

Exit status is nonzero on any divergence or if the chaos went unnoticed.

Usage::

    PYTHONPATH=src python scripts/net_smoke.py          # make net-smoke
    PYTHONPATH=src python scripts/net_smoke.py --chunks 12 --batch 8
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402  (path bootstrap above)

from repro.net import (  # noqa: E402
    LocalShardCluster,
    NetClient,
    NetServer,
    build_demo_remote_engine,
)
from repro.serve import ServeClient, build_demo_engine  # noqa: E402

#: Demo engine geometry shared by the remote cluster and the oracle.
GEOMETRY = dict(classes=16, input_dim=128, hash_length=256)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chunks", type=int, default=8,
                        help="request chunks per phase (before + after kill)")
    parser.add_argument("--batch", type=int, default=16,
                        help="samples per chunk")
    parser.add_argument("--k", type=int, default=4,
                        help="neighbours per top-k request")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.chunks < 2 or args.batch < 1:
        parser.error("need at least 2 chunks and 1 sample per chunk")

    rng = np.random.default_rng(args.seed)
    mismatches = 0

    print(f"[net-smoke] cluster: {args.shards} shards x {args.replicas} "
          f"replicas, {GEOMETRY['classes']} rows @ "
          f"{GEOMETRY['hash_length']} bits")
    with LocalShardCluster(total_rows=GEOMETRY["classes"],
                           word_bits=GEOMETRY["hash_length"],
                           num_shards=args.shards,
                           num_replicas=args.replicas) as cluster:
        engine = build_demo_remote_engine(
            cluster.endpoints,
            replacement_factory=cluster.spawn_replacement,
            seed=args.seed, **GEOMETRY)
        with ServeClient(build_demo_engine(seed=args.seed,
                                           **GEOMETRY)) as oracle, \
                NetServer(engine=engine) as front, \
                NetClient(front.base_url) as client:
            print(f"[net-smoke] serve plane at {front.base_url}")

            def drive(chunk_index: int) -> int:
                bad = 0
                queries = rng.standard_normal(
                    (args.batch, GEOMETRY["input_dim"]))
                if not np.array_equal(client.infer_many(queries),
                                      oracle.infer_many(queries)):
                    print(f"[net-smoke] MISMATCH: classify chunk "
                          f"{chunk_index}")
                    bad += 1
                remote_i, remote_d = client.topk_many(queries, args.k)
                local_i, local_d = oracle.topk_many(queries, args.k)
                if not (np.array_equal(remote_i, local_i)
                        and np.array_equal(remote_d, local_d)):
                    print(f"[net-smoke] MISMATCH: top-k chunk {chunk_index}")
                    bad += 1
                return bad

            for chunk in range(args.chunks):
                mismatches += drive(chunk)
            print(f"[net-smoke] phase 1: {args.chunks} chunks x "
                  f"{args.batch} classify + top-k requests verified")

            kill_shard, kill_replica = 0, 0
            print(f"[net-smoke] killing shard {kill_shard} replica "
                  f"{kill_replica} (port unbound, connections severed)")
            cluster.kill(kill_shard, kill_replica)

            for chunk in range(args.chunks, 2 * args.chunks):
                mismatches += drive(chunk)
            print(f"[net-smoke] phase 2: {args.chunks} chunks verified "
                  f"through the node loss")

            net = engine.cam.stats()["net"]
            requests = client.stats()["retry"]["requests"]

    total = 2 * args.chunks * args.batch
    print(f"[net-smoke] {total} classify + {total} top-k samples over "
          f"{requests} HTTP requests")
    print(f"[net-smoke] failovers: {net['failovers']}, "
          f"re-replications: {net['re_replications']}, "
          f"dead replicas now: {net['dead_replicas']}")

    failed = False
    if mismatches:
        print(f"[net-smoke] FAILED: {mismatches} diverging chunks")
        failed = True
    if net["failovers"] < 1:
        print("[net-smoke] FAILED: the kill never triggered a failover")
        failed = True
    if net["re_replications"] < 1:
        print("[net-smoke] FAILED: the lost replica was never re-replicated")
        failed = True
    if net["dead_replicas"]:
        print("[net-smoke] FAILED: dead replicas remain after repair")
        failed = True
    if failed:
        return 1
    print("[net-smoke] OK: remote answers bit-identical to in-process, "
          "failover + re-replication exercised")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
