#!/usr/bin/env python
"""Smoke-check the unified repro.api runtime: schema violations exit nonzero.

For every registered backend this script runs one tiny estimate and checks
that the resulting :class:`CostReport` obeys the typed schema and survives a
real JSON round-trip; it then runs one tiny registered experiment per
backend family (cycle models, energy models, the CAM overhead model and the
PIM comparison) and checks the :class:`ExperimentResult` schema the same
way.  Finally it runs one micro inference through the DeepCAM backend to
check the :class:`RunResult` path.

Intended for CI / ``make check``:

    PYTHONPATH=src python scripts/smoke.py
"""

from __future__ import annotations

import json
import sys
import traceback

import numpy as np


def check(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(message)


def check_cost_reports(api) -> None:
    trace = api.network_by_name("lenet5")
    for name in api.list_backends():
        report = api.get_backend(name).estimate(trace)
        check(isinstance(report, api.CostReport),
              f"{name}: estimate() must return a CostReport")
        check(report.backend == name, f"{name}: report.backend mismatch")
        check(report.network == trace.name, f"{name}: report.network mismatch")
        check(report.total_cycles > 0, f"{name}: cycles must be positive")
        rebuilt = api.CostReport.from_dict(json.loads(json.dumps(report.to_dict())))
        check(rebuilt == report, f"{name}: CostReport JSON round-trip changed the value")
        print(f"  [ok] backend {name}: {report.total_cycles} cycles, "
              f"energy={report.total_energy_uj}")


def check_experiments(api) -> None:
    # One tiny registered experiment per backend family: fig9 covers the
    # deepcam/eyeriss/cpu cycle models, fig10 the energy models, fig8 the CAM
    # overhead model and table2 the analog PIM backends.
    tiny_params = {
        "fig9_cycles": {"networks": ("lenet5",)},
        "fig10_energy": {"cam_rows_list": (64,), "networks": ("lenet5",)},
        "fig8_cam_overhead": {"row_sizes": (64,), "word_sizes": (256,)},
        "table2_pim_comparison": {"cam_rows": 64},
        "table1_setup": {},
    }
    runner = api.ExperimentRunner()
    for name, params in tiny_params.items():
        result = runner.run(name, **params)
        check(isinstance(result, api.ExperimentResult),
              f"{name}: run() must return an ExperimentResult")
        check(len(result.rows) > 0, f"{name}: no rows produced")
        check(all(isinstance(row, dict) for row in result.rows),
              f"{name}: rows must be plain dicts")
        payload = json.dumps(result.to_dict())  # raises if not JSON-serialisable
        rebuilt = api.ExperimentResult.from_dict(json.loads(payload))
        check(rebuilt.rows == result.rows,
              f"{name}: ExperimentResult JSON round-trip changed the rows")
        print(f"  [ok] experiment {name}: {len(result.rows)} rows")


def check_inference(api) -> None:
    from repro.nn.models.lenet import build_lenet5

    model = build_lenet5(num_classes=4, input_size=28, width_multiplier=0.25, seed=0)
    batch = np.random.default_rng(0).normal(size=(2, 1, 28, 28))
    backend = api.deepcam(rows=64, hash_length=256)
    result = backend.run(model, batch)
    check(isinstance(result, api.RunResult), "deepcam run() must return a RunResult")
    check(result.num_samples == 2, "RunResult.num_samples mismatch")
    check(result.stats.get("cam_searches", 0) > 0, "simulator stats missing")
    rebuilt = api.RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    check(rebuilt == result, "RunResult JSON round-trip changed the value")
    print(f"  [ok] deepcam inference: predictions={result.predictions}")


def main() -> int:
    try:
        import repro.api as api
    except Exception:
        traceback.print_exc()
        print("FAIL: repro.api did not import")
        return 1

    steps = (
        ("cost reports per backend", check_cost_reports),
        ("registered experiments", check_experiments),
        ("functional inference", check_inference),
    )
    for title, step in steps:
        print(f"== {title} ==")
        try:
            step(api)
        except Exception:
            traceback.print_exc()
            print(f"FAIL: {title}")
            return 1
    print("smoke: all API schema checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
