#!/usr/bin/env python
"""Load generator for the ``repro.serve`` micro-batching server.

Drives the demo CAM-pipeline engine with one of several traffic scenarios
and prints the server's metrics snapshot (throughput, batch-size histogram,
p50/p99 latency, cache hit rate):

* ``uniform`` -- unique queries submitted as fast as possible (optionally
  paced with ``--rate``): the pure batching workload;
* ``bursty``  -- bursts of ``--burst`` requests separated by ``--gap-ms``
  idle gaps: exercises the time-flush trigger on the trailing partial
  batches;
* ``zipf``    -- queries drawn from a ``--pool`` of distinct vectors with
  Zipf(``--zipf-alpha``) popularity: exercises the packed-signature cache.

``--verify`` (on by default in ``--quick``) recomputes every distinct query
directly on an identical engine and checks the served responses against it
-- the smoke proof that batching and caching change *when* work happens,
never *what* comes back.

Usage::

    PYTHONPATH=src python scripts/loadgen.py                      # 1000 uniform
    PYTHONPATH=src python scripts/loadgen.py --scenario zipf
    PYTHONPATH=src python scripts/loadgen.py --quick              # make serve-smoke
    PYTHONPATH=src python scripts/loadgen.py --json /tmp/serve.json

Exit status is nonzero when verification fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import (  # noqa: E402  (path bootstrap above)
    MicroBatchServer,
    PrintObserver,
    ServeConfig,
    build_demo_engine,
)

SCENARIOS = ("uniform", "bursty", "zipf")


def build_queries(scenario: str, args: argparse.Namespace,
                  rng: np.random.Generator) -> np.ndarray:
    """The ``(requests, input_dim)`` query stream of one scenario."""
    if scenario == "zipf":
        pool = rng.standard_normal((args.pool, args.input_dim))
        draws = rng.zipf(args.zipf_alpha, size=args.requests) % args.pool
        return pool[draws]
    return rng.standard_normal((args.requests, args.input_dim))


def run_scenario(scenario: str, args: argparse.Namespace) -> dict:
    """Serve one scenario; returns the scenario report (stats + timings)."""
    rng = np.random.default_rng(args.seed)
    engine = build_demo_engine(classes=args.classes, input_dim=args.input_dim,
                               hash_length=args.hash_length, seed=args.seed)
    queries = build_queries(scenario, args, rng)
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        num_workers=args.workers,
        cache_capacity=0 if args.no_cache else args.cache_capacity,
    )
    observers = (PrintObserver(every=args.verbose),) if args.verbose else ()
    server = MicroBatchServer(engine, config=config, observers=observers)
    server.start()
    try:
        start = time.perf_counter()
        futures = []
        for index, query in enumerate(queries):
            futures.append(server.submit(query))
            if scenario == "bursty" and (index + 1) % args.burst == 0:
                time.sleep(args.gap_ms / 1e3)
            elif args.rate > 0:
                time.sleep(1.0 / args.rate)
        responses = [future.result(timeout=args.timeout_s) for future in futures]
        serving_s = time.perf_counter() - start
    finally:
        server.stop(drain=True)

    report = {
        "scenario": scenario,
        "requests": int(args.requests),
        "serving_s": serving_s,
        "throughput_rps": args.requests / serving_s,
        "stats": server.stats(),
    }
    if args.verify:
        report["verified"] = verify_responses(args, queries, responses)
    return report


def verify_responses(args: argparse.Namespace, queries: np.ndarray,
                     responses: list) -> bool:
    """Served responses must match a direct pass on an identical engine.

    Duplicate queries (the cache path) must be *bit-identical* to each
    other; against the independently built reference engine the check is
    ``allclose`` plus exact equality of the argmax classes.
    """
    reference_engine = build_demo_engine(classes=args.classes,
                                         input_dim=args.input_dim,
                                         hash_length=args.hash_length,
                                         seed=args.seed)
    reference = reference_engine.execute(reference_engine.prepare(queries))
    served = np.stack(responses)
    if served.shape != reference.shape:
        print(f"[loadgen] VERIFY FAIL: shape {served.shape} != {reference.shape}")
        return False
    if not np.allclose(served, reference):
        worst = float(np.max(np.abs(served - reference)))
        print(f"[loadgen] VERIFY FAIL: responses deviate (max abs err {worst:g})")
        return False
    seen: dict[bytes, np.ndarray] = {}
    for query, row in zip(queries, served):
        key = query.tobytes()
        if key in seen and not np.array_equal(seen[key], row):
            print("[loadgen] VERIFY FAIL: duplicate query served "
                  "non-identical responses")
            return False
        seen[key] = row
    return True


def print_report(report: dict) -> None:
    stats = report["stats"]
    print(f"[loadgen] scenario={report['scenario']} "
          f"requests={report['requests']} "
          f"throughput={report['throughput_rps']:,.0f} req/s")
    batches = stats["batches"]
    print(f"[loadgen]   batches={batches['count']} "
          f"mean_size={batches['mean_size']:.1f} "
          f"histogram={batches['size_histogram']}")
    latency = stats["latency_ms"]
    print(f"[loadgen]   latency p50={latency['p50']:.2f}ms "
          f"p99={latency['p99']:.2f}ms max={latency['max']:.2f}ms")
    cache = stats["cache"]
    print(f"[loadgen]   cache hits={cache['hits']} misses={cache['misses']} "
          f"hit_rate={cache['hit_rate']:.2f}")
    print(f"[loadgen]   queue depth max={stats['queue_depth']['max']}")
    if "verified" in report:
        print(f"[loadgen]   verified={'OK' if report['verified'] else 'FAIL'}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=(*SCENARIOS, "all"),
                        default="uniform")
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--queue-depth", type=int, default=1024)
    parser.add_argument("--cache-capacity", type=int, default=4096)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--classes", type=int, default=16)
    parser.add_argument("--input-dim", type=int, default=128)
    parser.add_argument("--hash-length", type=int, default=256)
    parser.add_argument("--rate", type=float, default=0.0,
                        help="paced arrivals in req/s (0 = as fast as possible)")
    parser.add_argument("--burst", type=int, default=64,
                        help="bursty scenario: requests per burst")
    parser.add_argument("--gap-ms", type=float, default=5.0,
                        help="bursty scenario: idle gap between bursts")
    parser.add_argument("--pool", type=int, default=128,
                        help="zipf scenario: distinct queries in the pool")
    parser.add_argument("--zipf-alpha", type=float, default=1.3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout-s", type=float, default=60.0)
    parser.add_argument("--verify", action="store_true",
                        help="check served responses against a direct pass")
    parser.add_argument("--verbose", type=int, default=0, metavar="N",
                        help="print every N-th batch (0 = silent)")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the report(s) to this JSON file")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: all scenarios, 200 requests each, "
                             "verification on (make serve-smoke)")
    args = parser.parse_args(argv)

    if args.quick:
        args.requests = min(args.requests, 200)
        args.scenario = "all"
        args.verify = True

    scenarios = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    reports = []
    all_verified = True
    for scenario in scenarios:
        report = run_scenario(scenario, args)
        print_report(report)
        reports.append(report)
        all_verified = all_verified and report.get("verified", True)

    if args.json is not None:
        args.json.write_text(json.dumps(reports, indent=2, sort_keys=True) + "\n")
        print(f"[loadgen] wrote {args.json}")

    if not all_verified:
        print("[loadgen] FAILED: served responses do not match direct execution")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
