#!/usr/bin/env python
"""Load generator for the ``repro.serve`` micro-batching server.

Drives the demo CAM-pipeline engine with one of several traffic scenarios
and prints the server's metrics snapshot (throughput, batch-size histogram,
p50/p99 latency, cache hit rate):

* ``uniform`` -- unique queries submitted as fast as possible (optionally
  paced with ``--rate``): the pure batching workload;
* ``bursty``  -- bursts of ``--burst`` requests separated by ``--gap-ms``
  idle gaps: exercises the time-flush trigger on the trailing partial
  batches;
* ``zipf``    -- queries drawn from a ``--pool`` of distinct vectors with
  Zipf(``--zipf-alpha``) popularity: exercises the packed-signature cache;
* ``cache_busting`` -- a hot working set interleaved with floods of
  one-shot unique queries, served twice: once with plain LRU (the hit rate
  collapses -- every flood evicts the hot set) and once with the
  doorkeeper admission policy (``--cache-admission``), which keeps the hot
  set resident;
* ``retrieval`` -- top-k requests (``--topk`` nearest CAM rows per query,
  ``submit_topk``) with a repeated tail that exercises the (query, k)
  cache keys: the retrieval workload the partial gather exists for;
* ``tenants`` -- multi-tenant Zipf traffic through a tenanted server
  (:mod:`repro.serve.tenancy`): two well-behaved tenants (``gold`` at
  weight 3, ``silver`` at weight 1) paced at ``--wb-rate`` beside a
  ``flood`` tenant submitting at ``--flood-factor`` times its token
  bucket (``--tenant-rate``/``--tenant-burst``, degradation ``shed``).
  Reports client-side per-tenant p50/p99 and admit/shed counts;
  ``--no-flood`` runs the same well-behaved traffic alone (the baseline
  ``scripts/tenant_smoke.py`` gates against).

``--engine sharded`` serves every scenario through a
:class:`~repro.shard.ShardedEngine` cluster (``--shards`` / ``--replicas``
/ ``--routing`` / ``--fanout`` / ``--executor``) instead of the
single-array engine; the verification reference stays the *unsharded*
engine, so a verified run is an end-to-end proof that sharding never
changes a response (``make shard-smoke``); with
``--executor processes`` the same proof covers the SharedMemory
execution plane end to end (``make exec-smoke``).

``--verify`` (on by default in ``--quick``) recomputes every distinct query
directly on an identical engine and checks the served responses against it
-- the smoke proof that batching, caching and sharding change *when* work
happens, never *what* comes back.

Usage::

    PYTHONPATH=src python scripts/loadgen.py                      # 1000 uniform
    PYTHONPATH=src python scripts/loadgen.py --scenario zipf
    PYTHONPATH=src python scripts/loadgen.py --quick              # make serve-smoke
    PYTHONPATH=src python scripts/loadgen.py --quick --engine sharded --shards 4
    PYTHONPATH=src python scripts/loadgen.py --json /tmp/serve.json

Exit status is nonzero when verification fails.
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import (  # noqa: E402  (path bootstrap above)
    InMemoryExporter,
    JsonlExporter,
    SloEngine,
    SloSpec,
    TailSampler,
    Tracer,
    report as obs_report,
)
from repro.serve import (  # noqa: E402
    AdmissionError,
    MicroBatchServer,
    PrintObserver,
    ServeConfig,
    TenantPolicy,
    TenantRegistry,
    build_demo_engine,
)
from repro.shard import build_demo_sharded_engine  # noqa: E402

SCENARIOS = ("uniform", "bursty", "zipf", "cache_busting", "retrieval")

#: The tenants scenario's cast: two well-behaved tenants and one flood.
WELL_BEHAVED = (("gold", 3.0), ("silver", 1.0))


def build_queries(scenario: str, args: argparse.Namespace,
                  rng: np.random.Generator) -> np.ndarray:
    """The ``(requests, input_dim)`` query stream of one scenario."""
    if scenario == "retrieval":
        # Mostly-unique lookups with a repeated tail: the tail replays the
        # head, so the (query, k)-keyed result cache sees genuine hits.
        unique = max(1, (args.requests * 3) // 4)
        head = rng.standard_normal((unique, args.input_dim))
        tail = head[: args.requests - unique]
        return np.concatenate([head, tail]) if len(tail) else head
    if scenario == "zipf":
        pool = rng.standard_normal((args.pool, args.input_dim))
        draws = rng.zipf(args.zipf_alpha, size=args.requests) % args.pool
        return pool[draws]
    if scenario == "cache_busting":
        # Rounds of the hot working set followed by a flood of one-shot
        # uniques longer than the cache: plain LRU evicts the entire hot
        # set between its reuses.
        hot_size, flood_len, _ = busting_geometry(args.requests)
        hot = rng.standard_normal((hot_size, args.input_dim))
        stream = []
        while len(stream) < args.requests:
            stream.extend(hot)
            stream.extend(rng.standard_normal((flood_len, args.input_dim)))
        return np.asarray(stream[: args.requests])
    return rng.standard_normal((args.requests, args.input_dim))


def busting_geometry(requests: int) -> tuple[int, int, int]:
    """(hot set, flood length, cache capacity) of the cache_busting stream.

    Sized so the stream holds ~5 hot-set reuses regardless of the request
    budget, with the flood longer than the cache (every round evicts the
    whole hot set under plain LRU) and the cache big enough for the hot
    set (a doorkeeper keeps it resident).
    """
    round_len = max(requests // 5, 10)
    hot = max(round_len // 5, 2)
    flood = round_len - hot
    capacity = max(flood // 2, hot)
    return hot, flood, capacity


def build_engine(args: argparse.Namespace):
    """The served engine: the demo single-array engine, or a sharded cluster."""
    if args.engine == "sharded":
        return build_demo_sharded_engine(
            classes=args.classes, input_dim=args.input_dim,
            hash_length=args.hash_length, seed=args.seed,
            num_shards=args.shards, num_replicas=args.replicas,
            routing=args.routing, fanout=args.fanout,
            executor=args.executor)
    return build_demo_engine(classes=args.classes, input_dim=args.input_dim,
                             hash_length=args.hash_length, seed=args.seed)


def serve_queries(scenario: str, args: argparse.Namespace,
                  queries: np.ndarray, config: ServeConfig,
                  tracer: Tracer | None = None,
                  slo_specs: tuple = ()) -> tuple[list, float, dict, dict | None]:
    """Serve one query stream; returns (responses, serving_s, stats, slo)."""
    observers = (PrintObserver(every=args.verbose),) if args.verbose else ()
    engine = build_engine(args)
    server = MicroBatchServer(engine, config=config, observers=observers,
                              tracer=tracer)
    server.start()
    # The SLO engine baselines at construction, so it must exist before
    # traffic for its windows to cover the run.
    slo_engine = (SloEngine(list(slo_specs), server.metrics.registry)
                  if slo_specs else None)
    try:
        start = time.perf_counter()
        futures = []
        for index, query in enumerate(queries):
            if scenario == "retrieval":
                futures.append(server.submit_topk(query, args.topk))
            else:
                futures.append(server.submit(query))
            if scenario == "bursty" and (index + 1) % args.burst == 0:
                time.sleep(args.gap_ms / 1e3)
            elif args.rate > 0:
                time.sleep(1.0 / args.rate)
        responses = [future.result(timeout=args.timeout_s) for future in futures]
        serving_s = time.perf_counter() - start
        slo = slo_engine.evaluate() if slo_engine is not None else None
    finally:
        server.stop(drain=True)
        # Sharded engines hold an execution plane (worker pools, published
        # SharedMemory storage); release it rather than leaning on the
        # resource tracker's exit sweep.
        close = getattr(engine, "close", None)
        if callable(close):
            close()
    return responses, serving_s, server.stats(), slo


def run_scenario(scenario: str, args: argparse.Namespace) -> dict:
    """Serve one scenario; returns the scenario report (stats + timings)."""
    rng = np.random.default_rng(args.seed)
    queries = build_queries(scenario, args, rng)
    if args.no_cache:
        cache_capacity = 0
    elif args.cache_capacity is not None:
        cache_capacity = args.cache_capacity
    elif scenario == "cache_busting":
        cache_capacity = busting_geometry(args.requests)[2]
    else:
        cache_capacity = 4096
    if args.cache_admission is not None:
        cache_admission = args.cache_admission
    else:
        cache_admission = 2 if scenario == "cache_busting" else 1
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        num_workers=args.workers,
        cache_capacity=cache_capacity,
        adaptive_wait=args.adaptive_wait,
        cache_admission=cache_admission,
        executor=args.executor,
    )
    lru_hit_rate = None
    if scenario == "cache_busting" and cache_capacity > 0:
        # The contrast run: same adversarial stream, plain LRU admission.
        # (Pointless without a cache, so --no-cache skips it.)
        _, _, lru_stats, _ = serve_queries(
            scenario, args, queries,
            dataclasses.replace(config, cache_admission=1))
        lru_hit_rate = lru_stats["cache"]["hit_rate"]
    tracer = exporter = tail = tail_sink = None
    if args.trace or args.tail_slow_ms is not None:
        exporter = InMemoryExporter()
        exporters: list = [exporter]
        if args.trace_out is not None:
            exporters.append(JsonlExporter(args.trace_out))
        if args.tail_slow_ms is not None:
            # The tail sampler sees every span regardless of head
            # sampling, so slow traces export whole even at
            # --sample-rate 0.01.
            tail_sink = InMemoryExporter()
            tail = TailSampler([tail_sink], keep_slow_ms=args.tail_slow_ms)
        tracer = Tracer(exporters=exporters, sample_rate=args.sample_rate,
                        tail_sampler=tail)
    slo_specs = build_slo_specs(args)
    responses, serving_s, stats, slo = serve_queries(
        scenario, args, queries, config, tracer=tracer, slo_specs=slo_specs)

    report = {
        "scenario": scenario,
        "engine": args.engine,
        "executor": args.executor,
        "requests": int(args.requests),
        "serving_s": serving_s,
        "throughput_rps": args.requests / serving_s,
        "stats": stats,
    }
    if lru_hit_rate is not None:
        report["cache_busting"] = {
            "lru_hit_rate": lru_hit_rate,
            "admission_hit_rate": stats["cache"]["hit_rate"],
            "admission_threshold": cache_admission,
        }
    if slo is not None:
        report["slo"] = slo
    if args.verify:
        if scenario == "retrieval":
            report["verified"] = verify_topk_responses(args, queries, responses)
        else:
            report["verified"] = verify_responses(args, queries, responses)
    if tracer is not None:
        tracer.shutdown()
        if args.trace and args.sample_rate >= 1.0:
            trees = obs_report.build_run_trees(exporter.spans())
            complete, problems = obs_report.verify_run_trees(
                trees, expected_requests=int(args.requests))
            report["trace"] = {
                "run_trees": len(trees),
                "complete": complete,
                "problems": problems,
                "stages": obs_report.stage_table(trees),
                "obs": tracer.snapshot(),
            }
        elif args.trace:
            # Head-sampled runs cannot expect every request in the sink.
            trees = obs_report.build_run_trees(exporter.spans())
            report["trace"] = {
                "run_trees": len(trees),
                "complete": True,
                "problems": [],
                "stages": obs_report.stage_table(trees),
                "obs": tracer.snapshot(),
            }
        if tail is not None:
            tail_trees = obs_report.build_run_trees(tail_sink.spans())
            report["tail"] = {
                "run_trees": len(tail_trees),
                "kept_request_traces": sum(
                    1 for tree in tail_trees
                    if tree.root.name == "request"),
                **{key: value for key, value in tail.snapshot().items()
                   if not key.startswith("export_")},
            }
    return report


def run_tenants_scenario(args: argparse.Namespace,
                         flood: bool | None = None) -> dict:
    """The multi-tenant scenario: Zipf traffic from three tenants.

    Two well-behaved tenants (paced at ``--wb-rate``) run beside a flood
    tenant submitting at ``--flood-factor`` times its token-bucket rate
    (shed on overflow).  Latency is measured *client-side* per tenant --
    submit to future resolution -- because that is what a tenant
    experiences; the server's bucket-resolution histogram is too coarse
    for the smoke gate's 1.5x comparison.  ``flood=False`` (or
    ``--no-flood``) runs only the well-behaved traffic: the baseline
    ``scripts/tenant_smoke.py`` gates the flooded run against.
    """
    if flood is None:
        flood = not args.no_flood
    rng = np.random.default_rng(args.seed)
    pool = rng.standard_normal((args.pool, args.input_dim))
    burst = (args.tenant_burst if args.tenant_burst is not None
             else args.tenant_rate)
    registry = TenantRegistry()
    registry.register("flood", TenantPolicy(
        weight=1.0, rate=args.tenant_rate, burst=burst, degradation="shed"))
    for name, weight in WELL_BEHAVED:
        registry.register(name, TenantPolicy(weight=weight))
    config = ServeConfig(
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth, num_workers=args.workers,
        cache_capacity=(0 if args.no_cache
                        else (args.cache_capacity or 4096)),
        adaptive_wait=args.adaptive_wait, executor=args.executor)
    engine = build_engine(args)
    server = MicroBatchServer(engine, config=config, tenancy=registry)

    lock = threading.Lock()
    names = [name for name, _ in WELL_BEHAVED] + ["flood"]
    latencies: dict[str, list[float]] = {name: [] for name in names}
    completions: list[tuple[str, int, np.ndarray]] = []
    counts = {name: {"submitted": 0, "rejected": 0, "failed": 0}
              for name in names}
    stop = threading.Event()

    def pump(name: str, indices, interval_s: float,
             until_stop: bool = False) -> None:
        iterator = itertools.cycle(indices) if until_stop else iter(indices)
        for pool_index in iterator:
            if until_stop and stop.is_set():
                break
            submitted_at = time.perf_counter()
            with lock:
                counts[name]["submitted"] += 1
            try:
                future = server.submit(pool[pool_index], tenant=name)
            except AdmissionError:
                with lock:
                    counts[name]["rejected"] += 1
            else:
                def done(resolved, name=name, pool_index=pool_index,
                         submitted_at=submitted_at):
                    latency_ms = (time.perf_counter() - submitted_at) * 1e3
                    with lock:
                        if resolved.exception() is None:
                            latencies[name].append(latency_ms)
                            completions.append(
                                (name, pool_index, resolved.result()))
                        else:
                            counts[name]["failed"] += 1
                future.add_done_callback(done)
            if interval_s > 0:
                time.sleep(interval_s)

    def zipf_indices(name: str, size: int) -> np.ndarray:
        tenant_rng = np.random.default_rng(
            [args.seed, abs(hash(name)) % (2 ** 31)])
        return tenant_rng.zipf(args.zipf_alpha, size=size) % args.pool

    wb_interval = 1.0 / args.wb_rate if args.wb_rate > 0 else 0.0
    flood_interval = 1.0 / (args.flood_factor * args.tenant_rate)
    wb_threads = [
        threading.Thread(target=pump, name=f"wb-{name}",
                         args=(name, zipf_indices(name, args.requests),
                               wb_interval))
        for name, _ in WELL_BEHAVED]
    flood_thread = threading.Thread(
        target=pump, name="flood",
        args=("flood", zipf_indices("flood", args.pool), flood_interval, True))

    server.start()
    try:
        start = time.perf_counter()
        if flood:
            flood_thread.start()
        for thread in wb_threads:
            thread.start()
        for thread in wb_threads:
            thread.join()
        stop.set()
        if flood:
            flood_thread.join()
        elapsed_s = time.perf_counter() - start
    finally:
        server.stop(drain=True)  # resolves every admitted future
        close = getattr(engine, "close", None)
        if callable(close):
            close()

    def percentile(name: str, q: float) -> float:
        values = latencies[name]
        return float(np.percentile(values, q)) if values else 0.0

    tenants = {}
    for name in names:
        entry = dict(counts[name])
        entry["admitted"] = entry["submitted"] - entry["rejected"]
        entry["completed"] = len(latencies[name])
        entry["p50_ms"] = percentile(name, 50.0)
        entry["p99_ms"] = percentile(name, 99.0)
        tenants[name] = entry
    report = {
        "scenario": "tenants",
        "engine": args.engine,
        "flood": bool(flood),
        "elapsed_s": elapsed_s,
        "tenant_rate": args.tenant_rate,
        "tenant_burst": burst,
        "flood_factor": args.flood_factor,
        "tenants": tenants,
        "stats": server.stats(),
    }
    if args.verify:
        report["verified"] = verify_tenant_completions(args, pool, completions)
    return report


def verify_tenant_completions(args: argparse.Namespace, pool: np.ndarray,
                              completions: list) -> bool:
    """Every served row must match direct execution on an identical engine.

    Repeats within one tenant ride its cache namespace, so they must be
    *bit-identical* to each other; against the independently built
    reference engine the check is ``allclose`` plus exact argmax
    equality, exactly as the single-tenant scenarios verify.
    """
    reference_engine = build_demo_engine(classes=args.classes,
                                         input_dim=args.input_dim,
                                         hash_length=args.hash_length,
                                         seed=args.seed)
    reference = reference_engine.execute(reference_engine.prepare(pool))
    seen: dict[tuple[str, int], np.ndarray] = {}
    for tenant, pool_index, row in completions:
        expected = reference[pool_index]
        if not np.allclose(row, expected) \
                or int(np.argmax(row)) != int(np.argmax(expected)):
            print(f"[loadgen] VERIFY FAIL: tenant {tenant!r} pool row "
                  f"{pool_index} deviates from direct execution")
            return False
        key = (tenant, int(pool_index))
        if key in seen and not np.array_equal(seen[key], row):
            print(f"[loadgen] VERIFY FAIL: tenant {tenant!r} served "
                  f"non-identical repeats of pool row {pool_index}")
            return False
        seen[key] = row
    return True


def print_tenants_report(report: dict) -> None:
    flood = "flood on" if report["flood"] else "no flood (baseline)"
    print(f"[loadgen] scenario=tenants engine={report['engine']} {flood} "
          f"elapsed={report['elapsed_s']:.2f}s")
    for name, entry in report["tenants"].items():
        print(f"[loadgen]   {name}: submitted={entry['submitted']} "
              f"admitted={entry['admitted']} rejected={entry['rejected']} "
              f"p50={entry['p50_ms']:.2f}ms p99={entry['p99_ms']:.2f}ms")
    server_tenants = report["stats"].get("tenants", {})
    shed = {name: entry.get("shed", 0)
            for name, entry in server_tenants.items()}
    print(f"[loadgen]   server shed counts={shed}")
    if "verified" in report:
        print(f"[loadgen]   verified={'OK' if report['verified'] else 'FAIL'}")


def build_slo_specs(args: argparse.Namespace) -> tuple:
    """SloSpecs from the --slo-* flags ([] when none are set)."""
    if (args.slo_p99_ms is None and args.slo_error_rate_max is None
            and args.slo_hit_rate_min is None):
        return ()
    return (SloSpec(name="loadgen",
                    latency_p99_ms=args.slo_p99_ms,
                    error_rate_max=args.slo_error_rate_max,
                    hit_rate_min=args.slo_hit_rate_min),)


def verify_topk_responses(args: argparse.Namespace, queries: np.ndarray,
                          responses: list) -> bool:
    """Served top-k rows must be bit-identical to direct engine execution.

    The reference is the *unsharded* demo engine, so a sharded run proves
    the partial gather end to end; indices and distances are integers, so
    the check is exact equality, never allclose.
    """
    reference_engine = build_demo_engine(classes=args.classes,
                                         input_dim=args.input_dim,
                                         hash_length=args.hash_length,
                                         seed=args.seed)
    expected = reference_engine.execute_topk(
        reference_engine.prepare(queries), args.topk)
    served = np.stack(responses)
    if served.shape != expected.shape:
        print(f"[loadgen] VERIFY FAIL: top-k shape {served.shape} != "
              f"{expected.shape}")
        return False
    if not np.array_equal(served, expected):
        print("[loadgen] VERIFY FAIL: served top-k rows are not "
              "bit-identical to direct execution")
        return False
    return True


def verify_responses(args: argparse.Namespace, queries: np.ndarray,
                     responses: list) -> bool:
    """Served responses must match a direct pass on an identical engine.

    The reference is always the *unsharded* demo engine, so a sharded run
    additionally proves scatter-gather correctness end to end.  Duplicate
    queries (the cache path) must be *bit-identical* to each other;
    against the independently built reference engine the check is
    ``allclose`` plus exact equality of the argmax classes.
    """
    reference_engine = build_demo_engine(classes=args.classes,
                                         input_dim=args.input_dim,
                                         hash_length=args.hash_length,
                                         seed=args.seed)
    reference = reference_engine.execute(reference_engine.prepare(queries))
    served = np.stack(responses)
    if served.shape != reference.shape:
        print(f"[loadgen] VERIFY FAIL: shape {served.shape} != {reference.shape}")
        return False
    if not np.allclose(served, reference):
        worst = float(np.max(np.abs(served - reference)))
        print(f"[loadgen] VERIFY FAIL: responses deviate (max abs err {worst:g})")
        return False
    seen: dict[bytes, np.ndarray] = {}
    for query, row in zip(queries, served):
        key = query.tobytes()
        if key in seen and not np.array_equal(seen[key], row):
            print("[loadgen] VERIFY FAIL: duplicate query served "
                  "non-identical responses")
            return False
        seen[key] = row
    return True


def print_report(report: dict) -> None:
    stats = report["stats"]
    print(f"[loadgen] scenario={report['scenario']} "
          f"engine={report['engine']} "
          f"requests={report['requests']} "
          f"throughput={report['throughput_rps']:,.0f} req/s")
    if "cache_busting" in report:
        busting = report["cache_busting"]
        print(f"[loadgen]   cache-busting: LRU hit_rate="
              f"{busting['lru_hit_rate']:.2f} -> doorkeeper(admission="
              f"{busting['admission_threshold']}) hit_rate="
              f"{busting['admission_hit_rate']:.2f}")
    if "shards" in stats and stats["shards"]:
        searches = {shard: entry["searches"]
                    for shard, entry in stats["shards"].items()}
        print(f"[loadgen]   shard searches={searches}")
    batches = stats["batches"]
    print(f"[loadgen]   batches={batches['count']} "
          f"mean_size={batches['mean_size']:.1f} "
          f"histogram={batches['size_histogram']}")
    latency = stats["latency_ms"]
    print(f"[loadgen]   latency p50={latency['p50']:.2f}ms "
          f"p99={latency['p99']:.2f}ms max={latency['max']:.2f}ms")
    cache = stats["cache"]
    print(f"[loadgen]   cache hits={cache['hits']} misses={cache['misses']} "
          f"hit_rate={cache['hit_rate']:.2f}")
    print(f"[loadgen]   queue depth max={stats['queue_depth']['max']}")
    if "verified" in report:
        print(f"[loadgen]   verified={'OK' if report['verified'] else 'FAIL'}")
    if "trace" in report:
        trace = report["trace"]
        status = "OK" if trace["complete"] else "INCOMPLETE"
        print(f"[loadgen]   trace: {trace['run_trees']} run trees "
              f"({status}), {trace['obs']['spans_ended']} spans, "
              f"dropped={trace['obs']['export_dropped']}")
        for problem in trace["problems"][:5]:
            print(f"[loadgen]     problem: {problem}")
        for line in obs_report.render_stage_table(trace["stages"]).splitlines():
            print(f"[loadgen]   {line}")
    if "tail" in report:
        tail = report["tail"]
        print(f"[loadgen]   tail: kept {tail['kept_traces']} traces "
              f"({tail['kept_slow']} slow, {tail['kept_error']} error, "
              f"{tail['kept_link']} linked) of {tail['roots_seen']} roots; "
              f"{tail['kept_request_traces']} slow request trees exported "
              f"whole")
    if "slo" in report:
        slo = report["slo"]
        print(f"[loadgen]   slo: {slo['status']}")
        for spec in slo["specs"]:
            for objective in spec["objectives"]:
                short = objective["windows"]["short"]
                print(f"[loadgen]     {spec['name']}/"
                      f"{objective['objective']}: {objective['status']} "
                      f"(burn {short['burn']:.2f}, "
                      f"bad {short['bad']:.0f}/{short['total']:.0f})")


def build_parser() -> argparse.ArgumentParser:
    """The loadgen CLI (exposed so tenant_smoke reuses the defaults)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=(*SCENARIOS, "tenants", "all"),
                        default="uniform",
                        help="traffic shape ('tenants' is the multi-tenant "
                             "flood scenario; not part of 'all')")
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--queue-depth", type=int, default=1024)
    parser.add_argument("--cache-capacity", type=int, default=None,
                        help="result-cache entries (default 4096; the "
                             "cache_busting scenario sizes it from the "
                             "stream unless set explicitly)")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--classes", type=int, default=16)
    parser.add_argument("--input-dim", type=int, default=128)
    parser.add_argument("--hash-length", type=int, default=256)
    parser.add_argument("--rate", type=float, default=0.0,
                        help="paced arrivals in req/s (0 = as fast as possible)")
    parser.add_argument("--burst", type=int, default=64,
                        help="bursty scenario: requests per burst")
    parser.add_argument("--gap-ms", type=float, default=5.0,
                        help="bursty scenario: idle gap between bursts")
    parser.add_argument("--pool", type=int, default=128,
                        help="zipf scenario: distinct queries in the pool")
    parser.add_argument("--topk", type=int, default=8,
                        help="retrieval scenario: nearest rows per query")
    parser.add_argument("--zipf-alpha", type=float, default=1.3)
    parser.add_argument("--engine", choices=("cam", "sharded"), default="cam",
                        help="serve through the single-array demo engine or "
                             "a sharded cluster")
    parser.add_argument("--shards", type=int, default=4,
                        help="sharded engine: number of shards")
    parser.add_argument("--replicas", type=int, default=1,
                        help="sharded engine: replicas per shard")
    parser.add_argument("--routing", choices=("round_robin", "least_loaded"),
                        default="round_robin")
    parser.add_argument("--fanout", choices=("fused", "ports"),
                        default="fused")
    parser.add_argument("--executor", choices=("inline", "threads",
                                               "processes"), default=None,
                        help="execution-plane engine for the sharded "
                             "cluster's fan-outs (default: REPRO_EXECUTOR, "
                             "then the pre-plane behaviour)")
    parser.add_argument("--adaptive-wait", action="store_true",
                        help="scale max_wait_ms with queue depth")
    parser.add_argument("--cache-admission", type=int, default=None,
                        help="doorkeeper admission threshold for any "
                             "scenario (default: 2 for cache_busting, "
                             "1 = plain LRU otherwise)")
    parser.add_argument("--tenant-rate", type=float, default=20.0,
                        help="tenants scenario: the flood tenant's "
                             "token-bucket rate (req/s)")
    parser.add_argument("--tenant-burst", type=float, default=None,
                        help="tenants scenario: the flood tenant's bucket "
                             "capacity (default: its rate)")
    parser.add_argument("--flood-factor", type=float, default=10.0,
                        help="tenants scenario: flood submits at this "
                             "multiple of its admitted rate")
    parser.add_argument("--wb-rate", type=float, default=200.0,
                        help="tenants scenario: each well-behaved tenant's "
                             "submit pace (req/s)")
    parser.add_argument("--no-flood", action="store_true",
                        help="tenants scenario: run only the well-behaved "
                             "tenants (the tenant_smoke baseline)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout-s", type=float, default=60.0)
    parser.add_argument("--verify", action="store_true",
                        help="check served responses against a direct pass")
    parser.add_argument("--trace", action="store_true",
                        help="trace every request (repro.obs) and print the "
                             "per-stage latency attribution; fails the run "
                             "unless every request lands in exactly one "
                             "complete run tree")
    parser.add_argument("--trace-out", type=Path, default=None,
                        help="also export the spans to this JSONL file "
                             "(read it back with scripts/trace_report.py)")
    parser.add_argument("--sample-rate", type=float, default=1.0,
                        help="head-sampling rate for --trace (1.0 = every "
                             "request; tail-kept traces export regardless)")
    parser.add_argument("--tail-slow-ms", type=float, default=None,
                        help="attach a tail sampler keeping whole traces "
                             "whose request root is at least this slow "
                             "(works even when head-sampled out)")
    parser.add_argument("--slo-p99-ms", type=float, default=None,
                        help="evaluate a p99 latency SLO against the run")
    parser.add_argument("--slo-error-rate-max", type=float, default=None,
                        help="evaluate an error-rate SLO against the run")
    parser.add_argument("--slo-hit-rate-min", type=float, default=None,
                        help="evaluate a cache-hit-rate SLO against the run")
    parser.add_argument("--verbose", type=int, default=0, metavar="N",
                        help="print every N-th batch (0 = silent)")
    parser.add_argument("--json", type=Path, default=None,
                        help="also write the report(s) to this JSON file")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: all scenarios, 200 requests each, "
                             "verification on (make serve-smoke)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.quick:
        args.requests = min(args.requests, 200)
        args.scenario = "all"
        args.verify = True

    scenarios = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    reports = []
    all_verified = True
    for scenario in scenarios:
        if scenario == "tenants":
            report = run_tenants_scenario(args)
            print_tenants_report(report)
        else:
            report = run_scenario(scenario, args)
            print_report(report)
        reports.append(report)
        all_verified = all_verified and report.get("verified", True)
        if "trace" in report:
            all_verified = all_verified and report["trace"]["complete"]

    if args.json is not None:
        args.json.write_text(json.dumps(reports, indent=2, sort_keys=True) + "\n")
        print(f"[loadgen] wrote {args.json}")

    if not all_verified:
        print("[loadgen] FAILED: served responses do not match direct execution")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
