"""Setuptools shim.

The offline evaluation environment ships setuptools without the ``wheel``
package, so PEP 517/660 builds (which need ``bdist_wheel``) fail.  Keeping a
classic ``setup.py`` alongside ``pyproject.toml`` lets ``pip install -e .``
fall back to the legacy editable-install path (see the accompanying pip
configuration written by the project docs: ``no-build-isolation`` and
``no-use-pep517``).
"""

from setuptools import setup

setup()
