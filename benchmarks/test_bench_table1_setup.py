"""Table I -- hardware evaluation setup summary."""

import pytest

from repro.api import get_experiment
from repro.evaluation.reporting import format_table


def _run():
    # Time the registered experiment itself; this table regenerates in tens
    # of microseconds, so the runner's row-conversion overhead would be a
    # visible fraction of the measurement.
    return get_experiment("table1_setup").runner()


@pytest.mark.figure
def test_table1_setup(benchmark):
    table = benchmark(_run)

    rows = [[row["category"], row["cpu"], row["systolic"], row["deepcam"]] for row in table]
    print()
    print(format_table(["category", "CPU", "Systolic", "DeepCAM"], rows,
                       title="Table I: hardware evaluation setup"))

    assert any("Skylake" in row["cpu"] for row in table)
    assert any("Eyeriss (14 x 12)" in row["systolic"] for row in table)
    assert any("FeFET CAM" in row["deepcam"] for row in table)
    assert any("resnet18" in row["deepcam"] for row in table)
