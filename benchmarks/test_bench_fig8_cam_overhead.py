"""Fig. 8 -- CAM hardware overhead (search energy, area) vs rows and word width."""

import pytest

from repro.api import ExperimentRunner
from repro.evaluation.reporting import format_table


def _run():
    return ExperimentRunner().run("fig8_cam_overhead").raw


@pytest.mark.figure
def test_fig8_cam_overhead_sweep(benchmark):
    result = benchmark(_run)
    sweep = result["sweep"]

    rows = [[r.rows, r.word_bits, r.search_energy_pj, r.area_um2 / 1e3,
             r.search_delay_ns, r.energy_per_bit_fj] for r in sweep]
    print()
    print(format_table(
        ["rows", "word bits", "search energy (pJ)", "area (10^3 um2)",
         "delay (ns)", "energy/bit (fJ)"],
        rows, title="Fig. 8: FeFET CAM overhead vs rows x word width"))
    print(f"FeFET vs CMOS search-energy advantage: "
          f"{result['fefet_vs_cmos_energy_ratio']:.2f}x (cell-level 2.4x)")
    print(f"FeFET vs CMOS area advantage: "
          f"{result['fefet_vs_cmos_area_ratio']:.2f}x (cell-level 7.5x)")

    # Shape checks: energy and area grow monotonically along both axes.
    by_geometry = {(r.rows, r.word_bits): r for r in sweep}
    for rows_count in (64, 128, 256, 512):
        energies = [by_geometry[(rows_count, w)].search_energy_pj
                    for w in (256, 512, 768, 1024)]
        assert energies == sorted(energies)
    for word_bits in (256, 512, 768, 1024):
        areas = [by_geometry[(r, word_bits)].area_um2 for r in (64, 128, 256, 512)]
        assert areas == sorted(areas)
    assert result["fefet_vs_cmos_energy_ratio"] > 1.5
    assert result["fefet_vs_cmos_area_ratio"] > 3.0
