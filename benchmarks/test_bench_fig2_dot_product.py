"""Fig. 2 -- approximate vs algebraic dot-product as a function of hash length.

Regenerates the convergence curve on the paper's own worked example (whose
algebraic dot-product is 2.0765): the mean approximate value approaches the
reference and its seed-to-seed spread shrinks as the hash length grows.
"""

import pytest

from repro.api import ExperimentRunner
from repro.evaluation.reporting import format_table

HASH_LENGTHS = (64, 128, 256, 512, 1024, 2048, 4096)


def _run():
    return ExperimentRunner().run("fig2_dot_product_sweep", hash_lengths=HASH_LENGTHS, seeds=tuple(range(8)),
                                      use_exact_cosine=True).raw


@pytest.mark.figure
def test_fig2_dot_product_sweep(benchmark):
    sweep = benchmark(_run)

    rows = [[k, sweep[k]["reference"], sweep[k]["mean"], sweep[k]["std"],
             sweep[k]["mean_relative_error"]] for k in HASH_LENGTHS]
    print()
    print(format_table(
        ["hash length k", "algebraic", "approx mean", "approx std", "mean rel. error"],
        rows, title="Fig. 2: approximate vs algebraic dot-product (paper example)"))

    # Qualitative claim: longer hash lengths approximate better.
    assert sweep[4096]["mean_relative_error"] < sweep[64]["mean_relative_error"]
    assert sweep[4096]["std"] < sweep[64]["std"]
    assert sweep[256]["reference"] == pytest.approx(2.0765, abs=1e-3)
