"""Shared configuration for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
(or one ablation called out in DESIGN.md).  Benchmarks print the regenerated
rows/series so that running::

    pytest benchmarks/ --benchmark-only -s

shows the same quantities the paper reports; EXPERIMENTS.md records the
paper-vs-measured comparison for each of them.
"""

import pytest


def pytest_configure(config):
    # Benchmarks are not part of the unit-test run; they are executed with
    # `pytest benchmarks/ --benchmark-only`.
    config.addinivalue_line("markers", "figure: marks a paper-figure reproduction benchmark")
