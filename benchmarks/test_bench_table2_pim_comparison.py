"""Table II -- comparison with prior analog PIM accelerators (VGG11/CIFAR10).

Regenerates the DeepCAM vs NeuroSim (RRAM) vs Valavi et al. (SRAM
charge-domain) energy/cycle comparison.  Absolute numbers come from this
repository's models; the paper's published values are printed alongside for
reference.
"""

import pytest

from repro.api import ExperimentRunner
from repro.evaluation.reporting import format_table


def _run():
    return ExperimentRunner().run("table2_pim_comparison", cam_rows=64).raw


@pytest.mark.figure
def test_table2_pim_comparison(benchmark):
    rows = benchmark(_run)

    table = [[r.work, r.device, r.dot_product_mode, r.energy_uj, r.cycles,
              r.paper_energy_uj, r.paper_cycles] for r in rows]
    print()
    print(format_table(
        ["work", "device", "dot-product", "energy (uJ)", "cycles",
         "paper energy (uJ)", "paper cycles"],
        table, title="Table II: DeepCAM vs prior PIM accelerators (VGG11/CIFAR10)"))

    by_work = {r.work: r for r in rows}
    deepcam = by_work["DeepCAM (ours)"]
    neurosim = by_work["NeuroSim"]
    valavi = by_work["Valavi et al."]

    # Qualitative claims of the paper's Table II discussion:
    #  - DeepCAM is by far the most energy-efficient of the three;
    #  - it needs fewer computation cycles than the RRAM/NeuroSim design.
    assert deepcam.energy_uj < valavi.energy_uj < neurosim.energy_uj
    assert neurosim.energy_uj / deepcam.energy_uj > 10.0
    assert valavi.energy_uj / deepcam.energy_uj > 1.5
    assert deepcam.cycles < neurosim.cycles
