"""Microbenchmark -- packed XOR+popcount Hamming kernel vs the legacy GEMM.

Not a paper figure: measures the software kernel that stands in for the
CAM's O(1) in-array Hamming search.  The packed kernel
(:func:`repro.core.bitops.packed_hamming_matrix`) operates on ``uint64``
words (one popcount per 64 bits); the legacy path
(:func:`repro.core.hashing.hamming_distance_matrix_unpacked`) is a dense
+-1 int16 GEMM over unpacked bits.  ``scripts/bench.py`` runs the same
comparison across a larger grid and records the trajectory in
``BENCH_kernels.json``.
"""

import numpy as np
import pytest

from repro.core.bitops import pack_bits, packed_hamming_matrix
from repro.core.hashing import hamming_distance_matrix_unpacked

ROWS = 1024
HASH_LENGTH = 256


@pytest.fixture(scope="module")
def signatures():
    rng = np.random.default_rng(0)
    bits_a = rng.integers(0, 2, size=(ROWS, HASH_LENGTH), dtype=np.uint8)
    bits_b = rng.integers(0, 2, size=(ROWS, HASH_LENGTH), dtype=np.uint8)
    return bits_a, bits_b, pack_bits(bits_a), pack_bits(bits_b)


def test_packed_popcount_kernel(benchmark, signatures):
    bits_a, bits_b, packed_a, packed_b = signatures
    distances = benchmark(lambda: packed_hamming_matrix(packed_a, packed_b))
    assert distances.shape == (ROWS, ROWS)
    assert np.array_equal(distances, hamming_distance_matrix_unpacked(bits_a, bits_b))


def test_unpacked_gemm_kernel(benchmark, signatures):
    bits_a, bits_b, _, _ = signatures
    distances = benchmark(lambda: hamming_distance_matrix_unpacked(bits_a, bits_b))
    assert distances.shape == (ROWS, ROWS)
    assert int(distances.max()) <= HASH_LENGTH


def test_pack_bits_cost(benchmark, signatures):
    bits_a, _, packed_a, _ = signatures
    packed = benchmark(lambda: pack_bits(bits_a))
    assert np.array_equal(packed, packed_a)
