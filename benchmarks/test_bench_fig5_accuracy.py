"""Fig. 5 -- baseline (BL) vs DeepCAM (DC) accuracy with variable hash lengths.

The paper's full-size models/datasets are substituted with width-reduced
models on synthetic data (see DESIGN.md); the measured quantity and expected
shape are the same: per-layer variable hash lengths keep the DeepCAM accuracy
within a few points of the software baseline.

This is the slowest benchmark (it trains a model and runs the greedy
hash-length search), so it defaults to the LeNet5-class workload only; pass
a larger model list to :func:`repro.evaluation.experiments.run_fig5_accuracy`
for the full sweep.
"""

import pytest

from repro.api import ExperimentRunner
from repro.evaluation.reporting import format_table


def _run():
    return ExperimentRunner().run("fig5_accuracy", models=("lenet5",), samples=600, epochs=3,
                             eval_samples=120, tolerance=0.04).raw


@pytest.mark.figure
def test_fig5_accuracy_with_variable_hash_lengths(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = [[r.model, r.dataset, r.baseline_accuracy, r.deepcam_accuracy,
             r.accuracy_drop, str(sorted(set(r.layer_hash_lengths.values())))]
            for r in results]
    print()
    print(format_table(
        ["model", "dataset", "BL accuracy", "DC accuracy", "drop", "hash lengths used"],
        rows, title="Fig. 5: baseline vs DeepCAM accuracy (synthetic substitute)"))

    for result in results:
        # The substrate must have learned the task (well above 10-class chance)...
        assert result.baseline_accuracy > 0.5
        # ...and DeepCAM must retain a substantial part of it.  NOTE: the
        # paper reports a near-zero drop on fully-trained full-size models;
        # on our width-reduced models trained briefly on synthetic data the
        # drop is larger (the per-dot-product angle noise is the same but the
        # classification margins are thinner).  EXPERIMENTS.md discusses this
        # partial reproduction; here we assert the qualitative facts that do
        # hold: DeepCAM stays far above chance and the per-layer search finds
        # sub-maximum hash lengths.
        assert result.deepcam_accuracy > 0.2
        # At least one layer accepts a sub-maximum hash length, which is the
        # observation that motivates variable hash lengths.
        assert min(result.layer_hash_lengths.values()) < 1024
