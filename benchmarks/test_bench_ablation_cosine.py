"""Ablation -- Eq. 5 piecewise-linear cosine vs exact cosine.

Measures the extra dot-product error the hardware cosine approximation
introduces on top of the hashing error, and the hardware cost it saves.
"""

import numpy as np
import pytest

from repro.core.geometric import ApproximateDotProduct, algebraic_dot
from repro.evaluation.reporting import format_table
from repro.hw.cosine_unit import CosineUnit


def _run():
    rng = np.random.default_rng(0)
    dims = 64
    pairs = [(rng.uniform(0.1, 1.0, size=dims), rng.uniform(0.1, 1.0, size=dims))
             for _ in range(32)]
    results = {}
    for label, exact in (("pwl_eq5", False), ("exact_cosine", True)):
        errors = []
        for x, y in pairs:
            engine = ApproximateDotProduct(dims, 1024, seed=1, use_exact_cosine=exact)
            reference = algebraic_dot(x, y)
            errors.append(abs(engine(x, y) - reference) / abs(reference))
        unit = CosineUnit(use_exact=exact)
        cost = unit.hardware_cost()
        results[label] = {
            "mean_relative_error": float(np.mean(errors)),
            "max_relative_error": float(np.max(errors)),
            "energy_pj_per_op": cost.energy_pj,
            "latency_cycles": cost.latency_cycles,
        }
    return results


@pytest.mark.figure
def test_ablation_cosine_approximation(benchmark):
    results = benchmark(_run)

    rows = [[label, m["mean_relative_error"], m["max_relative_error"],
             m["energy_pj_per_op"], m["latency_cycles"]]
            for label, m in results.items()]
    print()
    print(format_table(
        ["cosine implementation", "mean rel. error", "max rel. error",
         "energy/op (pJ)", "latency (cycles)"],
        rows, title="Ablation: Eq. 5 PWL cosine vs exact cosine (k=1024)"))

    pwl = results["pwl_eq5"]
    exact = results["exact_cosine"]
    # The PWL unit is much cheaper per operation...
    assert pwl["energy_pj_per_op"] < exact["energy_pj_per_op"]
    assert pwl["latency_cycles"] < exact["latency_cycles"]
    # ...at the cost of a bounded accuracy penalty.
    assert pwl["mean_relative_error"] < 0.25
    assert exact["mean_relative_error"] <= pwl["mean_relative_error"] + 1e-9
