"""Fig. 9 -- computational cycles and hardware utilization.

Regenerates the comparison of DeepCAM (weight- and activation-stationary)
against the Eyeriss 14x12 systolic array and the Skylake AVX-512 CPU for the
four CNN workloads, at 64 and 512 CAM rows.
"""

import pytest

from repro.api import ExperimentRunner
from repro.evaluation.reporting import format_table


def _run():
    return {rows: ExperimentRunner().run("fig9_cycles", cam_rows=rows).raw for rows in (64, 512)}


@pytest.mark.figure
def test_fig9_cycles_and_utilization(benchmark):
    results = benchmark(_run)

    for cam_rows, rows in results.items():
        table = [[r.network, r.dataset, r.eyeriss_cycles, r.cpu_cycles,
                  r.deepcam_ws_cycles, r.deepcam_as_cycles,
                  r.deepcam_ws_utilization, r.deepcam_as_utilization,
                  r.speedup_vs_eyeriss_as, r.speedup_vs_cpu_as] for r in rows]
        print()
        print(format_table(
            ["network", "dataset", "Eyeriss cyc", "CPU cyc", "DeepCAM WS cyc",
             "DeepCAM AS cyc", "WS util", "AS util", "speedup vs Eyeriss (AS)",
             "speedup vs CPU (AS)"],
            table, title=f"Fig. 9: cycles and utilization ({cam_rows} CAM rows)"))

    rows64 = {r.network: r for r in results[64]}
    rows512 = {r.network: r for r in results[512]}

    for row in rows64.values():
        # DeepCAM beats both baselines on every workload (paper headline).
        assert row.speedup_vs_eyeriss_as > 1.0
        assert row.speedup_vs_cpu_as > 1.0

    # LeNet: activation-stationary beats weight-stationary in cycles and
    # utilization (the paper's worked example, Sec. IV-B).
    assert rows64["lenet5"].deepcam_as_cycles <= rows64["lenet5"].deepcam_ws_cycles
    assert rows64["lenet5"].deepcam_as_utilization > rows64["lenet5"].deepcam_ws_utilization

    # Increasing the CAM row count reduces DeepCAM cycles (paper: ResNet18
    # improves from 3.3x to 26.4x over Eyeriss when going 64 -> 512 rows).
    for network in rows64:
        assert rows512[network].deepcam_as_cycles <= rows64[network].deepcam_as_cycles
