"""Fig. 10 -- normalized energy per inference vs Eyeriss.

Regenerates the energy comparison of DeepCAM with variable hash lengths
against the homogeneous-256-bit DeepCAM baseline, the homogeneous-1024-bit
"Max DeepCAM" and Eyeriss, for both dataflows and 64/512 CAM rows.
"""

import pytest

from repro.api import ExperimentRunner
from repro.evaluation.reporting import format_table


def _run():
    return ExperimentRunner().run("fig10_energy", cam_rows_list=(64, 512)).raw


@pytest.mark.figure
def test_fig10_normalized_energy(benchmark):
    rows = benchmark(_run)

    table = [[r.network, r.cam_rows, r.dataflow, r.deepcam_baseline256_uj,
              r.deepcam_vhl_uj, r.deepcam_max1024_uj, r.eyeriss_uj,
              r.vhl_normalized, r.max_normalized, r.energy_reduction_vs_eyeriss]
             for r in rows]
    print()
    print(format_table(
        ["network", "rows", "dataflow", "base-256 (uJ)", "VHL (uJ)", "Max-1024 (uJ)",
         "Eyeriss (uJ)", "VHL norm.", "Max norm.", "Eyeriss/VHL"],
        table, title="Fig. 10: energy per inference, normalized to 256-bit DeepCAM"))

    for row in rows:
        # Ordering of the three hash policies: 256 <= VHL <= Max.
        assert row.deepcam_baseline256_uj <= row.deepcam_vhl_uj <= row.deepcam_max1024_uj
        # DeepCAM (VHL) is more energy-efficient than Eyeriss everywhere
        # (paper range: 1.78x - 109.4x).
        assert row.energy_reduction_vs_eyeriss > 1.0

    # The reduction factor spans a wide range across networks/configurations,
    # as in the paper.
    reductions = [r.energy_reduction_vs_eyeriss for r in rows]
    assert max(reductions) / min(reductions) > 3.0
