"""Microbenchmark -- bit-level CAM search throughput of the functional model.

Not a paper figure: measures how fast this repository's bit-accurate
DynamicCam model executes searches, which bounds how large a model the
hardware-path simulator (``use_cam_hardware=True``) can handle.
"""

import numpy as np
import pytest

from repro.cam.dynamic import DynamicCam, DynamicCamConfig


@pytest.fixture(scope="module")
def loaded_cam():
    rng = np.random.default_rng(0)
    cam = DynamicCam(DynamicCamConfig(rows=64))
    cam.configure_word_bits(1024)
    cam.write_rows(rng.integers(0, 2, size=(64, 1024)).astype(np.uint8))
    queries = rng.integers(0, 2, size=(16, 1024)).astype(np.uint8)
    return cam, queries


def test_cam_search_throughput(benchmark, loaded_cam):
    cam, queries = loaded_cam

    def run():
        distances, energy, latency = cam.search_batch(queries)
        return distances

    distances = benchmark(run)
    assert distances.shape == (16, 64)
    assert np.all((distances >= 0) & (distances <= 1024))


def test_cam_reconfiguration_cost(benchmark):
    def run():
        cam = DynamicCam(DynamicCamConfig(rows=64))
        for width in (256, 512, 768, 1024, 256):
            cam.configure_word_bits(width)
        return cam.reconfiguration_count

    count = benchmark(run)
    assert count == 4
