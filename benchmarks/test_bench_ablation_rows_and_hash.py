"""Ablation -- CAM row count and hash-length policy.

Sweeps the CAM row count (64..512) and the three hash-length policies
(homogeneous 256, variable, homogeneous 1024) for ResNet18, the workload the
paper uses to illustrate both effects (3.3x -> 26.4x speedup with more rows;
VHL energy between the 256-bit baseline and Max DeepCAM).
"""

import pytest

from repro.core.config import DeepCAMConfig
from repro.core.energy import energy_vs_hash_policy
from repro.core.mapping import sweep_rows
from repro.evaluation.experiments import default_vhl_profile
from repro.evaluation.reporting import format_table
from repro.workloads.specs import resnet18_trace


def _run():
    trace = resnet18_trace()
    config = DeepCAMConfig()
    vhl = default_vhl_profile(trace)
    row_sweep = sweep_rows(trace, config.with_hash_lengths(vhl),
                           row_counts=(64, 128, 256, 512))
    energy_by_rows = {rows: energy_vs_hash_policy(trace, config.with_rows(rows), vhl)
                      for rows in (64, 512)}
    return {
        "cycles": {rows: mapping.total_cycles for rows, mapping in row_sweep.items()},
        "searches": {rows: mapping.total_searches for rows, mapping in row_sweep.items()},
        "energy": energy_by_rows,
    }


@pytest.mark.figure
def test_ablation_rows_and_hash_policy(benchmark):
    results = benchmark(_run)

    cycle_rows = [[rows, results["cycles"][rows], results["searches"][rows]]
                  for rows in (64, 128, 256, 512)]
    print()
    print(format_table(["CAM rows", "cycles", "searches"], cycle_rows,
                       title="Ablation: ResNet18 cycles vs CAM row count (VHL)"))

    energy_rows = [[rows, policies["baseline_256"], policies["variable"], policies["max_1024"]]
                   for rows, policies in results["energy"].items()]
    print(format_table(["CAM rows", "256-bit (uJ)", "VHL (uJ)", "1024-bit (uJ)"],
                       energy_rows, title="Ablation: ResNet18 energy vs hash policy"))

    cycles = [results["cycles"][rows] for rows in (64, 128, 256, 512)]
    assert cycles == sorted(cycles, reverse=True)
    # Going 64 -> 512 rows buys a clear search-count reduction (the paper
    # reports an ~8x speedup improvement for ResNet18; our reduction is
    # smaller because late layers have too few activation contexts to fill
    # the larger CAM -- see EXPERIMENTS.md).
    assert results["searches"][64] / results["searches"][512] > 2.0
    for policies in results["energy"].values():
        assert policies["baseline_256"] <= policies["variable"] <= policies["max_1024"]
