"""Headline claims -- the abstract's speedup and energy-reduction ratios.

Paper: up to 523x faster than Eyeriss, up to 3498x faster than a Skylake
CPU, and 2.16x-109x lower energy than Eyeriss.  This benchmark computes the
same ratios from this repository's models and checks their directions; the
absolute factors are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.api import ExperimentRunner
from repro.evaluation.reporting import format_table


def _run():
    return ExperimentRunner().run("headline_claims", cam_rows=64).raw


@pytest.mark.figure
def test_headline_claims(benchmark):
    claims = benchmark(_run)

    paper = {
        "max_speedup_vs_eyeriss": 523.0,
        "max_speedup_vs_cpu": 3498.0,
        "lenet_speedup_vs_eyeriss": 523.5,
        "lenet_speedup_vs_cpu": 3498.0,
        "resnet18_speedup_vs_eyeriss": 3.3,
        "min_energy_reduction_vs_eyeriss": 2.16,
        "max_energy_reduction_vs_eyeriss": 109.4,
    }
    rows = [[key, value, paper.get(key, float("nan"))] for key, value in claims.items()]
    print()
    print(format_table(["claim", "measured", "paper"], rows,
                       title="Headline claims: measured vs paper"))

    # Directional checks: DeepCAM wins on every axis by a large margin.
    assert claims["max_speedup_vs_eyeriss"] > 10
    assert claims["max_speedup_vs_cpu"] > 10
    assert claims["min_energy_reduction_vs_eyeriss"] > 1.0
    # The CPU is the slowest platform, Eyeriss in between, DeepCAM fastest.
    assert claims["max_speedup_vs_cpu"] > claims["resnet18_speedup_vs_eyeriss"]
