"""Ablation -- dataflow choice (weight- vs activation-stationary vs auto).

DESIGN.md calls out the dataflow as a design choice worth ablating: the
paper argues for activation-stationary mapping, our cost model additionally
exposes a per-layer AUTO policy that picks whichever stationarity needs fewer
searches.
"""

import pytest

from repro.core.config import Dataflow, DeepCAMConfig
from repro.core.mapping import DeepCAMMapper
from repro.evaluation.reporting import format_table
from repro.workloads.specs import all_paper_networks


def _run():
    results = {}
    for trace in all_paper_networks():
        row = {}
        for dataflow in (Dataflow.WEIGHT_STATIONARY, Dataflow.ACTIVATION_STATIONARY,
                         Dataflow.AUTO):
            mapper = DeepCAMMapper(DeepCAMConfig(cam_rows=64, dataflow=dataflow))
            mapping = mapper.map_network(trace)
            row[dataflow.value] = {
                "cycles": mapping.total_cycles,
                "searches": mapping.total_searches,
                "utilization": mapping.mean_utilization,
            }
        results[trace.name] = row
    return results


@pytest.mark.figure
def test_ablation_dataflow(benchmark):
    results = benchmark(_run)

    rows = []
    for network, by_flow in results.items():
        for dataflow, metrics in by_flow.items():
            rows.append([network, dataflow, metrics["cycles"], metrics["searches"],
                         metrics["utilization"]])
    print()
    print(format_table(["network", "dataflow", "cycles", "searches", "utilization"],
                       rows, title="Ablation: dataflow choice (64 CAM rows)"))

    for network, by_flow in results.items():
        ws = by_flow["weight_stationary"]
        as_ = by_flow["activation_stationary"]
        auto = by_flow["auto"]
        # AUTO is never worse than either fixed policy in search count.
        assert auto["searches"] <= min(ws["searches"], as_["searches"])

    # The paper's worked example: for LeNet, activation-stationary needs far
    # fewer searches and much higher utilization than weight-stationary.
    lenet = results["lenet5"]
    assert lenet["activation_stationary"]["searches"] < lenet["weight_stationary"]["searches"]
    assert lenet["activation_stationary"]["utilization"] > lenet["weight_stationary"]["utilization"]
