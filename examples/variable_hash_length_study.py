"""Variable hash lengths: train a CNN and search per-layer hash lengths.

End-to-end walk through the paper's accuracy pipeline (Fig. 5 mechanism) on
the synthetic MNIST substitute:

1. train a LeNet5-class model with the NumPy substrate,
2. sweep *homogeneous* hash lengths to show that accuracy grows and
   saturates with k,
3. run the greedy per-layer variable-hash-length search and report the
   chosen profile, its accuracy, and the CAM energy it saves relative to a
   homogeneous 1024-bit deployment.

Runtime is a few minutes on a laptop CPU.  Usage::

    python examples/variable_hash_length_study.py [--samples 700] [--epochs 4]
"""

from __future__ import annotations

import argparse

from repro.core.config import DeepCAMConfig
from repro.core.energy import DeepCAMEnergyModel
from repro.core.hash_search import VariableHashLengthSearch, accuracy_vs_hash_length
from repro.datasets.loaders import SyntheticImageDataset
from repro.evaluation.reporting import format_table
from repro.nn.models.lenet import build_lenet5
from repro.nn.optim import Adam
from repro.nn.train import Trainer, evaluate_accuracy
from repro.workloads.specs import lenet5_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=700, help="training samples")
    parser.add_argument("--epochs", type=int, default=4, help="training epochs")
    parser.add_argument("--classes", type=int, default=6, help="number of classes")
    parser.add_argument("--eval-samples", type=int, default=140,
                        help="evaluation subset for the hash-length search")
    args = parser.parse_args()

    # 1. Train the software baseline.
    dataset = SyntheticImageDataset.mnist_like(num_samples=args.samples,
                                               num_classes=args.classes,
                                               difficulty=0.2, seed=0)
    model = build_lenet5(num_classes=dataset.num_classes, input_size=28,
                         width_multiplier=0.5, seed=0)
    trainer = Trainer(model, Adam(model, lr=2e-3), batch_size=64, seed=0)
    trainer.fit(dataset.train.images, dataset.train.labels, epochs=args.epochs,
                validation=(dataset.test.images, dataset.test.labels), verbose=True)

    images = dataset.test.images[: args.eval_samples]
    labels = dataset.test.labels[: args.eval_samples]
    baseline = evaluate_accuracy(model, images, labels)
    print(f"\nsoftware baseline accuracy (BL): {baseline:.3f}\n")

    # 2. Homogeneous hash-length sweep.
    sweep = accuracy_vs_hash_length(model, images, labels,
                                    hash_lengths=(256, 512, 768, 1024))
    print(format_table(["hash length k", "DeepCAM accuracy"],
                       [[k, acc] for k, acc in sweep.items()],
                       title="Accuracy vs homogeneous hash length"))
    print()

    # 3. Greedy per-layer search.
    search = VariableHashLengthSearch(config=DeepCAMConfig(cam_rows=64),
                                      tolerance=0.03, batch_size=70)
    result = search.search(model, images, labels, verbose=True)
    print()
    print(format_table(["layer", "selected hash length"],
                       sorted(result.layer_hash_lengths.items()),
                       title="Variable hash-length profile"))
    print(f"DeepCAM accuracy with VHL (DC): {result.deepcam_accuracy:.3f} "
          f"(all-1024: {result.max_hash_accuracy:.3f}, drop vs BL: "
          f"{result.accuracy_drop:.3f}, {result.evaluations} evaluations)\n")

    # 4. Energy saved by the profile (full-size LeNet5 trace, analytic model).
    trace = lenet5_trace()
    config = DeepCAMConfig(cam_rows=64)
    # Map the simulator's layer names (layer0..layer4) onto the trace order.
    vhl_profile = {layer.name: result.layer_hash_lengths[f"layer{index}"]
                   for index, layer in enumerate(trace)}
    vhl = DeepCAMEnergyModel(config.with_hash_lengths(vhl_profile)).network_energy(
        trace, hash_lengths=vhl_profile)
    maximum = DeepCAMEnergyModel(config.homogeneous(1024)).network_energy(trace)
    print(f"LeNet5 energy with VHL profile : {vhl.total_uj:.3f} uJ per inference")
    print(f"LeNet5 energy with 1024-bit    : {maximum.total_uj:.3f} uJ per inference")
    print(f"energy saved by VHL            : {(1 - vhl.total_uj / maximum.total_uj) * 100:.1f} %")


if __name__ == "__main__":
    main()
