"""Multi-tenancy demo: a flood tenant beside two well-behaved ones.

Runs in a couple of seconds:

1. a tenanted :class:`~repro.serve.server.MicroBatchServer` -- ``gold``
   (weight 3) and ``silver`` (weight 1) submit paced traffic while
   ``flood`` submits at 10x its token-bucket rate and gets shed;
2. the per-tenant books: admitted vs shed counts, client-side p99 per
   tenant (the flood barely moves its neighbours), bucket tokens;
3. bit-identity: every answer any tenant received matches direct
   execution on an independently built engine -- admission control and
   cache namespacing never change a single bit.

Usage::

    python examples/tenant_demo.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serve import (
    AdmissionError,
    MicroBatchServer,
    ServeConfig,
    TenantPolicy,
    TenantRegistry,
    build_demo_engine,
)

REQUESTS = 200          # per well-behaved tenant
WB_RATE = 200.0         # well-behaved pace, req/s
FLOOD_RATE = 20.0       # the flood tenant's token-bucket rate
FLOOD_FACTOR = 10.0     # flood submits at this multiple of its rate


def main() -> None:
    engine = build_demo_engine(classes=16, input_dim=128, hash_length=256,
                               seed=0)
    registry = TenantRegistry()
    registry.register("gold", TenantPolicy(weight=3.0))
    registry.register("silver", TenantPolicy(weight=1.0))
    registry.register("flood", TenantPolicy(
        weight=1.0, rate=FLOOD_RATE, burst=FLOOD_RATE, degradation="shed"))
    server = MicroBatchServer(engine, config=ServeConfig(max_batch=64,
                                                         max_wait_ms=2.0),
                              tenancy=registry)

    rng = np.random.default_rng(0)
    pool = rng.standard_normal((64, 128))

    lock = threading.Lock()
    latencies = {"gold": [], "silver": [], "flood": []}
    served = []          # (tenant, pool index, logits row)
    shed = {"gold": 0, "silver": 0, "flood": 0}
    stop = threading.Event()

    def pump(name: str, interval_s: float) -> None:
        tenant_rng = np.random.default_rng(hash(name) % (2 ** 31))
        count = 0
        while not stop.is_set() and (name == "flood" or count < REQUESTS):
            count += 1
            index = int(tenant_rng.zipf(1.3)) % len(pool)
            submitted_at = time.perf_counter()
            try:
                future = server.submit(pool[index], tenant=name)
            except AdmissionError:
                with lock:
                    shed[name] += 1
            else:
                def done(resolved, name=name, index=index,
                         submitted_at=submitted_at):
                    if resolved.exception() is None:
                        latency = (time.perf_counter() - submitted_at) * 1e3
                        with lock:
                            latencies[name].append(latency)
                            served.append((name, index, resolved.result()))
                future.add_done_callback(done)
            time.sleep(interval_s)

    print("== 1. gold + silver paced, flood at "
          f"{FLOOD_FACTOR:g}x its {FLOOD_RATE:g} req/s bucket ==")
    threads = [
        threading.Thread(target=pump, args=("gold", 1.0 / WB_RATE)),
        threading.Thread(target=pump, args=("silver", 1.0 / WB_RATE)),
        threading.Thread(target=pump,
                         args=("flood", 1.0 / (FLOOD_FACTOR * FLOOD_RATE))),
    ]
    server.start()
    try:
        for thread in threads[:2]:
            thread.start()
        threads[2].start()
        for thread in threads[:2]:
            thread.join()
        stop.set()
        threads[2].join()
    finally:
        server.stop(drain=True)

    print()
    print("== 2. the per-tenant books ==")
    books = server.stats()["tenants"]
    for name in ("gold", "silver", "flood"):
        values = latencies[name]
        p99 = float(np.percentile(values, 99.0)) if values else 0.0
        print(f"{name:>6}: admitted={books[name]['admitted']:4d} "
              f"shed={shed[name]:4d} completed={len(values):4d} "
              f"p99={p99:6.2f} ms")

    print()
    print("== 3. every served answer bit-identical to direct execution ==")
    reference_engine = build_demo_engine(classes=16, input_dim=128,
                                         hash_length=256, seed=0)
    reference = reference_engine.execute(reference_engine.prepare(pool))
    assert served, "nothing was served"
    assert all(np.array_equal(row, reference[index])
               for _, index, row in served), "served != direct execution"
    print(f"verified {len(served)} answers across 3 tenants: bit-identical")


if __name__ == "__main__":
    main()
