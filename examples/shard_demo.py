"""Sharding demo: plan -> sharded search -> serve integration, in four acts.

Runs in a few seconds:

1. a :class:`~repro.shard.plan.ShardPlan` partitions prototype rows across
   shards (contiguous vs strided placement);
2. a :class:`~repro.shard.engine.ShardedEngine` cluster answers
   bit-identically to the unsharded :class:`CamPipelineEngine` -- and keeps
   doing so through an online ``rebalance()`` and ``add_shard()``;
3. the cluster serves through the unchanged micro-batching server, with
   replica routing spreading batches and per-shard metrics flowing into
   the server's stats;
4. the capacity story: a row set bigger than one array, served by the
   resident cluster vs the single-engine alternative that must page row
   segments in and out every batch.

Usage::

    python examples/shard_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.serve import ServeClient, ServeConfig
from repro.serve.engine import CamPipelineEngine
from repro.shard import ShardPlan, ShardedEngine, TimeMultiplexedCamEngine


def main() -> None:
    rng = np.random.default_rng(0)

    print("== 1. The plan: where does each row live? ==")
    for policy in ("contiguous", "strided"):
        plan = ShardPlan.build(total_rows=16, num_shards=4, policy=policy)
        placement = [plan.shards[plan.shard_of(row)[0]].index
                     for row in range(16)]
        print(f"{policy:>10}: row -> shard {placement}")

    print()
    print("== 2. Sharded search is bit-identical to unsharded ==")
    prototypes = rng.standard_normal((64, 128))
    queries = rng.standard_normal((256, 128))
    reference = CamPipelineEngine(prototypes, hash_length=256, seed=1)
    expected = reference.execute(reference.prepare(queries))
    engine = ShardedEngine(prototypes, num_shards=4, num_replicas=2,
                           hash_length=256, seed=1)
    assert np.array_equal(engine.execute(engine.prepare(queries)), expected)
    print(f"4-shard cluster == single array over {queries.shape[0]} queries: True")
    engine.rebalance(num_shards=8, policy="strided")
    engine.add_shard()
    assert np.array_equal(engine.execute(engine.prepare(queries)), expected)
    print(f"still identical after rebalance to {engine.num_shards} strided "
          f"shards: True")

    print()
    print("== 3. Served through the unchanged micro-batching server ==")
    engine = ShardedEngine(prototypes, num_shards=4, num_replicas=2,
                           routing="least_loaded", hash_length=256, seed=1)
    config = ServeConfig(max_batch=32, max_wait_ms=2.0, num_workers=2)
    with ServeClient(engine, config=config) as client:
        served = client.infer_many(queries)
        assert np.array_equal(served, expected)
        stats = client.stats()
    shard0 = stats["shards"][0]
    router = stats["engine"]["shards"]["router"]
    print(f"responses bit-identical through the server: True")
    print(f"shard 0: {shard0['searches']} searches over "
          f"{shard0['queries']} queries; replica selections "
          f"{router['selections'][0]} (policy {router['policy']})")

    print()
    print("== 4. The capacity story: resident cluster vs paging ==")
    big = rng.standard_normal((1024, 64))
    load = rng.standard_normal((500, 64))
    cluster = ShardedEngine(big, num_shards=8, num_replicas=2,
                            hash_length=512, seed=2)
    paging = TimeMultiplexedCamEngine(big, capacity=128, hash_length=512,
                                      seed=2)

    def throughput(engine) -> float:
        with ServeClient(engine, config=ServeConfig(max_batch=16)) as client:
            start = time.perf_counter()
            client.infer_many(load)
            return load.shape[0] / (time.perf_counter() - start)

    cluster_rps = throughput(cluster)
    paging_rps = throughput(paging)
    print(f"1024 rows on 128-row arrays: resident 8-shard cluster "
          f"{cluster_rps:,.0f} req/s vs time-multiplexed single array "
          f"{paging_rps:,.0f} req/s ({cluster_rps / paging_rps:.1f}x, "
          f"{paging.cam.rewrites} segment rewrites paid)")


if __name__ == "__main__":
    main()
