"""Compare DeepCAM against Eyeriss, a Skylake CPU and analog PIM engines.

Regenerates, from the public API, the performance/energy story of the
paper's evaluation section for all four CNN workloads:

* cycles and CAM utilization for weight- and activation-stationary DeepCAM
  versus Eyeriss (SCALE-Sim-style 14x12 array) and a Skylake AVX-512 CPU
  (Fig. 9);
* energy per inference for the three hash-length policies versus Eyeriss
  (Fig. 10);
* the Table II comparison against the NeuroSim RRAM and Valavi SRAM analog
  PIM baselines on VGG11.

Usage::

    python examples/accelerator_comparison.py [--rows 64]
"""

from __future__ import annotations

import argparse

from repro.core.config import Dataflow, DeepCAMConfig
from repro.evaluation.experiments import (
    run_fig9_cycles,
    run_fig10_energy,
    run_table2_pim_comparison,
)
from repro.evaluation.reporting import format_table


def show_cycles(cam_rows: int) -> None:
    """Fig. 9-style cycles and utilization table."""
    rows = run_fig9_cycles(cam_rows=cam_rows)
    table = [[r.network, r.eyeriss_cycles, r.cpu_cycles, r.deepcam_ws_cycles,
              r.deepcam_as_cycles, f"{r.deepcam_as_utilization:.2f}",
              f"{r.speedup_vs_eyeriss_as:.1f}x", f"{r.speedup_vs_cpu_as:.1f}x"]
             for r in rows]
    print(format_table(
        ["network", "Eyeriss cyc", "CPU cyc", "DeepCAM WS", "DeepCAM AS",
         "AS util", "vs Eyeriss", "vs CPU"],
        table, title=f"Computation cycles per inference ({cam_rows} CAM rows)"))
    print()


def show_energy(cam_rows: int) -> None:
    """Fig. 10-style energy table (activation-stationary)."""
    rows = run_fig10_energy(cam_rows_list=(cam_rows,),
                            dataflows=(Dataflow.ACTIVATION_STATIONARY,))
    table = [[r.network, r.deepcam_baseline256_uj, r.deepcam_vhl_uj,
              r.deepcam_max1024_uj, r.eyeriss_uj,
              f"{r.energy_reduction_vs_eyeriss:.1f}x"] for r in rows]
    print(format_table(
        ["network", "256-bit (uJ)", "VHL (uJ)", "1024-bit (uJ)", "Eyeriss (uJ)",
         "reduction vs Eyeriss"],
        table, title=f"Energy per inference ({cam_rows} CAM rows, activation stationary)"))
    print()


def show_pim_comparison(cam_rows: int) -> None:
    """Table II-style analog PIM comparison."""
    rows = run_table2_pim_comparison(cam_rows=cam_rows)
    table = [[r.work, r.device, r.dot_product_mode, f"{r.energy_uj:.2f}",
              f"{r.cycles:.3g}"] for r in rows]
    print(format_table(["work", "device", "dot-product", "energy (uJ)", "cycles"],
                       table, title="VGG11/CIFAR10 vs prior PIM accelerators"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=64,
                        help="CAM row count (the paper sweeps 64..512)")
    args = parser.parse_args()
    show_cycles(args.rows)
    show_energy(args.rows)
    show_pim_comparison(args.rows)


if __name__ == "__main__":
    main()
