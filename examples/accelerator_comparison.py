"""Compare DeepCAM against Eyeriss, a Skylake CPU and analog PIM engines.

Regenerates, through the unified :mod:`repro.api` runtime, the
performance/energy story of the paper's evaluation section for all four CNN
workloads:

* cycles and CAM utilization for weight- and activation-stationary DeepCAM
  versus Eyeriss (SCALE-Sim-style 14x12 array) and a Skylake AVX-512 CPU
  (Fig. 9), via the registered ``fig9_cycles`` experiment;
* energy per inference for the three hash-length policies versus Eyeriss
  (Fig. 10), via the registered ``fig10_energy`` experiment;
* the Table II comparison against the NeuroSim RRAM and Valavi SRAM analog
  PIM baselines on VGG11, via ``table2_pim_comparison``;
* a per-backend :class:`CostReport` sweep straight off the backend registry.

Usage::

    python examples/accelerator_comparison.py [--rows 64] [--progress]
"""

from __future__ import annotations

import argparse

import repro.api as api
from repro.evaluation.reporting import format_table


def show_registry_sweep(cam_rows: int) -> None:
    """Every registered backend estimating every paper network."""
    print("Cost estimates straight from the backend registry")
    rows = []
    for trace in api.all_paper_networks():
        for name in api.list_backends():
            if name == "deepcam":
                backend = api.deepcam(rows=cam_rows)
            else:
                backend = api.get_backend(name)
            report = backend.estimate(trace)
            energy = ("-" if report.total_energy_uj is None
                      else f"{report.total_energy_uj:.3f}")
            util = ("-" if report.mean_utilization is None
                    else f"{report.mean_utilization:.2f}")
            rows.append([trace.name, name, report.total_cycles, energy, util])
    print(format_table(["network", "backend", "cycles", "energy (uJ)", "util"], rows))
    print()


def show_cycles(runner: api.ExperimentRunner, cam_rows: int) -> None:
    """Fig. 9-style cycles and utilization table."""
    result = runner.run("fig9_cycles", cam_rows=cam_rows)
    table = [[r["network"], r["eyeriss_cycles"], r["cpu_cycles"], r["deepcam_ws_cycles"],
              r["deepcam_as_cycles"], f"{r['deepcam_as_utilization']:.2f}",
              f"{r['speedup_vs_eyeriss_as']:.1f}x", f"{r['speedup_vs_cpu_as']:.1f}x"]
             for r in result.rows]
    print(format_table(
        ["network", "Eyeriss cyc", "CPU cyc", "DeepCAM WS", "DeepCAM AS",
         "AS util", "vs Eyeriss", "vs CPU"],
        table, title=f"Computation cycles per inference ({cam_rows} CAM rows)"))
    print()


def show_energy(runner: api.ExperimentRunner, cam_rows: int) -> None:
    """Fig. 10-style energy table (activation-stationary)."""
    result = runner.run("fig10_energy", cam_rows_list=(cam_rows,),
                        dataflows=(api.Dataflow.ACTIVATION_STATIONARY,))
    table = [[r["network"], r["deepcam_baseline256_uj"], r["deepcam_vhl_uj"],
              r["deepcam_max1024_uj"], r["eyeriss_uj"],
              f"{r['energy_reduction_vs_eyeriss']:.1f}x"] for r in result.rows]
    print(format_table(
        ["network", "256-bit (uJ)", "VHL (uJ)", "1024-bit (uJ)", "Eyeriss (uJ)",
         "reduction vs Eyeriss"],
        table, title=f"Energy per inference ({cam_rows} CAM rows, activation stationary)"))
    print()


def show_pim_comparison(runner: api.ExperimentRunner, cam_rows: int) -> None:
    """Table II-style analog PIM comparison."""
    result = runner.run("table2_pim_comparison", cam_rows=cam_rows)
    table = [[r["work"], r["device"], r["dot_product_mode"], f"{r['energy_uj']:.2f}",
              f"{r['cycles']:.3g}"] for r in result.rows]
    print(format_table(["work", "device", "dot-product", "energy (uJ)", "cycles"],
                       table, title="VGG11/CIFAR10 vs prior PIM accelerators"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=64,
                        help="CAM row count (the paper sweeps 64..512)")
    parser.add_argument("--progress", action="store_true",
                        help="print experiment progress events")
    args = parser.parse_args()

    observers = [api.PrintProgressObserver()] if args.progress else []
    runner = api.ExperimentRunner(observers)

    show_registry_sweep(args.rows)
    show_cycles(runner, args.rows)
    show_energy(runner, args.rows)
    show_pim_comparison(runner, args.rows)


if __name__ == "__main__":
    main()
