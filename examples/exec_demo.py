"""Execution-plane demo: one search, three engines, in four acts.

Runs in a few seconds:

1. the engine matrix: the same sharded search on ``inline``, ``threads``
   and ``processes`` -- bit-identical counts, because the plane only ever
   fans out pure XOR+popcount work;
2. selection precedence: the ``executor=`` argument, the
   ``REPRO_EXECUTOR`` environment variable, and the kernel-level hook on
   :func:`~repro.bitops.packed_hamming_matrix`;
3. crash containment: a worker SIGKILLed mid-search surfaces as a typed
   :class:`~repro.exec.WorkerCrashError` on the raw pool, while the
   default :class:`~repro.exec.FallbackExecutor` wiring replays the batch
   inline and the caller never notices;
4. lifecycle: lazy pool spawn, copy-on-write storage republish across a
   rebalance, and a clean ``close()`` that unlinks every SharedMemory
   segment.

Usage::

    python examples/exec_demo.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bitops import pack_bits, packed_hamming_matrix
from repro.exec import (
    EXECUTOR_ENV,
    EXECUTOR_NAMES,
    CrashInjector,
    ProcessExecutor,
    WorkerCrashError,
    resolve_executor,
)
from repro.shard import ShardedCamPipeline


def shm_segments() -> list[str]:
    """Live execution-plane SharedMemory segments on this host."""
    try:
        return [name for name in os.listdir("/dev/shm")
                if name.startswith("repro_exec_")]
    except FileNotFoundError:  # non-Linux: nothing to observe
        return []


def main() -> None:
    rng = np.random.default_rng(0)
    rows, word_bits = 512, 256
    bits = rng.integers(0, 2, size=(rows, word_bits), dtype=np.uint8)
    queries = rng.integers(0, 2, size=(16, word_bits), dtype=np.uint8)

    print("== 1. Three engines, one answer ==")
    reference = None
    for name in EXECUTOR_NAMES:
        pipeline = ShardedCamPipeline(total_rows=rows, word_bits=word_bits,
                                      num_shards=4, executor=name,
                                      num_workers=2)
        pipeline.write_rows(bits)
        counts, energy, _ = pipeline.search_batch(queries)
        pipeline.close()
        if reference is None:
            reference = counts
        identical = np.array_equal(counts, reference)
        print(f"{name:>10}: counts identical to inline = {identical}, "
              f"energy = {energy:.1f} pJ")

    print()
    print("== 2. Picking the engine ==")
    packed_q = pack_bits(queries)
    packed_r = pack_bits(bits)
    serial = packed_hamming_matrix(packed_q, packed_r)
    via_arg = packed_hamming_matrix(packed_q, packed_r, executor="processes")
    os.environ[EXECUTOR_ENV] = "processes"
    via_env = packed_hamming_matrix(packed_q, packed_r)
    del os.environ[EXECUTOR_ENV]
    print(f"kernel via executor='processes' == serial: "
          f"{np.array_equal(via_arg, serial)}")
    print(f"kernel via {EXECUTOR_ENV}=processes   == serial: "
          f"{np.array_equal(via_env, serial)}")
    print("precedence: executor= argument > REPRO_EXECUTOR > defaults")

    print()
    print("== 3. Crash containment ==")
    injector = CrashInjector()
    raw = ProcessExecutor(workers=2, crash_injector=injector)
    injector.arm(1)
    try:
        raw.hamming_blocked(packed_q, packed_r)
    except WorkerCrashError as error:
        print(f"raw pool: WorkerCrashError surfaced ({error})")
    raw.close()

    guarded = resolve_executor("processes", workers=2)  # FallbackExecutor
    guarded.primary.crash_injector = injector
    injector.arm(1)
    replayed = guarded.hamming_blocked(packed_q, packed_r)
    stats = guarded.stats()
    print(f"guarded pool: batch replayed inline, identical = "
          f"{np.array_equal(replayed, serial)} "
          f"(crashes={stats['worker_crashes']}, "
          f"fallback_batches={stats['fallback_batches']})")
    guarded.close()

    print()
    print("== 4. Lifecycle: publish once, republish on write, clean close ==")
    pipeline = ShardedCamPipeline(total_rows=rows, word_bits=word_bits,
                                  num_shards=4, executor="processes",
                                  num_workers=2)
    pipeline.write_rows(bits)
    pipeline.search_batch(queries)
    serving = len(shm_segments())
    print(f"published segments while serving: {serving}")
    pipeline.rebalance(num_shards=6)
    pipeline.write_rows(bits[:32], start_row=0)    # copy-on-write republish
    pipeline.search_batch(queries)
    print(f"executor stats: {pipeline.stats()['executor_stats']}")
    pipeline.close()
    print(f"segments after close(): {len(shm_segments())} "
          f"(was {serving} while serving)")


if __name__ == "__main__":
    main()
