"""Networking demo: a 2-shard cluster over sockets, surviving a node loss.

Runs in a few seconds, in four acts:

1. a :class:`~repro.net.cluster.LocalShardCluster` provisions 2 shards x
   2 replicas of shard-plane HTTP servers on loopback ports, and a
   :class:`~repro.net.remote.RemoteShardedEngine` scatter-gathers over
   them -- bit-identically to the in-process demo engine;
2. a serve-plane :class:`~repro.net.server.NetServer` fronts the remote
   engine and a :class:`~repro.net.client.NetClient` (and its awaitable
   twin) speak the wire protocol to it;
3. one shard replica is killed outright; the next search fails over to
   the surviving replica, the lost one is re-replicated onto a freshly
   spawned server, and the answers never change;
4. the client SDK's retry layer rides out injected connection drops
   (:class:`~repro.net.transport.FlakyTransport` under the retry loop)
   without surfacing a single failure.

Usage::

    python examples/net_demo.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.net import (
    AsyncNetClient,
    FlakyConfig,
    FlakyTransport,
    HttpTransport,
    LocalShardCluster,
    NetClient,
    NetServer,
    build_demo_remote_engine,
)
from repro.serve import ServeClient, build_demo_engine, demo_queries

GEOMETRY = dict(classes=16, input_dim=128, hash_length=256)


def main() -> None:
    with ServeClient(build_demo_engine(**GEOMETRY)) as oracle:
        queries = demo_queries(oracle.server.engine, 32)
        expected = oracle.infer_many(queries)
        expected_topk = oracle.topk_many(queries, 4)

        print("== 1. A shard cluster behind loopback sockets ==")
        with LocalShardCluster(total_rows=GEOMETRY["classes"],
                               word_bits=GEOMETRY["hash_length"],
                               num_shards=2, num_replicas=2) as cluster:
            for shard, replicas in enumerate(cluster.endpoints):
                print(f"shard {shard}: {replicas}")
            engine = build_demo_remote_engine(
                cluster.endpoints,
                replacement_factory=cluster.spawn_replacement, **GEOMETRY)
            remote = engine.execute(engine.prepare(queries))
            print(f"remote scatter-gather == in-process engine over "
                  f"{queries.shape[0]} queries: "
                  f"{np.array_equal(remote, expected)}")

            print()
            print("== 2. Served over the wire protocol ==")
            with NetServer(engine=engine) as front:
                print(f"serve plane at {front.base_url}")
                with NetClient(front.base_url) as client:
                    print(f"healthz: {client.healthz()}")
                    served = client.infer_many(queries)
                    indices, distances = client.topk_many(queries, 4)
                    print(f"HTTP classify bit-identical: "
                          f"{np.array_equal(served, expected)}")
                    print(f"HTTP top-k bit-identical: "
                          f"{np.array_equal(indices, expected_topk[0])}")

                    async def async_roundtrip() -> np.ndarray:
                        async with AsyncNetClient(front.base_url) as aclient:
                            return await aclient.infer_many(queries)

                    async_served = asyncio.run(async_roundtrip())
                    print(f"async client bit-identical: "
                          f"{np.array_equal(async_served, expected)}")

                    print()
                    print("== 3. Kill a replica mid-run ==")
                    cluster.kill(0, 0)
                    print("shard 0 replica 0 is gone (port unbound, "
                          "connections severed)")
                    # Several *fresh* batches: repeats would be served
                    # from the batching layer's cache without ever
                    # dialing the cluster, and round-robin needs a few
                    # searches to land on the dead slot.
                    rng = np.random.default_rng(1)
                    unchanged = True
                    for _ in range(4):
                        fresh = rng.standard_normal(
                            (8, GEOMETRY["input_dim"]))
                        unchanged &= np.array_equal(
                            client.infer_many(fresh),
                            oracle.infer_many(fresh))
                    net = engine.cam.stats()["net"]
                    print(f"answers unchanged through the loss: {unchanged}")
                    print(f"failovers: {net['failovers']}, "
                          f"re-replications: {net['re_replications']}, "
                          f"dead replicas now: {net['dead_replicas']}")
                    print(f"repaired endpoint grid: {net['endpoints'][0]}")

                print()
                print("== 4. Retries ride out a flaky network ==")
                flaky: list[FlakyTransport] = []

                def flaky_factory(base_url: str) -> FlakyTransport:
                    transport = FlakyTransport(
                        HttpTransport(base_url),
                        FlakyConfig(drop_rate=0.25), seed=7)
                    flaky.append(transport)
                    return transport

                with NetClient(transport=flaky_factory(front.base_url),
                               seed=0) as lossy:
                    # One request per sample: plenty of attempts for the
                    # seeded drop rate to bite.
                    rows = np.stack([lossy.infer(query) for query in queries])
                    stats = lossy.stats()
                    print(f"25% of attempts dropped, every request served: "
                          f"{np.array_equal(rows, expected)}")
                    print(f"attempts: {stats['injected']['attempts']}, "
                          f"dropped: {stats['injected']['dropped']}, "
                          f"retries: {stats['retry']['retries']}, "
                          f"failures surfaced: 0")


if __name__ == "__main__":
    main()
