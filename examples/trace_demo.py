"""Observability demo: trace a sharded serving run, rebuild its run trees.

Runs in a couple of seconds, in three acts:

1. a traced :class:`~repro.serve.server.MicroBatchServer` over a 2-shard
   demo cluster serves a small burst of requests, every span exported to
   an in-memory sink (and a JSONL file ``scripts/trace_report.py`` can
   read back);
2. the exported spans reassemble into one run tree per request -- each
   naming the *exact micro-batch* the request rode in, with the batch's
   ``prepare``/``cache_lookup``/``execute``/``fanout``/``shard_search``/
   ``gather``/``digitise``/``cache_write`` stages grafted under it --
   verified complete, then rendered;
3. the per-stage latency attribution table aggregates where the time
   went across all requests, and the tracer's counter snapshot shows
   what the export pipeline did (offered/exported/dropped).

Usage::

    python examples/trace_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.obs import (
    InMemoryExporter,
    JsonlExporter,
    Tracer,
    build_run_trees,
    load_spans,
    render_stage_table,
    render_tree,
    stage_table,
    verify_run_trees,
)
from repro.serve import MicroBatchServer, ServeConfig
from repro.shard import build_demo_sharded_engine

GEOMETRY = dict(classes=64, input_dim=64, hash_length=256)
REQUESTS = 48


def main() -> None:
    jsonl_path = Path(tempfile.mkstemp(suffix=".jsonl")[1])

    # -- act 1: a traced serving run ------------------------------------------
    sink = InMemoryExporter()
    tracer = Tracer(exporters=[sink, JsonlExporter(str(jsonl_path))])
    engine = build_demo_sharded_engine(num_shards=2, seed=0, **GEOMETRY)
    rng = np.random.default_rng(0)
    queries = rng.standard_normal((REQUESTS, GEOMETRY["input_dim"]))
    config = ServeConfig(max_batch=16, max_wait_ms=2.0,
                         cache_capacity=REQUESTS)
    print(f"act 1: serving {REQUESTS} requests through a traced "
          f"2-shard micro-batch server")
    with MicroBatchServer(engine, config=config, tracer=tracer) as server:
        futures = [server.submit(query) for query in queries]
        for future in futures:
            future.result(timeout=60.0)
    tracer.shutdown()  # flush the export pipeline
    print(f"  exported {len(sink.spans())} spans "
          f"(also written to {jsonl_path})")

    # -- act 2: run trees ------------------------------------------------------
    trees = build_run_trees(sink.spans())
    ok, problems = verify_run_trees(trees, expected_requests=REQUESTS)
    print(f"\nact 2: reconstructed {len(trees)} run trees, "
          f"verification {'OK' if ok else 'FAILED'}")
    for problem in problems:
        print(f"  problem: {problem}")
    print("\none request's full lifecycle (its micro-batch grafted in):\n")
    print(render_tree(trees[0]))

    # -- act 3: attribution + counters ----------------------------------------
    print("\nact 3: per-stage latency attribution across all requests:\n")
    print(render_stage_table(stage_table(trees)))
    snapshot = tracer.snapshot()
    print(f"\ntracer counters: started={snapshot['spans_started']} "
          f"ended={snapshot['spans_ended']} "
          f"exported={snapshot['export_exported']} "
          f"dropped={snapshot['export_dropped']}")

    # The JSONL file round-trips: scripts/trace_report.py does this offline.
    reloaded = build_run_trees(load_spans(str(jsonl_path)))
    assert len(reloaded) == len(trees)
    print(f"\nJSONL round-trip: {len(reloaded)} trees rebuilt from "
          f"{jsonl_path.name} (try: python scripts/trace_report.py "
          f"{jsonl_path} --expect {REQUESTS})")
    jsonl_path.unlink()


if __name__ == "__main__":
    main()
