"""Design-space exploration of the CAM hardware itself.

Explores the hardware knobs the DeepCAM architecture exposes, using only the
CAM substrate (no CNN required):

* FeFET vs CMOS cell technology (search energy and area, Fig. 8 / Sec. II-A),
* the row x word-width overhead sweep (Fig. 8),
* the dynamic CAM's chunked reconfiguration and its effect on per-search
  energy,
* the sense amplifier's Hamming-distance resolution limit versus sampling
  clock.

Usage::

    python examples/cam_hardware_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.cam.cell import CMOS_TCAM_CELL, FEFET_CAM_CELL
from repro.cam.dynamic import DynamicCam, DynamicCamConfig
from repro.cam.energy_model import CamEnergyModel, compare_technologies
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp
from repro.evaluation.reporting import format_table


def technology_comparison() -> None:
    """FeFET vs CMOS at the cell and macro level."""
    print("== Cell technology comparison ==")
    rows = [
        ["CMOS 16T TCAM", CMOS_TCAM_CELL.transistors, CMOS_TCAM_CELL.area_um2,
         CMOS_TCAM_CELL.search_energy_fj],
        ["FeFET 2T", FEFET_CAM_CELL.transistors, FEFET_CAM_CELL.area_um2,
         FEFET_CAM_CELL.search_energy_fj],
    ]
    print(format_table(["cell", "transistors", "area (um2)", "search energy (fJ)"], rows))
    macro = compare_technologies(rows=64, word_bits=256)
    ratio_e = macro["cmos"].search_energy_pj / macro["fefet"].search_energy_pj
    ratio_a = macro["cmos"].area_um2 / macro["fefet"].area_um2
    print(f"64x256 macro: FeFET is {ratio_e:.2f}x lower search energy and "
          f"{ratio_a:.2f}x smaller than CMOS\n")


def overhead_sweep() -> None:
    """Fig. 8-style sweep of the FeFET CAM macro."""
    print("== CAM overhead sweep (FeFET) ==")
    model = CamEnergyModel()
    rows = [[r.rows, r.word_bits, r.search_energy_pj, r.area_um2 / 1e3, r.search_delay_ns]
            for r in model.sweep()]
    print(format_table(["rows", "word bits", "search energy (pJ)",
                        "area (10^3 um2)", "delay (ns)"], rows))
    print()


def dynamic_reconfiguration() -> None:
    """Per-search energy at each active word width of the dynamic CAM."""
    print("== Dynamic CAM reconfiguration ==")
    rng = np.random.default_rng(0)
    rows = []
    for width in (256, 512, 768, 1024):
        cam = DynamicCam(DynamicCamConfig(rows=64))
        cam.configure_word_bits(width)
        cam.write_rows(rng.integers(0, 2, size=(64, width)).astype(np.uint8))
        result = cam.search(rng.integers(0, 2, size=width).astype(np.uint8))
        rows.append([width, cam.active_chunks, result.energy_pj])
    print(format_table(["word bits", "active chunks", "search energy (pJ)"], rows))
    print("Disabled chunks are isolated by the transmission gates, so the per-search\n"
          "energy scales with the configured hash length -- the mechanism that makes\n"
          "variable hash lengths save energy.\n")


def sense_amp_resolution() -> None:
    """Hamming-distance resolution of the clocked self-referenced sense amp."""
    print("== Sense amplifier resolution vs sampling clock ==")
    rows = []
    for ghz in (1.0, 2.0, 4.0, 8.0):
        amp = ClockedSelfReferencedSenseAmp(word_bits=1024, sampling_frequency_ghz=ghz)
        rows.append([ghz, amp.resolution_limit()])
    print(format_table(["sampling clock (GHz)", "resolvable mismatches"], rows))
    print("Large Hamming distances discharge the match line too quickly to tell apart;\n"
          "DeepCAM tolerates this because near-orthogonal vectors contribute dot-products\n"
          "near zero anyway.")


if __name__ == "__main__":
    technology_comparison()
    overhead_sweep()
    dynamic_reconfiguration()
    sense_amp_resolution()
