"""Retrieval demo: k-NN over a synthetic corpus, native top-k at every layer.

Runs in a few seconds:

1. a :class:`~repro.retrieval.RetrievalIndex` hashes a synthetic corpus
   into a 4-shard CAM cluster and answers k-NN queries through the top-k
   partial gather -- with the gather-traffic accounting that motivates it;
2. the partial gather is bit-identical to gathering every row and sorting
   (the pre-retrieval way), and faster;
3. the same top-k requests travel through the micro-batching server
   (:meth:`ServeClient.topk_many` -> ``TopKRequest`` -> grouped batches ->
   the sharded cluster), bit-identical to direct execution.

Usage::

    python examples/retrieval_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.retrieval import RetrievalIndex, topk_via_full_search
from repro.serve import ServeClient, ServeConfig
from repro.shard import ShardedEngine

CORPUS_SIZE = 4096
DIM = 64
K = 8


def main() -> None:
    rng = np.random.default_rng(0)
    corpus = rng.standard_normal((CORPUS_SIZE, DIM))

    print("== 1. Index a corpus, ask for nearest neighbours ==")
    index = RetrievalIndex(input_dim=DIM, capacity=CORPUS_SIZE,
                           hash_length=256, num_shards=4)
    index.add(corpus)
    # Queries near known corpus vectors, so the neighbours are meaningful.
    targets = rng.integers(0, CORPUS_SIZE, size=6)
    queries = corpus[targets] + 0.05 * rng.standard_normal((6, DIM))
    hits = index.search(queries, k=K)
    recovered = int(np.sum(hits.indices[:, 0] == targets))
    print(f"indexed {len(index)} vectors across "
          f"{index.pipeline.num_shards} shards")
    print(f"nearest neighbour recovers the perturbed source vector for "
          f"{recovered}/6 queries")
    print(f"top-{K} row ids for query 0: {hits.indices[0].tolist()}")
    print(f"gather traffic: {hits.gathered_values} values "
          f"(full gather would move {6 * CORPUS_SIZE})")

    print()
    print("== 2. Partial gather == full-gather-then-sort, only faster ==")
    packed = index.hasher.hash_batch_packed(queries)
    full_indices, full_distances = topk_via_full_search(index.pipeline,
                                                        packed, K)
    assert np.array_equal(hits.indices, full_indices)
    assert np.array_equal(hits.distances, full_distances)
    batch = index.hasher.hash_batch_packed(
        rng.standard_normal((64, DIM)))
    start = time.perf_counter()
    index.pipeline.topk_packed(batch, K)
    partial_s = time.perf_counter() - start
    start = time.perf_counter()
    topk_via_full_search(index.pipeline, batch, K)
    full_s = time.perf_counter() - start
    print(f"bit-identical: True; 64-query batch: partial "
          f"{partial_s * 1e3:.1f} ms vs full-sort {full_s * 1e3:.1f} ms "
          f"({full_s / partial_s:.1f}x)")

    print()
    print("== 3. Top-k through the micro-batching server ==")
    prototypes = rng.standard_normal((256, DIM))
    engine = ShardedEngine(prototypes, num_shards=4, num_replicas=2,
                           hash_length=256, seed=7)
    lookups = rng.standard_normal((200, DIM))
    expected = engine.cam.topk_packed(
        engine.prepare(lookups).packed_words, K)
    with ServeClient(engine, config=ServeConfig(max_batch=32)) as client:
        indices, distances = client.topk_many(lookups, k=K)
        stats = client.stats()
    assert np.array_equal(indices, expected.indices)
    assert np.array_equal(distances, expected.distances)
    print(f"served {len(lookups)} TopKRequests in "
          f"{stats['batches']['count']} micro-batches, "
          f"bit-identical to direct execution: True")
    print(f"per-shard searches: "
          f"{ {s: e['searches'] for s, e in stats['shards'].items()} }")


if __name__ == "__main__":
    main()
