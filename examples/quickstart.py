"""Quickstart: the approximate geometric dot-product and a first accelerator map.

Runs in a few seconds and touches the three layers of the library:

1. the approximate dot-product primitive (paper Eq. 4) on the paper's own
   worked example,
2. the bit-level dynamic CAM computing Hamming distances for a small batch,
3. the analytical mapper/energy model for LeNet5 on a 64-row DeepCAM.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.cam.dynamic import DynamicCam, DynamicCamConfig
from repro.core.config import DeepCAMConfig
from repro.core.energy import DeepCAMEnergyModel
from repro.core.geometric import ApproximateDotProduct, algebraic_dot
from repro.core.hashing import RandomProjectionHasher
from repro.core.mapping import DeepCAMMapper
from repro.evaluation.reporting import format_table
from repro.workloads.specs import lenet5_trace


def demo_dot_product() -> None:
    """Approximate vs algebraic dot-product on the paper's example vectors."""
    x = np.array([0.6012, 0.8383, 0.6859, 0.5712])
    y = np.array([0.9044, 0.5352, 0.8110, 0.9243])
    print("== Approximate geometric dot-product (paper Sec. II-B example) ==")
    print(f"algebraic dot-product: {algebraic_dot(x, y):.4f}")
    rows = []
    for hash_length in (64, 256, 1024, 4096):
        engine = ApproximateDotProduct(input_dim=4, hash_length=hash_length, seed=0,
                                       use_exact_cosine=True)
        result = engine.compute(x, y)
        rows.append([hash_length, result.value, result.hamming_distance,
                     np.degrees(result.theta)])
    print(format_table(["hash length", "approx value", "hamming distance", "angle (deg)"],
                       rows))
    print()


def demo_cam() -> None:
    """Hamming distances measured by the bit-level dynamic CAM."""
    print("== Dynamic CAM search (64 rows, 256-bit words) ==")
    rng = np.random.default_rng(0)
    hasher = RandomProjectionHasher(input_dim=27, hash_length=256, seed=0)
    weights = rng.normal(size=(6, 27))       # six 3x3x3 kernels
    patch = rng.normal(size=27)               # one activation patch

    cam = DynamicCam(DynamicCamConfig(rows=64))
    cam.configure_for_hash_length(256)
    cam.write_rows(hasher.hash_batch(weights))
    result = cam.search(hasher.hash(patch))
    print(f"per-kernel Hamming distances: {result.distances[:6].tolist()}")
    print(f"search energy: {result.energy_pj:.2f} pJ, latency: {result.latency_cycles} cycles")
    print()


def demo_mapping_and_energy() -> None:
    """Analytical cycles/energy of LeNet5 on a 64-row DeepCAM."""
    print("== LeNet5 on DeepCAM (64 rows, activation-stationary) ==")
    config = DeepCAMConfig(cam_rows=64)
    trace = lenet5_trace()
    mapping = DeepCAMMapper(config).map_network(trace)
    energy = DeepCAMEnergyModel(config).network_energy(trace)

    rows = [[m.layer.name, m.searches, m.fills, m.cycles, f"{m.utilization:.2f}"]
            for m in mapping.layers]
    print(format_table(["layer", "searches", "fills", "cycles", "utilization"], rows))
    print(f"total cycles: {mapping.total_cycles}  "
          f"(latency {mapping.latency_s * 1e6:.2f} us at 300 MHz)")
    print(f"total energy: {energy.total_uj:.3f} uJ per inference")


if __name__ == "__main__":
    demo_dot_product()
    demo_cam()
    demo_mapping_and_energy()
