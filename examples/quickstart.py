"""Quickstart: the unified ``repro.api`` runtime in four short demos.

Runs in a few seconds and touches every layer of the public API:

1. the approximate dot-product primitive (paper Eq. 4) on the paper's own
   worked example,
2. a configured DeepCAM backend from the fluent builder, estimating
   cycles/energy for LeNet5 as a typed :class:`CostReport`,
3. the backend registry: the same trace estimated on every registered
   accelerator through one loop,
4. a registered paper experiment executed by the ``ExperimentRunner`` with
   a progress observer, and its JSON round-trip.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import json

import numpy as np

import repro.api as api
from repro.core.geometric import ApproximateDotProduct, algebraic_dot
from repro.evaluation.reporting import format_table


def demo_dot_product() -> None:
    """Approximate vs algebraic dot-product on the paper's example vectors."""
    x = np.array([0.6012, 0.8383, 0.6859, 0.5712])
    y = np.array([0.9044, 0.5352, 0.8110, 0.9243])
    print("== Approximate geometric dot-product (paper Sec. II-B example) ==")
    print(f"algebraic dot-product: {algebraic_dot(x, y):.4f}")
    rows = []
    for hash_length in (64, 256, 1024, 4096):
        engine = ApproximateDotProduct(input_dim=4, hash_length=hash_length, seed=0,
                                       use_exact_cosine=True)
        result = engine.compute(x, y)
        rows.append([hash_length, result.value, result.hamming_distance,
                     np.degrees(result.theta)])
    print(format_table(["hash length", "approx value", "hamming distance", "angle (deg)"],
                       rows))
    print()


def demo_backend() -> None:
    """A configured DeepCAM backend estimating LeNet5, as a typed report."""
    print("== DeepCAM backend from the fluent builder ==")
    backend = api.deepcam(rows=64, dataflow="activation_stationary", seed=0)
    report = backend.estimate(api.network_by_name("lenet5"))
    print(f"backend={report.backend} network={report.network}")
    print(f"total cycles: {report.total_cycles}  "
          f"(latency {report.latency_s(300e6) * 1e6:.2f} us at 300 MHz)")
    print(f"total energy: {report.total_energy_uj:.3f} uJ per inference "
          f"(utilization {report.mean_utilization:.2f})")
    print()


def demo_registry() -> None:
    """One loop over the backend registry: every accelerator, one contract."""
    print("== Backend registry: LeNet5 on every registered accelerator ==")
    trace = api.network_by_name("lenet5")
    rows = []
    for name in api.list_backends():
        report = api.get_backend(name).estimate(trace)
        energy = ("-" if report.total_energy_uj is None
                  else f"{report.total_energy_uj:.3f}")
        rows.append([name, report.total_cycles, energy])
    print(format_table(["backend", "cycles", "energy (uJ)"], rows))
    print()


def demo_experiment() -> None:
    """Run a registered paper experiment with observer hooks + JSON round-trip."""
    print("== Registered experiment via ExperimentRunner ==")
    runner = api.ExperimentRunner([api.PrintProgressObserver()])
    result = runner.run("fig9_cycles", networks=("lenet5", "vgg11"))
    rows = [[r["network"], r["eyeriss_cycles"], r["cpu_cycles"], r["deepcam_as_cycles"],
             f"{r['speedup_vs_eyeriss_as']:.1f}x"] for r in result.rows]
    print(format_table(["network", "Eyeriss", "CPU", "DeepCAM AS", "vs Eyeriss"], rows))

    round_trip = api.ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
    print(f"JSON round-trip ok: {round_trip.rows == result.rows}")
    print(f"registered experiments: {', '.join(api.list_experiments())}")


if __name__ == "__main__":
    demo_dot_product()
    demo_backend()
    demo_registry()
    demo_experiment()
