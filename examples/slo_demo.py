"""Metrics & SLO demo: instruments, exemplars, tail sampling, burn rates.

Runs in a couple of seconds, in four acts:

1. a :class:`~repro.serve.server.MicroBatchServer` serves a burst of
   requests at **1% head sampling** with a
   :class:`~repro.obs.tail.TailSampler` attached -- the head exporter
   sees almost nothing, the tail keeps every trace slower than its
   rolling p90 (whole, including the micro-batch the request rode in);
2. the serve plane's typed instruments are read back: the request
   latency :class:`~repro.obs.metrics.Histogram` names the trace riding
   its p99 bucket (a **trace exemplar**), and that trace reconstructs
   into a run tree via :mod:`repro.obs.report`;
3. two :class:`~repro.obs.slo.SloSpec` objectives -- one absurdly tight,
   one loose -- are evaluated with multi-window **burn-rate** math over
   the same traffic: the tight one breaches, the loose one passes;
4. the OpenMetrics text exposition is rendered -- histogram buckets
   carry their ``# {trace_id=...}`` exemplars, ready for any
   OpenMetrics-speaking scraper.

Usage::

    python examples/slo_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.obs import (
    InMemoryExporter,
    SloEngine,
    SloSpec,
    TailSampler,
    Tracer,
    build_run_trees,
    render_openmetrics,
    render_tree,
)
from repro.serve import MicroBatchServer, ServeConfig, build_demo_engine

REQUESTS = 200
GEOMETRY = dict(classes=256, input_dim=64, hash_length=512)


def main() -> None:
    # -- act 1: serve at 1% head sampling with a tail sampler ---------------------
    head_sink = InMemoryExporter()
    tail_sink = InMemoryExporter()
    tail = TailSampler([tail_sink], keep_slow_quantile=0.9,
                       flush_interval_s=0.01)
    tracer = Tracer(exporters=[head_sink], sample_rate=0.01,
                    tail_sampler=tail, flush_interval_s=0.01)

    engine = build_demo_engine(seed=0, **GEOMETRY)
    config = ServeConfig(max_batch=16, max_wait_ms=1.0, cache_capacity=64)
    rng = np.random.default_rng(0)
    queries = rng.standard_normal((REQUESTS, GEOMETRY["input_dim"]))

    server = MicroBatchServer(engine, config=config, tracer=tracer).start()
    slo_engine = SloEngine(
        [SloSpec(name="tight", latency_p99_ms=1e-6),
         SloSpec(name="loose", latency_p99_ms=1e6, error_rate_max=0.99)],
        server.metrics.registry)  # constructed BEFORE traffic: the
    # baseline sample makes the whole run the evaluation window.
    try:
        for future in [server.submit(query) for query in queries]:
            future.result(timeout=30.0)
        verdict = slo_engine.evaluate()
        metrics = server.metrics
    finally:
        server.stop(drain=True)
        tracer.shutdown()

    snap = tail.snapshot()
    head_traces = {span["trace_id"] for span in head_sink.spans()}
    print(f"served {REQUESTS} requests at 1% head sampling: "
          f"{len(head_traces)} head-sampled traces")
    print(f"tail sampler kept {snap['kept_traces']} traces "
          f"({snap['kept_slow']} slow, {snap['kept_link']} linked "
          f"micro-batches) of {snap['roots_seen']} roots; "
          f"rolling threshold {snap['threshold_ms']:.3f} ms")

    # -- act 2: the p99 exemplar names a reconstructable trace --------------------
    latency = metrics.registry.get("serve_request_latency_ms")
    bucket, exemplar = latency.percentile_bucket(99.0)
    print(f"\nrequest latency: count={latency.count} "
          f"p50={latency.percentile(50.0):.3f} ms "
          f"p99={latency.percentile(99.0):.3f} ms")
    if exemplar is not None:
        print(f"p99 bucket exemplar: trace {exemplar.trace_id} "
              f"at {exemplar.value:.3f} ms")
        trees = [tree for tree in build_run_trees(tail_sink.spans())
                 if tree.root.span["trace_id"] == exemplar.trace_id]
        if trees:
            print("reconstructed from the tail sampler's export:")
            print(render_tree(trees[0]))
        else:
            print("(that trace was below the tail threshold -- rerun to "
                  "catch a kept one)")

    # -- act 3: burn-rate verdicts ------------------------------------------------
    print(f"overall SLO status: {verdict['status']}")
    for spec in verdict["specs"]:
        for objective in spec["objectives"]:
            short = objective["windows"]["short"]
            print(f"  {spec['name']}/{objective['objective']}: "
                  f"{objective['status']} (burn {short['burn']:.2f} over "
                  f"budget {short['budget']:.4f}, "
                  f"bad {short['bad']:.0f}/{short['total']:.0f})")

    # -- act 4: OpenMetrics exposition with exemplars -----------------------------
    text = render_openmetrics(metrics.registry)
    exemplar_lines = [line for line in text.splitlines()
                      if "# {trace_id=" in line]
    print(f"\nOpenMetrics exposition: {len(text.splitlines())} lines, "
          f"{len(exemplar_lines)} bucket exemplars; e.g.")
    for line in exemplar_lines[:3]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
