"""Serving demo: the ``repro.serve`` micro-batching server in three acts.

Runs in a couple of seconds:

1. a :class:`~repro.serve.engine.CamPipelineEngine` prototype classifier
   served through the sync :class:`~repro.serve.client.ServeClient` --
   single-sample requests, micro-batched under the hood, responses
   bit-identical to direct engine execution;
2. Zipf-skewed repeats against the packed-signature cache -- the hit rate
   climbs and cached responses stay bit-identical;
3. the metrics snapshot: batch-size histogram, p50/p99 latency, throughput
   and cache hit rate, plus a custom observer counting batches live.

Usage::

    python examples/serve_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.serve import (
    ServeClient,
    ServeConfig,
    build_demo_engine,
    demo_queries,
)


class BatchCounter:
    """Tiny custom observer: counts batches and the largest one seen."""

    def __init__(self) -> None:
        self.batches = 0
        self.largest = 0

    def batch_completed(self, size: int, cache_hits: int, cache_misses: int,
                        service_ms: float) -> None:
        self.batches += 1
        self.largest = max(self.largest, size)


def main() -> None:
    engine = build_demo_engine(classes=16, input_dim=128, hash_length=256, seed=0)
    queries = demo_queries(engine, 512, seed=42)

    # Reference: the same engine geometry executed directly, one batch.
    reference_engine = build_demo_engine(classes=16, input_dim=128,
                                         hash_length=256, seed=0)
    reference = reference_engine.execute(reference_engine.prepare(queries))

    print("== 1. Micro-batched serving, verified against direct execution ==")
    counter = BatchCounter()
    config = ServeConfig(max_batch=64, max_wait_ms=2.0, queue_depth=1024)
    with ServeClient(engine, config=config, observers=(counter,)) as client:
        served = client.infer_many(queries)
        assert np.array_equal(served, reference), "served != direct execution"
        print(f"served {served.shape[0]} requests in {counter.batches} batches "
              f"(largest {counter.largest}); responses bit-identical: True")

        print()
        print("== 2. Zipf repeats hit the packed-signature cache ==")
        rng = np.random.default_rng(7)
        indices = rng.zipf(1.3, size=1024) % 64
        repeats = client.infer_many(queries[indices])
        assert all(np.array_equal(row, reference[i])
                   for row, i in zip(repeats, indices)), "cached != fresh"
        stats = client.stats()
        print(f"cache: {stats['cache']['hits']} hits / "
              f"{stats['cache']['misses']} misses "
              f"(hit rate {stats['cache']['hit_rate']:.2f})")

        print()
        print("== 3. Metrics snapshot ==")
        print(f"throughput:      {stats['throughput_rps']:,.0f} req/s")
        print(f"latency:         p50 {stats['latency_ms']['p50']:.2f} ms, "
              f"p99 {stats['latency_ms']['p99']:.2f} ms")
        print(f"batch sizes:     {stats['batches']['size_histogram']}")
        print(f"queue depth max: {stats['queue_depth']['max']}")
        print(f"engine:          {stats['engine_name']}, "
              f"{stats['engine']['cam_search_count']} CAM searches, "
              f"{stats['engine']['cam_search_energy_pj']:.1f} pJ search energy")


if __name__ == "__main__":
    main()
