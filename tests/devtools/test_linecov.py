"""Unit tests of the stdlib line-coverage fallback behind ``make coverage``."""

import textwrap

import numpy  # noqa: F401  -- imported before tracing, stays out of scope

from repro.devtools import (
    CoverageReport,
    FileCoverage,
    LineCollector,
    executable_lines,
    measure,
)

SAMPLE = textwrap.dedent('''\
    X = 1


    def covered(flag):
        if flag:
            return "yes"
        return "no"


    def untracked():  # pragma: no cover
        return "never measured"


    def partially(flag):
        if flag:
            return 1
        return 2  # pragma: no cover
''')


class TestExecutableLines:
    def test_census_includes_module_and_body_lines(self):
        lines = executable_lines(SAMPLE)
        assert 1 in lines          # X = 1
        assert 5 in lines and 6 in lines and 7 in lines  # covered() body
        assert 15 in lines         # partially() if

    def test_pragma_excludes_line_and_whole_object(self):
        lines = executable_lines(SAMPLE)
        assert 11 not in lines     # body of untracked()
        assert 10 not in lines     # its def line carries the pragma
        assert 17 not in lines     # single pragma line in partially()

    def test_docstrings_and_blanks_not_counted(self):
        lines = executable_lines('"""module doc"""\n\n\nY = 2\n')
        assert 4 in lines
        assert 2 not in lines and 3 not in lines


class TestLineCollector:
    def test_records_only_in_scope_lines(self, tmp_path):
        module = tmp_path / "sample_mod.py"
        module.write_text(SAMPLE)
        namespace = {"__name__": "sample_mod", "__file__": str(module)}
        code = compile(SAMPLE, str(module), "exec")
        collector = LineCollector([tmp_path])
        with collector:
            exec(code, namespace)              # module-level lines
            namespace["covered"](True)         # one branch only
            namespace["partially"](True)
        executed = collector.executed[str(module)]
        assert 1 in executed                   # import-time line
        assert 5 in executed and 6 in executed  # taken branch
        assert 7 not in executed               # untaken branch
        # Out-of-scope files never appear.
        assert all(path.startswith(str(tmp_path))
                   for path in collector.executed)

    def test_traces_threads_started_while_active(self, tmp_path):
        import threading

        module = tmp_path / "threaded_mod.py"
        module.write_text("def worker_body():\n    return 42\n")
        namespace = {"__file__": str(module)}
        exec(compile(module.read_text(), str(module), "exec"), namespace)
        collector = LineCollector([tmp_path])
        with collector:
            thread = threading.Thread(target=namespace["worker_body"])
            thread.start()
            thread.join()
        assert 2 in collector.executed[str(module)]

    def test_start_stop_idempotent(self, tmp_path):
        collector = LineCollector([tmp_path])
        collector.start()
        collector.start()
        collector.stop()
        collector.stop()


class TestMeasure:
    def test_report_joins_census_and_execution(self, tmp_path):
        module = tmp_path / "measured.py"
        module.write_text(SAMPLE)
        namespace = {"__file__": str(module)}
        code = compile(SAMPLE, str(module), "exec")
        collector = LineCollector([tmp_path])
        with collector:
            exec(code, namespace)
            namespace["covered"](False)
            namespace["partially"](True)
        report = measure(collector.executed, [tmp_path])
        assert isinstance(report, CoverageReport)
        assert len(report.files) == 1
        entry = report.files[0]
        assert isinstance(entry, FileCoverage)
        assert 0 < entry.covered < entry.executable
        assert 0.0 < report.percent < 100.0
        rendered = report.render(relative_to=tmp_path)
        assert "measured.py" in rendered and "TOTAL" in rendered

    def test_unimported_files_count_as_uncovered(self, tmp_path):
        (tmp_path / "dead.py").write_text("def never():\n    return 1\n")
        report = measure({}, [tmp_path])
        assert report.total_covered == 0
        assert report.total_executable > 0
        assert report.percent == 0.0

    def test_empty_root_is_fully_covered(self, tmp_path):
        report = measure({}, [tmp_path])
        assert report.files == () or report.total_executable == 0
        assert measure({}, [tmp_path / "nothing"]).percent == 100.0
