"""Tests for the layer-shape specifications and network traces."""

import pytest

from repro.workloads.specs import (
    ConvSpec,
    FCSpec,
    LayerSpec,
    NetworkTrace,
    all_paper_networks,
    lenet5_trace,
    network_by_name,
    resnet18_trace,
    vgg11_trace,
    vgg16_trace,
)


class TestLayerSpec:
    def test_conv_spec_dimensions(self):
        layer = ConvSpec("conv", in_channels=3, out_channels=64, kernel_size=3,
                         input_size=32, padding=1)
        assert layer.contexts_per_image == 32 * 32
        assert layer.num_kernels == 64
        assert layer.context_length == 27
        assert layer.macs == 1024 * 64 * 27

    def test_conv_spec_stride(self):
        layer = ConvSpec("conv", 64, 128, 3, input_size=32, stride=2, padding=1)
        assert layer.contexts_per_image == 16 * 16

    def test_fc_spec(self):
        layer = FCSpec("fc", in_features=512, out_features=10)
        assert layer.contexts_per_image == 1
        assert layer.macs == 5120
        assert layer.kind == "fc"

    def test_derived_quantities(self):
        layer = ConvSpec("c", 1, 6, 5, input_size=28, padding=2)
        assert layer.output_elements == 28 * 28 * 6
        assert layer.weight_count == 6 * 25
        assert layer.input_elements == 28 * 28 * 25

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            LayerSpec("bad", contexts_per_image=0, num_kernels=1, context_length=1)
        with pytest.raises(ValueError):
            LayerSpec("bad", contexts_per_image=1, num_kernels=1, context_length=1,
                      kind="pool")
        with pytest.raises(ValueError):
            ConvSpec("bad", 1, 1, 7, input_size=4)


class TestNetworkTraces:
    def test_lenet5_structure(self):
        trace = lenet5_trace()
        assert len(trace) == 5
        assert trace.layer("conv1").num_kernels == 6
        assert trace.layer("fc3").num_kernels == 10
        # LeNet5 is ~0.4M MACs per inference.
        assert 3.5e5 < trace.total_macs < 5.0e5

    def test_vgg11_macs_in_expected_range(self):
        # VGG11 on 32x32 inputs is ~150M MACs.
        assert 1.2e8 < vgg11_trace().total_macs < 1.8e8

    def test_vgg16_larger_than_vgg11(self):
        assert vgg16_trace().total_macs > vgg11_trace().total_macs

    def test_resnet18_macs_in_expected_range(self):
        # CIFAR ResNet18 is ~0.55 GMACs.
        assert 4.5e8 < resnet18_trace().total_macs < 6.5e8

    def test_resnet18_has_downsample_layers(self):
        names = [layer.name for layer in resnet18_trace()]
        assert sum("downsample" in name for name in names) == 3

    def test_vgg_weight_counts(self):
        # VGG11 (conv only ~9.2M weights) plus the 5k classifier.
        assert 9.0e6 < vgg11_trace().total_weights < 9.6e6

    def test_traces_have_unique_layer_names(self):
        for trace in all_paper_networks():
            names = [layer.name for layer in trace]
            assert len(names) == len(set(names)), trace.name

    def test_network_by_name_roundtrip(self):
        for name in ("lenet5", "vgg11", "vgg16", "resnet18"):
            assert network_by_name(name).name == name

    def test_network_by_name_unknown(self):
        with pytest.raises(KeyError):
            network_by_name("alexnet")

    def test_layer_lookup_unknown(self):
        with pytest.raises(KeyError):
            lenet5_trace().layer("conv9")

    def test_all_paper_networks_order_and_datasets(self):
        traces = all_paper_networks()
        assert [t.name for t in traces] == ["lenet5", "vgg11", "vgg16", "resnet18"]
        assert [t.dataset for t in traces] == ["mnist", "cifar10", "cifar100", "cifar100"]

    def test_trace_requires_layers(self):
        with pytest.raises(ValueError):
            NetworkTrace(name="empty", dataset="none", input_shape=(1, 8, 8),
                         num_classes=2, layers=())
