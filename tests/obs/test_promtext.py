"""Prometheus text exposition: the flattening rules are a wire contract."""

from __future__ import annotations

from repro.obs import (
    CONTENT_TYPE_PROMETHEUS,
    escape_label_value,
    render_prometheus,
)


class TestWireFormat:
    def test_exact_document_is_locked(self):
        stats = {
            "net": {"requests": 7, "replayed": 0},
            "serve": {
                "latency_ms": {"p50": 1.5, "p99": 12.0},
                "batches": {"size_histogram": {"1": 2, "64": 3}},
                "cache": {"enabled": True},
            },
        }
        assert render_prometheus(stats) == (
            "# TYPE repro_net_replayed gauge\n"
            "repro_net_replayed 0\n"
            "# TYPE repro_net_requests gauge\n"
            "repro_net_requests 7\n"
            "# TYPE repro_serve_batches_size_histogram gauge\n"
            'repro_serve_batches_size_histogram{size_histogram="1"} 2\n'
            'repro_serve_batches_size_histogram{size_histogram="64"} 3\n'
            "# TYPE repro_serve_cache_enabled gauge\n"
            "repro_serve_cache_enabled 1\n"
            "# TYPE repro_serve_latency_ms_p50 gauge\n"
            "repro_serve_latency_ms_p50 1.5\n"
            "# TYPE repro_serve_latency_ms_p99 gauge\n"
            "repro_serve_latency_ms_p99 12\n"
        )

    def test_content_type_is_the_prometheus_text_type(self):
        assert CONTENT_TYPE_PROMETHEUS == (
            "text/plain; version=0.0.4; charset=utf-8")

    def test_strings_and_lists_are_skipped(self):
        text = render_prometheus({"engine_name": "demo", "tags": [1, 2],
                                  "count": 3})
        assert text == "# TYPE repro_count gauge\nrepro_count 3\n"

    def test_integer_keys_become_labels(self):
        text = render_prometheus({"shards": {0: {"queries": 5},
                                             1: {"queries": 6}}})
        assert text == (
            "# TYPE repro_shards_queries gauge\n"
            'repro_shards_queries{shards="0"} 5\n'
            'repro_shards_queries{shards="1"} 6\n'
        )

    def test_name_sanitisation(self):
        text = render_prometheus({"a-b": {"99th": 1}})
        assert text == "# TYPE repro_a_b__99th gauge\nrepro_a_b__99th 1\n"

    def test_empty_document(self):
        assert render_prometheus({}) == ""


class TestLabelValueEscaping:
    """Exposition-spec escaping inside quoted label values is a wire lock."""

    def test_the_three_escapes(self):
        assert escape_label_value('plain') == 'plain'
        assert escape_label_value('a\\b') == 'a\\\\b'
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value('a\nb') == 'a\\nb'

    def test_backslash_escapes_first(self):
        # A literal backslash-n must not collapse into an escaped newline.
        assert escape_label_value('a\\nb') == 'a\\\\nb'
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_rendered_label_values_are_escaped(self):
        # render_prometheus only ever labels with digit strings; the
        # instrument exposition is where arbitrary label values travel.
        from repro.obs import MetricsRegistry, render_openmetrics

        registry = MetricsRegistry()
        registry.counter(
            "lookups", labels={"path": 'a\\b"c\nd'}).inc()
        text = render_openmetrics(registry, terminate=False)
        assert 'repro_lookups_total{path="a\\\\b\\"c\\nd"} 1\n' in text
