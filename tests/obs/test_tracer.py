"""Tracer semantics: head sampling, ambient context, counters, injection."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    InMemoryExporter,
    TRACE_HEADER,
    TraceContext,
    Tracer,
    configure,
    current_span,
    default_tracer,
    inject_headers,
    scoped_task,
    use_span,
)


def make_tracer(**kwargs) -> tuple[Tracer, InMemoryExporter]:
    sink = InMemoryExporter()
    kwargs.setdefault("flush_interval_s", 0.01)
    return Tracer(exporters=[sink], **kwargs), sink


class TestSampling:
    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(sample_rate=-0.1)

    def test_rate_zero_exports_nothing_but_counts(self):
        tracer, sink = make_tracer(sample_rate=0.0)
        for _ in range(10):
            tracer.start_span("request").end()
        assert tracer.flush()
        assert sink.spans() == []
        assert tracer.sampled_out == 10
        assert tracer.snapshot()["spans_ended"] == 10

    def test_rate_one_exports_everything(self):
        tracer, sink = make_tracer(sample_rate=1.0)
        for _ in range(10):
            tracer.start_span("request").end()
        assert tracer.flush()
        assert len(sink.spans()) == 10
        assert tracer.sampled_out == 0

    def test_seeded_fractional_rate_is_reproducible(self):
        counts = []
        for _ in range(2):
            tracer, sink = make_tracer(sample_rate=0.5, seed=7)
            for _ in range(200):
                tracer.start_span("request").end()
            assert tracer.flush()
            counts.append(len(sink.spans()))
            tracer.shutdown()
        assert counts[0] == counts[1]
        assert 0 < counts[0] < 200

    def test_descendants_inherit_the_root_decision(self):
        tracer, sink = make_tracer(sample_rate=0.0)
        root = tracer.start_span("request")
        child = tracer.start_span("enqueue", parent=root)
        assert not root.sampled and not child.sampled
        child.end()
        root.end()
        assert tracer.flush()
        assert sink.spans() == []
        # Only the root rolled the dice.
        assert tracer.sampled_out == 1

    def test_errors_export_even_when_sampled_out(self):
        tracer, sink = make_tracer(sample_rate=0.0)
        span = tracer.start_span("request")
        span.record_error("engine exploded").end()
        assert tracer.flush()
        exported = sink.spans()
        assert len(exported) == 1
        assert exported[0]["status"] == "error"
        assert tracer.errors == 1


class TestSpanContextManager:
    def test_exception_marks_error_and_reraises(self):
        tracer, sink = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op"):
                raise RuntimeError("boom")
        assert tracer.flush()
        (span,) = sink.spans()
        assert span["status"] == "error"
        assert "boom" in span["error"]

    def test_nesting_via_ambient(self):
        tracer, sink = make_tracer()
        with tracer.span("request") as outer:
            assert current_span() is outer
            with tracer.span("enqueue") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert current_span() is None

    def test_ambient_false_does_not_leak(self):
        tracer, _ = make_tracer()
        with tracer.span("detached", ambient=False):
            assert current_span() is None


class TestAmbientPropagation:
    def test_use_span_none_is_noop(self):
        with use_span(None) as span:
            assert span is None

    def test_scoped_task_crosses_threads(self):
        tracer, _ = make_tracer()
        seen = []
        with tracer.span("fanout") as fan:
            task = scoped_task(lambda: seen.append(current_span()), fan)
            worker = threading.Thread(target=task)
            worker.start()
            worker.join()
        assert seen == [fan]

    def test_scoped_task_without_span_returns_fn_unwrapped(self):
        fn = lambda: None  # noqa: E731
        assert scoped_task(fn, None) is fn


class TestInjectHeaders:
    def test_no_context_passes_through(self):
        assert inject_headers({"A": "b"}) == {"A": "b"}
        assert inject_headers() == {}

    def test_explicit_context_and_span(self):
        tracer, _ = make_tracer()
        span = tracer.start_span("client")
        by_span = inject_headers({}, span)
        by_context = inject_headers({}, span.context)
        assert by_span == by_context
        assert TraceContext.from_header(by_span[TRACE_HEADER]) == span.context

    def test_ambient_fallback(self):
        tracer, _ = make_tracer()
        with tracer.span("client") as span:
            headers = inject_headers({"X": "y"})
        assert headers["X"] == "y"
        assert TraceContext.from_header(
            headers[TRACE_HEADER]) == span.context

    def test_original_mapping_is_not_mutated(self):
        tracer, _ = make_tracer()
        original = {"X": "y"}
        with tracer.span("client"):
            injected = inject_headers(original)
        assert TRACE_HEADER not in original
        assert TRACE_HEADER in injected


class TestSnapshotAndRecent:
    def test_counters_and_pipeline_keys(self):
        tracer, _ = make_tracer()
        with tracer.span("op"):
            pass
        snapshot = tracer.snapshot()
        assert snapshot["spans_started"] == 1
        assert snapshot["spans_ended"] == 1
        assert snapshot["spans_errored"] == 0
        assert snapshot["sample_rate"] == 1.0
        for key in ("export_offered", "export_exported", "export_dropped",
                    "export_errors", "export_buffer_depth"):
            assert key in snapshot

    def test_recent_ring_is_bounded_and_ordered(self):
        tracer, _ = make_tracer(recent_capacity=4)
        for index in range(10):
            tracer.start_span(f"op{index}").end()
        names = [span["name"] for span in tracer.recent()]
        assert names == ["op6", "op7", "op8", "op9"]
        assert [span["name"] for span in tracer.recent(limit=2)] == [
            "op8", "op9"]


class TestDefaultTracer:
    def test_configure_and_clear(self):
        assert default_tracer() is None
        tracer = Tracer()
        try:
            assert configure(tracer) is tracer
            assert default_tracer() is tracer
        finally:
            configure(None)
        assert default_tracer() is None
