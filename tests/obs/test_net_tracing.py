"""Trace propagation across the wire and the net observability surfaces.

Two layers: socket-free :class:`NetApp` routing (the ``X-Repro-Trace``
header parenting contract, the ``/v1/metrics`` content negotiation and
``/v1/trace``), then a live loopback cluster where one client call must
stitch client, serve plane and remote shard servers into shared traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitops import pack_bits
from repro.net import protocol
from repro.net.client import NetClient
from repro.net.cluster import LocalShardCluster
from repro.net.remote import build_demo_remote_engine
from repro.net.server import NetApp, NetServer
from repro.obs import (
    CONTENT_TYPE_PROMETHEUS,
    InMemoryExporter,
    TRACE_HEADER,
    Tracer,
    configure,
)
from repro.serve import build_demo_engine

GEOMETRY = dict(classes=16, input_dim=32, hash_length=128)
JSON = protocol.CONTENT_TYPE_JSON


def make_tracer(**kwargs) -> tuple[Tracer, InMemoryExporter]:
    sink = InMemoryExporter()
    kwargs.setdefault("flush_interval_s", 0.01)
    return Tracer(exporters=[sink], **kwargs), sink


def classify_envelope(rng, n=2):
    queries = rng.standard_normal((n, GEOMETRY["input_dim"]))
    return protocol.request_envelope(
        "classify", protocol.encode_classify_request(queries))


def post(app, path, envelope, headers=None):
    merged = {"Content-Type": JSON, **(headers or {})}
    status, _, _ = app.handle("POST", path, merged, protocol.dumps(envelope))
    assert status == 200
    return status


@pytest.fixture
def app_and_sink():
    tracer, sink = make_tracer()
    app = NetApp(engine=build_demo_engine(seed=0, **GEOMETRY), tracer=tracer)
    try:
        yield app, tracer, sink
    finally:
        app.close()
        tracer.shutdown()


class TestHeaderPropagation:
    CONTEXT = "1-aaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-01"

    def by_name(self, sink):
        spans = {}
        for span in sink.spans():
            spans.setdefault(span["name"], []).append(span)
        return spans

    def test_rpc_span_parents_under_the_wire_context(self, rng, app_and_sink):
        app, tracer, sink = app_and_sink
        post(app, "/v1/classify", classify_envelope(rng),
             headers={TRACE_HEADER.lower(): self.CONTEXT})
        assert tracer.flush()
        (rpc,) = self.by_name(sink)["rpc.classify"]
        assert rpc["trace_id"] == "aaaaaaaaaaaaaaaa"
        assert rpc["parent_id"] == "bbbbbbbbbbbbbbbb"
        # The per-sample request spans join the caller's trace through it.
        for request in self.by_name(sink)["request"]:
            assert request["trace_id"] == "aaaaaaaaaaaaaaaa"
            assert request["parent_id"] == rpc["span_id"]

    def test_topk_rpc_span_joins_too(self, rng, app_and_sink):
        app, tracer, sink = app_and_sink
        envelope = protocol.request_envelope(
            "topk", protocol.encode_topk_request(
                rng.standard_normal((2, GEOMETRY["input_dim"])), 3))
        post(app, "/v1/topk", envelope,
             headers={TRACE_HEADER.lower(): self.CONTEXT})
        assert tracer.flush()
        (rpc,) = self.by_name(sink)["rpc.topk"]
        assert rpc["trace_id"] == "aaaaaaaaaaaaaaaa"

    def test_malformed_header_starts_a_fresh_trace(self, rng, app_and_sink):
        app, tracer, sink = app_and_sink
        post(app, "/v1/classify", classify_envelope(rng),
             headers={TRACE_HEADER.lower(): "not-a-trace-context"})
        assert tracer.flush()
        spans = self.by_name(sink)
        # Served fine; the rpc span roots a fresh trace of its own (the
        # malformed context is discarded, never an error).
        (rpc,) = spans["rpc.classify"]
        assert rpc["parent_id"] is None
        assert rpc["trace_id"] != "aaaaaaaaaaaaaaaa"
        for request in spans["request"]:
            assert request["trace_id"] == rpc["trace_id"]

    def test_shard_surface_joins_the_trace(self, rng):
        tracer, sink = make_tracer()
        app = NetApp(shard_rows=8, word_bits=128, tracer=tracer)
        try:
            bits = rng.integers(0, 2, size=(8, 128)).astype(np.uint8)
            post(app, "/v1/shard/write",
                 protocol.request_envelope(
                     "shard_write", protocol.encode_shard_write_request(
                         bits, 0, np.arange(8, dtype=np.int64), 8)),
                 headers={TRACE_HEADER.lower(): self.CONTEXT})
            queries = rng.integers(0, 2, size=(3, 128)).astype(np.uint8)
            post(app, "/v1/shard/search",
                 protocol.request_envelope(
                     "shard_search", protocol.encode_shard_search_request(
                         pack_bits(queries))),
                 headers={TRACE_HEADER.lower(): self.CONTEXT})
        finally:
            app.close()
        assert tracer.flush()
        names = {span["name"]: span for span in sink.spans()}
        assert names["rpc.shard_write"]["trace_id"] == "aaaaaaaaaaaaaaaa"
        assert names["rpc.shard_search"]["trace_id"] == "aaaaaaaaaaaaaaaa"
        tracer.shutdown()


class TestObservabilitySurfaces:
    def test_metrics_default_is_prometheus_text(self, rng, app_and_sink):
        app, _, _ = app_and_sink
        post(app, "/v1/classify", classify_envelope(rng))
        status, content_type, body = app.handle("GET", "/v1/metrics", {}, b"")
        assert status == 200
        assert content_type == CONTENT_TYPE_PROMETHEUS
        text = body.decode("utf-8")
        assert "# TYPE repro_net_requests gauge" in text
        assert "repro_serve_latency_ms_p50" in text
        # The tracer's counters ride along (under the serve section, where
        # the owned MicroBatchServer already folds its tracer snapshot).
        assert "obs_spans_started" in text

    def test_metrics_json_under_accept(self, app_and_sink):
        app, _, _ = app_and_sink
        status, content_type, body = app.handle(
            "GET", "/v1/metrics", {"accept": JSON}, b"")
        assert status == 200
        assert content_type == JSON
        document = protocol.parse_response(protocol.loads(body))
        assert document["net"]["requests"] >= 1
        assert "obs" in document or "obs" in document["serve"]

    def test_trace_endpoint_returns_recent_spans(self, rng, app_and_sink):
        app, tracer, _ = app_and_sink
        post(app, "/v1/classify", classify_envelope(rng))
        assert tracer.flush()
        status, content_type, body = app.handle("GET", "/v1/trace", {}, b"")
        assert status == 200
        assert content_type == JSON
        document = protocol.parse_response(protocol.loads(body))
        assert document["enabled"] is True
        assert document["obs"]["spans_started"] > 0
        assert {span["name"] for span in document["spans"]} >= {
            "request", "enqueue", "reply"}

    def test_trace_endpoint_with_tracing_off(self):
        app = NetApp(engine=build_demo_engine(seed=0, **GEOMETRY),
                     tracer=None)
        try:
            assert app.tracer is None  # no default tracer configured
            status, _, body = app.handle("GET", "/v1/trace", {}, b"")
        finally:
            app.close()
        assert status == 200
        document = protocol.parse_response(protocol.loads(body))
        assert document == {"enabled": False, "spans": []}


class TestLiveClusterPropagation:
    """One client call stitches client, serve plane and shard servers."""

    def test_one_trace_per_client_call_across_three_processes_worth(self, rng):
        tracer, sink = make_tracer()
        # The process-default tracer: the serve-plane NetApp, the shard
        # servers inside LocalShardCluster and the NetClient all pick it
        # up, exactly like one traced deployment would.
        configure(tracer)
        try:
            with LocalShardCluster(total_rows=GEOMETRY["classes"],
                                   word_bits=GEOMETRY["hash_length"],
                                   num_shards=2, num_replicas=1) as cluster:
                engine = build_demo_remote_engine(cluster.endpoints, seed=0,
                                                  **GEOMETRY)
                with NetServer(engine=engine) as server:
                    with NetClient(server.base_url) as client:
                        queries = rng.standard_normal(
                            (4, GEOMETRY["input_dim"]))
                        client.infer_many(queries)
        finally:
            configure(None)
        assert tracer.flush()
        spans = sink.spans()
        by_name: dict[str, list] = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)

        # Client -> serve plane: one trace from the client.classify span
        # down through the rpc span to every request span.
        (client_span,) = by_name["client.classify"]
        (rpc,) = by_name["rpc.classify"]
        assert rpc["trace_id"] == client_span["trace_id"]
        assert rpc["parent_id"] == client_span["span_id"]
        assert len(by_name["request"]) == 4
        for request in by_name["request"]:
            assert request["trace_id"] == client_span["trace_id"]

        # Serve plane -> shard servers: the rpc.shard_search spans the
        # shard servers opened join the micro-batch's trace (the fan-out
        # runs under the batch's execute span, not the request's).
        batch_traces = {span["trace_id"] for span in by_name["batch"]}
        shard_rpcs = by_name["rpc.shard_search"]
        assert shard_rpcs
        for shard_rpc in shard_rpcs:
            assert shard_rpc["trace_id"] in batch_traces
            assert shard_rpc["parent_id"] is not None
        tracer.shutdown()
