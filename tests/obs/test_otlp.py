"""OTLP/JSON mapping: payload shape, round-trip fidelity, file sink."""

import json

from repro.obs import (
    InMemoryExporter,
    OtlpJsonExporter,
    Tracer,
    otlp_to_span_dicts,
    spans_to_otlp_payload,
)
from repro.obs.otlp import span_dict_to_otlp
from repro.obs.report import build_run_trees


def _traced_spans(error=False):
    """Real span dicts from a tracer: one request root, two children."""
    sink = InMemoryExporter()
    tracer = Tracer(exporters=[sink], sample_rate=1.0)
    with tracer.span("request", attributes={"batch.id": "b1", "n": 3,
                                            "hit": True, "lat": 1.5}):
        with tracer.span("cache_lookup"):
            pass
        with tracer.span("batch_wait") as child:
            if error:
                child.record_error(RuntimeError("boom"))
    tracer.shutdown()
    return sink.spans()


class TestPayloadShape:
    def test_resource_spans_envelope(self):
        spans = _traced_spans()
        payload = spans_to_otlp_payload(spans, service_name="svc",
                                        scope_name="scope")
        (resource,) = payload["resourceSpans"]
        assert resource["resource"]["attributes"] == [
            {"key": "service.name", "value": {"stringValue": "svc"}}]
        (scope,) = resource["scopeSpans"]
        assert scope["scope"]["name"] == "scope"
        assert len(scope["spans"]) == len(spans)

    def test_trace_id_padded_to_32_hex(self):
        spans = _traced_spans()
        otlp = span_dict_to_otlp(spans[0])
        assert len(otlp["traceId"]) == 32
        assert otlp["traceId"].startswith("0" * 16)
        assert len(otlp["spanId"]) == 16

    def test_int64s_ship_as_strings(self):
        spans = _traced_spans()
        otlp = span_dict_to_otlp(spans[0])
        assert isinstance(otlp["startTimeUnixNano"], str)
        assert isinstance(otlp["endTimeUnixNano"], str)

    def test_any_value_union(self):
        root = [s for s in _traced_spans() if s["parent_id"] is None][0]
        otlp = span_dict_to_otlp(root)
        values = {attr["key"]: attr["value"] for attr in otlp["attributes"]}
        assert values["batch.id"] == {"stringValue": "b1"}
        assert values["n"] == {"intValue": "3"}
        assert values["hit"] == {"boolValue": True}
        assert values["lat"] == {"doubleValue": 1.5}

    def test_error_status(self):
        spans = _traced_spans(error=True)
        by_name = {s["name"]: span_dict_to_otlp(s) for s in spans}
        assert by_name["batch_wait"]["status"]["code"] == 2
        assert "boom" in by_name["batch_wait"]["status"]["message"]
        assert by_name["cache_lookup"]["status"]["code"] == 1

    def test_payload_is_json_serializable(self):
        payload = spans_to_otlp_payload(_traced_spans())
        assert json.loads(json.dumps(payload)) == payload


class TestRoundTrip:
    def test_identity_fields_survive(self):
        spans = _traced_spans(error=True)
        back = otlp_to_span_dicts(spans_to_otlp_payload(spans))
        assert len(back) == len(spans)
        for original, restored in zip(spans, back):
            assert restored["name"] == original["name"]
            assert restored["trace_id"] == original["trace_id"]
            assert restored["span_id"] == original["span_id"]
            assert restored["parent_id"] == original["parent_id"]
            assert restored["status"] == original["status"]
            assert restored["error"] == original["error"]
            assert restored["attributes"] == original["attributes"]

    def test_durations_survive_exactly(self):
        spans = _traced_spans()
        back = otlp_to_span_dicts(spans_to_otlp_payload(spans))
        for original, restored in zip(spans, back):
            original_ns = original["end_ns"] - original["start_ns"]
            restored_ns = restored["end_ns"] - restored["start_ns"]
            assert restored_ns == original_ns

    def test_round_tripped_spans_rebuild_run_trees(self):
        spans = _traced_spans()
        back = otlp_to_span_dicts(spans_to_otlp_payload(spans))
        (tree,) = build_run_trees(back)
        assert tree.root.name == "request"
        assert {node.name for node in tree.root.children} \
            == {"cache_lookup", "batch_wait"}

    def test_foreign_trace_ids_pass_through(self):
        foreign = "a" * 32  # a real 128-bit id, not a repro-padded one
        payload = spans_to_otlp_payload([{
            "name": "x", "trace_id": foreign, "span_id": "b" * 16,
            "parent_id": None, "start_ns": 0, "end_ns": 10,
            "wall_ns": 0, "status": "ok", "attributes": {}}])
        (restored,) = otlp_to_span_dicts(payload)
        assert restored["trace_id"] == foreign


class TestOtlpJsonExporter:
    def test_writes_one_payload_line_per_batch(self, tmp_path):
        path = tmp_path / "spans.otlp.jsonl"
        exporter = OtlpJsonExporter(str(path), service_name="svc")
        spans = _traced_spans()
        exporter.export(spans[:1])
        exporter.export(spans[1:])
        exporter.export([])  # empty batches write nothing
        exporter.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert exporter.payloads_written == 2
        restored = []
        for line in lines:
            restored.extend(otlp_to_span_dicts(json.loads(line)))
        assert [s["name"] for s in restored] == [s["name"] for s in spans]

    def test_as_tracer_sink(self, tmp_path):
        path = tmp_path / "traced.otlp.jsonl"
        tracer = Tracer(exporters=[OtlpJsonExporter(str(path))],
                        sample_rate=1.0)
        with tracer.span("request"):
            pass
        tracer.shutdown()
        spans = []
        for line in path.read_text().splitlines():
            spans.extend(otlp_to_span_dicts(json.loads(line)))
        assert [s["name"] for s in spans] == ["request"]
