"""Serve-plane tracing end to end: run trees, transparency, isolation.

The oracle throughout: a traced server must answer bit-identically to an
untraced one on the same engine geometry and seed -- observability adds
spans, never arithmetic.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.exec import EXECUTOR_ENV
from repro.obs import (
    InMemoryExporter,
    TailSampler,
    Tracer,
    build_run_trees,
    stage_table,
    verify_run_trees,
)
from repro.serve import (
    MicroBatchServer,
    QueueFullError,
    ServeConfig,
    build_demo_engine,
)
from repro.shard import build_demo_sharded_engine

GEOMETRY = dict(classes=16, input_dim=32, hash_length=128)
REQUESTS = 24


def make_tracer(**kwargs) -> tuple[Tracer, InMemoryExporter]:
    sink = InMemoryExporter()
    kwargs.setdefault("flush_interval_s", 0.01)
    return Tracer(exporters=[sink], **kwargs), sink


def serve(engine, queries, tracer=None, cache_capacity=0, observers=(),
          max_batch=8):
    config = ServeConfig(max_batch=max_batch, max_wait_ms=2.0,
                         cache_capacity=cache_capacity)
    server = MicroBatchServer(engine, config=config, observers=observers,
                              tracer=tracer)
    with server:
        futures = [server.submit(query) for query in queries]
        results = [future.result(timeout=60.0) for future in futures]
    if tracer is not None:
        assert tracer.flush()
    return np.stack(results)


@pytest.fixture
def queries(rng):
    return rng.standard_normal((REQUESTS, GEOMETRY["input_dim"]))


class TestRunTrees:
    def test_every_request_reconstructs_exactly_once(self, queries):
        tracer, sink = make_tracer()
        serve(build_demo_engine(seed=0, **GEOMETRY), queries, tracer)
        trees = build_run_trees(sink.spans())
        ok, problems = verify_run_trees(trees, expected_requests=REQUESTS)
        assert ok, problems

    def test_sharded_lifecycle_stages_present(self, queries):
        tracer, sink = make_tracer()
        engine = build_demo_sharded_engine(seed=0, num_shards=2, **GEOMETRY)
        serve(engine, queries, tracer, cache_capacity=REQUESTS)
        trees = build_run_trees(sink.spans())
        ok, problems = verify_run_trees(trees, expected_requests=REQUESTS)
        assert ok, problems
        table = stage_table(trees)
        for stage in ("enqueue", "batch", "prepare", "cache_lookup",
                      "execute", "fanout", "shard_search", "gather",
                      "digitise", "cache_write", "reply"):
            assert table[stage]["max_ms"] > 0.0, stage

    def test_cache_hits_attributed_and_skip_execute(self, rng):
        tracer, sink = make_tracer()
        engine = build_demo_engine(seed=0, **GEOMETRY)
        one = rng.standard_normal(GEOMETRY["input_dim"])
        config = ServeConfig(max_batch=1, max_wait_ms=0.5, cache_capacity=8)
        with MicroBatchServer(engine, config=config, tracer=tracer) as server:
            first = server.submit(one).result(timeout=60.0)
            second = server.submit(one).result(timeout=60.0)
        assert tracer.flush()
        assert np.array_equal(first, second)
        trees = build_run_trees(sink.spans())
        assert len(trees) == 2
        hits = [tree.root.span["attributes"].get("cache.hit")
                for tree in trees]
        assert hits == [False, True]
        hit_tree = trees[1]
        assert hit_tree.stage_ms()["execute"] == 0.0
        assert hit_tree.stage_ms()["cache_lookup"] > 0.0

    def test_batch_membership_matches_declared_size(self, queries):
        tracer, sink = make_tracer()
        serve(build_demo_engine(seed=0, **GEOMETRY), queries, tracer,
              max_batch=REQUESTS)
        trees = build_run_trees(sink.spans())
        by_batch: dict[str, int] = {}
        for tree in trees:
            by_batch[tree.batch_id] = by_batch.get(tree.batch_id, 0) + 1
        for tree in trees:
            declared = tree.batch.span["attributes"]["batch.size"]
            assert by_batch[tree.batch_id] == declared


class TestTransparency:
    def test_traced_answers_bit_identical(self, queries):
        untraced = serve(build_demo_sharded_engine(seed=0, num_shards=2,
                                                   **GEOMETRY), queries)
        tracer, _ = make_tracer()
        traced = serve(build_demo_sharded_engine(seed=0, num_shards=2,
                                                 **GEOMETRY), queries, tracer)
        assert np.array_equal(untraced, traced)

    def test_sampled_out_requests_still_answer(self, queries):
        tracer, sink = make_tracer(sample_rate=0.0)
        reference = serve(build_demo_engine(seed=0, **GEOMETRY), queries)
        answers = serve(build_demo_engine(seed=0, **GEOMETRY), queries,
                        tracer)
        assert np.array_equal(reference, answers)
        assert sink.spans() == []
        assert tracer.snapshot()["spans_ended"] > 0


class TestIsolation:
    def test_raising_observer_breaks_nothing(self, queries, capsys):
        class ExplodingObserver:
            def request_enqueued(self, depth):
                raise RuntimeError("observer bug")

            def batch_collected(self, size, waited_ms, depth):
                raise RuntimeError("observer bug")

        tracer, sink = make_tracer()
        reference = serve(build_demo_engine(seed=0, **GEOMETRY), queries)
        answers = serve(build_demo_engine(seed=0, **GEOMETRY), queries,
                        tracer, observers=(ExplodingObserver(),))
        assert np.array_equal(reference, answers)
        trees = build_run_trees(sink.spans())
        ok, problems = verify_run_trees(trees, expected_requests=REQUESTS)
        assert ok, problems
        assert "ExplodingObserver" in capsys.readouterr().err

    def test_engine_failure_exports_error_spans(self, rng):
        class BrokenEngine:
            name = "broken"
            input_dim = 8

            def prepare(self, samples):
                raise RuntimeError("engine exploded")

            def execute(self, prepared):  # pragma: no cover -- never reached
                raise AssertionError

        tracer, sink = make_tracer(sample_rate=0.0)  # errors must override
        config = ServeConfig(max_batch=4, max_wait_ms=0.5)
        with MicroBatchServer(BrokenEngine(), config=config,
                              tracer=tracer) as server:
            future = server.submit(rng.standard_normal(8))
            with pytest.raises(RuntimeError, match="engine exploded"):
                future.result(timeout=60.0)
        assert tracer.flush()
        exported = sink.spans()
        names = {span["name"] for span in exported
                 if span["status"] == "error"}
        assert "request" in names
        assert tracer.errors > 0


class TestProcessExecutorPropagation:
    def test_fanout_span_names_the_processes_executor(self, rng, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "processes")
        tracer, sink = make_tracer()
        engine = build_demo_sharded_engine(seed=0, num_shards=2, **GEOMETRY)
        try:
            queries = rng.standard_normal((8, GEOMETRY["input_dim"]))
            serve(engine, queries, tracer)
        finally:
            close = getattr(engine, "close", None)
            if callable(close):
                close()
        trees = build_run_trees(sink.spans())
        ok, problems = verify_run_trees(trees, expected_requests=8)
        assert ok, problems
        fanouts = [span for span in sink.spans() if span["name"] == "fanout"]
        assert fanouts
        for fanout in fanouts:
            assert fanout["attributes"]["executor"] == "processes"
        # The fan-out stages stay in the batch's own trace.
        batch_traces = {span["trace_id"] for span in sink.spans()
                        if span["name"] == "batch"}
        assert all(fanout["trace_id"] in batch_traces for fanout in fanouts)


class _GateEngine:
    """Wraps an engine so execute() blocks until released (abort tests)."""

    def __init__(self, inner):
        self._inner = inner
        self.gate = threading.Event()
        self.started = threading.Event()
        self.name = inner.name
        self.input_dim = inner.input_dim
        self.output_dim = inner.output_dim

    def prepare(self, queries):
        return self._inner.prepare(queries)

    def execute(self, prepared):
        self.started.set()
        assert self.gate.wait(30)
        return self._inner.execute(prepared)


class TestRejectionSpanLifecycle:
    """Every refused request must close its spans -- rejected or aborted
    requests used to leave open roots that sat in the tail buffer until
    the trace-timeout sweep."""

    def test_queue_full_rejection_ends_request_spans(self, rng):
        tracer, sink = make_tracer()
        engine = build_demo_engine(seed=0, **GEOMETRY)
        config = ServeConfig(max_batch=4, queue_depth=2, full_policy="reject",
                             poll_timeout_ms=10_000.0, cache_capacity=0)
        server = MicroBatchServer(engine, config=config, tracer=tracer)
        server._running = True  # submit guard only; workers stay down
        try:
            queries = rng.standard_normal((3, GEOMETRY["input_dim"]))
            server.submit(queries[0])
            server.submit(queries[1])
            with pytest.raises(QueueFullError):
                server.submit(queries[2])
            assert tracer.flush()
            exported = sink.spans()
            rejected = [span for span in exported
                        if span["name"] == "request"
                        and span["status"] == "error"]
            assert len(rejected) == 1  # root span exported = it was ended
            enqueues = [span for span in exported
                        if span["name"] == "enqueue"]
            assert any(span["trace_id"] == rejected[0]["trace_id"]
                       for span in enqueues)
        finally:
            server._running = False
            server._flush_queue(RuntimeError("test teardown"))

    def test_abort_stop_leaves_no_open_roots_in_the_tail_buffer(self, rng):
        sink = InMemoryExporter()
        tail = TailSampler([sink], flush_interval_s=0.005)
        tracer = Tracer(sample_rate=0.0, tail_sampler=tail)
        engine = _GateEngine(build_demo_engine(seed=0, **GEOMETRY))
        config = ServeConfig(max_batch=1, max_wait_ms=0.0, queue_depth=16,
                             num_workers=1, poll_timeout_ms=5.0,
                             cache_capacity=0)
        queries = rng.standard_normal((5, GEOMETRY["input_dim"]))
        server = MicroBatchServer(engine, config=config, tracer=tracer)
        server.start()
        blocker = server.submit(queries[0])
        assert engine.started.wait(30)  # worker is inside execute()
        aborted = [server.submit(query) for query in queries[1:]]
        releaser = threading.Timer(0.1, engine.gate.set)
        releaser.start()
        try:
            server.stop(drain=False)
        finally:
            releaser.cancel()
            engine.gate.set()
        assert blocker.result(30).shape == (GEOMETRY["classes"],)
        for future in aborted:
            with pytest.raises(RuntimeError, match="stopped"):
                future.result(5)
        assert tail.drain(10)
        snap = tail.snapshot()
        # Every root arrived at the tail (5 request roots + the blocker's
        # batch root): the aborted requests' spans were ended, not leaked
        # to the trace-timeout sweep.
        assert snap["roots_seen"] == len(queries) + 1
        assert snap["buffered_traces"] == 0
        assert snap["timed_out_traces"] == 0
        assert tail.shutdown(10)
