"""Burn-rate SLO engine: spec validation, window math, verdicts."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    STATUS_BREACH,
    STATUS_NO_DATA,
    STATUS_OK,
    SloEngine,
    SloSpec,
)

LATENCY_BUCKETS = (1.0, 5.0, 10.0, 50.0, 100.0)


def _registry():
    """A registry pre-populated with the serve plane's instrument names."""
    registry = MetricsRegistry()
    instruments = {
        "completed": registry.counter("serve_requests_completed"),
        "failed": registry.counter("serve_requests_failed"),
        "hits": registry.counter("serve_cache_hits"),
        "misses": registry.counter("serve_cache_misses"),
        "latency": registry.histogram("serve_request_latency_ms",
                                      buckets=LATENCY_BUCKETS),
    }
    return registry, instruments


class _Clock:
    """A settable monotonic clock."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSloSpec:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            SloSpec(name="", latency_p99_ms=50.0)

    def test_requires_an_objective(self):
        with pytest.raises(ValueError, match="no objective"):
            SloSpec(name="empty")

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            SloSpec(name="q", latency_p99_ms=1.0, latency_quantile=100.0)

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError, match="error_rate_max"):
            SloSpec(name="e", error_rate_max=1.5)
        with pytest.raises(ValueError, match="hit_rate_min"):
            SloSpec(name="h", hit_rate_min=-0.1)

    def test_rejects_inverted_windows(self):
        with pytest.raises(ValueError, match="short window"):
            SloSpec(name="w", latency_p99_ms=1.0,
                    short_window_s=120.0, long_window_s=60.0)

    def test_rejects_non_positive_burn_threshold(self):
        with pytest.raises(ValueError, match="burn_threshold"):
            SloSpec(name="b", latency_p99_ms=1.0, burn_threshold=0.0)

    def test_to_dict_round_trips_fields(self):
        spec = SloSpec(name="latency", latency_p99_ms=50.0,
                       error_rate_max=0.01, hit_rate_min=0.5)
        doc = spec.to_dict()
        assert doc["name"] == "latency"
        assert doc["latency_p99_ms"] == 50.0
        assert doc["error_rate_max"] == 0.01
        assert doc["hit_rate_min"] == 0.5
        assert doc["latency_quantile"] == 99.0


class TestSloEngineConstruction:
    def test_requires_specs(self):
        registry, _ = _registry()
        with pytest.raises(ValueError, match="at least one"):
            SloEngine([], registry)

    def test_rejects_duplicate_names(self):
        registry, _ = _registry()
        spec = SloSpec(name="dup", latency_p99_ms=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([spec, spec], registry)

    def test_missing_instruments_read_as_no_data(self):
        engine = SloEngine([SloSpec(name="s", error_rate_max=0.1)],
                           MetricsRegistry())
        report = engine.evaluate()
        assert report["status"] == STATUS_NO_DATA


class TestVerdicts:
    def test_no_traffic_is_no_data(self):
        registry, _ = _registry()
        engine = SloEngine([SloSpec(name="s", latency_p99_ms=50.0,
                                    error_rate_max=0.1)], registry)
        assert engine.evaluate()["status"] == STATUS_NO_DATA
        assert not engine.breached()

    def test_error_rate_ok_then_breach(self):
        registry, ins = _registry()
        engine = SloEngine([SloSpec(name="errors", error_rate_max=0.1)],
                           registry)
        ins["completed"].inc(99)
        ins["failed"].inc(1)  # 1% errors, budget 10% -> burn 0.1
        assert engine.evaluate()["status"] == STATUS_OK
        ins["failed"].inc(99)  # ~50% errors -> burn 5
        report = engine.evaluate()
        assert report["status"] == STATUS_BREACH
        assert engine.breached()
        (objective,) = report["specs"][0]["objectives"]
        assert objective["objective"] == "error_rate"
        assert objective["windows"]["short"]["burn"] >= 1.0
        assert objective["windows"]["long"]["burn"] >= 1.0

    def test_latency_breach_counts_slow_observations(self):
        registry, ins = _registry()
        engine = SloEngine([SloSpec(name="lat", latency_p99_ms=10.0)],
                           registry)
        for _ in range(50):
            ins["latency"].observe(2.0)   # fast
        for _ in range(50):
            ins["latency"].observe(80.0)  # slow: 50% > 1% budget
        report = engine.evaluate()
        assert report["status"] == STATUS_BREACH
        (objective,) = report["specs"][0]["objectives"]
        assert objective["objective"] == "latency"
        assert objective["windows"]["short"]["bad"] == 50

    def test_latency_ok_when_under_ceiling(self):
        registry, ins = _registry()
        engine = SloEngine([SloSpec(name="lat", latency_p99_ms=100.0)],
                           registry)
        for _ in range(100):
            ins["latency"].observe(2.0)
        assert engine.evaluate()["status"] == STATUS_OK

    def test_hit_rate_floor(self):
        registry, ins = _registry()
        engine = SloEngine([SloSpec(name="cache", hit_rate_min=0.5)],
                           registry)
        ins["hits"].inc(90)
        ins["misses"].inc(10)  # 10% misses, budget 50% -> ok
        assert engine.evaluate()["status"] == STATUS_OK
        ins["misses"].inc(190)  # ~69% misses -> breach
        assert engine.evaluate()["status"] == STATUS_BREACH

    def test_overall_status_is_most_severe(self):
        registry, ins = _registry()
        engine = SloEngine(
            [SloSpec(name="ok-spec", error_rate_max=0.9),
             SloSpec(name="hot-spec", error_rate_max=0.001)], registry)
        ins["completed"].inc(90)
        ins["failed"].inc(10)
        report = engine.evaluate()
        by_name = {spec["name"]: spec["status"] for spec in report["specs"]}
        assert by_name["ok-spec"] == STATUS_OK
        assert by_name["hot-spec"] == STATUS_BREACH
        assert report["status"] == STATUS_BREACH


class TestWindowMath:
    def test_short_window_recovers_after_incident(self):
        """A resolved incident stops breaching once the short window clears."""
        registry, ins = _registry()
        clock = _Clock()
        spec = SloSpec(name="errors", error_rate_max=0.01,
                       short_window_s=60.0, long_window_s=3600.0)
        engine = SloEngine([spec], registry, clock=clock)
        # Incident: pure errors.
        ins["completed"].inc(1)
        ins["failed"].inc(99)
        clock.advance(30.0)
        assert engine.evaluate()["status"] == STATUS_BREACH
        # Recovery: clean traffic for several short windows.
        for _ in range(10):
            clock.advance(30.0)
            ins["completed"].inc(1000)
            engine.record()
        report = engine.evaluate()
        (objective,) = report["specs"][0]["objectives"]
        short = objective["windows"]["short"]
        long_ = objective["windows"]["long"]
        # The long window still remembers the incident...
        assert long_["bad"] == 99
        # ...but the short window sees only clean traffic, so no breach.
        assert short["status"] == STATUS_OK
        assert report["status"] == STATUS_OK

    def test_window_baseline_falls_back_to_oldest(self):
        """Runs shorter than the window evaluate over their whole life."""
        registry, ins = _registry()
        clock = _Clock()
        engine = SloEngine([SloSpec(name="e", error_rate_max=0.1,
                                    short_window_s=60.0,
                                    long_window_s=3600.0)],
                           registry, clock=clock)
        clock.advance(1.0)  # far less than either window
        ins["completed"].inc(10)
        ins["failed"].inc(90)
        report = engine.evaluate()
        (objective,) = report["specs"][0]["objectives"]
        assert objective["windows"]["short"]["total"] == 100
        assert objective["windows"]["long"]["total"] == 100
        assert report["status"] == STATUS_BREACH

    def test_burn_threshold_scales_sensitivity(self):
        registry, ins = _registry()
        lenient = SloSpec(name="lenient", error_rate_max=0.1,
                          burn_threshold=10.0)
        strict = SloSpec(name="strict", error_rate_max=0.1,
                         burn_threshold=1.0)
        engine = SloEngine([lenient, strict], registry)
        ins["completed"].inc(80)
        ins["failed"].inc(20)  # 20% errors = burn 2.0
        report = engine.evaluate()
        by_name = {spec["name"]: spec["status"] for spec in report["specs"]}
        assert by_name["lenient"] == STATUS_OK   # burn 2 < threshold 10
        assert by_name["strict"] == STATUS_BREACH

    def test_history_is_bounded(self):
        registry, ins = _registry()
        clock = _Clock()
        engine = SloEngine([SloSpec(name="e", error_rate_max=0.5)],
                           registry, history=8, clock=clock)
        for _ in range(50):
            clock.advance(1.0)
            ins["completed"].inc(1)
            engine.record()
        assert len(engine._histories["e"]) == 8
        assert engine.evaluate()["status"] == STATUS_OK
