"""Run-tree reconstruction, verification, and stage attribution.

These tests drive :mod:`repro.obs.report` with hand-built span dicts, so
the linking contract (parent_id within a trace, ``batch.id`` grafting
across traces) is pinned independently of the serve plane emitting it.
"""

from __future__ import annotations

import json

from repro.obs import report
from repro.obs.report import (
    STAGES,
    build_run_trees,
    load_spans,
    render_stage_table,
    render_tree,
    stage_table,
    verify_run_trees,
)


def span(name, trace, sid, parent=None, start=0, dur_ms=1.0, attrs=None,
         status="ok", error=None):
    return {"name": name, "trace_id": trace, "span_id": sid,
            "parent_id": parent, "start_ns": start,
            "end_ns": start + int(dur_ms * 1e6),
            "duration_ms": dur_ms, "status": status, "error": error,
            "attributes": attrs or {}}


def lifecycle_spans(requests=2, batch_id="b1"):
    """A micro-batch trace plus ``requests`` request traces riding in it."""
    spans = [
        span("batch", "tb", batch_id, start=100,
             attrs={"batch.size": requests}),
        span("prepare", "tb", "p1", parent=batch_id, start=110),
        span("cache_lookup", "tb", "c1", parent=batch_id, start=120),
        span("execute", "tb", "x1", parent=batch_id, start=130, dur_ms=5.0),
        span("fanout", "tb", "f1", parent="x1", start=131, dur_ms=3.0),
        span("shard_search", "tb", "ss1", parent="f1", start=132),
        span("shard_search", "tb", "ss2", parent="f1", start=133),
        span("gather", "tb", "g1", parent="x1", start=135),
        span("digitise", "tb", "d1", parent="x1", start=136),
        span("cache_write", "tb", "w1", parent=batch_id, start=140),
    ]
    for index in range(requests):
        trace = f"tr{index}"
        root = f"r{index}"
        spans += [
            span("request", trace, root, start=index,
                 attrs={"batch.id": batch_id, "batch.size": requests}),
            span("enqueue", trace, f"e{index}", parent=root, start=index + 1),
            span("reply", trace, f"y{index}", parent=root, start=index + 2),
        ]
    return spans


class TestBuildRunTrees:
    def test_one_tree_per_request_in_submit_order(self):
        trees = build_run_trees(lifecycle_spans(requests=3))
        assert len(trees) == 3
        assert [tree.root.span["span_id"] for tree in trees] == [
            "r0", "r1", "r2"]

    def test_batch_subtree_grafted(self):
        (tree, _) = build_run_trees(lifecycle_spans(requests=2))
        assert tree.batch_id == "b1"
        assert tree.batch is not None
        assert tree.batch.name == "batch"
        grafted = {node.name for node in tree.batch.children}
        assert grafted == {"prepare", "cache_lookup", "execute",
                           "cache_write"}

    def test_children_ordered_by_start(self):
        (tree, _) = build_run_trees(lifecycle_spans(requests=2))
        assert [child.name for child in tree.root.children] == [
            "enqueue", "reply"]

    def test_stage_attribution_covers_the_lifecycle(self):
        (tree, _) = build_run_trees(lifecycle_spans())
        stages = tree.stage_ms()
        assert set(stages) == set(STAGES)
        for name in STAGES:
            assert stages[name] > 0.0, name
        # Same-name spans sum: two shard searches of 1 ms each.
        assert stages["shard_search"] == 2.0

    def test_request_without_batch_has_no_graft(self):
        trees = build_run_trees([span("request", "t", "r0")])
        assert trees[0].batch is None
        assert trees[0].batch_id is None


class TestVerifyRunTrees:
    def test_complete_set_verifies(self):
        trees = build_run_trees(lifecycle_spans(requests=2))
        ok, problems = verify_run_trees(trees, expected_requests=2)
        assert ok, problems

    def test_missing_request_detected(self):
        trees = build_run_trees(lifecycle_spans(requests=2))
        ok, problems = verify_run_trees(trees, expected_requests=3)
        assert not ok
        assert any("expected 3" in problem for problem in problems)

    def test_batch_size_mismatch_detected(self):
        spans = lifecycle_spans(requests=2)
        for item in spans:
            if item["name"] == "batch":
                item["attributes"]["batch.size"] = 5
        ok, problems = verify_run_trees(build_run_trees(spans),
                                        expected_requests=2)
        assert not ok
        assert any("declares size 5" in problem for problem in problems)

    def test_missing_batch_span_detected(self):
        spans = [item for item in lifecycle_spans(requests=1)
                 if item["span_id"] != "b1"]
        ok, problems = verify_run_trees(build_run_trees(spans),
                                        expected_requests=1)
        assert not ok
        assert any("no such batch span" in problem for problem in problems)

    def test_request_without_batch_id_detected(self):
        ok, problems = verify_run_trees(
            build_run_trees([span("request", "t", "r0")]),
            expected_requests=1)
        assert not ok
        assert any("no batch.id" in problem for problem in problems)


class TestRendering:
    def test_stage_table_stats_and_render(self):
        trees = build_run_trees(lifecycle_spans(requests=4))
        table = stage_table(trees)
        assert table["shard_search"]["mean_ms"] == 2.0
        assert table["shard_search"]["p50_ms"] == 2.0
        assert table["shard_search"]["max_ms"] == 2.0
        text = render_stage_table(table)
        lines = text.splitlines()
        assert lines[0].split() == ["stage", "mean", "ms", "p50", "ms",
                                    "max", "ms"]
        # Rows appear in lifecycle order.
        names = [line.split()[0] for line in lines[1:]]
        assert names == list(STAGES)

    def test_render_tree_shows_graft_and_errors(self):
        spans = lifecycle_spans(requests=1)
        spans.append(span("reply", "tr0", "bad", parent="r0", start=50,
                          status="error", error="TimeoutError: too slow"))
        (tree,) = build_run_trees(spans)
        text = render_tree(tree)
        assert text.startswith("trace tr0: request")
        assert "batch" in text
        assert "shard_search" in text
        assert "ERROR(TimeoutError: too slow)" in text


class TestLoadSpans:
    def test_jsonl_round_trip(self, tmp_path):
        spans = lifecycle_spans(requests=2)
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for item in spans:
                handle.write(json.dumps(item) + "\n")
            handle.write("\n")  # blank lines are skipped
        loaded = load_spans(str(path))
        assert loaded == spans
        ok, problems = report.verify_run_trees(
            report.build_run_trees(loaded), expected_requests=2)
        assert ok, problems
