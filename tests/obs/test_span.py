"""Span primitives: ids, trace-context wire format, span lifecycle.

The trace-context parser is *total* by contract -- any malformed header
yields ``None``, never an exception -- because propagation must never
fail a request.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    Span,
    TraceContext,
    Tracer,
    format_trace_header,
    new_id,
    parse_trace_header,
)


class TestIds:
    def test_unique_and_well_formed(self):
        ids = {new_id() for _ in range(1000)}
        assert len(ids) == 1000
        for value in ids:
            assert len(value) == 16
            assert all(c in "0123456789abcdef" for c in value)

    def test_shared_process_prefix(self):
        prefixes = {new_id()[:8] for _ in range(10)}
        assert len(prefixes) == 1


class TestTraceContext:
    def test_header_round_trip(self):
        context = TraceContext("ab12cd34ef56ab78", "1234567890abcdef",
                               sampled=True)
        parsed = TraceContext.from_header(context.to_header())
        assert parsed == context

    def test_unsampled_round_trip(self):
        context = TraceContext("ab12cd34ef56ab78", "1234567890abcdef",
                               sampled=False)
        assert context.to_header().endswith("-00")
        assert TraceContext.from_header(context.to_header()) == context

    def test_header_format_is_locked(self):
        context = TraceContext("aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb",
                               sampled=True)
        assert context.to_header() == "1-aaaaaaaaaaaaaaaa-bbbbbbbbbbbbbbbb-01"

    @pytest.mark.parametrize("value", [
        None, "", "garbage", "2-aaaa-bbbb-01", "1-aaaa-bbbb",
        "1-aaaa-bbbb-02", "1--bbbb-01", "1-aaaa--01",
        "1-AAAA-bbbb-01", "1-aaxz-bbbb-01", "1-aaaa-bbbb-01-extra",
    ])
    def test_parse_is_total(self, value):
        assert TraceContext.from_header(value) is None

    def test_parse_alias_and_format_helpers(self):
        context = TraceContext("aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb")
        assert parse_trace_header(context.to_header()) == context
        assert format_trace_header(None) is None
        assert format_trace_header(context) == context.to_header()
        span = Tracer().start_span("x")
        assert format_trace_header(span) == span.context.to_header()


class TestSpanLifecycle:
    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("op")
        span.end()
        first = span.end_ns
        span.end()
        assert span.end_ns == first
        assert tracer.ended == 1

    def test_duration_and_dict_shape(self):
        tracer = Tracer()
        span = tracer.start_span("op", attributes={"k": 3})
        span.set_attribute("extra", True)
        span.end()
        data = span.to_dict()
        assert data["name"] == "op"
        assert data["trace_id"] == span.trace_id
        assert data["parent_id"] is None
        assert data["status"] == "ok"
        assert data["attributes"] == {"k": 3, "extra": True}
        assert data["duration_ms"] >= 0.0
        assert data["end_ns"] >= data["start_ns"]

    def test_record_error(self):
        span = Tracer().start_span("op")
        span.record_error(ValueError("boom")).end()
        assert span.status == "error"
        assert span.error == "ValueError: boom"

    def test_child_inherits_trace(self):
        tracer = Tracer()
        root = tracer.start_span("request")
        child = tracer.start_span("enqueue", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        # A root's span id doubles as its trace id (one generation per root).
        assert root.trace_id == root.span_id

    def test_context_of_span(self):
        span = Tracer(sample_rate=1.0).start_span("op")
        context = span.context
        assert isinstance(context, TraceContext)
        assert (context.trace_id, context.span_id) == (span.trace_id,
                                                       span.span_id)
        assert context.sampled is True
