"""Export pipeline: non-blocking offers, drop counting, sink isolation.

The contract under test: the hot path never blocks and never raises --
a full buffer drops and counts, a broken exporter is swallowed and
counted, and shutdown flushes whatever was accepted.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import ExportPipeline, InMemoryExporter, JsonlExporter, Tracer


def span_dict(index: int) -> dict:
    return {"name": f"op{index}", "trace_id": "t", "span_id": f"s{index}",
            "parent_id": None, "start_ns": index, "end_ns": index + 1,
            "duration_ms": 0.0, "status": "ok", "error": None,
            "attributes": {}}


class BrokenExporter:
    """Raises on every export; close raises too."""

    def __init__(self) -> None:
        self.calls = 0

    def export(self, spans) -> None:
        self.calls += 1
        raise RuntimeError("sink is down")

    def close(self) -> None:
        raise RuntimeError("close is down too")


class BlockingExporter:
    """Holds the drain thread until released, so the buffer can fill."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Event()

    def export(self, spans) -> None:
        self.entered.set()
        self.release.wait(timeout=10.0)

    def close(self) -> None:
        pass


class TestValidation:
    def test_capacity_and_batch_size_positive(self):
        with pytest.raises(ValueError):
            ExportPipeline(capacity=0)
        with pytest.raises(ValueError):
            ExportPipeline(batch_size=0)


class TestOfferAndFlush:
    def test_everything_offered_reaches_the_exporter(self):
        sink = InMemoryExporter()
        pipeline = ExportPipeline([sink], capacity=64, batch_size=8)
        for index in range(20):
            assert pipeline.offer(span_dict(index))
        assert pipeline.flush(timeout_s=5.0)
        names = [span["name"] for span in sink.spans()]
        assert names == [f"op{index}" for index in range(20)]
        snapshot = pipeline.snapshot()
        assert snapshot["offered"] == 20
        assert snapshot["exported"] == 20
        assert snapshot["dropped"] == 0
        assert snapshot["buffer_depth"] == 0
        assert pipeline.shutdown(timeout_s=5.0)

    def test_span_objects_serialised_on_drain(self):
        sink = InMemoryExporter()
        pipeline = ExportPipeline([sink], capacity=64)
        tracer = Tracer()
        span = tracer.start_span("op")
        span.end_ns = span.start_ns + 1  # end without a tracer callback
        pipeline.offer(span)
        assert pipeline.flush(timeout_s=5.0)
        exported = sink.spans()
        assert len(exported) == 1
        assert isinstance(exported[0], dict)
        assert exported[0]["name"] == "op"
        pipeline.shutdown(timeout_s=5.0)

    def test_overflow_drops_and_counts_exactly(self):
        blocker = BlockingExporter()
        pipeline = ExportPipeline([blocker], capacity=4, batch_size=1)
        # First offer starts the drain thread, which parks in the sink.
        assert pipeline.offer(span_dict(0))
        assert blocker.entered.wait(timeout=5.0)
        # The buffer (capacity 4) now fills; everything beyond drops.
        accepted = sum(pipeline.offer(span_dict(index))
                       for index in range(1, 11))
        assert accepted == 4
        assert pipeline.snapshot()["dropped"] == 6
        assert pipeline.snapshot()["offered"] == 11
        blocker.release.set()
        assert pipeline.shutdown(timeout_s=5.0)

    def test_offer_after_shutdown_drops(self):
        pipeline = ExportPipeline([InMemoryExporter()], capacity=4)
        assert pipeline.shutdown(timeout_s=5.0)
        assert not pipeline.offer(span_dict(0))
        assert pipeline.snapshot()["dropped"] == 1


class TestSinkIsolation:
    def test_raising_exporter_is_swallowed_and_counted(self):
        broken = BrokenExporter()
        healthy = InMemoryExporter()
        pipeline = ExportPipeline([broken, healthy], capacity=64, batch_size=4)
        for index in range(8):
            pipeline.offer(span_dict(index))
        assert pipeline.flush(timeout_s=5.0)
        # The healthy sink got every span despite its broken neighbour.
        assert len(healthy.spans()) == 8
        assert broken.calls >= 1
        snapshot = pipeline.snapshot()
        assert snapshot["export_errors"] >= broken.calls
        assert snapshot["exported"] == 8
        # shutdown survives the exporter whose close() raises as well.
        assert pipeline.shutdown(timeout_s=5.0)

    def test_flush_timeout_reports_false(self):
        blocker = BlockingExporter()
        pipeline = ExportPipeline([blocker], capacity=8, batch_size=1)
        pipeline.offer(span_dict(0))
        pipeline.offer(span_dict(1))
        assert blocker.entered.wait(timeout=5.0)
        assert not pipeline.flush(timeout_s=0.05)
        blocker.release.set()
        assert pipeline.shutdown(timeout_s=5.0)


class TestJsonlExporter:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JsonlExporter(str(path))
        exporter.export([span_dict(0), span_dict(1)])
        exporter.export([span_dict(2)])
        exporter.close()
        assert exporter.lines_written == 3
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == [
            "op0", "op1", "op2"]

    def test_no_file_until_first_export(self, tmp_path):
        path = tmp_path / "never.jsonl"
        exporter = JsonlExporter(str(path))
        exporter.close()
        assert not path.exists()
