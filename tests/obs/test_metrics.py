"""Typed instruments, registry semantics, OpenMetrics rendering.

Includes the histogram bucket-math property suite: counts sum to the
observation count, the cumulative series is monotone, and an exemplar
always lands in the bucket of its own value.
"""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_registry,
    default_registry,
    render_openmetrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        counter = Counter("requests")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_rejects_bad_names(self):
        for name in ("", "9lead", "has space", "has-dash"):
            with pytest.raises(ValueError):
                Counter(name)

    def test_snapshot(self):
        counter = Counter("requests")
        counter.inc(4)
        assert counter.snapshot() == {"type": "counter", "value": 4.0}

    def test_concurrent_increments_are_exact(self):
        counter = Counter("requests")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0
        assert gauge.snapshot() == {"type": "gauge", "value": 12.0}


class TestHistogram:
    def test_bucket_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(float("inf"),))

    def test_trailing_inf_is_stripped(self):
        histogram = Histogram("h", buckets=(1.0, 5.0, float("inf")))
        assert histogram.bounds == (1.0, 5.0)
        assert len(histogram.counts()) == 3  # 2 finite + implicit +Inf

    def test_le_semantics_on_exact_bound(self):
        histogram = Histogram("h", buckets=(1.0, 5.0))
        histogram.observe(1.0)  # == bound -> le bucket 0
        histogram.observe(5.0)
        histogram.observe(5.0001)
        assert histogram.counts() == [1, 1, 1]

    def test_sum_count_max(self):
        histogram = Histogram("h", buckets=(10.0,))
        for value in (1.0, 2.0, 30.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(33.0)
        assert histogram.percentile(100.0) == pytest.approx(30.0)

    def test_exemplar_from_string_and_span_like(self):
        class FakeSpan:
            trace_id = "abcd1234"

        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5, exemplar="aaaa")
        histogram.observe(5.0, exemplar=FakeSpan())
        exemplars = histogram.exemplars()
        assert exemplars[0].trace_id == "aaaa"
        assert exemplars[0].value == 0.5
        assert exemplars[1].trace_id == "abcd1234"
        assert exemplars[2] is None

    def test_exemplar_keeps_most_recent(self):
        histogram = Histogram("h", buckets=(10.0,))
        histogram.observe(1.0, exemplar="first")
        histogram.observe(2.0, exemplar="second")
        assert histogram.exemplars()[0].trace_id == "second"

    def test_none_exemplar_records_nothing(self):
        histogram = Histogram("h", buckets=(10.0,))
        histogram.observe(1.0)
        assert histogram.exemplars() == [None, None]

    def test_percentile_interpolates(self):
        histogram = Histogram("h", buckets=(10.0, 20.0))
        for _ in range(100):
            histogram.observe(15.0)
        # All mass in (10, 20]; the median interpolates to the middle.
        assert 10.0 < histogram.percentile(50.0) <= 20.0

    def test_percentile_empty(self):
        histogram = Histogram("h", buckets=(10.0,))
        assert histogram.percentile(99.0) == 0.0
        assert histogram.percentile_bucket(99.0) == (0, None)

    def test_percentile_validates_range(self):
        histogram = Histogram("h", buckets=(10.0,))
        with pytest.raises(ValueError):
            histogram.percentile(101.0)
        with pytest.raises(ValueError):
            histogram.percentile_bucket(-1.0)

    def test_percentile_bucket_names_the_tail_exemplar(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for _ in range(99):
            histogram.observe(0.5, exemplar="fast")
        histogram.observe(50.0, exemplar="slow")
        index, exemplar = histogram.percentile_bucket(99.5)
        assert index == histogram.bucket_index(50.0)
        assert exemplar.trace_id == "slow"

    def test_count_above(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count_above(10.0) == 2   # 50 and 500
        assert histogram.count_above(100.0) == 1  # 500
        assert histogram.count_above(0.25) == 3   # conservative: cut at 1.0
        assert histogram.count_above(1000.0) == 0

    def test_snapshot_shape(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5, exemplar="t1")
        snap = histogram.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 1
        assert snap["buckets"] == {"1.0": 1, "+Inf": 0}
        assert snap["exemplars"]["1.0"]["trace_id"] == "t1"


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                max_size=200))
def test_histogram_counts_sum_to_observations(values):
    histogram = Histogram("h", buckets=DEFAULT_LATENCY_BUCKETS_MS)
    for value in values:
        histogram.observe(value)
    assert sum(histogram.counts()) == len(values)
    assert histogram.count == len(values)
    assert histogram.sum == pytest.approx(math.fsum(values), abs=1e-6)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e5,
                          allow_nan=False, allow_infinity=False),
                max_size=200))
def test_histogram_cumulative_is_monotone(values):
    histogram = Histogram("h", buckets=(0.5, 5.0, 50.0, 5000.0))
    for value in values:
        histogram.observe(value)
    cumulative = histogram.cumulative()
    assert all(later >= earlier
               for earlier, later in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] == len(values)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e5,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=100))
def test_exemplar_lands_in_its_values_bucket(values):
    histogram = Histogram("h", buckets=(1.0, 10.0, 100.0, 1000.0))
    for index, value in enumerate(values):
        histogram.observe(value, exemplar=f"trace{index}")
    bounds = (*histogram.bounds, float("inf"))
    for index, exemplar in enumerate(histogram.exemplars()):
        if exemplar is None:
            continue
        lower = bounds[index - 1] if index > 0 else -float("inf")
        assert lower < exemplar.value <= bounds[index]
        assert histogram.bucket_index(exemplar.value) == index


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=100),
       st.floats(min_value=0.0, max_value=100.0))
def test_percentile_bucket_contains_the_rank(values, q):
    histogram = Histogram("h", buckets=(1.0, 10.0, 100.0, 1000.0))
    for value in values:
        histogram.observe(value)
    index, _ = histogram.percentile_bucket(q)
    cumulative = histogram.cumulative()
    rank = q / 100.0 * len(values)
    # Every bucket before the reported one holds strictly less mass
    # than the rank requires.
    if index > 0:
        assert cumulative[index - 1] < rank or histogram.counts()[index] > 0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_labels_separate_instruments(self):
        registry = MetricsRegistry()
        one = registry.counter("a", labels={"mode": "x"})
        two = registry.counter("a", labels={"mode": "y"})
        assert one is not two
        assert registry.counter("a", labels={"mode": "x"}) is one

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_get_never_creates(self):
        registry = MetricsRegistry()
        assert registry.get("missing") is None
        counter = registry.counter("a")
        assert registry.get("a") is counter

    def test_instruments_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert [i.name for i in registry.instruments()] == ["a", "b"]

    def test_snapshot_nests_labelled_families(self):
        registry = MetricsRegistry()
        registry.counter("plain").inc()
        registry.counter("fam", labels={"mode": "x"}).inc(2)
        snap = registry.snapshot()
        assert snap["plain"]["value"] == 1.0
        assert snap["fam"]["mode=x"]["value"] == 2.0


class TestDefaultRegistry:
    def test_configure_swaps_and_resets(self):
        original = default_registry()
        try:
            fresh = configure_registry(None)
            assert fresh is not original
            assert default_registry() is fresh
            mine = MetricsRegistry()
            assert configure_registry(mine) is mine
            assert default_registry() is mine
        finally:
            configure_registry(original)


class TestRenderOpenMetrics:
    def test_counter_total_suffix_and_eof(self):
        registry = MetricsRegistry()
        registry.counter("requests", "served requests").inc(3)
        text = render_openmetrics(registry)
        assert "# TYPE repro_requests counter" in text
        assert "# HELP repro_requests served requests" in text
        assert "repro_requests_total 3\n" in text
        assert text.rstrip().endswith("# EOF")

    def test_histogram_buckets_sum_count_exemplar(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_ms", buckets=(1.0, 10.0))
        histogram.observe(0.5, exemplar="aaaa")
        histogram.observe(5.0)
        text = render_openmetrics(registry)
        assert 'repro_lat_ms_bucket{le="1"} 1 # {trace_id="aaaa"} 0.5 ' in text
        assert 'repro_lat_ms_bucket{le="10"} 2\n' in text
        assert 'repro_lat_ms_bucket{le="+Inf"} 2\n' in text
        assert "repro_lat_ms_sum 5.5\n" in text
        assert "repro_lat_ms_count 2\n" in text

    def test_labels_rendered_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"mode": 'we"ird\\\n'}).inc()
        text = render_openmetrics(registry)
        assert 'mode="we\\"ird\\\\\\n"' in text

    def test_gauge_bare_sample(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(7)
        assert "repro_depth 7\n" in render_openmetrics(registry)

    def test_multiple_registries_dedupe_family_headers(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.counter("shared").inc()
        two.counter("shared").inc(2)
        text = render_openmetrics(one, two)
        assert text.count("# TYPE repro_shared counter") == 1
        assert text.count("repro_shared_total") == 2

    def test_no_terminate_and_empty(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert "# EOF" not in render_openmetrics(registry, terminate=False)
        assert render_openmetrics(MetricsRegistry(),
                                  terminate=False) == ""

    def test_exemplar_dataclass_roundtrip(self):
        exemplar = Exemplar("t", 1.5, 2.0)
        assert exemplar.to_dict() == {"trace_id": "t", "value": 1.5,
                                      "wall_s": 2.0}
