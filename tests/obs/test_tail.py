"""TailSampler policies, linked-trace keeping, and bounded-memory invariants.

The concurrency suite drives many traces to completion from several
threads at once and checks the counter algebra the sampler promises:

    spans_offered == spans_exported + spans_dropped + buffered_spans

plus the bounded-buffer guarantees (never more than ``max_traces``
undecided traces, never more than ``max_spans_per_trace`` spans buffered
per trace).
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import InMemoryExporter, TailSampler, Tracer
from repro.obs.report import build_run_trees


def _make(tracer_kwargs=None, **tail_kwargs):
    sink = InMemoryExporter()
    tail_kwargs.setdefault("flush_interval_s", 0.005)
    tail = TailSampler([sink], **tail_kwargs)
    tracer = Tracer(sample_rate=0.0, tail_sampler=tail,
                    **(tracer_kwargs or {}))
    return tracer, tail, sink


def _finish_trace(tracer, name="request", slow_ns=0, error=False, children=1,
                  attributes=None):
    root = tracer.start_span(name, attributes=attributes)
    spans = [tracer.start_span(f"child{i}", parent=root)
             for i in range(children)]
    for span in spans:
        span.end()
    if error:
        root.record_error("boom")
    root.end(end_ns=root.start_ns + slow_ns)
    return root


def _algebra(tail):
    snap = tail.snapshot()
    assert snap["spans_offered"] == (snap["spans_exported"]
                                     + snap["spans_dropped"]
                                     + snap["buffered_spans"]), snap
    return snap


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TailSampler(keep_slow_ms=-1)
        with pytest.raises(ValueError):
            TailSampler(keep_slow_quantile=1.5)
        with pytest.raises(ValueError):
            TailSampler(max_traces=0)
        with pytest.raises(ValueError):
            TailSampler(max_spans_per_trace=0)


class TestKeepPolicies:
    def test_keep_slow_absolute(self):
        tracer, tail, sink = _make(keep_slow_ms=5.0)
        _finish_trace(tracer, slow_ns=1_000_000)      # 1ms: discard
        kept = _finish_trace(tracer, slow_ns=50_000_000)  # 50ms: keep
        tracer.flush()
        snap = _algebra(tail)
        assert snap["kept_traces"] == 1
        assert snap["kept_slow"] == 1
        assert snap["discarded_traces"] == 1
        trace_ids = {span["trace_id"] for span in sink.spans()}
        assert trace_ids == {kept.trace_id}
        # The kept trace exports whole: root + child.
        assert len(sink.spans()) == 2
        tracer.shutdown()

    def test_keep_error_even_when_fast(self):
        tracer, tail, sink = _make(keep_slow_ms=1e9)
        _finish_trace(tracer, error=True)
        tracer.flush()
        snap = _algebra(tail)
        assert snap["kept_error"] == 1
        assert len(sink.spans()) == 2
        tracer.shutdown()

    def test_keep_errors_off(self):
        tracer, tail, sink = _make(keep_slow_ms=1e9, keep_errors=False)
        _finish_trace(tracer, error=True)
        tracer.flush()
        assert _algebra(tail)["kept_traces"] == 0
        assert sink.spans() == []
        tracer.shutdown()

    def test_error_in_child_keeps_trace(self):
        tracer, tail, sink = _make(keep_slow_ms=1e9)
        root = tracer.start_span("request")
        child = tracer.start_span("execute", parent=root)
        child.record_error("exploded")
        child.end()
        root.end()
        tracer.flush()
        assert _algebra(tail)["kept_error"] == 1
        assert len(sink.spans()) == 2
        tracer.shutdown()

    def test_latency_roots_filter(self):
        # A slow root named something else is not a latency candidate.
        tracer, tail, sink = _make(keep_slow_ms=5.0)
        _finish_trace(tracer, name="batch", slow_ns=50_000_000, children=0)
        tracer.flush()
        assert _algebra(tail)["kept_traces"] == 0
        tracer.shutdown()

    def test_quantile_threshold_arms_after_reservoir(self):
        tracer, tail, sink = _make(keep_slow_quantile=0.9, min_reservoir=10)
        assert tail.threshold_ms() is None
        # Descending latencies (2.0ms .. 0.1ms): once the quantile arms,
        # every later root sits below the rolling p90, so none is kept.
        for index in range(20):
            _finish_trace(tracer, slow_ns=(20 - index) * 100_000, children=0)
        assert tail.drain()
        threshold = tail.threshold_ms()
        assert threshold is not None and threshold >= 1.8
        # A 100ms outlier is far above the rolling p90 and is kept.
        _finish_trace(tracer, slow_ns=100_000_000, children=0)
        tracer.flush()
        assert _algebra(tail)["kept_slow"] == 1
        tracer.shutdown()

    def test_no_policy_discards_everything(self):
        tracer, tail, sink = _make(keep_errors=False)
        _finish_trace(tracer, slow_ns=50_000_000)
        tracer.flush()
        assert _algebra(tail)["kept_traces"] == 0
        tracer.shutdown()


class TestLinkedTraces:
    def test_batch_trace_kept_with_member(self):
        tracer, tail, sink = _make(keep_slow_ms=5.0)
        # Mimic the serve plane: the batch span is its own trace; member
        # request roots record batch.id; stage spans end before the
        # members, the batch span ends after them.
        batch = tracer.start_span("batch")
        stage = tracer.start_span("execute", parent=batch)
        stage.end()
        member = tracer.start_span(
            "request", attributes={"batch.id": batch.trace_id})
        member.end(end_ns=member.start_ns + 50_000_000)  # slow: kept
        batch.end()
        tracer.flush()
        snap = _algebra(tail)
        assert snap["kept_slow"] == 1
        assert snap["kept_link"] == 1
        names = sorted(span["name"] for span in sink.spans())
        assert names == ["batch", "execute", "request"]
        # And the exported set reconstructs: the batch subtree grafts in.
        trees = build_run_trees(sink.spans())
        assert len(trees) == 1
        assert trees[0].batch_id == batch.trace_id
        assert trees[0].batch is not None
        tracer.shutdown()

    def test_fast_member_does_not_keep_batch(self):
        tracer, tail, sink = _make(keep_slow_ms=5.0)
        batch = tracer.start_span("batch")
        member = tracer.start_span(
            "request", attributes={"batch.id": batch.trace_id})
        member.end()  # fast: discarded
        batch.end()
        tracer.flush()
        assert _algebra(tail)["kept_traces"] == 0
        assert sink.spans() == []
        tracer.shutdown()

    def test_late_spans_of_kept_trace_export(self):
        tracer, tail, sink = _make(keep_slow_ms=5.0)
        batch = tracer.start_span("batch")
        member = tracer.start_span(
            "request", attributes={"batch.id": batch.trace_id})
        member.end(end_ns=member.start_ns + 50_000_000)
        tracer.flush()
        before = len(sink.spans())
        batch.end()  # arrives after the keep decision
        tracer.flush()
        assert len(sink.spans()) == before + 1
        _algebra(tail)
        tracer.shutdown()


class TestBoundedMemory:
    def test_max_traces_evicts_oldest(self):
        tracer, tail, sink = _make(keep_slow_ms=5.0, max_traces=4)
        # Open (never-rooted) traces pile up...
        orphans = [tracer.start_span("child", parent=None, sampled=False)
                   for _ in range(10)]
        # ...but only via offered child spans: craft unrooted spans.
        tracer2, tail2, _ = _make(keep_slow_ms=5.0, max_traces=4)
        for index in range(10):
            root = tracer2.start_span("request")
            child = tracer2.start_span("child", parent=root)
            child.end()  # buffers under its trace; root never ends
        assert tail2.drain()
        snap = tail2.snapshot()
        assert snap["buffered_traces"] <= 4
        assert snap["evicted_traces"] >= 6
        _algebra(tail2)
        tracer.shutdown()
        tracer2.shutdown()

    def test_max_spans_per_trace_truncates(self):
        tracer, tail, sink = _make(keep_slow_ms=0.0, max_spans_per_trace=3)
        root = tracer.start_span("request")
        for index in range(10):
            tracer.start_span(f"child{index}", parent=root).end()
        root.end(end_ns=root.start_ns + 50_000_000)
        tracer.flush()
        snap = _algebra(tail)
        assert snap["kept_traces"] == 1
        # 3 buffered children + the root were exported; the rest dropped.
        assert len(sink.spans()) == 4
        assert any(s["parent_id"] is None for s in sink.spans())
        assert snap["spans_dropped"] == 7
        tracer.shutdown()

    def test_timeout_sweep_drops_stale_traces(self):
        clock = [0]
        tail = TailSampler(keep_slow_ms=0.0, trace_timeout_s=1.0,
                           clock_ns=lambda: clock[0])
        tracer = Tracer(sample_rate=0.0, tail_sampler=tail)
        root = tracer.start_span("request")
        tracer.start_span("child", parent=root).end()
        assert tail.drain()  # buffer the child before the clock jumps
        clock[0] = int(5e9)  # 5s later
        # Sweeps run every 256 offers; drive enough traffic to trigger one.
        for _ in range(300):
            tracer.start_span("request").end()
        assert tail.drain()
        snap = _algebra(tail)
        assert snap["timed_out_traces"] == 1
        tracer.shutdown()

    def test_decided_lru_bounded(self):
        tracer, tail, sink = _make(keep_slow_ms=0.0, decided_capacity=5)
        for _ in range(20):
            _finish_trace(tracer, slow_ns=10_000_000, children=0)
        assert tail.drain()
        assert len(tail._decided) <= 5
        _algebra(tail)
        tracer.shutdown()


class TestConcurrentInvariants:
    def test_counter_algebra_under_concurrent_completion(self):
        tracer, tail, sink = _make(
            keep_slow_ms=5.0, max_traces=32, max_spans_per_trace=4,
            decided_capacity=64)
        errors = []

        def worker(seed):
            try:
                for index in range(200):
                    slow = (index % 7 == seed % 7)
                    error = (index % 13 == seed % 13)
                    root = tracer.start_span("request")
                    for c in range(index % 5):
                        tracer.start_span(f"c{c}", parent=root).end()
                    if error:
                        root.record_error("x")
                    root.end(end_ns=root.start_ns
                             + (50_000_000 if slow else 1_000))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert tracer.flush(10.0)
        snap = _algebra(tail)
        assert snap["roots_seen"] == 6 * 200
        assert snap["buffered_traces"] <= 32
        assert snap["kept_traces"] > 0
        assert snap["discarded_traces"] > 0
        # Everything handed to the pipeline reached the sink.
        pipeline = tail.pipeline.snapshot()
        assert len(sink.spans()) == pipeline["exported"] - pipeline["dropped"]
        tracer.shutdown()

    def test_every_kept_slow_trace_is_complete_in_the_sink(self):
        tracer, tail, sink = _make(keep_slow_ms=5.0)
        slow_ids = set()
        for index in range(50):
            slow = index % 3 == 0
            root = _finish_trace(
                tracer, slow_ns=50_000_000 if slow else 1_000, children=2)
            if slow:
                slow_ids.add(root.trace_id)
        tracer.flush()
        by_trace = {}
        for span in sink.spans():
            by_trace.setdefault(span["trace_id"], []).append(span)
        assert set(by_trace) == slow_ids
        for spans in by_trace.values():
            assert len(spans) == 3  # root + 2 children, whole tree
        _algebra(tail)
        tracer.shutdown()


class TestBoundedBufferProperties:
    """Hypothesis: the counter algebra and buffer bounds hold for any mix."""

    @given(traces=st.lists(
               st.tuples(st.integers(0, 6),   # children per trace
                         st.booleans(),       # slow root?
                         st.booleans()),      # error child?
               min_size=1, max_size=25),
           max_traces=st.integers(1, 4),
           max_spans=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_algebra_and_bounds_for_any_trace_mix(self, traces, max_traces,
                                                  max_spans):
        tracer, tail, sink = _make(keep_slow_ms=5.0, max_traces=max_traces,
                                   max_spans_per_trace=max_spans)
        offered = 0
        expected_kept = 0
        for children, slow, error in traces:
            _finish_trace(tracer, slow_ns=50_000_000 if slow else 1_000,
                          error=error, children=children)
            offered += children + 1
            if slow or error:
                expected_kept += 1
        assert tracer.flush(10.0)
        snap = _algebra(tail)
        # Every span offered is accounted for, none buffered at the end
        # (each root ends before the next trace starts, so every trace
        # gets a decision).
        assert snap["spans_offered"] == offered
        assert snap["buffered_spans"] == 0
        assert snap["buffered_traces"] == 0
        assert snap["roots_seen"] == len(traces)
        assert snap["kept_traces"] == expected_kept
        assert snap["discarded_traces"] == len(traces) - expected_kept
        # Truncation: a kept trace exports at most max_spans buffered
        # spans plus its always-buffered root.
        by_trace = {}
        for span in sink.spans():
            by_trace.setdefault(span["trace_id"], []).append(span)
        assert len(by_trace) == expected_kept
        for spans in by_trace.values():
            assert len(spans) <= max_spans + 1
        tracer.shutdown()

    @given(extra=st.integers(0, 40), max_traces=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_undecided_traces_never_exceed_bound(self, extra, max_traces):
        tracer, tail, sink = _make(keep_slow_ms=5.0, max_traces=max_traces)
        # Open traces (roots never end) pile up past the bound.
        for _ in range(max_traces + extra):
            root = tracer.start_span("request")
            tracer.start_span("child", parent=root).end()
        assert tail.drain()
        snap = _algebra(tail)
        assert snap["buffered_traces"] <= max_traces
        assert snap["evicted_traces"] == max(0, extra)
        # Each evicted trace dropped exactly its one buffered child span.
        assert snap["spans_dropped"] == max(0, extra)
        tracer.shutdown()


class TestTracerIntegration:
    def test_snapshot_includes_tail_counters(self):
        tracer, tail, sink = _make(keep_slow_ms=5.0)
        _finish_trace(tracer, slow_ns=50_000_000)
        tracer.flush()
        assert tracer.snapshot()["tail"]["kept_traces"] == 1
        tracer.shutdown()

    def test_tail_sees_head_sampled_spans_too(self):
        # Head sampling at 100% must not double-export into the tail sink.
        head_sink = InMemoryExporter()
        tail_sink = InMemoryExporter()
        tail = TailSampler([tail_sink], keep_slow_ms=5.0,
                           flush_interval_s=0.005)
        tracer = Tracer([head_sink], sample_rate=1.0, tail_sampler=tail)
        _finish_trace(tracer, slow_ns=50_000_000, children=0)
        tracer.flush()
        assert len(head_sink.spans()) == 1
        assert len(tail_sink.spans()) == 1
        tracer.shutdown()

    def test_shutdown_forwards_to_tail_pipeline(self):
        tracer, tail, sink = _make(keep_slow_ms=0.0)
        _finish_trace(tracer, slow_ns=10_000_000, children=0)
        assert tracer.shutdown()
        assert sink.closed
