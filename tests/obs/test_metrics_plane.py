"""The metrics plane end to end: serve instruments, exemplars, span
links for cache provenance, and the shard/exec counters that land in the
process default registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import FallbackExecutor, InlineExecutor, WorkerCrashError
from repro.obs import (
    InMemoryExporter,
    MetricsRegistry,
    Tracer,
    build_run_trees,
    configure_registry,
    default_registry,
)
from repro.serve import MicroBatchServer, ServeConfig, build_demo_engine
from repro.shard import build_demo_sharded_engine

GEOMETRY = dict(classes=16, input_dim=32, hash_length=128)


@pytest.fixture
def fresh_default_registry():
    """Swap in a fresh process default registry; restore the original."""
    original = default_registry()
    registry = configure_registry(MetricsRegistry())
    try:
        yield registry
    finally:
        configure_registry(original)


def _serve_traced(engine, queries, cache_capacity=0, max_batch=8):
    sink = InMemoryExporter()
    tracer = Tracer(exporters=[sink], sample_rate=1.0,
                    flush_interval_s=0.01)
    config = ServeConfig(max_batch=max_batch, max_wait_ms=2.0,
                         cache_capacity=cache_capacity)
    server = MicroBatchServer(engine, config=config, tracer=tracer)
    with server:
        futures = [server.submit(query) for query in queries]
        results = [future.result(timeout=60.0) for future in futures]
        metrics = server.metrics
    assert tracer.flush()
    return np.stack(results), metrics, sink


class TestServeInstruments:
    def test_conventional_instrument_names_exist(self, rng):
        queries = rng.standard_normal((8, GEOMETRY["input_dim"]))
        _, metrics, _ = _serve_traced(build_demo_engine(seed=0, **GEOMETRY),
                                      queries, cache_capacity=8)
        registry = metrics.registry
        for name in ("serve_requests_enqueued", "serve_requests_completed",
                     "serve_requests_failed", "serve_cache_hits",
                     "serve_cache_misses", "serve_batches"):
            assert registry.get(name) is not None, name
        assert registry.get("serve_requests_completed").value == 8
        latency = registry.get("serve_request_latency_ms")
        assert latency is not None and latency.count == 8
        assert registry.get("serve_batch_service_ms").count > 0
        assert registry.get("serve_queue_depth") is not None

    def test_snapshot_shape_is_unchanged(self, rng):
        queries = rng.standard_normal((4, GEOMETRY["input_dim"]))
        _, metrics, _ = _serve_traced(build_demo_engine(seed=0, **GEOMETRY),
                                      queries)
        snap = metrics.snapshot()
        # The legacy dashboard contract: same keys as before the plane.
        for key in ("requests", "latency_ms", "service_ms", "batch_wait_ms",
                    "batches", "queue_depth", "throughput_rps", "elapsed_s",
                    "cache", "shards"):
            assert key in snap, key
        assert snap["requests"]["completed"] == 4
        assert isinstance(snap["requests"]["completed"], int)
        assert set(snap["requests"]) == {"enqueued", "completed", "rejected",
                                         "failed"}
        assert snap["latency_ms"]["p50"] >= 0.0

    def test_external_registry_is_used(self, rng):
        registry = MetricsRegistry()
        config = ServeConfig(max_batch=2, max_wait_ms=1.0)
        engine = build_demo_engine(seed=0, **GEOMETRY)
        with MicroBatchServer(engine, config=config,
                              registry=registry) as server:
            server.submit(
                rng.standard_normal(GEOMETRY["input_dim"])).result(60.0)
            assert server.metrics.registry is registry
        assert registry.get("serve_requests_completed").value == 1


class TestLatencyExemplars:
    def test_exemplars_name_exported_request_traces(self, rng):
        queries = rng.standard_normal((8, GEOMETRY["input_dim"]))
        _, metrics, sink = _serve_traced(
            build_demo_engine(seed=0, **GEOMETRY), queries)
        latency = metrics.registry.get("serve_request_latency_ms")
        exemplars = [e for e in latency.exemplars() if e is not None]
        assert exemplars
        request_traces = {span["trace_id"] for span in sink.spans()
                          if span["name"] == "request"}
        for exemplar in exemplars:
            assert exemplar.trace_id in request_traces

    def test_p99_exemplar_reconstructs_a_run_tree(self, rng):
        queries = rng.standard_normal((8, GEOMETRY["input_dim"]))
        _, metrics, sink = _serve_traced(
            build_demo_engine(seed=0, **GEOMETRY), queries)
        latency = metrics.registry.get("serve_request_latency_ms")
        _, exemplar = latency.percentile_bucket(99.0)
        assert exemplar is not None
        trees = [tree for tree in build_run_trees(sink.spans())
                 if tree.root.span["trace_id"] == exemplar.trace_id]
        assert len(trees) == 1
        assert trees[0].root.name == "request"

    def test_untraced_server_records_no_exemplars(self, rng):
        config = ServeConfig(max_batch=2, max_wait_ms=1.0)
        engine = build_demo_engine(seed=0, **GEOMETRY)
        with MicroBatchServer(engine, config=config) as server:
            server.submit(
                rng.standard_normal(GEOMETRY["input_dim"])).result(60.0)
            latency = server.metrics.registry.get("serve_request_latency_ms")
        assert latency.count == 1
        assert all(e is None for e in latency.exemplars())


class TestCacheHitSpanLinks:
    def test_hit_span_links_to_producing_trace(self, rng):
        engine = build_demo_engine(seed=0, **GEOMETRY)
        one = rng.standard_normal(GEOMETRY["input_dim"])
        sink = InMemoryExporter()
        tracer = Tracer(exporters=[sink], sample_rate=1.0,
                        flush_interval_s=0.01)
        config = ServeConfig(max_batch=1, max_wait_ms=0.5, cache_capacity=8)
        with MicroBatchServer(engine, config=config, tracer=tracer) as server:
            first = server.submit(one).result(timeout=60.0)
            second = server.submit(one).result(timeout=60.0)
        assert tracer.flush()
        assert np.array_equal(first, second)
        requests = [span for span in sink.spans()
                    if span["name"] == "request"]
        assert len(requests) == 2
        miss, hit = sorted(requests,
                           key=lambda s: s["attributes"]["cache.hit"])
        assert miss["attributes"]["cache.hit"] is False
        assert "link.trace_id" not in miss["attributes"]
        # The hit names the trace that computed (and wrote) the answer.
        assert hit["attributes"]["cache.hit"] is True
        assert hit["attributes"]["link.trace_id"] == miss["trace_id"]


class TestShardFanoutCounters:
    def test_fanout_counters_land_in_default_registry(
            self, rng, fresh_default_registry):
        engine = build_demo_sharded_engine(seed=0, num_shards=2, **GEOMETRY)
        queries = rng.standard_normal((6, GEOMETRY["input_dim"]))
        config = ServeConfig(max_batch=6, max_wait_ms=2.0)
        with MicroBatchServer(engine, config=config) as server:
            futures = [server.submit(query) for query in queries]
            for future in futures:
                future.result(timeout=60.0)
        fanouts = [ins for ins in fresh_default_registry.instruments()
                   if ins.name == "shard_fanouts"]
        assert fanouts, "no shard_fanouts counter registered"
        assert sum(ins.value for ins in fanouts) > 0
        counted = [ins for ins in fresh_default_registry.instruments()
                   if ins.name == "shard_fanout_queries"]
        assert sum(ins.value for ins in counted) == 6
        # The fan-out mode travels as a label.
        assert all(dict(ins.labels).get("mode") for ins in fanouts)


class TestExecCrashCounters:
    def test_contained_crash_increments_counters(self, rng,
                                                 fresh_default_registry):
        class CrashingPrimary(InlineExecutor):
            name = "processes"

            def hamming_blocked(self, a, b):
                raise WorkerCrashError("injected")

        engine = FallbackExecutor(CrashingPrimary(), InlineExecutor())
        a = rng.integers(0, 2 ** 63, size=(4, 2), dtype=np.uint64)
        b = rng.integers(0, 2 ** 63, size=(16, 2), dtype=np.uint64)
        result = engine.hamming_blocked(a, b)
        assert result.shape == (4, 16)
        labels = {"engine": "processes"}
        crashes = fresh_default_registry.get("exec_worker_crashes", labels)
        fallbacks = fresh_default_registry.get("exec_fallback_batches",
                                               labels)
        assert crashes is not None and crashes.value == 1
        assert fallbacks is not None and fallbacks.value == 1
