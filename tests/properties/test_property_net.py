"""Property-based tests for the wire protocol: encode -> decode identity.

Every payload kind the cluster moves -- classify and top-k requests and
responses -- must survive the round trip bit-for-bit through both
framings: JSON envelopes (base64 array bodies) and the length-prefixed
binary frames.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.net import protocol

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


def float_matrix(max_rows=8, max_cols=16):
    return st.integers(0, max_rows).flatmap(
        lambda rows: st.integers(1, max_cols).flatmap(
            lambda cols: hnp.arrays(dtype=np.float64, shape=(rows, cols),
                                    elements=finite)))


def int_matrix(dtype, max_rows=8, max_cols=16, low=0, high=2**31):
    return st.integers(0, max_rows).flatmap(
        lambda rows: st.integers(1, max_cols).flatmap(
            lambda cols: hnp.arrays(dtype=dtype, shape=(rows, cols),
                                    elements=st.integers(low, high))))


def wire_cycle(envelope):
    """Serialise + parse: what actually crosses the socket."""
    return protocol.loads(protocol.dumps(envelope))


class TestJsonRoundTrips:
    @given(samples=float_matrix(), encoding=st.sampled_from(["b64", "hex"]))
    @settings(max_examples=40, deadline=None)
    def test_classify_request_identity(self, samples, encoding):
        envelope = protocol.request_envelope(
            "classify", protocol.encode_classify_request(samples, encoding))
        decoded = protocol.decode_classify_request(
            protocol.parse_request(wire_cycle(envelope), "classify"))
        assert decoded.dtype == np.float64
        assert decoded.shape == samples.shape
        assert samples.tobytes() == decoded.tobytes()  # exact bits

    @given(logits=float_matrix())
    @settings(max_examples=40, deadline=None)
    def test_classify_response_identity(self, logits):
        envelope = protocol.ok_envelope(
            protocol.encode_classify_response(logits))
        decoded = protocol.decode_classify_response(
            protocol.parse_response(wire_cycle(envelope)))
        assert logits.tobytes() == decoded.tobytes()

    @given(samples=float_matrix(), k=st.integers(0, 64))
    @settings(max_examples=40, deadline=None)
    def test_topk_request_identity(self, samples, k):
        envelope = protocol.request_envelope(
            "topk", protocol.encode_topk_request(samples, k))
        decoded, decoded_k = protocol.decode_topk_request(
            protocol.parse_request(wire_cycle(envelope), "topk"))
        assert decoded_k == k
        assert samples.tobytes() == decoded.tobytes()

    @given(rows=float_matrix())
    @settings(max_examples=40, deadline=None)
    def test_topk_response_identity(self, rows):
        envelope = protocol.ok_envelope(protocol.encode_topk_response(rows))
        decoded = protocol.decode_topk_response(
            protocol.parse_response(wire_cycle(envelope)))
        assert rows.tobytes() == decoded.tobytes()

    @given(packed=int_matrix(np.uint64, high=2**63))
    @settings(max_examples=40, deadline=None)
    def test_shard_search_request_identity(self, packed):
        envelope = protocol.request_envelope(
            "shard_search", protocol.encode_shard_search_request(packed))
        decoded = protocol.decode_shard_search_request(
            protocol.parse_request(wire_cycle(envelope), "shard_search"))
        assert decoded.dtype == np.uint64
        assert packed.tobytes() == decoded.tobytes()

    @given(counts=int_matrix(np.int64),
           energy=st.floats(0, 1e9, allow_nan=False),
           latency=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_shard_search_response_identity(self, counts, energy, latency):
        envelope = protocol.ok_envelope(
            protocol.encode_shard_search_response(counts, energy, latency))
        decoded, decoded_energy, decoded_latency = (
            protocol.decode_shard_search_response(
                protocol.parse_response(wire_cycle(envelope))))
        assert counts.tobytes() == decoded.tobytes()
        assert decoded_energy == energy and decoded_latency == latency


class TestBinaryFrameRoundTrips:
    @given(packed=int_matrix(np.uint64, high=2**63), k=st.integers(0, 64))
    @settings(max_examples=40, deadline=None)
    def test_query_frame_identity(self, packed, k):
        frame = protocol.encode_array_frame("shard_topk", packed,
                                            extra={"k": k})
        decoded, header = protocol.decode_array_frame(
            frame, kind="shard_topk", dtype="uint64", ndim=2)
        assert header["k"] == k
        assert decoded.shape == packed.shape
        assert packed.tobytes() == decoded.tobytes()

    @given(logits=float_matrix())
    @settings(max_examples=40, deadline=None)
    def test_float_frame_identity(self, logits):
        frame = protocol.encode_array_frame("logits", logits)
        decoded, _ = protocol.decode_array_frame(frame, kind="logits",
                                                 dtype="float64", ndim=2)
        assert logits.tobytes() == decoded.tobytes()

    @given(candidates=int_matrix(np.int64, max_rows=4, max_cols=6))
    @settings(max_examples=40, deadline=None)
    def test_stacked_candidate_frame_identity(self, candidates):
        stacked = np.stack([candidates, candidates + 1])
        frame = protocol.encode_array_frame("shard_candidates", stacked)
        decoded, _ = protocol.decode_array_frame(
            frame, kind="shard_candidates", dtype="int64", ndim=3)
        assert stacked.tobytes() == decoded.tobytes()

    @given(packed=int_matrix(np.uint64, high=2**63))
    @settings(max_examples=40, deadline=None)
    def test_frame_and_json_carry_identical_arrays(self, packed):
        via_frame, _ = protocol.decode_array_frame(
            protocol.encode_array_frame("shard_search", packed),
            kind="shard_search", dtype="uint64", ndim=2)
        via_json = protocol.decode_shard_search_request(
            protocol.parse_request(
                wire_cycle(protocol.request_envelope(
                    "shard_search",
                    protocol.encode_shard_search_request(packed))),
                "shard_search"))
        assert via_frame.tobytes() == via_json.tobytes()
