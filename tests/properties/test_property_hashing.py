"""Property-based tests for hashing and the geometric dot-product."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.geometric import ApproximateDotProduct, algebraic_dot
from repro.core.hashing import (
    RandomProjectionHasher,
    angle_from_hamming,
    hamming_distance,
    hamming_distance_matrix,
)


def finite_vectors(dim, min_value=-100.0, max_value=100.0):
    return hnp.arrays(dtype=np.float64, shape=dim,
                      elements=st.floats(min_value=min_value, max_value=max_value,
                                         allow_nan=False, allow_infinity=False))


class TestHammingDistanceProperties:
    @given(bits=hnp.arrays(dtype=np.uint8, shape=st.integers(1, 200),
                           elements=st.integers(0, 1)))
    @settings(max_examples=50, deadline=None)
    def test_identity(self, bits):
        assert hamming_distance(bits, bits) == 0

    @given(data=st.data(), length=st.integers(1, 128))
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_bounds(self, data, length):
        a = data.draw(hnp.arrays(dtype=np.uint8, shape=length, elements=st.integers(0, 1)))
        b = data.draw(hnp.arrays(dtype=np.uint8, shape=length, elements=st.integers(0, 1)))
        distance = hamming_distance(a, b)
        assert distance == hamming_distance(b, a)
        assert 0 <= distance <= length

    @given(data=st.data(), length=st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_triangle_inequality(self, data, length):
        bits = [data.draw(hnp.arrays(dtype=np.uint8, shape=length, elements=st.integers(0, 1)))
                for _ in range(3)]
        ab = hamming_distance(bits[0], bits[1])
        bc = hamming_distance(bits[1], bits[2])
        ac = hamming_distance(bits[0], bits[2])
        assert ac <= ab + bc

    @given(data=st.data(), rows_a=st.integers(1, 6), rows_b=st.integers(1, 6),
           length=st.integers(8, 64))
    @settings(max_examples=30, deadline=None)
    def test_matrix_consistent_with_scalar(self, data, rows_a, rows_b, length):
        a = data.draw(hnp.arrays(dtype=np.uint8, shape=(rows_a, length),
                                 elements=st.integers(0, 1)))
        b = data.draw(hnp.arrays(dtype=np.uint8, shape=(rows_b, length),
                                 elements=st.integers(0, 1)))
        matrix = hamming_distance_matrix(a, b)
        for i in range(rows_a):
            for j in range(rows_b):
                assert matrix[i, j] == hamming_distance(a[i], b[j])


class TestHasherProperties:
    @given(vector=finite_vectors(12), scale=st.floats(min_value=1e-3, max_value=1e3,
                                                      allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_positive_scaling_invariance(self, vector, scale):
        hasher = RandomProjectionHasher(12, 256, seed=0)
        assert np.array_equal(hasher.hash(vector), hasher.hash(scale * vector))

    @given(vector=finite_vectors(8))
    @settings(max_examples=40, deadline=None)
    def test_output_is_binary_and_correct_length(self, vector):
        hasher = RandomProjectionHasher(8, 512, seed=1)
        bits = hasher.hash(vector)
        assert bits.shape == (512,)
        assert set(np.unique(bits)).issubset({0, 1})

    @given(seed=st.integers(0, 2 ** 16), dim=st.integers(2, 32))
    @settings(max_examples=25, deadline=None)
    def test_determinism_across_instances(self, seed, dim):
        rng = np.random.default_rng(seed)
        vector = rng.normal(size=dim)
        a = RandomProjectionHasher(dim, 256, seed=seed).hash(vector)
        b = RandomProjectionHasher(dim, 256, seed=seed).hash(vector)
        assert np.array_equal(a, b)


class TestDotProductProperties:
    @given(x=finite_vectors(16, -10, 10), y=finite_vectors(16, -10, 10))
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, x, y):
        engine = ApproximateDotProduct(16, 256, seed=0)
        assert engine(x, y) == pytest.approx(engine(y, x), rel=1e-9, abs=1e-9)

    @given(x=finite_vectors(16, -10, 10))
    @settings(max_examples=40, deadline=None)
    def test_self_product_is_norm_squared(self, x):
        engine = ApproximateDotProduct(16, 256, seed=0)
        assert engine(x, x) == pytest.approx(float(np.dot(x, x)), rel=1e-9, abs=1e-9)

    @given(x=finite_vectors(16, -10, 10), y=finite_vectors(16, -10, 10))
    @settings(max_examples=40, deadline=None)
    def test_magnitude_bounded_by_norm_product(self, x, y):
        engine = ApproximateDotProduct(16, 512, seed=2)
        bound = float(np.linalg.norm(x) * np.linalg.norm(y))
        assert abs(engine(x, y)) <= bound * (1.0 + 1e-9) + 1e-12

    @given(x=finite_vectors(32, 0.01, 10), y=finite_vectors(32, 0.01, 10))
    @settings(max_examples=25, deadline=None)
    def test_positive_orthant_vectors_have_positive_products(self, x, y):
        # Two vectors with all-positive entries are at most 90 degrees apart,
        # so the approximation (with exact cosine) must not be very negative.
        engine = ApproximateDotProduct(32, 1024, seed=3, use_exact_cosine=True)
        reference = algebraic_dot(x, y)
        assert engine(x, y) > -0.25 * reference


class TestAngleEstimateProperties:
    @given(distance=st.integers(0, 1024))
    @settings(max_examples=50, deadline=None)
    def test_angle_within_range(self, distance):
        theta = angle_from_hamming(distance, 1024)
        assert 0.0 <= theta <= math.pi
