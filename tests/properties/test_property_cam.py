"""Property-based tests for the CAM substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.cam.array import CamArray
from repro.cam.dynamic import DynamicCam, DynamicCamConfig
from repro.cam.energy_model import CamEnergyModel
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp


def bit_matrix(rows, bits):
    return hnp.arrays(dtype=np.uint8, shape=(rows, bits), elements=st.integers(0, 1))


class TestCamArrayProperties:
    @given(data=st.data(), rows=st.integers(1, 16), bits=st.integers(8, 128))
    @settings(max_examples=30, deadline=None)
    def test_search_distances_match_exact_xor_count(self, data, rows, bits):
        stored = data.draw(bit_matrix(rows, bits))
        query = data.draw(hnp.arrays(dtype=np.uint8, shape=bits, elements=st.integers(0, 1)))
        cam = CamArray(rows=rows, word_bits=bits)
        cam.write_rows(stored)
        result = cam.search(query)
        expected = (stored != query).sum(axis=1)
        assert np.array_equal(result.distances, expected)
        assert np.all((result.distances >= 0) & (result.distances <= bits))

    @given(data=st.data(), rows=st.integers(2, 12), bits=st.integers(8, 64))
    @settings(max_examples=30, deadline=None)
    def test_stored_row_always_matches_itself(self, data, rows, bits):
        stored = data.draw(bit_matrix(rows, bits))
        row = data.draw(st.integers(0, rows - 1))
        cam = CamArray(rows=rows, word_bits=bits)
        cam.write_rows(stored)
        result = cam.search(stored[row])
        assert result.distances[row] == 0

    @given(rows=st.integers(1, 64), bits=st.sampled_from([64, 128, 256, 512, 1024]))
    @settings(max_examples=30, deadline=None)
    def test_search_energy_monotone_in_occupancy(self, rows, bits):
        cam = CamArray(rows=64, word_bits=bits)
        rng = np.random.default_rng(0)
        cam.write_rows(rng.integers(0, 2, size=(rows, bits)).astype(np.uint8))
        energy_partial = cam.search_energy_pj()
        cam.write_rows(rng.integers(0, 2, size=(64, bits)).astype(np.uint8))
        assert cam.search_energy_pj() >= energy_partial


class TestDynamicCamProperties:
    @given(data=st.data(), width=st.sampled_from([256, 512, 768, 1024]),
           rows=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_dynamic_cam_equals_plain_cam_at_same_width(self, data, width, rows):
        stored = data.draw(bit_matrix(rows, width))
        query = data.draw(hnp.arrays(dtype=np.uint8, shape=width, elements=st.integers(0, 1)))
        dynamic = DynamicCam(DynamicCamConfig(rows=rows))
        dynamic.configure_word_bits(width)
        dynamic.write_rows(stored)
        plain = CamArray(rows=rows, word_bits=width)
        plain.write_rows(stored)
        assert np.array_equal(dynamic.search(query).distances, plain.search(query).distances)


class TestSenseAmpProperties:
    @given(distances=hnp.arrays(dtype=np.int64, shape=st.integers(1, 64),
                                elements=st.integers(0, 256)))
    @settings(max_examples=40, deadline=None)
    def test_noise_free_readout_is_exact(self, distances):
        amp = ClockedSelfReferencedSenseAmp(word_bits=256)
        assert np.array_equal(amp.estimate_distances(distances), distances)


class TestEnergyModelProperties:
    @given(rows=st.integers(1, 1024), bits=st.integers(1, 4096))
    @settings(max_examples=50, deadline=None)
    def test_energy_area_delay_positive(self, rows, bits):
        model = CamEnergyModel()
        assert model.search_energy_pj(rows, bits) > 0
        assert model.area_um2(rows, bits) > 0
        assert model.search_delay_ns(rows, bits) > 0

    @given(rows=st.integers(1, 512), bits=st.integers(1, 2048), factor=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_energy_monotone_in_geometry(self, rows, bits, factor):
        model = CamEnergyModel()
        assert model.search_energy_pj(rows * factor, bits) > model.search_energy_pj(rows, bits)
        assert model.search_energy_pj(rows, bits * factor) > model.search_energy_pj(rows, bits)
