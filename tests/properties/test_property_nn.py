"""Property-based tests for the NumPy CNN substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear


@st.composite
def conv_geometry(draw):
    """A random but valid (input, kernel, stride, padding) conv geometry."""
    kernel = draw(st.integers(1, 4))
    stride = draw(st.integers(1, 2))
    padding = draw(st.integers(0, 2))
    min_size = max(kernel - 2 * padding, 1)
    size = draw(st.integers(min_size + 2, min_size + 8))
    channels = draw(st.integers(1, 3))
    batch = draw(st.integers(1, 2))
    return batch, channels, size, kernel, stride, padding


class TestIm2ColProperties:
    @given(geometry=conv_geometry(), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_im2col_col2im_adjoint(self, geometry, seed):
        # <im2col(x), y> == <x, col2im(y)>: im2col and col2im are adjoint
        # linear maps, which is exactly what a correct conv backward needs.
        batch, channels, size, kernel, stride, padding = geometry
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(batch, channels, size, size))
        cols = F.im2col(x, kernel, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * F.col2im(y, x.shape, kernel, stride, padding)))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)

    @given(geometry=conv_geometry(), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_im2col_patch_count(self, geometry, seed):
        batch, channels, size, kernel, stride, padding = geometry
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(batch, channels, size, size))
        out = F.conv_output_size(size, kernel, stride, padding)
        cols = F.im2col(x, kernel, stride, padding)
        assert cols.shape == (batch, out * out, channels * kernel * kernel)


class TestConvolutionProperties:
    @given(geometry=conv_geometry(), seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_conv_is_linear_in_input(self, geometry, seed):
        batch, channels, size, kernel, stride, padding = geometry
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(2, channels, kernel, kernel))
        x1 = rng.normal(size=(batch, channels, size, size))
        x2 = rng.normal(size=(batch, channels, size, size))
        alpha = 0.7
        combined = F.conv2d(x1 + alpha * x2, w, stride=stride, padding=padding)
        separate = (F.conv2d(x1, w, stride=stride, padding=padding)
                    + alpha * F.conv2d(x2, w, stride=stride, padding=padding))
        assert np.allclose(combined, separate)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_layer_forward_matches_functional(self, seed):
        rng = np.random.default_rng(seed)
        layer = Conv2d(2, 3, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(1, 2, 7, 7))
        assert np.allclose(layer(x), F.conv2d(x, layer.weight, layer.bias, padding=1))


class TestSoftmaxProperties:
    @given(seed=st.integers(0, 1000), batch=st.integers(1, 8), classes=st.integers(2, 20),
           shift=st.floats(min_value=-50, max_value=50, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_softmax_shift_invariance_and_normalisation(self, seed, batch, classes, shift):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(batch, classes)) * 10
        probs = F.softmax(logits)
        shifted = F.softmax(logits + shift)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.allclose(probs, shifted, atol=1e-9)


class TestLinearProperties:
    @given(seed=st.integers(0, 1000), in_features=st.integers(1, 16),
           out_features=st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, seed, in_features, out_features):
        rng = np.random.default_rng(seed)
        layer = Linear(in_features, out_features, bias=False, rng=rng)
        x1 = rng.normal(size=(3, in_features))
        x2 = rng.normal(size=(3, in_features))
        assert np.allclose(layer(x1 + x2), layer(x1) + layer(x2))
