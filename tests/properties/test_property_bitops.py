"""Property tests pinning the packed kernels to the unpacked reference paths.

The refactor's invariant is bit-exactness: packing signatures into uint64
words and computing XOR+popcount must agree everywhere with the naive
unpacked computation -- for any shape, any hash length (including lengths
not divisible by 8 or 64), through the CAM array, and through the full
simulator.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

import repro.core.accelerator as accelerator_module
from repro.cam.array import CamArray
from repro.cam.dynamic import DynamicCam, DynamicCamConfig
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp
from repro.core.accelerator import DeepCAMSimulator
from repro.core.bitops import pack_bits, packed_hamming_matrix, unpack_bits
from repro.core.config import DeepCAMConfig
from repro.core.hashing import hamming_distance_matrix_unpacked
from repro.nn.models.lenet import build_lenet5


def bit_matrix(rows, bits):
    return hnp.arrays(dtype=np.uint8, shape=(rows, bits), elements=st.integers(0, 1))


class TestKernelEquivalence:
    @given(data=st.data(), rows_a=st.integers(1, 24), rows_b=st.integers(1, 24),
           bits=st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_packed_kernel_equals_naive_xor_sum(self, data, rows_a, rows_b, bits):
        bits_a = data.draw(bit_matrix(rows_a, bits))
        bits_b = data.draw(bit_matrix(rows_b, bits))
        naive = (bits_a[:, None, :] != bits_b[None, :, :]).sum(axis=-1)
        packed = packed_hamming_matrix(pack_bits(bits_a), pack_bits(bits_b))
        assert np.array_equal(packed, naive)

    @given(data=st.data(), rows=st.integers(1, 16), bits=st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_packed_kernel_equals_gemm_reference(self, data, rows, bits):
        bits_a = data.draw(bit_matrix(rows, bits))
        bits_b = data.draw(bit_matrix(rows, bits))
        assert np.array_equal(
            packed_hamming_matrix(pack_bits(bits_a), pack_bits(bits_b)),
            hamming_distance_matrix_unpacked(bits_a, bits_b))

    @given(data=st.data(), rows=st.integers(1, 12), bits=st.integers(1, 130))
    @settings(max_examples=40, deadline=None)
    def test_pack_roundtrip_any_length(self, data, rows, bits):
        matrix = data.draw(bit_matrix(rows, bits))
        assert np.array_equal(unpack_bits(pack_bits(matrix), bits), matrix)


class TestCamArrayEquivalence:
    @given(data=st.data(), rows=st.integers(1, 16), bits=st.integers(3, 96),
           queries=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_batch_search_equals_serial_search(self, data, rows, bits, queries):
        stored = data.draw(bit_matrix(rows, bits))
        query_matrix = data.draw(bit_matrix(queries, bits))
        batch_cam = CamArray(rows=rows, word_bits=bits)
        serial_cam = CamArray(rows=rows, word_bits=bits)
        batch_cam.write_rows(stored)
        serial_cam.write_rows(stored)

        distances, energy, latency = batch_cam.search_batch(query_matrix)
        serial = [serial_cam.search(query) for query in query_matrix]
        assert np.array_equal(distances, np.stack([r.distances for r in serial]))
        assert energy == pytest.approx(sum(r.energy_pj for r in serial))
        assert latency == sum(r.latency_cycles for r in serial)
        assert batch_cam.search_count == serial_cam.search_count

    def test_batch_search_matches_serial_with_noisy_sense_amp(self, rng):
        # The batched sense-amp read-out must consume the timing-noise RNG
        # stream in exactly the order the serialised searches would.
        rows, bits, queries = 12, 64, 9
        stored = rng.integers(0, 2, size=(rows, bits), dtype=np.uint8)
        query_matrix = rng.integers(0, 2, size=(queries, bits), dtype=np.uint8)

        def noisy_cam():
            cam = CamArray(rows=rows, word_bits=bits,
                           sense_amp=ClockedSelfReferencedSenseAmp(
                               word_bits=bits, timing_noise_sigma_ps=40.0, seed=99))
            cam.write_rows(stored)
            return cam

        distances, _, _ = noisy_cam().search_batch(query_matrix)
        serial_cam = noisy_cam()
        serial = np.stack([serial_cam.search(q).distances for q in query_matrix])
        assert np.array_equal(distances, serial)

    def test_partially_populated_batch(self, rng):
        cam = CamArray(rows=8, word_bits=32)
        cam.write_rows(rng.integers(0, 2, size=(3, 32), dtype=np.uint8))
        distances, _, _ = cam.search_batch(
            rng.integers(0, 2, size=(4, 32), dtype=np.uint8))
        assert np.all(distances[:, 3:] == -1)
        assert np.all(distances[:, :3] >= 0)

    def test_write_rows_energy_equals_per_row_writes(self, rng):
        bulk = CamArray(rows=8, word_bits=48)
        loop = CamArray(rows=8, word_bits=48)
        block = rng.integers(0, 2, size=(5, 48), dtype=np.uint8)
        bulk_energy = bulk.write_rows(block, start_row=2)
        loop_energy = sum(loop.write_row(2 + i, row) for i, row in enumerate(block))
        assert bulk_energy == pytest.approx(loop_energy)
        assert bulk.accumulated_write_energy_pj == pytest.approx(
            loop.accumulated_write_energy_pj)
        assert np.array_equal(bulk.read_row(4), loop.read_row(4))


class TestDynamicCamEquivalence:
    @given(data=st.data(), queries=st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_batch_search_equals_serial_at_partial_width(self, data, queries):
        stored = data.draw(bit_matrix(6, 300))
        query_matrix = data.draw(bit_matrix(queries, 300))

        def loaded():
            cam = DynamicCam(DynamicCamConfig(rows=6))
            cam.configure_for_hash_length(300)
            cam.write_rows(stored)
            return cam

        distances, energy, latency = loaded().search_batch(query_matrix)
        serial = [loaded().search(query) for query in query_matrix]
        assert np.array_equal(distances, np.stack([r.distances for r in serial]))
        assert energy == pytest.approx(sum(r.energy_pj for r in serial))
        assert latency == sum(r.latency_cycles for r in serial)


class TestSimulatorEquivalence:
    def _unpacked_kernel(self, a_packed, b_packed):
        # Decode the packed operands back to (zero-padded) bits and run the
        # legacy GEMM; the padding bits agree on both sides so the result is
        # the distance over the true hash length.
        width_a = a_packed.shape[-1] * 64
        width_b = b_packed.shape[-1] * 64
        return hamming_distance_matrix_unpacked(
            unpack_bits(a_packed, width_a), unpack_bits(b_packed, width_b))

    def test_logits_identical_with_packed_and_unpacked_kernels(self, rng, monkeypatch):
        model = build_lenet5(num_classes=4, input_size=28, width_multiplier=0.5,
                             seed=5)
        images = rng.standard_normal((2, 1, 28, 28))
        config = DeepCAMConfig(cam_rows=64)

        packed_logits = DeepCAMSimulator(config).run(model, images)
        monkeypatch.setattr(accelerator_module, "packed_hamming_matrix",
                            self._unpacked_kernel)
        unpacked_logits = DeepCAMSimulator(config).run(model, images)
        assert np.array_equal(packed_logits, unpacked_logits)

    def test_software_and_cam_hardware_paths_agree(self, rng):
        model = build_lenet5(num_classes=3, input_size=28, width_multiplier=0.5,
                             seed=11)
        images = rng.standard_normal((1, 1, 28, 28))
        config = DeepCAMConfig(cam_rows=64)
        software = DeepCAMSimulator(config).run(model, images)
        hardware = DeepCAMSimulator(config, use_cam_hardware=True).run(model, images)
        assert np.array_equal(software, hardware)
