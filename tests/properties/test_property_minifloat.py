"""Property-based tests for the minifloat format and quantisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.minifloat import MINIFLOAT8, Minifloat
from repro.nn.quantize import compute_scale, dequantize, fake_quantize, quantize


finite_floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                          allow_infinity=False)


class TestMinifloatProperties:
    @given(value=finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_quantisation_is_idempotent(self, value):
        once = MINIFLOAT8.quantize(value)
        assert MINIFLOAT8.quantize(once) == once

    @given(value=finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_quantisation_preserves_sign_and_bounds(self, value):
        quantised = MINIFLOAT8.quantize(value)
        assert abs(quantised) <= MINIFLOAT8.max_value
        if quantised != 0.0:
            assert np.sign(quantised) == np.sign(value)

    @given(value=finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_roundtrip(self, value):
        quantised = MINIFLOAT8.quantize(value)
        assert MINIFLOAT8.decode(MINIFLOAT8.encode(quantised)) == pytest.approx(quantised)

    @given(value=st.floats(min_value=1e-2, max_value=200.0, allow_nan=False),
           exponent_bits=st.integers(3, 6), mantissa_bits=st.integers(2, 6))
    @settings(max_examples=60, deadline=None)
    def test_relative_error_bound_for_normals(self, value, exponent_bits, mantissa_bits):
        fmt = Minifloat(exponent_bits=exponent_bits, mantissa_bits=mantissa_bits)
        if fmt.min_normal <= value <= fmt.max_value:
            error = abs(fmt.quantize(value) - value) / value
            assert error <= 2.0 ** -(mantissa_bits + 1) + 1e-12

    @given(a=finite_floats, b=finite_floats)
    @settings(max_examples=60, deadline=None)
    def test_quantisation_is_monotone(self, a, b):
        low, high = sorted((a, b))
        assert MINIFLOAT8.quantize(low) <= MINIFLOAT8.quantize(high)


class TestInt8QuantisationProperties:
    @given(values=st.lists(finite_floats, min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded(self, values):
        tensor = np.asarray(values)
        params = compute_scale(tensor)
        recovered = dequantize(quantize(tensor, params), params)
        assert np.max(np.abs(recovered - tensor)) <= params.scale / 2 + 1e-9

    @given(values=st.lists(finite_floats, min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_fake_quantize_idempotent(self, values):
        tensor = np.asarray(values)
        once = fake_quantize(tensor)
        assert np.allclose(fake_quantize(once), once)

    @given(values=st.lists(finite_floats, min_size=1, max_size=64),
           scale_factor=st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_scale_covers_max_abs(self, values, scale_factor):
        tensor = np.asarray(values) * scale_factor
        params = compute_scale(tensor)
        assert params.scale * params.qmax >= np.max(np.abs(tensor)) - 1e-9
