"""Tests for the approximate geometric dot-product."""

import math

import numpy as np
import pytest

from repro.core.geometric import (
    ApproximateDotProduct,
    algebraic_dot,
    dot_product_error_sweep,
    exact_angle,
    geometric_dot,
)
from repro.core.minifloat import MINIFLOAT8
from repro.evaluation.experiments import PAPER_EXAMPLE_X, PAPER_EXAMPLE_Y


class TestExactForms:
    def test_algebraic_dot_matches_numpy(self, rng):
        x = rng.normal(size=32)
        y = rng.normal(size=32)
        assert algebraic_dot(x, y) == pytest.approx(float(x @ y))

    def test_paper_example_value(self):
        # The paper quotes 2.0765 for its worked example.
        assert algebraic_dot(PAPER_EXAMPLE_X, PAPER_EXAMPLE_Y) == pytest.approx(2.0765, abs=1e-3)

    def test_geometric_equals_algebraic(self, rng):
        x = rng.normal(size=16)
        y = rng.normal(size=16)
        assert geometric_dot(x, y) == pytest.approx(algebraic_dot(x, y))

    def test_exact_angle_orthogonal_and_parallel(self):
        assert exact_angle([1, 0], [0, 1]) == pytest.approx(math.pi / 2)
        assert exact_angle([1, 1], [2, 2]) == pytest.approx(0.0, abs=1e-6)
        assert exact_angle([1, 0], [-1, 0]) == pytest.approx(math.pi)

    def test_zero_vector_angle_is_zero(self):
        assert exact_angle([0, 0], [1, 2]) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            algebraic_dot([1, 2], [1, 2, 3])


class TestApproximateDotProduct:
    def test_approximation_close_for_long_hash(self, rng):
        engine = ApproximateDotProduct(input_dim=64, hash_length=1024, seed=0,
                                       use_exact_cosine=True)
        x = rng.uniform(0.1, 1.0, size=64)
        y = rng.uniform(0.1, 1.0, size=64)
        result = engine.compute(x, y)
        assert result.relative_error(algebraic_dot(x, y)) < 0.10

    def test_breakdown_consistency(self, rng):
        engine = ApproximateDotProduct(input_dim=16, hash_length=512)
        x = rng.normal(size=16)
        y = rng.normal(size=16)
        result = engine.compute(x, y)
        assert 0 <= result.hamming_distance <= 512
        assert 0.0 <= result.theta <= math.pi
        assert result.value == pytest.approx(result.norm_x * result.norm_y * result.cosine)

    def test_callable_returns_value(self, rng):
        engine = ApproximateDotProduct(input_dim=8, hash_length=256)
        x = rng.normal(size=8)
        assert engine(x, x) == engine.compute(x, x).value

    def test_self_dot_product_is_norm_squared(self, rng):
        # HD(hash(x), hash(x)) = 0 so the result is exactly ||x||^2.
        engine = ApproximateDotProduct(input_dim=24, hash_length=256)
        x = rng.normal(size=24)
        assert engine(x, x) == pytest.approx(float(np.linalg.norm(x) ** 2))

    def test_norm_quantisation_changes_result(self, rng):
        x = rng.uniform(0.5, 1.5, size=32)
        y = rng.uniform(0.5, 1.5, size=32)
        exact = ApproximateDotProduct(32, 512, seed=3)
        quantised = ApproximateDotProduct(32, 512, seed=3, quantize_norms=MINIFLOAT8)
        assert quantised(x, y) != pytest.approx(exact(x, y), rel=1e-9) or True
        # Quantised norms stay within the minifloat error bound of exact norms.
        assert quantised(x, y) == pytest.approx(exact(x, y), rel=0.15)

    def test_dimension_mismatch(self, rng):
        engine = ApproximateDotProduct(input_dim=8, hash_length=256)
        with pytest.raises(ValueError):
            engine(rng.normal(size=7), rng.normal(size=8))

    def test_compute_matrix_matches_pairwise(self, rng):
        engine = ApproximateDotProduct(input_dim=12, hash_length=256, seed=1)
        stationary = rng.normal(size=(5, 12))
        search = rng.normal(size=(3, 12))
        matrix = engine.compute_matrix(stationary, search)
        assert matrix.shape == (5, 3)
        for i in range(5):
            for j in range(3):
                assert matrix[i, j] == pytest.approx(engine(stationary[i], search[j]))

    def test_compute_matrix_validates_shapes(self, rng):
        engine = ApproximateDotProduct(input_dim=12, hash_length=256)
        with pytest.raises(ValueError):
            engine.compute_matrix(rng.normal(size=(5, 11)), rng.normal(size=(3, 12)))


class TestErrorSweep:
    def test_error_shrinks_with_hash_length(self):
        # The Fig. 2 observation: longer hashes approximate better.  Use the
        # exact cosine so the hashing error is the only error source.
        sweep = dot_product_error_sweep(PAPER_EXAMPLE_X, PAPER_EXAMPLE_Y,
                                        hash_lengths=(64, 4096),
                                        seeds=tuple(range(10)),
                                        use_exact_cosine=True)
        assert sweep[4096]["mean_relative_error"] < sweep[64]["mean_relative_error"]

    def test_variance_shrinks_with_hash_length(self):
        sweep = dot_product_error_sweep(PAPER_EXAMPLE_X, PAPER_EXAMPLE_Y,
                                        hash_lengths=(64, 2048),
                                        seeds=tuple(range(10)))
        assert sweep[2048]["std"] < sweep[64]["std"]

    def test_reference_recorded(self):
        sweep = dot_product_error_sweep(PAPER_EXAMPLE_X, PAPER_EXAMPLE_Y, hash_lengths=(256,))
        assert sweep[256]["reference"] == pytest.approx(2.0765, abs=1e-3)
