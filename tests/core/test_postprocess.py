"""Tests for the post-processing & transformation unit."""

import numpy as np
import pytest

from repro.core.context import ContextGenerator
from repro.core.postprocess import OnlineContextGenerator, PostProcessor


class TestPostProcessorDotProducts:
    def test_zero_distance_gives_norm_product(self):
        processor = PostProcessor(hash_length=256)
        products = processor.dot_products(np.zeros((2, 3)),
                                          stationary_norms=[2.0, 3.0],
                                          query_norms=[1.0, 2.0, 4.0])
        assert products.shape == (2, 3)
        assert products[0, 0] == pytest.approx(2.0)
        assert products[1, 2] == pytest.approx(12.0)

    def test_full_distance_gives_negative_norm_product(self):
        processor = PostProcessor(hash_length=256)
        products = processor.dot_products(np.full((1, 1), 256), [2.0], [3.0])
        assert products[0, 0] == pytest.approx(-6.0)

    def test_half_distance_near_zero(self):
        processor = PostProcessor(hash_length=256)
        products = processor.dot_products(np.full((1, 1), 128), [5.0], [5.0])
        assert abs(products[0, 0]) < 0.2

    def test_energy_accumulates_per_output(self):
        processor = PostProcessor(hash_length=256)
        processor.dot_products(np.zeros((4, 8)), np.ones(4), np.ones(8))
        first = processor.energy.total_pj
        processor.dot_products(np.zeros((4, 8)), np.ones(4), np.ones(8))
        assert processor.energy.total_pj == pytest.approx(2 * first)
        assert processor.energy.cosine_pj > 0
        assert processor.energy.norm_multiply_pj > 0

    def test_validation(self):
        processor = PostProcessor(hash_length=128)
        with pytest.raises(ValueError):
            processor.dot_products(np.full((1, 1), 200), [1.0], [1.0])
        with pytest.raises(ValueError):
            processor.dot_products(np.zeros((2, 2)), [1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            PostProcessor(hash_length=0)


class TestDigitalPeripherals:
    def test_relu_clamps_and_charges_energy(self, rng):
        processor = PostProcessor(hash_length=256)
        feature_map = rng.normal(size=(2, 4, 4))
        out = processor.relu(feature_map)
        assert np.all(out >= 0)
        assert processor.energy.relu_pj > 0

    def test_bias_add(self, rng):
        processor = PostProcessor(hash_length=256)
        feature_map = rng.normal(size=(3, 2, 2))
        out = processor.add_bias(feature_map, np.array([1.0, 2.0, 3.0]))
        assert np.allclose(out - feature_map, np.array([1.0, 2.0, 3.0]).reshape(3, 1, 1))
        with pytest.raises(ValueError):
            processor.add_bias(feature_map, np.array([1.0]))

    def test_max_pool(self):
        processor = PostProcessor(hash_length=256)
        feature_map = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = processor.max_pool(feature_map, 2)
        assert np.array_equal(out[0], [[5, 7], [13, 15]])
        assert processor.energy.pooling_pj > 0

    def test_batchnorm_affine(self, rng):
        processor = PostProcessor(hash_length=256)
        feature_map = rng.normal(size=(2, 3, 3))
        scale = np.array([2.0, 0.5])
        shift = np.array([1.0, -1.0])
        out = processor.batchnorm(feature_map, scale, shift)
        expected = feature_map * scale.reshape(2, 1, 1) + shift.reshape(2, 1, 1)
        assert np.allclose(out, expected)
        with pytest.raises(ValueError):
            processor.batchnorm(feature_map, np.ones(3), np.ones(3))


class TestOnlineContextGenerator:
    def test_matches_software_generator(self, rng):
        software = ContextGenerator(input_dim=18, hash_length=256, seed=2, layer_name="conv")
        online = OnlineContextGenerator(software)
        patches = rng.normal(size=(12, 18))
        hardware_context, report = online.generate(patches)
        software_context = software.contexts_from_matrix(patches)
        # Hash bits essentially identical; norms within the minifloat grid
        # error plus the fixed-point sqrt error.
        assert report.hash_agreement > 0.97
        assert np.allclose(hardware_context.norms, software_context.norms, rtol=0.15)
        assert report.energy_pj > 0
        assert report.cycles > 0

    def test_shape_validation(self, rng):
        software = ContextGenerator(input_dim=10, hash_length=256)
        online = OnlineContextGenerator(software)
        with pytest.raises(ValueError):
            online.generate(rng.normal(size=(4, 11)))

    def test_energy_per_context_positive_and_scales_with_hash_length(self):
        short = OnlineContextGenerator(ContextGenerator(input_dim=32, hash_length=256))
        long = OnlineContextGenerator(ContextGenerator(input_dim=32, hash_length=1024))
        assert 0 < short.energy_per_context_pj() < long.energy_per_context_pj()
