"""Tests for the DeepCAM functional inference simulator."""

import numpy as np
import pytest

from repro.core.accelerator import DeepCAMSimulator
from repro.core.config import DeepCAMConfig
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential
from repro.nn.models.resnet import build_resnet18


@pytest.fixture
def tiny_cnn(rng):
    return Sequential(
        Conv2d(1, 4, kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(4 * 4 * 4, 3, rng=rng),
    )


class TestBasicOperation:
    def test_output_shape_matches_exact_model(self, tiny_cnn, rng):
        simulator = DeepCAMSimulator(DeepCAMConfig())
        images = rng.normal(size=(3, 1, 8, 8))
        approx = simulator.run(tiny_cnn, images)
        exact = tiny_cnn(images)
        assert approx.shape == exact.shape

    def test_long_hash_approximates_exact_logits(self, tiny_cnn, rng):
        simulator = DeepCAMSimulator(DeepCAMConfig().homogeneous(1024))
        images = rng.normal(size=(2, 1, 8, 8))
        approx = simulator.run(tiny_cnn, images)
        exact = tiny_cnn(images)
        # Values track the exact computation; correlation is the robust check
        # because the PWL cosine introduces a systematic scale factor.
        correlation = np.corrcoef(approx.ravel(), exact.ravel())[0, 1]
        assert correlation > 0.9

    def test_longer_hash_is_more_accurate(self, tiny_cnn, rng):
        images = rng.normal(size=(2, 1, 8, 8))
        exact = tiny_cnn(images)

        def mse(hash_length):
            config = DeepCAMConfig(use_exact_cosine=True).homogeneous(hash_length)
            approx = DeepCAMSimulator(config).run(tiny_cnn, images)
            return float(np.mean((approx - exact) ** 2))

        assert mse(1024) < mse(256)

    def test_deterministic_given_config_seed(self, tiny_cnn, rng):
        images = rng.normal(size=(2, 1, 8, 8))
        a = DeepCAMSimulator(DeepCAMConfig(seed=3)).run(tiny_cnn, images)
        b = DeepCAMSimulator(DeepCAMConfig(seed=3)).run(tiny_cnn, images)
        assert np.array_equal(a, b)

    def test_different_seed_changes_results(self, tiny_cnn, rng):
        images = rng.normal(size=(2, 1, 8, 8))
        a = DeepCAMSimulator(DeepCAMConfig(seed=3)).run(tiny_cnn, images)
        b = DeepCAMSimulator(DeepCAMConfig(seed=4)).run(tiny_cnn, images)
        assert not np.array_equal(a, b)

    def test_rejects_non_nchw_input(self, tiny_cnn, rng):
        with pytest.raises(ValueError):
            DeepCAMSimulator().run(tiny_cnn, rng.normal(size=(2, 8, 8)))

    def test_stats_populated(self, tiny_cnn, rng):
        simulator = DeepCAMSimulator(DeepCAMConfig())
        simulator.run(tiny_cnn, rng.normal(size=(1, 1, 8, 8)))
        stats = simulator.stats
        assert stats.dot_product_layers == 2      # conv + linear
        assert stats.cam_searches > 0
        assert stats.cam_fills > 0
        assert stats.contexts_hashed > 0
        assert set(stats.hash_lengths_used) == {"layer0", "layer1"}

    def test_per_layer_hash_lengths_respected(self, tiny_cnn, rng):
        config = DeepCAMConfig().with_hash_lengths({"layer0": 512, "layer1": 256})
        simulator = DeepCAMSimulator(config)
        simulator.run(tiny_cnn, rng.normal(size=(1, 1, 8, 8)))
        assert simulator.stats.hash_lengths_used == {"layer0": 512, "layer1": 256}

    def test_forward_fn_wrapper(self, tiny_cnn, rng):
        simulator = DeepCAMSimulator()
        forward = simulator.forward_fn(tiny_cnn)
        assert forward(rng.normal(size=(2, 1, 8, 8))).shape == (2, 3)

    def test_unknown_module_type_raises(self, rng):
        class Strange:
            pass

        simulator = DeepCAMSimulator()
        with pytest.raises(TypeError):
            simulator._forward_module(Strange(), rng.normal(size=(1, 1, 4, 4)))


class TestHardwarePathEquivalence:
    def test_cam_hardware_path_matches_vectorised_path(self, rng):
        # The bit-level DynamicCam path and the vectorised NumPy path must
        # produce identical logits when the sense amplifier is noise-free.
        model = Sequential(
            Conv2d(1, 3, kernel_size=3, rng=rng),
            ReLU(),
            Flatten(),
            Linear(3 * 4 * 4, 2, rng=rng),
        )
        images = rng.normal(size=(1, 1, 6, 6))
        config = DeepCAMConfig(cam_rows=16)
        software = DeepCAMSimulator(config, use_cam_hardware=False).run(model, images)
        hardware = DeepCAMSimulator(config, use_cam_hardware=True).run(model, images)
        assert np.allclose(software, hardware)

    def test_hardware_path_counts_fills(self, rng):
        model = Sequential(Conv2d(1, 2, kernel_size=3, rng=rng), Flatten(),
                           Linear(2 * 4 * 4, 2, rng=rng))
        simulator = DeepCAMSimulator(DeepCAMConfig(cam_rows=8), use_cam_hardware=True)
        simulator.run(model, rng.normal(size=(1, 1, 6, 6)))
        assert simulator.stats.cam_fills >= 2  # 16 conv patches over 8 rows


class TestResNetSupport:
    def test_resnet_forward_shape(self, rng):
        model = build_resnet18(num_classes=4, width_multiplier=0.125, seed=0)
        simulator = DeepCAMSimulator(DeepCAMConfig())
        logits = simulator.run(model, rng.normal(size=(1, 3, 32, 32)))
        assert logits.shape == (1, 4)

    def test_resnet_counts_all_dot_product_layers(self, rng):
        model = build_resnet18(num_classes=4, width_multiplier=0.125, seed=0)
        simulator = DeepCAMSimulator(DeepCAMConfig())
        simulator.run(model, rng.normal(size=(1, 3, 32, 32)))
        # stem + 16 block convs + 3 downsample convs + classifier = 21.
        assert simulator.stats.dot_product_layers == 21
