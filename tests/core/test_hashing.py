"""Tests for random-projection hashing and Hamming-distance estimation."""

import math

import numpy as np
import pytest

from repro.core.hashing import (
    CAM_CHUNK_BITS,
    HashedVector,
    RandomProjectionHasher,
    SUPPORTED_HASH_LENGTHS,
    angle_from_hamming,
    chunks_for_hash_length,
    expected_hamming,
    hamming_distance,
    hamming_distance_matrix,
    hash_collision_probability,
    validate_hash_length,
)


class TestValidation:
    def test_supported_lengths_are_chunk_multiples(self):
        assert all(k % CAM_CHUNK_BITS == 0 for k in SUPPORTED_HASH_LENGTHS)

    def test_strict_mode_rejects_unsupported(self):
        with pytest.raises(ValueError):
            validate_hash_length(300, strict=True)

    def test_non_strict_allows_any_positive(self):
        assert validate_hash_length(10) == 10

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            validate_hash_length(0)

    @pytest.mark.parametrize("length,chunks", [(256, 1), (257, 2), (512, 2), (768, 3), (1024, 4)])
    def test_chunk_count(self, length, chunks):
        assert chunks_for_hash_length(length) == chunks


class TestHasher:
    def test_deterministic_given_seed(self):
        a = RandomProjectionHasher(16, 256, seed=5)
        b = RandomProjectionHasher(16, 256, seed=5)
        vector = np.arange(16, dtype=float)
        assert np.array_equal(a.hash(vector), b.hash(vector))

    def test_different_seeds_differ(self, rng):
        vector = rng.normal(size=32)
        a = RandomProjectionHasher(32, 512, seed=0).hash(vector)
        b = RandomProjectionHasher(32, 512, seed=1).hash(vector)
        assert not np.array_equal(a, b)

    def test_output_shape_and_dtype(self, rng):
        hasher = RandomProjectionHasher(20, 256)
        bits = hasher.hash(rng.normal(size=20))
        assert bits.shape == (256,)
        assert bits.dtype == np.uint8
        assert set(np.unique(bits)).issubset({0, 1})

    def test_batch_matches_single(self, rng):
        hasher = RandomProjectionHasher(12, 256)
        matrix = rng.normal(size=(5, 12))
        batch = hasher.hash_batch(matrix)
        singles = np.stack([hasher.hash(row) for row in matrix])
        assert np.array_equal(batch, singles)

    def test_scaling_invariance(self, rng):
        # sign(alpha * x @ C) == sign(x @ C) for alpha > 0.
        hasher = RandomProjectionHasher(16, 512)
        vector = rng.normal(size=16)
        assert np.array_equal(hasher.hash(vector), hasher.hash(3.7 * vector))

    def test_negation_flips_most_bits(self, rng):
        hasher = RandomProjectionHasher(16, 1024)
        vector = rng.normal(size=16)
        flipped = hamming_distance(hasher.hash(vector), hasher.hash(-vector))
        assert flipped == 1024  # every projection changes sign (ties measure-zero)

    def test_dimension_mismatch_raises(self, rng):
        hasher = RandomProjectionHasher(16, 256)
        with pytest.raises(ValueError):
            hasher.hash(rng.normal(size=17))
        with pytest.raises(ValueError):
            hasher.hash_batch(rng.normal(size=(4, 15)))

    def test_truncated_is_prefix(self, rng):
        hasher = RandomProjectionHasher(16, 1024, seed=2)
        short = hasher.truncated(256)
        vector = rng.normal(size=16)
        assert np.array_equal(hasher.hash(vector)[:256], short.hash(vector))

    def test_truncated_rejects_longer(self):
        with pytest.raises(ValueError):
            RandomProjectionHasher(16, 256).truncated(512)

    def test_projection_matrix_is_read_only(self):
        hasher = RandomProjectionHasher(8, 256)
        with pytest.raises(ValueError):
            hasher.projection_matrix[0, 0] = 1.0

    def test_hash_with_norm(self, rng):
        hasher = RandomProjectionHasher(10, 256)
        vector = rng.normal(size=10)
        hashed = hasher.hash_with_norm(vector)
        assert isinstance(hashed, HashedVector)
        assert hashed.norm == pytest.approx(np.linalg.norm(vector))
        assert hashed.packed().size == 256 // 8

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            RandomProjectionHasher(0, 256)
        with pytest.raises(ValueError):
            RandomProjectionHasher(16, 300, strict_lengths=True)


class TestHammingDistance:
    def test_simple_distance(self):
        assert hamming_distance([0, 1, 1, 0], [1, 1, 0, 0]) == 2

    def test_zero_distance(self):
        bits = np.array([0, 1, 0, 1], dtype=np.uint8)
        assert hamming_distance(bits, bits) == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance([0, 1], [0, 1, 1])

    def test_matrix_matches_pairwise(self, rng):
        a = rng.integers(0, 2, size=(6, 64)).astype(np.uint8)
        b = rng.integers(0, 2, size=(4, 64)).astype(np.uint8)
        matrix = hamming_distance_matrix(a, b)
        for i in range(6):
            for j in range(4):
                assert matrix[i, j] == hamming_distance(a[i], b[j])

    def test_matrix_requires_matching_width(self, rng):
        with pytest.raises(ValueError):
            hamming_distance_matrix(np.zeros((2, 8)), np.zeros((2, 9)))


class TestAngleEstimation:
    def test_angle_from_hamming_extremes(self):
        assert angle_from_hamming(0, 256) == pytest.approx(0.0)
        assert angle_from_hamming(256, 256) == pytest.approx(math.pi)

    def test_angle_out_of_range_raises(self):
        with pytest.raises(ValueError):
            angle_from_hamming(300, 256)

    def test_expected_hamming_inverts_angle(self):
        theta = 1.1
        hd = expected_hamming(theta, 512)
        assert angle_from_hamming(hd, 512) == pytest.approx(theta)

    def test_collision_probability_range(self):
        assert hash_collision_probability(0.0) == 0.0
        assert hash_collision_probability(math.pi) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            hash_collision_probability(4.0)

    def test_hamming_estimates_known_angle(self, rng):
        # Two vectors at a known 60-degree angle: the normalised Hamming
        # distance should concentrate around theta/pi = 1/3 for long hashes.
        theta = math.pi / 3
        x = np.array([1.0, 0.0])
        y = np.array([math.cos(theta), math.sin(theta)])
        hasher = RandomProjectionHasher(2, 1024, seed=11)
        hd = hamming_distance(hasher.hash(x), hasher.hash(y))
        assert hd / 1024 == pytest.approx(theta / math.pi, abs=0.05)
