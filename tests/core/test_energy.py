"""Tests for the DeepCAM energy model."""

import pytest

from repro.core.config import Dataflow, DeepCAMConfig
from repro.core.energy import DeepCAMEnergyModel, energy_vs_hash_policy
from repro.workloads.specs import lenet5_trace, vgg11_trace


class TestLayerAndNetworkEnergy:
    def test_breakdown_components_positive(self):
        model = DeepCAMEnergyModel(DeepCAMConfig())
        energy = model.network_energy(lenet5_trace())
        breakdown = energy.breakdown()
        assert all(value >= 0 for value in breakdown.values())
        assert breakdown["cam_search_pj"] > 0
        assert breakdown["postprocess_pj"] > 0

    def test_total_is_sum_of_layers(self):
        model = DeepCAMEnergyModel(DeepCAMConfig())
        energy = model.network_energy(lenet5_trace())
        assert energy.total_pj == pytest.approx(sum(l.total_pj for l in energy.layers))
        assert energy.total_uj == pytest.approx(energy.total_pj * 1e-6)

    def test_first_layer_has_no_online_context_generation(self):
        model = DeepCAMEnergyModel(DeepCAMConfig())
        energy = model.network_energy(lenet5_trace())
        assert energy.layers[0].context_generation_pj == 0.0
        assert energy.layers[1].context_generation_pj > 0.0

    def test_larger_network_costs_more(self):
        model = DeepCAMEnergyModel(DeepCAMConfig())
        assert (model.network_energy(vgg11_trace()).total_uj
                > model.network_energy(lenet5_trace()).total_uj)

    def test_longer_hash_costs_more(self):
        trace = lenet5_trace()
        short = DeepCAMEnergyModel(DeepCAMConfig().homogeneous(256)).network_energy(trace)
        long = DeepCAMEnergyModel(DeepCAMConfig().homogeneous(1024)).network_energy(trace)
        assert long.total_uj > short.total_uj

    def test_vgg11_energy_in_expected_order_of_magnitude(self):
        # The paper reports 0.488 uJ for VGG11/CIFAR10 on DeepCAM with VHL;
        # our model should land within roughly an order of magnitude.
        config = DeepCAMConfig()
        energy = DeepCAMEnergyModel(config).network_energy(vgg11_trace())
        assert 0.05 < energy.total_uj < 20.0


class TestHashPolicyComparison:
    def test_vhl_between_baseline_and_max(self):
        trace = lenet5_trace()
        vhl = {layer.name: 512 for layer in trace}
        energies = energy_vs_hash_policy(trace, DeepCAMConfig(), vhl)
        assert energies["baseline_256"] <= energies["variable"] <= energies["max_1024"]

    def test_vhl_equal_to_baseline_when_all_256(self):
        trace = lenet5_trace()
        vhl = {layer.name: 256 for layer in trace}
        energies = energy_vs_hash_policy(trace, DeepCAMConfig(), vhl)
        assert energies["variable"] == pytest.approx(energies["baseline_256"], rel=1e-6)

    def test_keys_present(self):
        trace = lenet5_trace()
        energies = energy_vs_hash_policy(trace, DeepCAMConfig(),
                                         {layer.name: 768 for layer in trace})
        assert set(energies) == {"baseline_256", "max_1024", "variable"}


class TestRowAndDataflowSensitivity:
    def test_row_count_changes_search_energy(self):
        trace = vgg11_trace()
        small = DeepCAMEnergyModel(DeepCAMConfig(cam_rows=64)).network_energy(trace)
        large = DeepCAMEnergyModel(DeepCAMConfig(cam_rows=512)).network_energy(trace)
        assert small.breakdown()["cam_search_pj"] != large.breakdown()["cam_search_pj"]

    def test_dataflow_changes_write_energy(self):
        trace = lenet5_trace()
        ws = DeepCAMEnergyModel(DeepCAMConfig(dataflow=Dataflow.WEIGHT_STATIONARY)
                                ).network_energy(trace)
        as_ = DeepCAMEnergyModel(DeepCAMConfig(dataflow=Dataflow.ACTIVATION_STATIONARY)
                                 ).network_energy(trace)
        # AS writes one row per activation context, WS one per kernel: very
        # different write-energy totals.
        assert ws.breakdown()["cam_write_pj"] != as_.breakdown()["cam_write_pj"]
