"""Tests for the bit-packed signature kernels."""

import numpy as np
import pytest

import repro.bitops as bitops_impl
from repro.core.bitops import (
    INT16_SAFE_MAX_BITS,
    POPCOUNT_LUT,
    pack_bits,
    packed_hamming_matrix,
    packed_hamming_vector,
    popcount,
    popcount_lut,
    unpack_bits,
    words_for_bits,
)
from repro.core.hashing import (
    RandomProjectionHasher,
    hamming_distance_matrix,
    hamming_distance_matrix_unpacked,
)


def naive_hamming(bits_a, bits_b):
    return (bits_a[:, None, :] != bits_b[None, :, :]).sum(axis=-1).astype(np.int64)


class TestWordsForBits:
    def test_exact_multiples(self):
        assert words_for_bits(64) == 1
        assert words_for_bits(128) == 2
        assert words_for_bits(1024) == 16

    def test_rounding_up(self):
        assert words_for_bits(1) == 1
        assert words_for_bits(65) == 2
        assert words_for_bits(127) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            words_for_bits(0)
        with pytest.raises(ValueError):
            words_for_bits(-3)


class TestPopcount:
    def test_lut_is_the_byte_popcount(self):
        assert POPCOUNT_LUT.shape == (256,)
        for value in (0, 1, 2, 3, 0x0F, 0x55, 0xAA, 0xFF):
            assert POPCOUNT_LUT[value] == bin(value).count("1")

    def test_known_words(self):
        words = np.array([0, 1, 0xFFFFFFFFFFFFFFFF, 1 << 63, 0x5555555555555555],
                         dtype=np.uint64)
        expected = np.array([0, 1, 64, 1, 32])
        assert np.array_equal(popcount(words), expected)
        assert np.array_equal(popcount_lut(words), expected)

    def test_backends_agree_on_random_words(self, rng):
        words = rng.integers(0, 2 ** 64, size=(64, 7), dtype=np.uint64)
        assert np.array_equal(popcount(words), popcount_lut(words))


class TestPackUnpack:
    @pytest.mark.parametrize("bit_length", [1, 7, 8, 15, 63, 64, 65, 130, 256, 1000])
    def test_roundtrip_odd_lengths(self, rng, bit_length):
        bits = rng.integers(0, 2, size=(5, bit_length), dtype=np.uint8)
        packed = pack_bits(bits)
        assert packed.dtype == np.uint64
        assert packed.shape == (5, words_for_bits(bit_length))
        assert np.array_equal(unpack_bits(packed, bit_length), bits)

    def test_roundtrip_1d(self, rng):
        bits = rng.integers(0, 2, size=77, dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 77), bits)

    def test_padding_bits_are_zero(self):
        bits = np.ones((2, 3), dtype=np.uint8)
        packed = pack_bits(bits)
        assert np.array_equal(popcount(packed).sum(axis=-1), [3, 3])

    def test_unpack_rejects_wrong_word_count(self, rng):
        packed = pack_bits(rng.integers(0, 2, size=(2, 128), dtype=np.uint8))
        with pytest.raises(ValueError):
            unpack_bits(packed, 64)  # 1 word, but the packing has 2
        with pytest.raises(ValueError):
            unpack_bits(packed, 300)  # 5 words, but the packing has 2

    def test_rejects_empty_bit_axis(self):
        with pytest.raises(ValueError):
            pack_bits(np.empty((3, 0), dtype=np.uint8))

    def test_wide_dtypes_threshold_nonzero(self):
        # 256 must set its bit (nonzero -> 1), not wrap to 0 via uint8 cast.
        values = np.array([[0, 256, -1, 2]], dtype=np.int64)
        assert np.array_equal(unpack_bits(pack_bits(values), 4), [[0, 1, 1, 1]])


class TestPackedHammingMatrix:
    @pytest.mark.parametrize("rows_a,rows_b,bit_length", [
        (1, 1, 1),
        (3, 5, 7),
        (8, 8, 64),
        (17, 9, 65),
        (16, 32, 130),
        (33, 12, 256),
        (10, 10, 1024),
    ])
    def test_matches_naive_xor_sum(self, rng, rows_a, rows_b, bit_length):
        bits_a = rng.integers(0, 2, size=(rows_a, bit_length), dtype=np.uint8)
        bits_b = rng.integers(0, 2, size=(rows_b, bit_length), dtype=np.uint8)
        result = packed_hamming_matrix(pack_bits(bits_a), pack_bits(bits_b))
        assert result.dtype == np.int64
        assert np.array_equal(result, naive_hamming(bits_a, bits_b))

    def test_crosses_the_row_block_boundary(self, rng, monkeypatch):
        monkeypatch.setattr(bitops_impl, "KERNEL_BLOCK_ROWS", 8)
        bits_a = rng.integers(0, 2, size=(37, 130), dtype=np.uint8)
        bits_b = rng.integers(0, 2, size=(19, 130), dtype=np.uint8)
        result = packed_hamming_matrix(pack_bits(bits_a), pack_bits(bits_b))
        assert np.array_equal(result, naive_hamming(bits_a, bits_b))

    def test_empty_operands(self):
        empty = np.empty((0, 2), dtype=np.uint64)
        other = pack_bits(np.ones((3, 128), dtype=np.uint8))
        assert packed_hamming_matrix(empty, other).shape == (0, 3)
        assert packed_hamming_matrix(other, empty).shape == (3, 0)

    def test_word_count_mismatch_rejected(self, rng):
        a = pack_bits(rng.integers(0, 2, size=(2, 64), dtype=np.uint8))
        b = pack_bits(rng.integers(0, 2, size=(2, 128), dtype=np.uint8))
        with pytest.raises(ValueError):
            packed_hamming_matrix(a, b)


class TestPackedHammingVector:
    def test_matches_matrix_row(self, rng):
        bits = rng.integers(0, 2, size=(13, 200), dtype=np.uint8)
        query = rng.integers(0, 2, size=200, dtype=np.uint8)
        packed = pack_bits(bits)
        packed_query = pack_bits(query)
        expected = naive_hamming(query[None, :], bits)[0]
        assert np.array_equal(packed_hamming_vector(packed_query, packed), expected)

    def test_rejects_mismatched_words(self, rng):
        bits = pack_bits(rng.integers(0, 2, size=(4, 128), dtype=np.uint8))
        query = pack_bits(rng.integers(0, 2, size=64, dtype=np.uint8))
        with pytest.raises(ValueError):
            packed_hamming_vector(query, bits)


class TestPackedHashingSurface:
    def test_hash_packed_matches_pack_of_hash(self, rng):
        hasher = RandomProjectionHasher(input_dim=32, hash_length=100, seed=3)
        vector = rng.standard_normal(32)
        assert np.array_equal(hasher.hash_packed(vector),
                              pack_bits(hasher.hash(vector)))

    def test_hash_batch_packed_matches_pack_of_hash_batch(self, rng):
        hasher = RandomProjectionHasher(input_dim=32, hash_length=256, seed=3)
        matrix = rng.standard_normal((6, 32))
        assert np.array_equal(hasher.hash_batch_packed(matrix),
                              pack_bits(hasher.hash_batch(matrix)))

    def test_hashed_vector_packed_words_cached_and_exact(self, rng):
        hasher = RandomProjectionHasher(input_dim=16, hash_length=70, seed=1)
        hashed = hasher.hash_with_norm(rng.standard_normal(16))
        words = hashed.packed_words
        assert np.array_equal(words, pack_bits(hashed.bits))
        assert np.array_equal(unpack_bits(words, 70), hashed.bits)
        assert hashed.packed_words is words  # cached, not recomputed
        with pytest.raises(ValueError):
            words[0] = 0  # the cache is read-only


class TestHammingDistanceMatrixDispatch:
    def test_packed_and_unpacked_paths_agree(self, rng):
        bits_a = rng.integers(0, 2, size=(12, 300), dtype=np.uint8)
        bits_b = rng.integers(0, 2, size=(7, 300), dtype=np.uint8)
        assert np.array_equal(hamming_distance_matrix(bits_a, bits_b),
                              hamming_distance_matrix_unpacked(bits_a, bits_b))

    def test_unpacked_promotes_dtype_beyond_int16_bound(self, rng):
        # At k > 32767 the +-1 agreement matrix no longer fits in int16; the
        # guard must promote the accumulator instead of silently wrapping.
        k = INT16_SAFE_MAX_BITS + 100
        bits_a = np.ones((2, k), dtype=np.uint8)
        bits_b = np.zeros((2, k), dtype=np.uint8)
        bits_b[1] = 1
        distances = hamming_distance_matrix_unpacked(bits_a, bits_b)
        assert np.array_equal(distances, [[k, 0], [k, 0]])
        assert np.array_equal(hamming_distance_matrix(bits_a, bits_b), distances)

    def test_unpacked_regression_at_the_boundary(self, rng):
        # k exactly at the int16-safe bound still uses the narrow path and
        # must be exact for the worst case (all bits disagree).
        k = INT16_SAFE_MAX_BITS
        bits_a = np.ones((1, k), dtype=np.uint8)
        bits_b = np.zeros((1, k), dtype=np.uint8)
        assert hamming_distance_matrix_unpacked(bits_a, bits_b)[0, 0] == k
        assert hamming_distance_matrix(bits_a, bits_b)[0, 0] == k


class TestThreadedKernel:
    """Row-block threading of the packed kernel (REPRO_NUM_THREADS lever)."""

    def test_threaded_matches_serial_across_block_boundaries(self, rng):
        # Rows chosen to span multiple kernel blocks with a ragged tail.
        bits_a = rng.integers(0, 2, size=(1200, 130), dtype=np.uint8)
        bits_b = rng.integers(0, 2, size=(333, 130), dtype=np.uint8)
        packed_a, packed_b = pack_bits(bits_a), pack_bits(bits_b)
        serial = packed_hamming_matrix(packed_a, packed_b, num_threads=1)
        assert np.array_equal(serial, naive_hamming(bits_a, bits_b))
        for workers in (2, 3, 8):
            threaded = packed_hamming_matrix(packed_a, packed_b,
                                             num_threads=workers)
            assert np.array_equal(threaded, serial)

    def test_env_var_engages_threads(self, rng, monkeypatch):
        bits_a = rng.integers(0, 2, size=(1100, 64), dtype=np.uint8)
        bits_b = rng.integers(0, 2, size=(64, 64), dtype=np.uint8)
        packed_a, packed_b = pack_bits(bits_a), pack_bits(bits_b)
        serial = packed_hamming_matrix(packed_a, packed_b)
        monkeypatch.setenv(bitops_impl.NUM_THREADS_ENV, "2")
        assert np.array_equal(packed_hamming_matrix(packed_a, packed_b), serial)

    def test_resolve_num_threads_contract(self, monkeypatch):
        monkeypatch.delenv(bitops_impl.NUM_THREADS_ENV, raising=False)
        assert bitops_impl.resolve_num_threads() == 1
        assert bitops_impl.resolve_num_threads(7) == 7
        # 0 = one thread per CPU, explicitly or via the environment.
        assert bitops_impl.resolve_num_threads(0) >= 1
        monkeypatch.setenv(bitops_impl.NUM_THREADS_ENV, "3")
        assert bitops_impl.resolve_num_threads() == 3
        monkeypatch.setenv(bitops_impl.NUM_THREADS_ENV, "0")
        assert bitops_impl.resolve_num_threads() >= 1

    def test_resolve_num_threads_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(bitops_impl.NUM_THREADS_ENV, "many")
        with pytest.raises(ValueError, match="REPRO_NUM_THREADS"):
            bitops_impl.resolve_num_threads()
        with pytest.raises(ValueError):
            bitops_impl.resolve_num_threads(-1)

    def test_threaded_small_input_falls_back_to_serial_path(self, rng):
        # A single block never pays the executor overhead; results identical.
        bits = rng.integers(0, 2, size=(8, 96), dtype=np.uint8)
        packed = pack_bits(bits)
        assert np.array_equal(
            packed_hamming_matrix(packed, packed, num_threads=4),
            naive_hamming(bits, bits))
