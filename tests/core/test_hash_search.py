"""Tests for the variable-hash-length search."""

import numpy as np
import pytest

from repro.core.config import DeepCAMConfig
from repro.core.hash_search import (
    HashLengthSearchResult,
    VariableHashLengthSearch,
    accuracy_vs_hash_length,
)
from repro.nn.train import evaluate_accuracy


class TestSearchResultDataclass:
    def test_derived_properties(self):
        result = HashLengthSearchResult(
            baseline_accuracy=0.9, max_hash_accuracy=0.88, deepcam_accuracy=0.86,
            layer_hash_lengths={"layer0": 256, "layer1": 768})
        assert result.accuracy_drop == pytest.approx(0.04)
        assert result.mean_hash_length == pytest.approx(512)

    def test_empty_lengths(self):
        result = HashLengthSearchResult(0.5, 0.5, 0.5, {})
        assert result.mean_hash_length == 0.0


class TestSearchConstruction:
    def test_rejects_unsupported_lengths(self):
        with pytest.raises(ValueError):
            VariableHashLengthSearch(candidate_lengths=(100, 256))

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            VariableHashLengthSearch(candidate_lengths=())

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            VariableHashLengthSearch(tolerance=-0.1)

    def test_max_length_is_largest_candidate(self):
        search = VariableHashLengthSearch(candidate_lengths=(512, 256))
        assert search.max_length == 512


class TestGreedySearch:
    def test_search_on_trained_model(self, trained_tiny_lenet):
        model, dataset, baseline_accuracy = trained_tiny_lenet
        images = dataset.test.images[:80]
        labels = dataset.test.labels[:80]
        search = VariableHashLengthSearch(
            config=DeepCAMConfig(cam_rows=64),
            candidate_lengths=(256, 512, 1024),
            tolerance=0.05, batch_size=40)
        result = search.search(model, images, labels)

        # Baseline accuracy matches an independent evaluation on the subset.
        assert result.baseline_accuracy == pytest.approx(
            evaluate_accuracy(model, images, labels), abs=1e-9)
        # One hash length per dot-product layer (LeNet5 has 5).
        assert len(result.layer_hash_lengths) == 5
        assert all(k in (256, 512, 1024) for k in result.layer_hash_lengths.values())
        # DeepCAM accuracy stays within the configured tolerance of the
        # all-max accuracy (that is the search's stopping criterion).
        assert result.deepcam_accuracy >= result.max_hash_accuracy - 0.05 - 1e-9
        # And the whole point of the paper: the drop versus the software
        # baseline is small.
        assert result.accuracy_drop <= 0.15
        assert result.evaluations >= 2

    def test_variable_lengths_not_all_maximum(self, trained_tiny_lenet):
        # At least one layer should accept a shorter hash than the maximum --
        # the observation motivating variable hash lengths.
        model, dataset, _ = trained_tiny_lenet
        search = VariableHashLengthSearch(
            config=DeepCAMConfig(cam_rows=64),
            candidate_lengths=(256, 1024), tolerance=0.08, batch_size=40)
        result = search.search(model, dataset.test.images[:60], dataset.test.labels[:60])
        assert min(result.layer_hash_lengths.values()) < 1024


class TestAccuracySweep:
    def test_accuracy_increases_with_hash_length_on_average(self, trained_tiny_lenet):
        model, dataset, _ = trained_tiny_lenet
        sweep = accuracy_vs_hash_length(model, dataset.test.images[:80],
                                        dataset.test.labels[:80],
                                        hash_lengths=(256, 1024), batch_size=40)
        assert set(sweep) == {256, 1024}
        assert sweep[1024] >= sweep[256] - 0.05
