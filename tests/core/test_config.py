"""Tests for the DeepCAM configuration object."""

import pytest

from repro.cam.cell import CellTechnology
from repro.core.config import (
    Dataflow,
    DeepCAMConfig,
    HashLengthPolicy,
    SUPPORTED_HASH_LENGTHS,
    SUPPORTED_ROW_COUNTS,
)


class TestDefaults:
    def test_paper_defaults(self):
        config = DeepCAMConfig()
        assert config.cam_rows == 64
        assert config.dataflow is Dataflow.ACTIVATION_STATIONARY
        assert config.cell_technology is CellTechnology.FEFET
        assert config.clock_frequency_hz == 300e6

    def test_supported_constants(self):
        assert SUPPORTED_HASH_LENGTHS == (256, 512, 768, 1024)
        assert SUPPORTED_ROW_COUNTS == (64, 128, 256, 512)

    def test_cycle_time(self):
        assert DeepCAMConfig().cycle_time_s == pytest.approx(1 / 300e6)


class TestValidation:
    def test_invalid_rows(self):
        with pytest.raises(ValueError):
            DeepCAMConfig(cam_rows=0)

    def test_invalid_homogeneous_length(self):
        with pytest.raises(ValueError):
            DeepCAMConfig(homogeneous_hash_length=300)

    def test_invalid_layer_hash_length(self):
        with pytest.raises(ValueError):
            DeepCAMConfig(layer_hash_lengths={"layer0": 100})

    def test_invalid_latencies(self):
        with pytest.raises(ValueError):
            DeepCAMConfig(search_latency_cycles=0)
        with pytest.raises(ValueError):
            DeepCAMConfig(postprocess_lanes=0)

    def test_negative_layer_seed_index(self):
        with pytest.raises(ValueError):
            DeepCAMConfig().layer_seed(-1)


class TestHashLengthResolution:
    def test_homogeneous_policy_ignores_layer_table(self):
        config = DeepCAMConfig(hash_policy=HashLengthPolicy.HOMOGENEOUS,
                               homogeneous_hash_length=512,
                               layer_hash_lengths={"layer0": 1024})
        assert config.hash_length_for("layer0") == 512

    def test_variable_policy_uses_layer_table_with_fallback(self):
        config = DeepCAMConfig(hash_policy=HashLengthPolicy.VARIABLE,
                               homogeneous_hash_length=256,
                               layer_hash_lengths={"layer1": 768})
        assert config.hash_length_for("layer1") == 768
        assert config.hash_length_for("layer9") == 256

    def test_layer_seed_deterministic_and_distinct(self):
        config = DeepCAMConfig(seed=7)
        assert config.layer_seed(0) == DeepCAMConfig(seed=7).layer_seed(0)
        assert config.layer_seed(0) != config.layer_seed(1)
        assert DeepCAMConfig(seed=7).layer_seed(0) != DeepCAMConfig(seed=8).layer_seed(0)


class TestDerivedCopies:
    def test_with_rows(self):
        assert DeepCAMConfig().with_rows(512).cam_rows == 512

    def test_with_dataflow(self):
        config = DeepCAMConfig().with_dataflow(Dataflow.WEIGHT_STATIONARY)
        assert config.dataflow is Dataflow.WEIGHT_STATIONARY

    def test_with_hash_lengths_switches_policy(self):
        config = DeepCAMConfig().with_hash_lengths({"layer0": 512})
        assert config.hash_policy is HashLengthPolicy.VARIABLE
        assert config.hash_length_for("layer0") == 512

    def test_homogeneous_clears_layer_table(self):
        config = DeepCAMConfig(layer_hash_lengths={"layer0": 512}).homogeneous(1024)
        assert config.hash_policy is HashLengthPolicy.HOMOGENEOUS
        assert config.hash_length_for("layer0") == 1024
        assert config.layer_hash_lengths == {}

    def test_copies_do_not_mutate_original(self):
        config = DeepCAMConfig()
        config.with_rows(512)
        assert config.cam_rows == 64
