"""Tests for the software context generator."""

import numpy as np
import pytest

from repro.core.context import ContextGenerator, LayerContext
from repro.core.minifloat import MINIFLOAT8
from repro.nn.layers import Conv2d, Linear


class TestLayerContext:
    def test_validation(self, rng):
        bits = rng.integers(0, 2, size=(4, 256)).astype(np.uint8)
        norms = rng.uniform(1, 2, size=4)
        context = LayerContext(bits=bits, norms=norms, hash_length=256,
                               input_dim=9, layer_name="conv")
        assert context.count == 4
        assert context.storage_bits() == 4 * (256 + 8)
        with pytest.raises(ValueError):
            LayerContext(bits=bits, norms=norms[:3], hash_length=256,
                         input_dim=9, layer_name="conv")
        with pytest.raises(ValueError):
            LayerContext(bits=bits, norms=norms, hash_length=128,
                         input_dim=9, layer_name="conv")


class TestWeightContexts:
    def test_conv_layer_contexts(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, rng=rng)
        generator = ContextGenerator(input_dim=27, hash_length=256, seed=0)
        contexts = generator.weight_contexts(layer)
        assert contexts.count == 8
        assert contexts.bits.shape == (8, 256)

    def test_linear_layer_contexts(self, rng):
        layer = Linear(64, 10, rng=rng)
        generator = ContextGenerator(input_dim=64, hash_length=512)
        contexts = generator.weight_contexts(layer)
        assert contexts.count == 10
        assert contexts.hash_length == 512

    def test_norms_are_minifloat_quantised_by_default(self, rng):
        layer = Linear(32, 4, rng=rng)
        generator = ContextGenerator(input_dim=32, hash_length=256)
        contexts = generator.weight_contexts(layer)
        exact = np.linalg.norm(layer.weight_matrix(), axis=1)
        assert np.allclose(contexts.norms, MINIFLOAT8.quantize_array(exact))

    def test_exact_norms_when_format_disabled(self, rng):
        layer = Linear(32, 4, rng=rng)
        generator = ContextGenerator(input_dim=32, hash_length=256, norm_format=None)
        contexts = generator.weight_contexts(layer)
        assert np.allclose(contexts.norms, np.linalg.norm(layer.weight_matrix(), axis=1))

    def test_accepts_raw_matrix(self, rng):
        matrix = rng.normal(size=(5, 16))
        generator = ContextGenerator(input_dim=16, hash_length=256)
        assert generator.weight_contexts(matrix).count == 5

    def test_dimension_mismatch_raises(self, rng):
        generator = ContextGenerator(input_dim=16, hash_length=256)
        with pytest.raises(ValueError):
            generator.contexts_from_matrix(rng.normal(size=(5, 17)))


class TestActivationContexts:
    def test_patch_extraction_matches_expected_count(self, rng):
        generator = ContextGenerator(input_dim=1 * 3 * 3, hash_length=256)
        image = rng.normal(size=(1, 8, 8))
        contexts, (out_h, out_w) = generator.activation_contexts(image, kernel_size=3,
                                                                 stride=1, padding=1)
        assert (out_h, out_w) == (8, 8)
        assert contexts.count == 64

    def test_accepts_batched_single_image(self, rng):
        generator = ContextGenerator(input_dim=3 * 3 * 3, hash_length=256)
        image = rng.normal(size=(1, 3, 6, 6))
        contexts, _ = generator.activation_contexts(image, kernel_size=3)
        assert contexts.count == 16

    def test_rejects_multi_image_batch(self, rng):
        generator = ContextGenerator(input_dim=9, hash_length=256)
        with pytest.raises(ValueError):
            generator.activation_contexts(rng.normal(size=(2, 1, 6, 6)), kernel_size=3)

    def test_patch_dimension_mismatch_raises(self, rng):
        generator = ContextGenerator(input_dim=10, hash_length=256)
        with pytest.raises(ValueError):
            generator.activation_contexts(rng.normal(size=(1, 6, 6)), kernel_size=3)


class TestSharedProjection:
    def test_weights_and_activations_share_projection(self, rng):
        # The Hamming distance between a weight context and an activation
        # context is only meaningful because both use the same matrix.
        generator = ContextGenerator(input_dim=16, hash_length=1024, seed=3,
                                     norm_format=None)
        vector = rng.normal(size=16)
        as_weight = generator.weight_contexts(vector.reshape(1, -1))
        as_activation = generator.activation_contexts_from_patches(vector.reshape(1, -1))
        assert np.array_equal(as_weight.bits, as_activation.bits)

    def test_same_seed_same_generator(self, rng):
        vector = rng.normal(size=16)
        a = ContextGenerator(16, 256, seed=5).contexts_from_matrix(vector.reshape(1, -1))
        b = ContextGenerator(16, 256, seed=5).contexts_from_matrix(vector.reshape(1, -1))
        assert np.array_equal(a.bits, b.bits)
