"""Tests for the 8-bit minifloat format."""

import numpy as np
import pytest

from repro.core.minifloat import MINIFLOAT8, Minifloat


class TestFormatProperties:
    def test_default_format_is_8_bits(self):
        assert MINIFLOAT8.total_bits == 8

    def test_unsigned_format_width(self):
        fmt = Minifloat(exponent_bits=4, mantissa_bits=3, signed=False)
        assert fmt.total_bits == 7

    def test_max_value_formula(self):
        fmt = Minifloat(exponent_bits=4, mantissa_bits=3)
        assert fmt.max_value == pytest.approx((2 - 2 ** -3) * 2 ** (15 - 7))

    def test_min_subnormal_below_min_normal(self):
        assert MINIFLOAT8.min_subnormal < MINIFLOAT8.min_normal

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            Minifloat(exponent_bits=1, mantissa_bits=3)
        with pytest.raises(ValueError):
            Minifloat(exponent_bits=4, mantissa_bits=0)


class TestQuantisation:
    def test_representable_values_are_fixed_points(self):
        fmt = MINIFLOAT8
        for value in (0.0, 1.0, 1.5, 2.0, 3.5, 0.25, -2.0, fmt.max_value):
            assert fmt.quantize(value) == pytest.approx(value)

    def test_saturates_above_max(self):
        fmt = MINIFLOAT8
        assert fmt.quantize(1e6) == pytest.approx(fmt.max_value)
        assert fmt.quantize(-1e6) == pytest.approx(-fmt.max_value)

    def test_relative_error_bounded_for_normals(self, rng):
        fmt = MINIFLOAT8
        values = rng.uniform(fmt.min_normal, fmt.max_value / 2, size=500)
        errors = fmt.relative_error(values)
        # 3 mantissa bits -> worst-case relative error 1/2^4 = 6.25 %.
        assert np.max(errors) <= 2 ** -(fmt.mantissa_bits + 1) + 1e-9

    def test_zero_maps_to_zero(self):
        assert MINIFLOAT8.quantize(0.0) == 0.0

    def test_unsigned_rejects_negative(self):
        fmt = Minifloat(signed=False)
        with pytest.raises(ValueError):
            fmt.quantize(-1.0)

    def test_quantize_array_matches_scalar(self, rng):
        fmt = MINIFLOAT8
        values = rng.uniform(-100, 100, size=64)
        array = fmt.quantize_array(values)
        scalars = np.array([fmt.quantize(float(v)) for v in values])
        assert np.allclose(array, scalars)

    def test_quantisation_idempotent(self, rng):
        fmt = MINIFLOAT8
        values = fmt.quantize_array(rng.uniform(-50, 50, size=100))
        assert np.allclose(fmt.quantize_array(values), values)


class TestEncodeDecode:
    def test_roundtrip_on_representable_values(self):
        fmt = MINIFLOAT8
        for value in (0.0, 1.0, -1.0, 0.125, 3.5, 240.0, -0.0625):
            assert fmt.decode(fmt.encode(value)) == pytest.approx(fmt.quantize(value))

    def test_all_codes_decode_and_reencode(self):
        fmt = MINIFLOAT8
        for word in range(256):
            value = fmt.decode(word)
            # decode -> encode may normalise -0.0 to +0.0 but preserves value.
            assert fmt.decode(fmt.encode(value)) == pytest.approx(value)

    def test_encode_rejects_out_of_range_words(self):
        with pytest.raises(ValueError):
            MINIFLOAT8.decode(256)
        with pytest.raises(ValueError):
            MINIFLOAT8.decode(-1)

    def test_encode_array_dtype(self):
        codes = MINIFLOAT8.encode_array([1.0, 2.0, 3.0])
        assert codes.dtype == np.uint8

    def test_decode_array_roundtrip(self, rng):
        fmt = MINIFLOAT8
        values = fmt.quantize_array(rng.uniform(0.1, 100, size=32))
        assert np.allclose(fmt.decode_array(fmt.encode_array(values)), values)

    def test_monotonic_encoding_of_positive_values(self):
        # Larger positive values never get smaller exponent/mantissa codes.
        fmt = Minifloat(signed=False)
        values = [0.1, 0.5, 1.0, 2.0, 10.0, 100.0]
        codes = [fmt.encode(v) for v in values]
        assert codes == sorted(codes)
