"""Tests for the DeepCAM mapping (cycle/utilization) model."""

import math

import pytest

from repro.core.config import Dataflow, DeepCAMConfig
from repro.core.mapping import DeepCAMMapper, compare_dataflows, sweep_rows
from repro.workloads.specs import ConvSpec, FCSpec, lenet5_trace, vgg11_trace


@pytest.fixture
def lenet_conv1():
    # The paper's worked example: 32x32 single-channel input, 6 kernels of
    # 5x5, stride 1 -> 784 activation contexts, 6 weight contexts.
    return ConvSpec("conv1", in_channels=1, out_channels=6, kernel_size=5, input_size=32)


class TestPaperWorkedExample:
    def test_weight_stationary_utilization_is_9_4_percent(self, lenet_conv1):
        config = DeepCAMConfig(cam_rows=64, dataflow=Dataflow.WEIGHT_STATIONARY)
        mapping = DeepCAMMapper(config).map_layer(lenet_conv1)
        # Paper Sec. IV-B: 6 occupied rows out of 64 = 9.4 % utilization.
        assert mapping.utilization == pytest.approx(6 / 64, abs=1e-3)

    def test_activation_stationary_utilization_is_much_higher(self, lenet_conv1):
        config = DeepCAMConfig(cam_rows=64, dataflow=Dataflow.ACTIVATION_STATIONARY)
        mapping = DeepCAMMapper(config).map_layer(lenet_conv1)
        # 784 contexts over ceil(784/64)=13 fills -> 94 % average occupancy.
        assert mapping.utilization > 0.9

    def test_activation_stationary_needs_fewer_searches(self, lenet_conv1):
        ws = DeepCAMMapper(DeepCAMConfig(dataflow=Dataflow.WEIGHT_STATIONARY)).map_layer(lenet_conv1)
        as_ = DeepCAMMapper(DeepCAMConfig(dataflow=Dataflow.ACTIVATION_STATIONARY)).map_layer(lenet_conv1)
        assert ws.searches == 784          # one search per activation context
        assert as_.searches == 13 * 6      # 13 fills x 6 kernel queries
        assert as_.searches < ws.searches


class TestLayerMapping:
    def test_fc_layer_prefers_weight_stationary(self):
        layer = FCSpec("fc", in_features=400, out_features=120)
        ws = DeepCAMMapper(DeepCAMConfig(dataflow=Dataflow.WEIGHT_STATIONARY)).map_layer(layer)
        as_ = DeepCAMMapper(DeepCAMConfig(dataflow=Dataflow.ACTIVATION_STATIONARY)).map_layer(layer)
        assert ws.searches < as_.searches

    def test_auto_dataflow_picks_minimum_searches(self, lenet_conv1):
        auto = DeepCAMMapper(DeepCAMConfig(dataflow=Dataflow.AUTO))
        conv_mapping = auto.map_layer(lenet_conv1)
        fc_mapping = auto.map_layer(FCSpec("fc", 400, 120))
        assert conv_mapping.searches == 13 * 6          # activation stationary
        assert fc_mapping.searches == math.ceil(120 / 64)  # weight stationary

    def test_hash_length_resolution(self, lenet_conv1):
        config = DeepCAMConfig().with_hash_lengths({"conv1": 768})
        mapping = DeepCAMMapper(config).map_layer(lenet_conv1)
        assert mapping.hash_length == 768

    def test_explicit_hash_length_overrides_config(self, lenet_conv1):
        mapping = DeepCAMMapper(DeepCAMConfig()).map_layer(lenet_conv1, hash_length=1024)
        assert mapping.hash_length == 1024

    def test_postprocess_cycles_scale_with_outputs(self, lenet_conv1):
        few_lanes = DeepCAMConfig(postprocess_lanes=1)
        many_lanes = DeepCAMConfig(postprocess_lanes=64)
        few = DeepCAMMapper(few_lanes).map_layer(lenet_conv1)
        many = DeepCAMMapper(many_lanes).map_layer(lenet_conv1)
        assert few.postprocess_cycles == lenet_conv1.output_elements
        assert many.postprocess_cycles == math.ceil(lenet_conv1.output_elements / 64)
        assert few.cycles >= many.cycles

    def test_activation_write_cycles_optional(self, lenet_conv1):
        hidden = DeepCAMMapper(DeepCAMConfig()).map_layer(lenet_conv1)
        counted = DeepCAMMapper(DeepCAMConfig(count_activation_write_cycles=True)).map_layer(lenet_conv1)
        assert hidden.write_cycles == 0
        assert counted.write_cycles == 784
        assert counted.cycles > hidden.cycles

    def test_weight_stationary_has_no_runtime_writes(self, lenet_conv1):
        config = DeepCAMConfig(dataflow=Dataflow.WEIGHT_STATIONARY,
                               count_activation_write_cycles=True)
        assert DeepCAMMapper(config).map_layer(lenet_conv1).write_cycles == 0


class TestNetworkMapping:
    def test_total_cycles_is_sum_of_layers(self):
        mapping = DeepCAMMapper(DeepCAMConfig()).map_network(lenet5_trace())
        assert mapping.total_cycles == sum(m.cycles for m in mapping.layers)
        assert mapping.total_searches == sum(m.searches for m in mapping.layers)

    def test_latency_uses_clock(self):
        mapping = DeepCAMMapper(DeepCAMConfig()).map_network(lenet5_trace())
        assert mapping.latency_s == pytest.approx(mapping.total_cycles / 300e6)

    def test_layer_lookup(self):
        mapping = DeepCAMMapper(DeepCAMConfig()).map_network(lenet5_trace())
        assert mapping.layer_by_name("conv1").layer.name == "conv1"
        with pytest.raises(KeyError):
            mapping.layer_by_name("missing")

    def test_more_rows_reduce_cycles(self):
        trace = vgg11_trace()
        results = sweep_rows(trace, DeepCAMConfig(), row_counts=(64, 128, 256, 512))
        cycles = [results[r].total_cycles for r in (64, 128, 256, 512)]
        assert cycles == sorted(cycles, reverse=True)
        assert cycles[0] > cycles[-1]

    def test_compare_dataflows_returns_both(self):
        results = compare_dataflows(lenet5_trace(), DeepCAMConfig())
        assert set(results) == {"weight_stationary", "activation_stationary"}

    def test_lenet_activation_stationary_beats_weight_stationary(self):
        # The Fig. 9 claim for the LeNet/MNIST workload.
        results = compare_dataflows(lenet5_trace(), DeepCAMConfig())
        assert (results["activation_stationary"].total_cycles
                <= results["weight_stationary"].total_cycles)

    def test_per_layer_hash_override_applied_to_network(self):
        trace = lenet5_trace()
        lengths = {layer.name: 512 for layer in trace}
        mapping = DeepCAMMapper(DeepCAMConfig()).map_network(trace, hash_lengths=lengths)
        assert all(m.hash_length == 512 for m in mapping.layers)

    def test_mean_utilization_between_zero_and_one(self):
        for trace in (lenet5_trace(), vgg11_trace()):
            mapping = DeepCAMMapper(DeepCAMConfig()).map_network(trace)
            assert 0.0 < mapping.mean_utilization <= 1.0
