"""ShardRouter: replica selection policies and in-flight accounting."""

import threading

import pytest

from repro.shard import ROUTING_POLICIES, ShardRouter


class TestRoundRobin:
    def test_cycles_replicas_per_shard(self):
        router = ShardRouter(num_shards=2, num_replicas=3, policy="round_robin")
        picks = []
        for _ in range(6):
            selection = router.begin_search()
            picks.append(selection)
            router.end_search(selection)
        assert picks == [(0, 0), (1, 1), (2, 2), (0, 0), (1, 1), (2, 2)]

    def test_single_replica_always_zero(self):
        router = ShardRouter(num_shards=4, num_replicas=1)
        for _ in range(3):
            selection = router.begin_search()
            assert selection == (0, 0, 0, 0)
            router.end_search(selection)


class TestLeastLoaded:
    def test_spreads_concurrent_searches(self):
        router = ShardRouter(num_shards=1, num_replicas=3, policy="least_loaded")
        first = router.begin_search()
        second = router.begin_search()
        third = router.begin_search()
        assert {first[0], second[0], third[0]} == {0, 1, 2}
        router.end_search(first)
        # Replica 0 is free again and ties break low: picked next.
        fourth = router.begin_search()
        assert fourth[0] == 0
        for selection in (second, third, fourth):
            router.end_search(selection)

    def test_in_flight_tracks_begin_end(self):
        router = ShardRouter(num_shards=2, num_replicas=2, policy="least_loaded")
        selection = router.begin_search()
        for shard, replica in enumerate(selection):
            assert router.in_flight(shard, replica) == 1
        router.end_search(selection)
        for shard, replica in enumerate(selection):
            assert router.in_flight(shard, replica) == 0


class TestAccounting:
    def test_stats_count_selections(self):
        router = ShardRouter(num_shards=2, num_replicas=2)
        for _ in range(4):
            router.end_search(router.begin_search())
        stats = router.stats()
        assert stats["selections"] == [[2, 2], [2, 2]]
        assert stats["policy"] == "round_robin"
        assert stats["max_in_flight"] == 1

    def test_end_search_validates(self):
        router = ShardRouter(num_shards=2, num_replicas=2)
        with pytest.raises(ValueError):
            router.end_search((0,))  # wrong arity
        with pytest.raises(RuntimeError):
            router.end_search((0, 0))  # never began

    def test_thread_safety_of_begin_end(self):
        router = ShardRouter(num_shards=3, num_replicas=4, policy="least_loaded")

        def worker():
            for _ in range(200):
                router.end_search(router.begin_search())

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = router.stats()
        assert sum(sum(s) for s in stats["selections"]) == 4 * 200 * 3
        assert all(router.in_flight(s, r) == 0
                   for s in range(3) for r in range(4))


class TestValidation:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ShardRouter(num_shards=0)
        with pytest.raises(ValueError):
            ShardRouter(num_shards=1, num_replicas=0)
        with pytest.raises(ValueError):
            ShardRouter(num_shards=1, policy="random")
        assert set(ROUTING_POLICIES) == {"round_robin", "least_loaded"}
