"""Acceptance criteria of the sharding subsystem (ISSUE 4).

On the 1000-request uniform load over a row set that exceeds one CAM
array's capacity (:data:`~repro.api.bench.SHARD_ACCEPTANCE_WORKLOAD`), the
replica-routed sharded cluster must reach >= 1.5x the throughput of the
single-engine alternative -- one capacity-limited array time-multiplexed
over the row set -- while serving bit-identical responses.  The same
workload is recorded as ``shard/*`` records in ``BENCH_e2e.json`` by
``make bench``, whose committed summary must carry a passing verdict.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api.bench import (
    SHARD_ACCEPTANCE_MIN_SPEEDUP,
    SHARD_ACCEPTANCE_REQUESTS,
    SHARD_ACCEPTANCE_WORKLOAD,
    SHARD_SCALING_COUNTS,
    _engine_serve_seconds,
)
from repro.shard import ShardedEngine, TimeMultiplexedCamEngine

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def build_acceptance_engines(seed: int = 1):
    workload = SHARD_ACCEPTANCE_WORKLOAD
    rng = np.random.default_rng(0)
    prototypes = rng.standard_normal((workload["rows"], workload["input_dim"]))
    sharded = ShardedEngine(
        prototypes, num_shards=workload["rows"] // workload["capacity"],
        num_replicas=workload["num_replicas"], routing="least_loaded",
        hash_length=workload["hash_length"], seed=seed)
    multiplexed = TimeMultiplexedCamEngine(
        prototypes, capacity=workload["capacity"],
        hash_length=workload["hash_length"], seed=seed)
    return sharded, multiplexed, rng


class TestThroughputAcceptance:
    def test_replica_routed_cluster_is_1_5x_over_single_engine(self):
        sharded, multiplexed, rng = build_acceptance_engines()
        workload = SHARD_ACCEPTANCE_WORKLOAD
        queries = rng.standard_normal((SHARD_ACCEPTANCE_REQUESTS,
                                       workload["input_dim"]))
        # Same answers first: the gate must compare work, not math.
        probe = sharded.prepare(queries[:32])
        assert np.array_equal(
            sharded.execute(probe),
            multiplexed.execute(multiplexed.prepare(queries[:32])))
        # Best-of-3 per engine smooths scheduler hiccups on shared CI
        # boxes without hiding a real regression.
        routed_s = min(
            _engine_serve_seconds(sharded, queries, workload["max_batch"],
                                  num_workers=workload["num_workers"])[0]
            for _ in range(3))
        single_s = min(
            _engine_serve_seconds(multiplexed, queries,
                                  workload["max_batch"])[0]
            for _ in range(3))
        speedup = single_s / routed_s
        assert speedup >= SHARD_ACCEPTANCE_MIN_SPEEDUP, (
            f"replica-routed speedup {speedup:.2f}x below the "
            f"{SHARD_ACCEPTANCE_MIN_SPEEDUP}x acceptance bar "
            f"(routed {routed_s * 1e3:.0f} ms, single-engine "
            f"{single_s * 1e3:.0f} ms)"
        )


class TestBenchRecords:
    @pytest.fixture(scope="class")
    def bench_document(self):
        path = REPO_ROOT / "BENCH_e2e.json"
        if not path.exists():
            pytest.skip("BENCH_e2e.json not present (run `make bench`)")
        return json.loads(path.read_text())

    def test_bench_e2e_carries_shard_scaling_records(self, bench_document):
        names = {record["name"] for record in bench_document["benchmarks"]}
        for count in SHARD_SCALING_COUNTS:
            assert f"shard/scaling/shards={count}" in names
        assert "shard/replica_routed" in names
        assert "shard/single_engine_multiplexed" in names

    def test_recorded_shard_acceptance_passed(self, bench_document):
        acceptance = bench_document["shard"]["acceptance"]
        assert acceptance["min_required_speedup"] == (
            SHARD_ACCEPTANCE_MIN_SPEEDUP)
        assert acceptance["passed"], (
            f"committed BENCH_e2e.json records a failing shard acceptance: "
            f"{acceptance['speedup']:.2f}x")
