"""The ``deepcam_sharded`` registry backend."""

import numpy as np
import pytest

from repro.api import Backend, CostReport, get_backend, list_backends, network_by_name
from repro.serve.engine import CamPipelineEngine


class TestRegistration:
    def test_listed_in_registry(self):
        assert "deepcam_sharded" in list_backends()

    def test_instantiates_through_get_backend(self):
        backend = get_backend("deepcam_sharded", num_shards=4)
        assert isinstance(backend, Backend)
        assert backend.name == "deepcam_sharded"
        assert backend.num_shards == 4


class TestInfer:
    def test_infer_matches_unsharded_engine(self, rng):
        prototypes = rng.standard_normal((12, 32))
        batch = rng.standard_normal((9, 32))
        backend = get_backend("deepcam_sharded", num_shards=3,
                              hash_length=128, seed=7)
        reference = CamPipelineEngine(prototypes, hash_length=128, seed=7)
        expected = reference.execute(reference.prepare(batch))
        assert np.array_equal(backend.infer(prototypes, batch), expected)

    def test_engine_reused_for_same_prototypes(self, rng):
        prototypes = rng.standard_normal((8, 16))
        batch = rng.standard_normal((4, 16))
        backend = get_backend("deepcam_sharded", num_shards=2,
                              hash_length=128)
        backend.infer(prototypes, batch)
        engine = backend._engine
        backend.infer(prototypes, batch)
        assert backend._engine is engine  # cached
        backend.infer(rng.standard_normal((8, 16)), batch)
        assert backend._engine is not engine  # rebuilt for new prototypes

    def test_run_returns_typed_result_with_cluster_stats(self, rng):
        prototypes = rng.standard_normal((8, 16))
        batch = rng.standard_normal((4, 16))
        backend = get_backend("deepcam_sharded", num_shards=2,
                              hash_length=128)
        result = backend.run(prototypes, batch)
        assert result.backend == "deepcam_sharded"
        assert len(result.predictions) == 4
        assert result.stats["shards"]["num_shards"] == 2

    def test_rejects_non_matrix_model(self):
        backend = get_backend("deepcam_sharded")
        with pytest.raises(ValueError):
            backend.infer(np.zeros(5), np.zeros((2, 5)))


class TestEstimate:
    def test_estimate_annotates_deepcam_cost_with_geometry(self):
        backend = get_backend("deepcam_sharded", num_shards=4,
                              num_replicas=2, routing="least_loaded")
        report = backend.estimate(network_by_name("lenet5"))
        assert isinstance(report, CostReport)
        assert report.backend == "deepcam_sharded"
        assert report.total_cycles > 0
        assert report.meta["sharding"] == {
            "num_shards": 4, "policy": "contiguous",
            "num_replicas": 2, "routing": "least_loaded",
        }
