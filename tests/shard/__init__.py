# Package marker: keeps these module names (test_engine, test_acceptance)
# from colliding with the same basenames under tests/serve/.
