"""ShardPlan: partitioning invariants, lookups, scatter/gather, derivation."""

import numpy as np
import pytest

from repro.shard import SHARD_POLICIES, ShardPlan


class TestConstruction:
    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    @pytest.mark.parametrize("total_rows,num_shards",
                             [(1, 1), (7, 3), (64, 4), (100, 7), (8, 8)])
    def test_partition_is_exact_and_balanced(self, policy, total_rows, num_shards):
        plan = ShardPlan.build(total_rows, num_shards, policy)
        all_rows = np.concatenate([s.global_rows for s in plan.shards])
        assert sorted(all_rows.tolist()) == list(range(total_rows))
        sizes = plan.shard_rows
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == total_rows

    def test_contiguous_blocks_are_contiguous(self):
        plan = ShardPlan.contiguous(10, 3)
        for spec in plan.shards:
            rows = spec.global_rows
            assert np.array_equal(rows, np.arange(rows[0], rows[-1] + 1))

    def test_strided_is_round_robin(self):
        plan = ShardPlan.strided(10, 3)
        for spec in plan.shards:
            assert np.all(spec.global_rows % 3 == spec.index)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ShardPlan.contiguous(0, 1)
        with pytest.raises(ValueError):
            ShardPlan.strided(4, 0)
        with pytest.raises(ValueError):
            ShardPlan.contiguous(3, 4)  # a shard would be empty
        with pytest.raises(ValueError):
            ShardPlan.build(8, 2, policy="diagonal")


class TestLookup:
    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    def test_shard_of_roundtrips_through_specs(self, policy):
        plan = ShardPlan.build(23, 5, policy)
        for row in range(23):
            shard, local = plan.shard_of(row)
            assert plan.shards[shard].global_rows[local] == row

    def test_shard_of_bounds(self):
        plan = ShardPlan.contiguous(8, 2)
        with pytest.raises(IndexError):
            plan.shard_of(8)
        with pytest.raises(IndexError):
            plan.shard_of(-1)


class TestDataMovement:
    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    def test_scatter_then_gather_is_identity(self, policy, rng):
        plan = ShardPlan.build(17, 4, policy)
        matrix = rng.integers(0, 100, size=(17, 6))
        blocks = plan.scatter_rows(matrix)
        # Transpose the per-shard row blocks into search-result columns.
        out = np.empty((6, 17), dtype=matrix.dtype)
        plan.gather_columns([b.T for b in blocks], out)
        assert np.array_equal(out, matrix.T)

    def test_scatter_validates_row_count(self):
        plan = ShardPlan.contiguous(8, 2)
        with pytest.raises(ValueError):
            plan.scatter_rows(np.zeros((7, 3)))

    def test_gather_validates_blocks(self):
        plan = ShardPlan.contiguous(8, 2)
        out = np.zeros((2, 8))
        with pytest.raises(ValueError):
            plan.gather_columns([np.zeros((2, 4))], out)  # missing a block
        with pytest.raises(ValueError):
            plan.gather_columns([np.zeros((2, 3)), np.zeros((2, 4))], out)


class TestDerivedPlans:
    def test_rebalanced_changes_geometry_not_rows(self):
        plan = ShardPlan.contiguous(24, 2)
        rebalanced = plan.rebalanced(num_shards=6, policy="strided")
        assert rebalanced.total_rows == 24
        assert rebalanced.num_shards == 6
        assert rebalanced.policy == "strided"
        # The original is untouched (plans are immutable).
        assert plan.num_shards == 2 and plan.policy == "contiguous"

    def test_grown_adds_one_shard(self):
        plan = ShardPlan.strided(24, 3)
        grown = plan.grown()
        assert grown.num_shards == 4
        assert grown.policy == "strided"
