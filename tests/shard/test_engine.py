"""ShardedEngine: the cluster behind the serving contract, end to end."""

import numpy as np
import pytest

from repro.serve import (
    MicroBatchServer,
    PackedSignatureCache,
    ServeClient,
    ServeConfig,
    build_demo_engine,
)
from repro.serve.engine import CamPipelineEngine, InferenceEngine
from repro.shard import ShardedEngine, build_demo_sharded_engine

GEOMETRY = dict(classes=16, input_dim=64, hash_length=256)


@pytest.fixture
def prototypes(rng):
    return rng.standard_normal((16, 64))


@pytest.fixture
def queries(rng):
    return rng.standard_normal((40, 64))


class TestEngineContract:
    def test_satisfies_inference_engine_protocol(self, prototypes):
        engine = ShardedEngine(prototypes, num_shards=4, hash_length=256)
        assert isinstance(engine, InferenceEngine)
        assert engine.input_dim == 64
        assert engine.output_dim == 16

    def test_logits_bit_identical_to_unsharded(self, prototypes, queries):
        reference = CamPipelineEngine(prototypes, hash_length=256, seed=2)
        expected = reference.execute(reference.prepare(queries))
        engine = ShardedEngine(prototypes, num_shards=4, num_replicas=2,
                               hash_length=256, seed=2)
        got = engine.execute(engine.prepare(queries))
        assert np.array_equal(got, expected)

    def test_cache_keys_shared_with_unsharded_twin(self, prototypes, queries):
        reference = CamPipelineEngine(prototypes, hash_length=256, seed=2)
        engine = ShardedEngine(prototypes, num_shards=4, hash_length=256,
                               seed=2)
        assert (reference.prepare(queries).keys
                == engine.prepare(queries).keys)

    def test_shared_cache_across_sharded_and_unsharded(self, prototypes,
                                                       queries):
        # Bit-identical outputs make a shared cache safe: the unsharded
        # server's entries answer the sharded server's requests.
        cache = PackedSignatureCache(1024)
        config = ServeConfig(max_batch=16, cache_capacity=1024)
        unsharded = CamPipelineEngine(prototypes, hash_length=256, seed=2)
        sharded = ShardedEngine(prototypes, num_shards=4, hash_length=256,
                                seed=2)
        with MicroBatchServer(unsharded, config=config, cache=cache) as server:
            fresh = np.stack([f.result(30)
                              for f in server.submit_many(queries)])
        with MicroBatchServer(sharded, config=config, cache=cache) as server:
            replay = np.stack([f.result(30)
                               for f in server.submit_many(queries)])
            stats = server.stats()
        assert stats["cache"]["hits"] == len(queries)
        assert np.array_equal(replay, fresh)


class TestServeIntegration:
    def test_served_responses_match_direct_unsharded_execution(self, queries):
        engine = build_demo_sharded_engine(**GEOMETRY, num_shards=4,
                                           num_replicas=2)
        reference = build_demo_engine(**GEOMETRY)
        expected = reference.execute(reference.prepare(queries))
        config = ServeConfig(max_batch=8, max_wait_ms=2.0, num_workers=2)
        with ServeClient(engine, config=config) as client:
            served = client.infer_many(queries)
        assert np.array_equal(served, expected)

    def test_per_shard_metrics_flow_into_server_stats(self, queries):
        engine = build_demo_sharded_engine(**GEOMETRY, num_shards=4,
                                           num_replicas=2)
        with MicroBatchServer(engine, config=ServeConfig(max_batch=16)) as server:
            for future in server.submit_many(queries):
                future.result(30)
            stats = server.stats()
        shards = stats["shards"]
        assert set(shards) == {0, 1, 2, 3}
        for entry in shards.values():
            assert entry["queries"] == len(queries)
            assert entry["searches"] >= 1
            assert entry["mean_service_ms"] >= 0.0
        router = stats["engine"]["shards"]["router"]
        assert router["num_replicas"] == 2
        assert sum(sum(s) for s in router["selections"]) > 0

    def test_sequential_servers_do_not_accumulate_observers(self, queries):
        # A long-lived engine behind short-lived servers (the bench reuse
        # pattern): each server binds its metrics at start and unbinds at
        # stop, so a later server's per-shard counters see only its own
        # traffic and retired ServeMetrics objects never linger.
        engine = build_demo_sharded_engine(**GEOMETRY, num_shards=2)
        for _ in range(3):
            with MicroBatchServer(engine,
                                  config=ServeConfig(max_batch=16)) as server:
                for future in server.submit_many(queries):
                    future.result(30)
                stats = server.stats()
            assert stats["shards"][0]["queries"] == len(queries)
        assert engine.cam._observers == ()

    def test_rebalance_under_a_running_server(self, queries):
        engine = build_demo_sharded_engine(**GEOMETRY, num_shards=2)
        reference = build_demo_engine(**GEOMETRY)
        expected = reference.execute(reference.prepare(queries))
        with ServeClient(engine, config=ServeConfig(max_batch=8)) as client:
            before = client.infer_many(queries)
            engine.rebalance(num_shards=5, policy="strided")
            after = client.infer_many(queries)
        assert np.array_equal(before, expected)
        assert np.array_equal(after, expected)

    def test_engine_stats_report_cluster_shape(self, prototypes, queries):
        engine = ShardedEngine(prototypes, num_shards=4, policy="strided",
                               num_replicas=2, routing="least_loaded",
                               hash_length=256)
        engine.execute(engine.prepare(queries))
        stats = engine.stats()
        assert stats["classes"] == 16
        shards = stats["shards"]
        assert shards["num_shards"] == 4
        assert shards["policy"] == "strided"
        assert shards["num_replicas"] == 2
        assert shards["router"]["policy"] == "least_loaded"
        assert shards["search_count"] == len(queries) * 4


class TestValidation:
    def test_rejects_more_shards_than_rows(self, prototypes):
        with pytest.raises(ValueError):
            ShardedEngine(prototypes, num_shards=17, hash_length=256)

    def test_rejects_bad_policy_and_routing(self, prototypes):
        with pytest.raises(ValueError):
            ShardedEngine(prototypes, policy="diagonal", hash_length=256)
        with pytest.raises(ValueError):
            ShardedEngine(prototypes, routing="random", hash_length=256)
