"""Property tests: sharded serving is indistinguishable from unsharded.

The subsystem's contract is that sharding changes *where* rows live and
*how fast* searches run -- never a single bit of any answer.  These
properties pin that across randomly drawn geometries: any shard count, both
placement policies, both fan-out modes, replicas, noisy sense amplifiers,
and the full logits / top-match / energy accounting surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp
from repro.serve.engine import CamPipelineEngine
from repro.shard import ShardedEngine, TimeMultiplexedCamEngine

HASH_LENGTH = 128


def engines_for(classes, input_dim, num_shards, policy, fanout, replicas,
                noise_sigma_ps, seed):
    """(unsharded reference, sharded twin) over one drawn geometry."""
    rng = np.random.default_rng(seed)
    prototypes = rng.standard_normal((classes, input_dim))
    amp = dict(word_bits=HASH_LENGTH, timing_noise_sigma_ps=noise_sigma_ps,
               seed=seed + 1)
    reference = CamPipelineEngine(
        prototypes, hash_length=HASH_LENGTH, seed=seed,
        sense_amp=ClockedSelfReferencedSenseAmp(**amp))
    sharded = ShardedEngine(
        prototypes, num_shards=num_shards, policy=policy, fanout=fanout,
        num_replicas=replicas, hash_length=HASH_LENGTH, seed=seed,
        sense_amp=ClockedSelfReferencedSenseAmp(**amp))
    return reference, sharded, rng


class TestShardedEquivalence:
    @given(data=st.data(),
           classes=st.integers(2, 24),
           policy=st.sampled_from(["contiguous", "strided"]),
           fanout=st.sampled_from(["fused", "ports"]),
           replicas=st.integers(1, 3),
           noisy=st.booleans(),
           seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_logits_topmatch_energy_match_unsharded(self, data, classes,
                                                    policy, fanout, replicas,
                                                    noisy, seed):
        num_shards = data.draw(st.integers(1, classes))
        sigma = 60.0 if noisy else 0.0
        reference, sharded, rng = engines_for(
            classes, 16, num_shards, policy, fanout, replicas, sigma, seed)
        queries = rng.standard_normal((data.draw(st.integers(1, 12)), 16))

        for _ in range(2):  # repeat: noise streams must stay in lock-step
            expected = reference.execute(reference.prepare(queries))
            got = sharded.execute(sharded.prepare(queries))
            assert np.array_equal(got, expected)
            assert np.array_equal(np.argmax(got, axis=1),
                                  np.argmax(expected, axis=1))
        assert sharded.cam.accumulated_search_energy_pj == pytest.approx(
            reference.cam.accumulated_search_energy_pj, rel=1e-9)

    @given(seed=st.integers(0, 1000),
           num_shards=st.integers(1, 10),
           next_shards=st.integers(1, 9),  # add_shard() follows: <= 10 rows
           policy=st.sampled_from(["contiguous", "strided"]),
           next_policy=st.sampled_from(["contiguous", "strided"]))
    @settings(max_examples=20, deadline=None)
    def test_rebalance_never_changes_logits(self, seed, num_shards,
                                            next_shards, policy, next_policy):
        reference, sharded, rng = engines_for(
            10, 16, num_shards, policy, "fused", 1, 0.0, seed)
        queries = rng.standard_normal((6, 16))
        expected = reference.execute(reference.prepare(queries))
        assert np.array_equal(
            sharded.execute(sharded.prepare(queries)), expected)
        sharded.rebalance(num_shards=next_shards, policy=next_policy)
        assert np.array_equal(
            sharded.execute(sharded.prepare(queries)), expected)
        sharded.add_shard()
        assert np.array_equal(
            sharded.execute(sharded.prepare(queries)), expected)

    @given(seed=st.integers(0, 1000), capacity=st.integers(1, 24))
    @settings(max_examples=15, deadline=None)
    def test_time_multiplexed_baseline_matches_too(self, seed, capacity):
        # The throughput baseline must also be answer-identical, so the
        # acceptance benchmark compares work, not math.
        rng = np.random.default_rng(seed)
        prototypes = rng.standard_normal((17, 16))
        queries = rng.standard_normal((5, 16))
        reference = CamPipelineEngine(prototypes, hash_length=HASH_LENGTH,
                                      seed=seed)
        multiplexed = TimeMultiplexedCamEngine(
            prototypes, capacity=capacity, hash_length=HASH_LENGTH, seed=seed)
        expected = reference.execute(reference.prepare(queries))
        got = multiplexed.execute(multiplexed.prepare(queries))
        assert np.array_equal(got, expected)
        assert multiplexed.cam.accumulated_search_energy_pj == pytest.approx(
            reference.cam.accumulated_search_energy_pj, rel=1e-9)
        assert multiplexed.cam.rewrites == -(-17 // capacity)
