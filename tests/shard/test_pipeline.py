"""ShardedCamPipeline: scatter-gather equivalence with one CamArray."""

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.cam.dynamic import DynamicCam, DynamicCamConfig
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp
from repro.serve.metrics import RecordingObserver
from repro.shard import ShardedCamPipeline


WORD_BITS = 192


def reference_array(bits, word_bits=WORD_BITS, **kwargs):
    cam = CamArray(rows=bits.shape[0], word_bits=word_bits, **kwargs)
    cam.write_rows(bits)
    return cam


def make_pipeline(bits, **kwargs):
    pipeline = ShardedCamPipeline(total_rows=bits.shape[0],
                                  word_bits=WORD_BITS, **kwargs)
    pipeline.write_rows(bits)
    return pipeline


@pytest.fixture
def stored_bits(rng):
    return rng.integers(0, 2, size=(30, WORD_BITS), dtype=np.uint8)


@pytest.fixture
def queries(rng):
    return rng.integers(0, 2, size=(11, WORD_BITS), dtype=np.uint8)


class TestSearchEquivalence:
    @pytest.mark.parametrize("fanout", ["fused", "ports"])
    @pytest.mark.parametrize("policy", ["contiguous", "strided"])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7, 30])
    def test_distances_match_single_array(self, stored_bits, queries,
                                          num_shards, policy, fanout):
        reference = reference_array(stored_bits)
        expected, expected_energy, expected_latency = (
            reference.search_batch(queries))
        pipeline = make_pipeline(stored_bits, num_shards=num_shards,
                                 policy=policy, fanout=fanout)
        distances, energy, latency = pipeline.search_batch(queries)
        assert np.array_equal(distances, expected)
        assert energy == pytest.approx(expected_energy, rel=1e-12)
        assert latency == expected_latency

    def test_packed_path_matches_bit_path(self, stored_bits, queries):
        from repro.bitops import pack_bits

        pipeline = make_pipeline(stored_bits, num_shards=4)
        from_bits, energy_a, _ = pipeline.search_batch(queries)
        from_packed, energy_b, _ = pipeline.search_batch_packed(
            pack_bits(queries))
        assert np.array_equal(from_bits, from_packed)
        assert energy_a == pytest.approx(energy_b, rel=1e-12)

    def test_unpopulated_rows_report_minus_one(self, rng, queries):
        bits = rng.integers(0, 2, size=(10, WORD_BITS), dtype=np.uint8)
        pipeline = ShardedCamPipeline(total_rows=30, word_bits=WORD_BITS,
                                      num_shards=3)
        pipeline.write_rows(bits, start_row=5)
        distances, _, _ = pipeline.search_batch(queries)
        populated = np.zeros(30, dtype=bool)
        populated[5:15] = True
        assert np.all(distances[:, ~populated] == -1)
        assert np.all(distances[:, populated] >= 0)
        assert pipeline.occupancy == 10

    def test_empty_batch_is_a_noop(self, stored_bits):
        pipeline = make_pipeline(stored_bits, num_shards=3)
        distances, energy, latency = pipeline.search_batch(
            np.zeros((0, WORD_BITS), dtype=np.uint8))
        assert distances.shape == (0, 30)
        assert energy == 0.0 and latency == 0
        assert pipeline.search_count == 0

    def test_noisy_sense_amp_is_bit_identical(self, stored_bits, queries):
        noisy = dict(timing_noise_sigma_ps=50.0, seed=9)
        reference = reference_array(
            stored_bits,
            sense_amp=ClockedSelfReferencedSenseAmp(word_bits=WORD_BITS,
                                                    **noisy))
        pipeline = make_pipeline(
            stored_bits, num_shards=5, policy="strided",
            sense_amp=ClockedSelfReferencedSenseAmp(word_bits=WORD_BITS,
                                                    **noisy))
        for _ in range(3):  # the noise streams must stay in lock-step
            expected, _, _ = reference.search_batch(queries)
            distances, _, _ = pipeline.search_batch(queries)
            assert np.array_equal(distances, expected)


class TestReplicasAndWorkers:
    def test_replicas_serve_identical_results(self, stored_bits, queries):
        pipeline = make_pipeline(stored_bits, num_shards=3, num_replicas=3,
                                 routing="round_robin")
        first, _, _ = pipeline.search_batch(queries)
        for _ in range(5):  # round-robin walks every replica
            distances, _, _ = pipeline.search_batch(queries)
            assert np.array_equal(distances, first)
        selections = pipeline.router.stats()["selections"]
        assert all(all(count > 0 for count in per_shard)
                   for per_shard in selections)

    def test_worker_pool_fanout_matches_inline(self, stored_bits, queries):
        inline = make_pipeline(stored_bits, num_shards=4, fanout="ports",
                               num_workers=1)
        pooled = make_pipeline(stored_bits, num_shards=4, fanout="ports",
                               num_workers=4)
        try:
            a, ea, _ = inline.search_batch(queries)
            b, eb, _ = pooled.search_batch(queries)
            assert np.array_equal(a, b)
            assert ea == pytest.approx(eb, rel=1e-12)
        finally:
            pooled.close()

    def test_observers_hear_every_shard(self, stored_bits, queries):
        recorder = RecordingObserver()
        pipeline = make_pipeline(stored_bits, num_shards=4, num_replicas=2,
                                 observers=(recorder,))
        pipeline.search_batch(queries)
        events = recorder.of("shard_search_completed")
        assert sorted(event[0] for event in events) == [0, 1, 2, 3]
        for _shard, replica, count, service_ms in events:
            assert replica in (0, 1)
            assert count == queries.shape[0]
            assert service_ms >= 0.0


class TestRestructuring:
    @pytest.mark.parametrize("fanout", ["fused", "ports"])
    def test_rebalance_and_add_shard_preserve_results(self, stored_bits,
                                                      queries, fanout):
        reference = reference_array(stored_bits)
        expected, _, _ = reference.search_batch(queries)
        pipeline = make_pipeline(stored_bits, num_shards=2, fanout=fanout)
        baseline_energy = pipeline.search_batch(queries)[1]
        pipeline.add_shard()
        assert pipeline.num_shards == 3
        distances, energy, _ = pipeline.search_batch(queries)
        assert np.array_equal(distances, expected)
        assert energy == pytest.approx(baseline_energy, rel=1e-12)
        pipeline.rebalance(num_shards=6, policy="strided")
        assert pipeline.plan.policy == "strided"
        distances, _, _ = pipeline.search_batch(queries)
        assert np.array_equal(distances, expected)

    def test_accounting_survives_rebalance(self, stored_bits, queries):
        pipeline = make_pipeline(stored_bits, num_shards=2)
        pipeline.search_batch(queries)
        energy_before = pipeline.accumulated_search_energy_pj
        count_before = pipeline.search_count
        assert energy_before > 0.0
        pipeline.rebalance(num_shards=5)
        assert pipeline.accumulated_search_energy_pj == energy_before
        assert pipeline.search_count == count_before

    def test_worker_pool_survives_rebalance(self, stored_bits, queries):
        # The ports-mode pool is created once and never torn down by a
        # rebalance, so a search that snapshotted it can always submit.
        pipeline = make_pipeline(stored_bits, num_shards=4, fanout="ports",
                                 num_workers=4)
        try:
            reference = reference_array(stored_bits)
            expected, _, _ = reference.search_batch(queries)
            a, _, _ = pipeline.search_batch(queries)
            executor = pipeline._plane
            assert executor is not None
            pipeline.rebalance(num_shards=6, policy="strided")
            assert pipeline._plane is executor
            b, _, _ = pipeline.search_batch(queries)
            assert np.array_equal(a, expected)
            assert np.array_equal(b, expected)
        finally:
            pipeline.close()

    def test_fused_mode_never_creates_a_worker_pool(self, stored_bits, queries):
        pipeline = make_pipeline(stored_bits, num_shards=4, num_workers=4)
        pipeline.search_batch(queries)
        assert pipeline._plane is None

    def test_writes_after_rebalance_land_in_new_plan(self, rng, queries):
        pipeline = ShardedCamPipeline(total_rows=30, word_bits=WORD_BITS,
                                      num_shards=2)
        first = rng.integers(0, 2, size=(15, WORD_BITS), dtype=np.uint8)
        pipeline.write_rows(first)
        pipeline.rebalance(num_shards=3, policy="strided")
        second = rng.integers(0, 2, size=(15, WORD_BITS), dtype=np.uint8)
        pipeline.write_rows(second, start_row=15)
        reference = reference_array(np.vstack((first, second)))
        expected, _, _ = reference.search_batch(queries)
        distances, _, _ = pipeline.search_batch(queries)
        assert np.array_equal(distances, expected)


class TestDynamicCamPorts:
    def test_dynamic_cam_ports_match_single_dynamic_cam(self, rng):
        word_bits = 512

        def factory(rows):
            cam = DynamicCam(DynamicCamConfig(rows=rows))
            cam.configure_word_bits(word_bits)
            return cam

        bits = rng.integers(0, 2, size=(24, word_bits), dtype=np.uint8)
        queries = rng.integers(0, 2, size=(7, word_bits), dtype=np.uint8)
        pipeline = ShardedCamPipeline(total_rows=24, word_bits=word_bits,
                                      num_shards=4, port_factory=factory)
        pipeline.write_rows(bits)
        # DynamicCam lacks the analytic surface: fused degrades to ports.
        assert pipeline.stats()["fanout"] == "ports"
        reference = factory(24)
        reference.write_rows(bits)
        expected, expected_energy, _ = reference.search_batch(queries)
        distances, energy, _ = pipeline.search_batch(queries)
        assert np.array_equal(distances, expected)
        assert energy == pytest.approx(expected_energy, rel=1e-12)


class TestValidation:
    def test_rejects_bad_writes_and_queries(self, stored_bits):
        pipeline = make_pipeline(stored_bits, num_shards=3)
        with pytest.raises(ValueError):
            pipeline.write_rows(np.ones((2, WORD_BITS + 1), dtype=np.uint8))
        with pytest.raises(ValueError):
            pipeline.write_rows(np.full((2, WORD_BITS), 2, dtype=np.uint8))
        with pytest.raises(ValueError):
            pipeline.write_rows(np.ones((31, WORD_BITS), dtype=np.uint8))
        with pytest.raises(ValueError):
            pipeline.search_batch(np.ones((2, WORD_BITS - 1), dtype=np.uint8))
        with pytest.raises(ValueError):
            pipeline.search_batch_packed(np.zeros((2, 99), dtype=np.uint64))
        with pytest.raises(ValueError):
            ShardedCamPipeline(total_rows=8, word_bits=64, fanout="magic")

    def test_stats_snapshot(self, stored_bits, queries):
        pipeline = make_pipeline(stored_bits, num_shards=3, num_replicas=2)
        pipeline.search_batch(queries)
        stats = pipeline.stats()
        assert stats["total_rows"] == 30
        assert stats["num_shards"] == 3
        assert stats["num_replicas"] == 2
        assert stats["fanout"] == "fused"
        assert stats["batches"] == 1
        assert stats["search_count"] == queries.shape[0] * 3
        assert stats["router"]["policy"] == "round_robin"
