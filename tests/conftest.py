"""Shared fixtures and deflake guards for the DeepCAM reproduction suite.

Every source of randomness is pinned per test, so the suite is
order-independent (safe under ``pytest -p no:randomly``-style shuffling)
and re-runs are bit-identical:

* the ``rng`` fixture hands out a fixed-seed generator;
* ``_pin_global_rng`` (autouse) reseeds NumPy's *legacy* global RNG from a
  stable hash of the test's node id, so a test that reaches for
  ``np.random.*`` draws the same stream no matter which tests ran before
  it;
* hypothesis runs the ``repro-deterministic`` profile: ``derandomize=True``
  (examples derive from the test body, not a session seed) with the
  deadline disabled (wall-clock deadlines misfire under the ``make
  coverage`` line tracer and on loaded CI boxes).
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.core.config import DeepCAMConfig
from repro.datasets.loaders import SyntheticImageDataset
from repro.nn.models.lenet import build_lenet5
from repro.nn.optim import Adam
from repro.nn.train import Trainer

hypothesis_settings.register_profile(
    "repro-deterministic", derandomize=True, deadline=None)
hypothesis_settings.load_profile("repro-deterministic")


@pytest.fixture(autouse=True)
def _pin_global_rng(request: pytest.FixtureRequest) -> None:
    """Seed the legacy global NumPy RNG per test, keyed on the test's id.

    Tests should prefer the ``rng`` fixture, but anything that (directly
    or through a library default) touches ``np.random`` still gets a
    stream that depends only on the test itself -- never on execution
    order.
    """
    np.random.seed(zlib.crc32(request.node.nodeid.encode()) & 0xFFFFFFFF)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def default_config() -> DeepCAMConfig:
    """A small default DeepCAM configuration."""
    return DeepCAMConfig(cam_rows=64)


@pytest.fixture(scope="session")
def tiny_mnist_dataset() -> SyntheticImageDataset:
    """A small MNIST-like synthetic dataset shared across tests."""
    return SyntheticImageDataset.mnist_like(num_samples=400, num_classes=4,
                                            difficulty=0.2, seed=7)


@pytest.fixture(scope="session")
def trained_tiny_lenet(tiny_mnist_dataset: SyntheticImageDataset):
    """A small LeNet trained briefly on the tiny dataset (session-scoped).

    Returns ``(model, dataset, test_accuracy)``.  Training is short but the
    dataset is easy, so the accuracy is well above chance, which the
    dependent tests rely on.
    """
    dataset = tiny_mnist_dataset
    model = build_lenet5(num_classes=dataset.num_classes, input_size=28,
                         width_multiplier=0.5, seed=3)
    trainer = Trainer(model, Adam(model, lr=3e-3), batch_size=32, seed=0)
    history = trainer.fit(dataset.train.images, dataset.train.labels, epochs=3,
                          validation=(dataset.test.images, dataset.test.labels))
    return model, dataset, history.validation_accuracy[-1]
