"""Shared fixtures for the DeepCAM reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DeepCAMConfig
from repro.datasets.loaders import SyntheticImageDataset
from repro.nn.models.lenet import build_lenet5
from repro.nn.optim import Adam
from repro.nn.train import Trainer


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def default_config() -> DeepCAMConfig:
    """A small default DeepCAM configuration."""
    return DeepCAMConfig(cam_rows=64)


@pytest.fixture(scope="session")
def tiny_mnist_dataset() -> SyntheticImageDataset:
    """A small MNIST-like synthetic dataset shared across tests."""
    return SyntheticImageDataset.mnist_like(num_samples=400, num_classes=4,
                                            difficulty=0.2, seed=7)


@pytest.fixture(scope="session")
def trained_tiny_lenet(tiny_mnist_dataset: SyntheticImageDataset):
    """A small LeNet trained briefly on the tiny dataset (session-scoped).

    Returns ``(model, dataset, test_accuracy)``.  Training is short but the
    dataset is easy, so the accuracy is well above chance, which the
    dependent tests rely on.
    """
    dataset = tiny_mnist_dataset
    model = build_lenet5(num_classes=dataset.num_classes, input_size=28,
                         width_multiplier=0.5, seed=3)
    trainer = Trainer(model, Adam(model, lr=3e-3), batch_size=32, seed=0)
    history = trainer.fit(dataset.train.images, dataset.train.labels, epochs=3,
                          validation=(dataset.test.images, dataset.test.labels))
    return model, dataset, history.validation_accuracy[-1]
