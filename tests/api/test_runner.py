"""Tests for the experiment registry, runner and observer hooks."""

import pytest

import repro.api as api
from repro.api.experiments import (
    DuplicateExperimentError,
    ExperimentNotFoundError,
    ExperimentSpec,
)


class RecordingObserver:
    """Captures every runner event in order."""

    def __init__(self):
        self.events = []

    def experiment_started(self, name, params):
        self.events.append(("started", name, dict(params)))

    def experiment_row(self, name, index, row):
        self.events.append(("row", name, index))

    def experiment_completed(self, name, result):
        self.events.append(("completed", name, len(result.rows)))

    def experiment_failed(self, name, error):
        self.events.append(("failed", name, type(error).__name__))


def make_spec(name="unit_sweep", runner=None, **kwargs):
    return ExperimentSpec(
        name=name,
        title="unit-test sweep",
        runner=runner or (lambda depth=2: [{"level": i} for i in range(depth)]),
        to_rows=lambda raw: raw,
        **kwargs,
    )


class TestExperimentRegistry:
    def test_all_paper_experiments_are_registered(self):
        names = api.list_experiments()
        for expected in ("fig2_dot_product_sweep", "fig5_accuracy",
                         "fig8_cam_overhead", "fig9_cycles", "fig10_energy",
                         "table1_setup", "table2_pim_comparison",
                         "headline_claims"):
            assert expected in names

    def test_tag_filtering(self):
        fast = api.list_experiments(tag="fast")
        assert "fig9_cycles" in fast
        assert "fig5_accuracy" not in fast  # the training experiment is slow

    def test_duplicate_registration_raises(self):
        with pytest.raises(DuplicateExperimentError):
            api.register_experiment(make_spec(name="fig9_cycles"))

    def test_unknown_experiment_raises_with_known_names(self):
        with pytest.raises(ExperimentNotFoundError) as excinfo:
            api.get_experiment("fig99")
        assert "fig9_cycles" in str(excinfo.value)

    def test_register_and_unregister(self):
        spec = make_spec(name="tmp_exp")
        try:
            api.register_experiment(spec)
            assert api.get_experiment("tmp_exp") is spec
        finally:
            api.unregister_experiment("tmp_exp")
        assert "tmp_exp" not in api.list_experiments()


class TestExperimentRunner:
    def test_observer_receives_ordered_events(self):
        observer = RecordingObserver()
        runner = api.ExperimentRunner([observer])
        result = runner.run(make_spec(), depth=3)

        assert result.rows == [{"level": 0}, {"level": 1}, {"level": 2}]
        assert observer.events[0] == ("started", "unit_sweep", {"depth": 3})
        assert observer.events[1:4] == [("row", "unit_sweep", 0),
                                        ("row", "unit_sweep", 1),
                                        ("row", "unit_sweep", 2)]
        assert observer.events[4] == ("completed", "unit_sweep", 3)

    def test_defaults_merge_under_overrides(self):
        observer = RecordingObserver()
        spec = make_spec(defaults={"depth": 5})
        result = api.ExperimentRunner([observer]).run(spec)
        assert len(result.rows) == 5
        assert result.params == {"depth": 5}
        result = api.ExperimentRunner().run(spec, depth=1)
        assert result.params == {"depth": 1}

    def test_failure_notifies_then_raises(self):
        def boom():
            raise RuntimeError("nope")

        observer = RecordingObserver()
        runner = api.ExperimentRunner([observer])
        with pytest.raises(RuntimeError):
            runner.run(make_spec(runner=boom))
        assert observer.events[-1] == ("failed", "unit_sweep", "RuntimeError")

    def test_partial_observer_missing_hooks_are_skipped(self):
        class RowsOnly:
            def __init__(self):
                self.rows = []

            def experiment_row(self, name, index, row):
                self.rows.append(row)

        observer = RowsOnly()
        api.ExperimentRunner([observer]).run(make_spec(), depth=2)
        assert observer.rows == [{"level": 0}, {"level": 1}]

    def test_callback_observer_adapter(self):
        rows = []
        runner = api.ExperimentRunner(
            [api.CallbackObserver(on_row=lambda name, i, row: rows.append(row))])
        runner.run(make_spec(), depth=2)
        assert rows == [{"level": 0}, {"level": 1}]

    def test_registered_paper_experiment_end_to_end(self):
        result = api.ExperimentRunner().run("fig2_dot_product_sweep",
                                            hash_lengths=(64, 256), seeds=(0, 1))
        assert result.experiment == "fig2_dot_product_sweep"
        assert [row["hash_length"] for row in result.rows] == [64, 256]
        assert result.rows[1]["mean_relative_error"] <= result.rows[0]["mean_relative_error"] * 2
        # raw keeps the legacy shape
        assert set(result.raw) == {64, 256}
        rebuilt = api.ExperimentResult.from_dict(result.to_dict())
        assert rebuilt.rows == result.rows

    def test_run_many(self):
        results = api.ExperimentRunner().run_many(
            ["table1_setup", "fig8_cam_overhead"],
            params_by_name={"fig8_cam_overhead": {"row_sizes": (64,),
                                                  "word_sizes": (256,)}})
        assert set(results) == {"table1_setup", "fig8_cam_overhead"}
        assert len(results["fig8_cam_overhead"].rows) == 1
        assert results["fig8_cam_overhead"].meta["fefet_vs_cmos_energy_ratio"] > 1.0


class TestLegacyWrappers:
    def test_run_fig9_emits_deprecation_and_keeps_shape(self):
        from repro.evaluation.experiments import Fig9Row, run_fig9_cycles

        with pytest.warns(DeprecationWarning, match="ExperimentRunner"):
            rows = run_fig9_cycles(cam_rows=64, networks=("lenet5",))
        assert len(rows) == 1
        assert isinstance(rows[0], Fig9Row)
        assert rows[0].network == "lenet5"

    def test_run_table1_emits_deprecation_and_keeps_shape(self):
        from repro.evaluation.experiments import run_table1_setup

        with pytest.warns(DeprecationWarning):
            table = run_table1_setup()
        assert isinstance(table, list)
        assert all(isinstance(row, dict) for row in table)

    def test_every_legacy_function_has_a_registered_spec(self):
        registered = set(api.list_experiments())
        for experiment in ("fig2_dot_product_sweep", "fig5_accuracy",
                           "fig8_cam_overhead", "fig9_cycles", "fig10_energy",
                           "table1_setup", "table2_pim_comparison",
                           "headline_claims"):
            assert experiment in registered
