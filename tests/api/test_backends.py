"""Backend adapter tests, including cross-backend parity with the raw models."""

import numpy as np
import pytest

import repro.api as api
from repro.baselines.analog_pim import AnalogPIMModel, NEUROSIM_RRAM, VALAVI_SRAM
from repro.baselines.cpu import SkylakeCPUModel
from repro.baselines.eyeriss import EyerissModel
from repro.core.accelerator import DeepCAMSimulator
from repro.core.config import DeepCAMConfig
from repro.core.energy import DeepCAMEnergyModel
from repro.core.mapping import DeepCAMMapper
from repro.evaluation.experiments import default_vhl_profile
from repro.workloads.specs import lenet5_trace, vgg11_trace


class TestDeepCAMParity:
    def test_infer_matches_direct_simulator(self, trained_tiny_lenet):
        """get_backend("deepcam") must match direct DeepCAMSimulator output."""
        model, dataset, _ = trained_tiny_lenet
        batch = dataset.test.images[:8]
        config = DeepCAMConfig(cam_rows=64, seed=0).homogeneous(512)

        direct = DeepCAMSimulator(config).run(model, batch)
        via_registry = api.get_backend("deepcam", config=config).infer(model, batch)
        np.testing.assert_allclose(via_registry, direct)

    def test_estimate_matches_mapper_and_energy_model(self):
        trace = lenet5_trace()
        profile = default_vhl_profile(trace)
        config = DeepCAMConfig(cam_rows=64).with_hash_lengths(profile)

        mapping = DeepCAMMapper(config).map_network(trace, hash_lengths=profile)
        energy = DeepCAMEnergyModel(config).network_energy(trace, hash_lengths=profile)

        report = api.get_backend("deepcam", config=config).estimate(trace)
        assert report.total_cycles == mapping.total_cycles
        assert report.total_energy_uj == pytest.approx(energy.total_uj)
        assert report.mean_utilization == pytest.approx(mapping.mean_utilization)

    def test_estimate_derives_vhl_profile_by_default(self):
        trace = lenet5_trace()
        default_report = api.get_backend("deepcam").estimate(trace)
        explicit = api.get_backend("deepcam").estimate(
            trace, hash_lengths=default_vhl_profile(trace))
        assert default_report.total_cycles == explicit.total_cycles
        assert default_report.meta["hash_policy"] == "variable"

    def test_run_returns_typed_result_with_stats(self, trained_tiny_lenet):
        model, dataset, _ = trained_tiny_lenet
        backend = api.deepcam(rows=64, hash_length=256)
        result = backend.run(model, dataset.test.images[:4],
                             labels=dataset.test.labels[:4])
        assert result.backend == "deepcam"
        assert result.num_samples == 4
        assert result.stats["cam_searches"] > 0
        assert result.to_dict() == api.RunResult.from_dict(result.to_dict()).to_dict()


class TestBaselineParity:
    def test_eyeriss_estimate_matches_model(self):
        trace = vgg11_trace()
        direct = EyerissModel().evaluate(trace)
        report = api.get_backend("eyeriss").estimate(trace)
        assert report.total_cycles == direct.total_cycles
        assert report.total_energy_uj == pytest.approx(direct.total_energy_uj)
        assert report.breakdown == direct.breakdown()

    def test_cpu_estimate_matches_model(self):
        trace = vgg11_trace()
        direct = SkylakeCPUModel().map_network(trace)
        report = api.get_backend("cpu").estimate(trace)
        assert report.total_cycles == direct.total_cycles
        assert report.total_energy_uj is None

    def test_analog_pim_estimate_matches_model(self):
        trace = vgg11_trace()
        direct = AnalogPIMModel(NEUROSIM_RRAM).evaluate(trace)
        report = api.get_backend("analog_pim").estimate(trace)
        assert report.total_cycles == direct.cycles
        assert report.total_energy_uj == pytest.approx(direct.energy_uj)

    def test_analog_pim_sram_variant(self):
        trace = vgg11_trace()
        direct = AnalogPIMModel(VALAVI_SRAM).evaluate(trace)
        report = api.get_backend("analog_pim_sram").estimate(trace)
        assert report.total_cycles == direct.cycles
        assert report.meta["macro"] == "valavi_sram"

    def test_digital_baselines_infer_exactly(self, trained_tiny_lenet):
        model, dataset, _ = trained_tiny_lenet
        batch = dataset.test.images[:4]
        model.eval()
        expected = model(np.asarray(batch, dtype=np.float64))
        for name in ("eyeriss", "cpu", "analog_pim"):
            np.testing.assert_allclose(api.get_backend(name).infer(model, batch),
                                       expected)


class TestUniformSurface:
    def test_every_registered_backend_estimates_lenet5(self):
        trace = lenet5_trace()
        for name in api.list_backends():
            report = api.get_backend(name).estimate(trace)
            assert isinstance(report, api.CostReport)
            assert report.backend == name
            assert report.network == trace.name
            assert report.total_cycles > 0
            # every report JSON-round-trips
            assert api.CostReport.from_dict(report.to_dict()) == report
