"""Tests for the fluent config builder and the deepcam() factory."""

import pytest

import repro.api as api
from repro.cam.cell import CellTechnology
from repro.core.config import Dataflow, DeepCAMConfig, HashLengthPolicy


class TestBuilder:
    def test_fluent_chain_equals_direct_construction(self):
        built = (DeepCAMConfig.builder()
                 .rows(128)
                 .dataflow(Dataflow.WEIGHT_STATIONARY)
                 .homogeneous(512)
                 .seed(7)
                 .build())
        direct = DeepCAMConfig(cam_rows=128, dataflow=Dataflow.WEIGHT_STATIONARY,
                               hash_policy=HashLengthPolicy.HOMOGENEOUS,
                               homogeneous_hash_length=512, seed=7)
        assert built == direct

    def test_strings_are_coerced(self):
        config = (DeepCAMConfig.builder()
                  .dataflow("auto")
                  .technology("cmos")
                  .build())
        assert config.dataflow is Dataflow.AUTO
        assert config.cell_technology is CellTechnology.CMOS

    def test_invalid_values_fail_eagerly(self):
        builder = DeepCAMConfig.builder()
        with pytest.raises(ValueError, match="cam_rows"):
            builder.rows(0)
        with pytest.raises(ValueError, match="dataflow"):
            builder.dataflow("sideways")
        with pytest.raises(ValueError, match="not supported"):
            builder.homogeneous(300)
        with pytest.raises(ValueError, match="conv9"):
            builder.hash_lengths({"conv9": 333})
        with pytest.raises(ValueError, match="technology"):
            builder.technology("graphene")

    def test_fallback_conflicts_with_homogeneous_eagerly(self):
        with pytest.raises(ValueError, match="conflicts"):
            DeepCAMConfig.builder().homogeneous(256).fallback_hash_length(512)
        with pytest.raises(ValueError, match="conflicts"):
            DeepCAMConfig.builder().fallback_hash_length(512).homogeneous(256)

    def test_conflicting_hash_policies_fail_at_build(self):
        builder = (DeepCAMConfig.builder()
                   .homogeneous(256)
                   .hash_lengths({"conv1": 512}))
        with pytest.raises(ValueError, match="conflicting"):
            builder.build()

    def test_variable_profile_is_applied(self):
        config = (DeepCAMConfig.builder()
                  .hash_lengths({"conv1": 256, "fc1": 1024})
                  .fallback_hash_length(512)
                  .build())
        assert config.hash_policy is HashLengthPolicy.VARIABLE
        assert config.hash_length_for("conv1") == 256
        assert config.hash_length_for("unlisted") == 512

    def test_builder_starts_from_base(self):
        base = DeepCAMConfig(cam_rows=256, seed=11)
        config = DeepCAMConfig.builder(base).dataflow("weight_stationary").build()
        assert config.cam_rows == 256
        assert config.seed == 11
        assert config.dataflow is Dataflow.WEIGHT_STATIONARY


class TestDeepcamFactory:
    def test_factory_builds_configured_backend(self):
        backend = api.deepcam(rows=128, dataflow="weight_stationary",
                              hash_length=512, seed=3)
        assert isinstance(backend, api.DeepCAMBackend)
        assert backend.config.cam_rows == 128
        assert backend.config.dataflow is Dataflow.WEIGHT_STATIONARY
        assert backend.config.homogeneous_hash_length == 512
        assert backend.config.seed == 3

    def test_factory_forwards_builder_kwargs(self):
        backend = api.deepcam(technology="rram", exact_cosine=True)
        assert backend.config.cell_technology is CellTechnology.RRAM
        assert backend.config.use_exact_cosine is True

    def test_factory_rejects_conflicting_hash_options(self):
        with pytest.raises(ValueError, match="not both"):
            api.deepcam(hash_lengths={"conv1": 256}, hash_length=512)

    def test_factory_rejects_unknown_kwargs(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            api.deepcam(warp_speed=9)
