"""Registry error paths and the legacy ``run_*`` deprecation wrappers.

Complements ``test_registry.py`` / ``test_runner.py``: every failure mode
of the two registries (unknown key, duplicate key, overwrite, unregister of
a missing key) and a sweep asserting that *every* legacy experiment entry
point still warns ``DeprecationWarning`` and returns its historical shape.
"""

import warnings

import pytest

import repro.api as api
from repro.api.backend import BackendNotFoundError, DuplicateBackendError
from repro.api.experiments import (
    DuplicateExperimentError,
    ExperimentNotFoundError,
)
from repro.evaluation import experiments as legacy


class TestBackendRegistryErrorPaths:
    def test_unknown_key_lists_known_backends(self):
        with pytest.raises(BackendNotFoundError) as excinfo:
            api.get_backend("npu")
        message = str(excinfo.value)
        assert "npu" in message
        for known in ("deepcam", "eyeriss", "cpu"):
            assert known in message

    def test_duplicate_registration_raises_and_keeps_original(self):
        with pytest.raises(DuplicateBackendError):
            api.register_backend("cpu", api.DeepCAMBackend)
        # The original registration must be untouched by the failed attempt.
        assert isinstance(api.get_backend("cpu"), api.SkylakeCPUBackend)

    def test_overwrite_replaces_and_can_be_restored(self):
        original_factory = api.SkylakeCPUBackend

        class FakeCPU(api.SkylakeCPUBackend):
            pass

        try:
            api.register_backend("cpu", FakeCPU, overwrite=True)
            assert isinstance(api.get_backend("cpu"), FakeCPU)
        finally:
            api.register_backend("cpu", original_factory, overwrite=True)
        assert type(api.get_backend("cpu")) is api.SkylakeCPUBackend

    def test_unregister_missing_key_is_a_noop(self):
        api.unregister_backend("definitely-not-registered")
        assert "definitely-not-registered" not in api.list_backends()

    def test_factory_kwargs_errors_propagate(self):
        with pytest.raises(TypeError):
            api.get_backend("eyeriss", bogus_option=1)


class TestExperimentRegistryErrorPaths:
    def test_unknown_experiment_lists_known_keys(self):
        with pytest.raises(ExperimentNotFoundError) as excinfo:
            api.ExperimentRunner().run("fig99_nonexistent")
        message = str(excinfo.value)
        assert "fig99_nonexistent" in message
        assert "fig9_cycles" in message

    def test_duplicate_experiment_registration_raises(self):
        spec = api.get_experiment("fig9_cycles")
        with pytest.raises(DuplicateExperimentError):
            api.register_experiment(spec)

    def test_overwrite_reregisters_cleanly(self):
        spec = api.get_experiment("fig9_cycles")
        api.register_experiment(spec, overwrite=True)  # idempotent re-import path
        assert api.get_experiment("fig9_cycles") is spec

    def test_unregister_missing_experiment_is_a_noop(self):
        api.unregister_experiment("never-registered")
        assert "never-registered" not in api.list_experiments()


#: Every legacy wrapper with parameters cheap enough for the tier-1 suite
#: (fig5 trains models and is exercised by the evaluation tests instead).
LEGACY_WRAPPERS = {
    "run_fig2_dot_product_sweep": {"hash_lengths": (64,), "seeds": (0,)},
    "run_fig8_cam_overhead": {"row_sizes": (64,), "word_sizes": (256,)},
    "run_fig9_cycles": {"cam_rows": 64, "networks": ("lenet5",)},
    "run_fig10_energy": {"cam_rows_list": (64,), "networks": ("lenet5",)},
    "run_table1_setup": {},
    "run_table2_pim_comparison": {"cam_rows": 64},
    "run_headline_claims": {"cam_rows": 64},
}


class TestLegacyWrapperDeprecations:
    @pytest.mark.parametrize("func_name", sorted(LEGACY_WRAPPERS))
    def test_wrapper_warns_and_names_the_replacement(self, func_name):
        wrapper = getattr(legacy, func_name)
        experiment = func_name.removeprefix("run_")
        with pytest.warns(DeprecationWarning, match="ExperimentRunner"):
            wrapper(**LEGACY_WRAPPERS[func_name])
        # The warning text must point at the registered replacement spec.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            wrapper(**LEGACY_WRAPPERS[func_name])
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, DeprecationWarning)]
        assert any(experiment in message for message in messages), messages

    def test_wrapper_results_keep_their_historical_shapes(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sweep = legacy.run_fig2_dot_product_sweep(hash_lengths=(64,),
                                                      seeds=(0,))
            assert set(sweep) == {64}
            fig8 = legacy.run_fig8_cam_overhead(row_sizes=(64,),
                                                word_sizes=(256,))
            assert isinstance(fig8, dict)
            rows9 = legacy.run_fig9_cycles(cam_rows=64, networks=("lenet5",))
            assert len(rows9) == 1 and rows9[0].network == "lenet5"
            rows10 = legacy.run_fig10_energy(cam_rows_list=(64,),
                                             networks=("lenet5",))
            assert all(hasattr(row, "network") for row in rows10)
            table2 = legacy.run_table2_pim_comparison(cam_rows=64)
            assert isinstance(table2, list) and table2
            headline = legacy.run_headline_claims(cam_rows=64)
            assert isinstance(headline, dict)
            assert headline  # non-empty claims mapping

    def test_every_wrapper_resolves_to_a_registered_spec(self):
        registered = set(api.list_experiments())
        for func_name in LEGACY_WRAPPERS:
            assert func_name.removeprefix("run_") in registered
