"""Tests for the benchmark harness behind ``make bench``."""

import json

import numpy as np
import pytest

from repro.api.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    benchmark_callable,
    collect_environment,
    e2e_benchmarks,
    kernel_microbench,
    record_from_times,
    serve_benchmarks,
    time_callable,
    write_bench_report,
)


class TestTiming:
    def test_time_callable_counts_rounds(self):
        calls = []
        times = time_callable(lambda: calls.append(1), rounds=4, warmup=2)
        assert len(times) == 4
        assert len(calls) == 6  # warmup runs execute but are not timed
        assert all(t >= 0.0 for t in times)

    def test_time_callable_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, rounds=0)

    def test_record_statistics(self):
        record = record_from_times("x", "kernel", {"k": 1}, [0.2, 0.1, 0.4])
        assert record.median_s == pytest.approx(0.2)
        assert record.min_s == pytest.approx(0.1)
        assert record.rounds == 3

    def test_record_requires_samples(self):
        with pytest.raises(ValueError):
            record_from_times("x", "kernel", {}, [])

    def test_benchmark_callable_roundtrip(self):
        record = benchmark_callable("y", "e2e", {"n": 2}, lambda: sum(range(10)),
                                    rounds=2, warmup=0)
        assert record.name == "y"
        assert record.rounds == 2


class TestReports:
    def test_environment_fields(self):
        env = collect_environment("/root/repo")
        assert set(env) >= {"commit", "timestamp", "python", "numpy",
                            "platform", "have_bitwise_count"}
        assert env["numpy"] == np.__version__

    def test_write_bench_report_json_roundtrip(self, tmp_path):
        record = BenchRecord(name="a", group="kernel", params={"k": 128},
                             median_s=0.1, mean_s=0.1, std_s=0.0, min_s=0.1,
                             rounds=3)
        path = tmp_path / "BENCH_test.json"
        document = write_bench_report(path, [record], {"commit": "abc"},
                                      extra={"mode": "quick"})
        loaded = json.loads(path.read_text())
        assert loaded == document
        assert loaded["schema_version"] == BENCH_SCHEMA_VERSION
        assert loaded["mode"] == "quick"
        assert loaded["benchmarks"][0]["name"] == "a"
        assert loaded["environment"]["commit"] == "abc"


class TestSuites:
    def test_kernel_microbench_tiny_grid(self):
        records, summary = kernel_microbench(grid=((32, 16), (2048, 128)),
                                             rounds=1)
        names = {record.name for record in records}
        assert "kernel/packed_popcount/rows=32,k=16" in names
        assert "kernel/unpacked_gemm/rows=2048,k=128" in names
        assert summary["speedups"].keys() == {"rows=32,k=16", "rows=2048,k=128"}
        acceptance = summary["acceptance"]
        assert acceptance["workload"] == "rows=2048,k=128"
        assert acceptance["speedup"] > 0.0

    def test_e2e_suite_runs_quickly(self):
        records = e2e_benchmarks(quick=True, rounds=1)
        assert {record.group for record in records} == {"e2e"}
        assert len(records) == 3
        assert all(record.median_s >= 0.0 for record in records)

    def test_kernel_microbench_threaded_records(self):
        records, summary = kernel_microbench(grid=((1024, 64),), rounds=1,
                                             thread_counts=(2,))
        names = {record.name for record in records}
        assert "kernel/packed_popcount_threads=2/rows=1024,k=64" in names
        assert summary["thread_counts"] == [2]
        cell_speedups = summary["threaded_speedups"]["rows=1024,k=64"]
        assert cell_speedups["threads=2"] > 0.0

    def test_serve_suite_records_and_acceptance_fields(self):
        records, summary = serve_benchmarks(total_requests=300, quick=False,
                                            rounds=1)
        names = {record.name for record in records}
        assert names == {
            "serve/microbatch/max_batch=64",
            "serve/serial/max_batch=1",
            "serve/zipf_cached/max_batch=64",
        }
        assert all(record.group == "serve" for record in records)
        acceptance = summary["acceptance"]
        assert set(acceptance) == {"workload", "max_batch", "speedup",
                                   "min_required_speedup", "passed"}
        assert summary["throughput_rps"]["microbatch_64"] > 0
        assert 0.0 <= summary["zipf_cache_hit_rate"] <= 1.0

    def test_serve_suite_is_json_serializable(self, tmp_path):
        records, summary = serve_benchmarks(total_requests=120, rounds=1)
        document = write_bench_report(tmp_path / "BENCH_serve.json", records,
                                      {"commit": "abc"},
                                      extra={"serve": summary})
        assert json.loads((tmp_path / "BENCH_serve.json").read_text()) == document

    def test_threaded_records_skip_single_block_cells(self):
        from repro.core.bitops import KERNEL_BLOCK_ROWS
        records, summary = kernel_microbench(
            grid=((64, 32), (KERNEL_BLOCK_ROWS * 2, 32)), rounds=1,
            thread_counts=(2,))
        threaded = [record.name for record in records
                    if "packed_popcount_threads" in record.name]
        # Only the multi-block cell engages threading; the single-block
        # cell must not report a bogus ~1.0x "threaded" null result.
        assert threaded == [
            f"kernel/packed_popcount_threads=2/rows={KERNEL_BLOCK_ROWS * 2},k=32"]
        assert list(summary["threaded_speedups"]) == [
            f"rows={KERNEL_BLOCK_ROWS * 2},k=32"]
