"""Tests for the typed result schema and its JSON round-trip."""

import json

import numpy as np
import pytest

from repro.api.results import (
    CostReport,
    ExperimentResult,
    RunResult,
    SchemaError,
    json_sanitize,
)


def roundtrip(obj):
    """Serialise through real JSON text and rebuild."""
    return type(obj).from_dict(json.loads(json.dumps(obj.to_dict())))


class TestCostReport:
    def test_json_roundtrip_preserves_equality(self):
        report = CostReport(backend="deepcam", network="lenet5",
                            total_cycles=972, total_energy_uj=0.0448,
                            mean_utilization=0.31,
                            breakdown={"cam_search_pj": 1.5},
                            meta={"cam_rows": 64})
        assert roundtrip(report) == report

    def test_numpy_scalars_are_sanitized(self):
        report = CostReport(backend="cpu", network="vgg11",
                            total_cycles=int(np.int64(10)),
                            breakdown={"x": np.float64(1.25)},
                            meta={"count": np.int32(3), "flag": np.bool_(True)})
        payload = json.dumps(report.to_dict())  # must not raise
        rebuilt = CostReport.from_dict(json.loads(payload))
        assert rebuilt.breakdown["x"] == 1.25
        assert rebuilt.meta["count"] == 3

    def test_energy_may_be_absent(self):
        report = CostReport(backend="cpu", network="lenet5", total_cycles=5)
        assert report.total_energy_uj is None
        assert report.total_energy_pj is None
        assert roundtrip(report) == report

    def test_latency_helper(self):
        report = CostReport(backend="deepcam", network="lenet5", total_cycles=300)
        assert report.latency_s(300e6) == pytest.approx(1e-6)
        with pytest.raises(ValueError):
            report.latency_s(0)

    def test_schema_violations_raise(self):
        with pytest.raises(SchemaError):
            CostReport(backend="", network="lenet5", total_cycles=1)
        with pytest.raises(SchemaError):
            CostReport(backend="x", network="lenet5", total_cycles=-1)
        with pytest.raises(SchemaError):
            CostReport(backend="x", network="lenet5", total_cycles=1,
                       mean_utilization=1.5)


class TestRunResult:
    def test_from_logits_and_roundtrip(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2], [0.3, 0.7]])
        labels = np.array([1, 0, 0])
        result = RunResult.from_logits("deepcam", logits, labels=labels,
                                       stats={"cam_searches": np.int64(12)})
        assert result.predictions == (1, 0, 1)
        assert result.accuracy == pytest.approx(2 / 3)
        assert roundtrip(result) == result

    def test_without_labels_accuracy_is_none(self):
        result = RunResult.from_logits("cpu", np.eye(4))
        assert result.accuracy is None
        assert roundtrip(result) == result

    def test_prediction_count_must_match(self):
        with pytest.raises(SchemaError):
            RunResult(backend="x", num_samples=2, predictions=(1,))


class TestExperimentResult:
    def test_roundtrip_drops_raw_but_keeps_rows(self):
        result = ExperimentResult(experiment="fig9_cycles",
                                  params={"cam_rows": 64},
                                  rows=[{"network": "lenet5", "cycles": 972}],
                                  meta={"title": "Fig. 9"},
                                  raw=object())
        rebuilt = roundtrip(result)
        assert rebuilt == result  # raw is excluded from equality
        assert rebuilt.raw is None
        assert rebuilt.rows == result.rows

    def test_column_extraction(self):
        result = ExperimentResult(experiment="e", rows=[{"a": 1}, {"a": 2}, {"b": 3}])
        assert result.column("a") == [1, 2, None]

    def test_rows_must_be_mappings(self):
        with pytest.raises(SchemaError):
            ExperimentResult(experiment="e", rows=[42])


class TestJsonSanitize:
    def test_handles_nested_numpy_enum_and_dataclass(self):
        from repro.core.config import Dataflow

        value = {"arr": np.arange(3), "flow": Dataflow.AUTO,
                 "nested": [(np.float32(1.5), {"k": np.int8(2)})]}
        clean = json_sanitize(value)
        json.dumps(clean)  # must not raise
        assert clean["arr"] == [0, 1, 2]
        assert clean["flow"] == "auto"
        assert clean["nested"] == [[1.5, {"k": 2}]]
