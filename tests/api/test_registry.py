"""Tests for the string-keyed backend registry."""

import pytest

import repro.api as api
from repro.api.backend import BackendNotFoundError, DuplicateBackendError


class TestBackendRegistry:
    def test_all_four_paper_backends_are_registered(self):
        names = api.list_backends()
        for expected in ("deepcam", "eyeriss", "cpu", "analog_pim"):
            assert expected in names

    def test_get_backend_returns_protocol_instances(self):
        for name in ("deepcam", "eyeriss", "cpu", "analog_pim"):
            backend = api.get_backend(name)
            assert isinstance(backend, api.Backend)
            assert backend.name == name

    def test_get_backend_forwards_kwargs_to_factory(self):
        config = api.DeepCAMConfig(cam_rows=256)
        backend = api.get_backend("deepcam", config=config)
        assert backend.config.cam_rows == 256

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(BackendNotFoundError) as excinfo:
            api.get_backend("tpu")
        message = str(excinfo.value)
        assert "tpu" in message
        assert "deepcam" in message

    def test_duplicate_key_raises(self):
        with pytest.raises(DuplicateBackendError):
            api.register_backend("deepcam", api.DeepCAMBackend)

    def test_register_custom_backend_roundtrip(self):
        class NullBackend(api.BaseBackend):
            def estimate(self, trace):
                return api.CostReport(backend=self.name, network=trace.name,
                                      total_cycles=1)

            def infer(self, model, batch):
                raise NotImplementedError

        try:
            api.register_backend("null", NullBackend)
            backend = api.get_backend("null")
            report = backend.estimate(api.network_by_name("lenet5"))
            assert report.backend == "null"
            assert report.total_cycles == 1
            assert "null" in api.list_backends()
        finally:
            api.unregister_backend("null")
        assert "null" not in api.list_backends()

    def test_register_as_decorator(self):
        try:
            @api.register_backend("decorated")
            class Decorated(api.BaseBackend):
                def estimate(self, trace):
                    return api.CostReport(backend=self.name, network=trace.name,
                                          total_cycles=0)

                def infer(self, model, batch):
                    raise NotImplementedError

            assert "decorated" in api.list_backends()
            assert isinstance(api.get_backend("decorated"), Decorated)
        finally:
            api.unregister_backend("decorated")

    def test_frozen_backend_keeps_its_own_name(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class FrozenBackend:
            name: str = "frozen"

            def estimate(self, trace):
                return api.CostReport(backend=self.name, network=trace.name,
                                      total_cycles=1)

            def infer(self, model, batch):
                raise NotImplementedError

        try:
            api.register_backend("frozen-key", FrozenBackend)
            backend = api.get_backend("frozen-key")  # must not raise
            assert backend.name == "frozen"
        finally:
            api.unregister_backend("frozen-key")

    def test_overwrite_replaces_factory(self):
        try:
            api.register_backend("tmp", api.SkylakeCPUBackend)
            api.register_backend("tmp", api.EyerissBackend, overwrite=True)
            assert isinstance(api.get_backend("tmp"), api.EyerissBackend)
        finally:
            api.unregister_backend("tmp")
