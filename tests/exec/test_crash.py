"""Fault injection: a process worker dies mid-search.

The contract has two layers.  The raw :class:`ProcessExecutor` must
surface the death as a typed :class:`WorkerCrashError` (never a hang,
never a silent partial result); the :class:`FallbackExecutor` wrapper the
pipeline actually uses must catch it, replay the whole batch on the
inline engine and return bit-identical results, while the broken pool
respawns lazily for the next search.
"""

import os

import numpy as np
import pytest

from repro.bitops import packed_hamming_matrix
from repro.cam.array import CamArray
from repro.exec import (
    CrashInjector,
    FallbackExecutor,
    InlineExecutor,
    ProcessExecutor,
    WorkerCrashError,
)
from repro.shard import ShardedCamPipeline

WORD_BITS = 96


def shm_segments():
    try:
        return sorted(name for name in os.listdir("/dev/shm")
                      if name.startswith("repro_exec_"))
    except FileNotFoundError:
        return []


def crashing_executor(workers=2):
    injector = CrashInjector()
    primary = ProcessExecutor(workers=workers, crash_injector=injector)
    return FallbackExecutor(primary, InlineExecutor()), injector


class TestRawCrashSurfaces:
    def test_killed_worker_raises_typed_error(self, rng):
        injector = CrashInjector()
        engine = ProcessExecutor(workers=2, crash_injector=injector)
        try:
            a = rng.integers(0, 2 ** 63, size=(64, 2), dtype=np.uint64)
            b = rng.integers(0, 2 ** 63, size=(700, 2), dtype=np.uint64)
            injector.arm(1)
            with pytest.raises(WorkerCrashError):
                engine.hamming_blocked(a, b)
            assert injector.injected == 1
            stats = engine.stats()
            assert stats["worker_crashes"] == 1
            assert not stats["pool_alive"]  # the broken pool was discarded
            # The next search respawns a pool lazily and succeeds.
            assert np.array_equal(engine.hamming_blocked(a, b),
                                  packed_hamming_matrix(a, b))
            assert engine.stats()["pools_spawned"] == 2
        finally:
            engine.close()

    def test_crash_during_fanout_raises_too(self, rng):
        injector = CrashInjector()
        engine = ProcessExecutor(workers=2, crash_injector=injector)
        try:
            queries = rng.integers(0, 2 ** 63, size=(4, 2), dtype=np.uint64)
            storage = rng.integers(0, 2 ** 63, size=(128, 2), dtype=np.uint64)
            injector.arm(1)
            with pytest.raises(WorkerCrashError):
                engine.hamming_fanout(queries, storage, [(0, 64), (64, 128)])
        finally:
            engine.close()


class TestFallbackReplay:
    def test_batch_replayed_bit_identically(self, rng):
        engine, injector = crashing_executor()
        try:
            a = rng.integers(0, 2 ** 63, size=(40, 3), dtype=np.uint64)
            b = rng.integers(0, 2 ** 63, size=(900, 3), dtype=np.uint64)
            reference = packed_hamming_matrix(a, b)
            injector.arm(1)
            assert np.array_equal(engine.hamming_blocked(a, b), reference)
            stats = engine.stats()
            assert stats["worker_crashes"] == 1
            assert stats["fallback_batches"] == 1
            # Uncrashed searches go back to the (respawned) primary.
            assert np.array_equal(engine.hamming_blocked(a, b), reference)
            assert engine.stats()["fallback_batches"] == 1
        finally:
            engine.close()

    def test_pipeline_search_survives_worker_kill(self, rng):
        # End to end: one process worker is SIGKILLed mid-search inside a
        # sharded cluster; the search must return bit-identical distances
        # (replayed inline) and surface the crash only in the stats.
        bits = rng.integers(0, 2, size=(200, WORD_BITS), dtype=np.uint8)
        queries = rng.integers(0, 2, size=(6, WORD_BITS), dtype=np.uint8)
        cam = CamArray(rows=200, word_bits=WORD_BITS)
        cam.write_rows(bits)
        expected, ref_energy, _ = cam.search_batch(queries)

        engine, injector = crashing_executor()
        pipeline = ShardedCamPipeline(
            total_rows=200, word_bits=WORD_BITS, num_shards=4,
            fanout="ports", executor=engine, num_workers=2)
        try:
            pipeline.write_rows(bits)
            injector.arm(1)
            distances, energy, _ = pipeline.search_batch(queries)
            assert np.array_equal(distances, expected)
            assert energy == pytest.approx(ref_energy, rel=1e-12)
            stats = pipeline.stats()["executor_stats"]
            assert stats["worker_crashes"] == 1
            assert stats["fallback_batches"] == 1
            # And the very next search runs clean on a fresh pool.
            again, _, _ = pipeline.search_batch(queries)
            assert np.array_equal(again, expected)
        finally:
            pipeline.close()
            engine.close()

    def test_no_segments_leak_across_a_crash(self, rng):
        baseline = shm_segments()
        engine, injector = crashing_executor()
        handle = engine.publish(
            rng.integers(0, 2 ** 63, size=(256, 2), dtype=np.uint64))
        queries = rng.integers(0, 2 ** 63, size=(3, 2), dtype=np.uint64)
        injector.arm(1)
        engine.hamming_fanout(queries, handle, [(0, 128), (128, 256)])
        handle.retire()
        engine.close()
        assert shm_segments() == baseline
