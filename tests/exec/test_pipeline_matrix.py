"""Sharded pipeline × execution plane: bit-identity against one array.

The oracle is the existing sharding contract: whatever the engine, the
fan-out mode, the plan policy or the amplifier noise, a cluster must
return byte-for-byte the distances (and the same energy, to float
round-off) of a single CamArray holding all rows -- including while the
cluster is being rebalanced and rewritten under load.
"""

import os

import numpy as np
import pytest

from repro.bitops import pack_bits
from repro.cam.array import CamArray
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp
from repro.exec import EXECUTOR_NAMES
from repro.shard import ShardedCamPipeline

WORD_BITS = 96
ROWS = 220
AMP_SEED = 97


def shm_segments():
    try:
        return sorted(name for name in os.listdir("/dev/shm")
                      if name.startswith("repro_exec_"))
    except FileNotFoundError:
        return []


def make_amp(noisy):
    return ClockedSelfReferencedSenseAmp(
        word_bits=WORD_BITS,
        timing_noise_sigma_ps=2.5 if noisy else 0.0,
        seed=AMP_SEED)


def reference(bits, queries, noisy, k=None):
    cam = CamArray(rows=ROWS, word_bits=WORD_BITS, sense_amp=make_amp(noisy))
    cam.write_rows(bits)
    if k is None:
        return cam.search_batch(queries)
    return cam.topk_packed(pack_bits(queries), k)


def make_pipeline(bits, executor, fanout, noisy, policy="strided",
                  num_shards=4):
    pipeline = ShardedCamPipeline(
        total_rows=ROWS, word_bits=WORD_BITS, num_shards=num_shards,
        policy=policy, sense_amp=make_amp(noisy), fanout=fanout,
        executor=executor, num_workers=2)
    pipeline.write_rows(bits)
    return pipeline


@pytest.fixture
def stored_bits(rng):
    return rng.integers(0, 2, size=(ROWS, WORD_BITS), dtype=np.uint8)


@pytest.fixture
def queries(rng):
    return rng.integers(0, 2, size=(7, WORD_BITS), dtype=np.uint8)


class TestExecutorMatrix:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    @pytest.mark.parametrize("fanout", ["fused", "ports"])
    @pytest.mark.parametrize("noisy", [False, True])
    def test_search_bit_identical_to_single_array(self, stored_bits, queries,
                                                  executor, fanout, noisy):
        expected, ref_energy, _ = reference(stored_bits, queries, noisy)
        pipeline = make_pipeline(stored_bits, executor, fanout, noisy)
        try:
            distances, energy, _ = pipeline.search_batch(queries)
            assert np.array_equal(distances, expected)
            assert energy == pytest.approx(ref_energy, rel=1e-12)
        finally:
            pipeline.close()

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    @pytest.mark.parametrize("fanout", ["fused", "ports"])
    @pytest.mark.parametrize("noisy", [False, True])
    def test_topk_bit_identical_to_single_array(self, stored_bits, queries,
                                                executor, fanout, noisy):
        oracle = reference(stored_bits, queries, noisy, k=5)
        pipeline = make_pipeline(stored_bits, executor, fanout, noisy)
        try:
            result = pipeline.topk_packed(pack_bits(queries), 5)
            assert np.array_equal(result.indices, oracle.indices)
            assert np.array_equal(result.distances, oracle.distances)
            assert result.energy_pj == pytest.approx(oracle.energy_pj,
                                                     rel=1e-12)
        finally:
            pipeline.close()

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    @pytest.mark.parametrize("fanout", ["fused", "ports"])
    def test_empty_batch_is_a_shaped_noop(self, stored_bits, executor,
                                          fanout):
        pipeline = make_pipeline(stored_bits, executor, fanout, noisy=False)
        try:
            empty = np.zeros((0, pipeline._packed.shape[1]), dtype=np.uint64)
            distances, energy, latency = pipeline.search_batch_packed(empty)
            assert distances.shape == (0, ROWS)
            assert energy == 0.0 and latency == 0
            result = pipeline.topk_packed(empty, 4)
            assert result.indices.shape == (0, 4)
        finally:
            pipeline.close()

    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    def test_port_counters_stay_consistent(self, stored_bits, queries,
                                           executor):
        # Parent-side accounting must hit the very same per-port counters
        # an in-array search would (account_packed_search), so the summed
        # port energies equal the pipeline's accrued total.
        pipeline = make_pipeline(stored_bits, executor, "ports", noisy=False)
        try:
            pipeline.search_batch(queries)
            port_total = sum(
                port.accumulated_search_energy_pj
                for replicas in pipeline._ports for port in replicas)
            assert port_total == pytest.approx(
                pipeline.accumulated_search_energy_pj, rel=1e-12)
        finally:
            pipeline.close()


class TestRebalanceUnderLoad:
    @pytest.mark.parametrize("executor", EXECUTOR_NAMES)
    @pytest.mark.parametrize("fanout", ["fused", "ports"])
    def test_rebalance_and_write_republish_safely(self, rng, stored_bits,
                                                  queries, executor, fanout):
        expected, _, _ = reference(stored_bits, queries, noisy=False)
        pipeline = make_pipeline(stored_bits, executor, fanout, noisy=False)
        try:
            before, _, _ = pipeline.search_batch(queries)
            assert np.array_equal(before, expected)
            plane = pipeline._plane
            pipeline.rebalance(num_shards=6, policy="contiguous")
            # The plane (and its worker pool) survives the rebalance.
            if plane is not None:
                assert pipeline._plane is plane
            mid, _, _ = pipeline.search_batch(queries)
            assert np.array_equal(mid, expected)
            # A write re-publishes the storage copy-on-write; the next
            # search must see the new rows, bit-identically to a single
            # array holding the updated contents.
            update = rng.integers(0, 2, size=(31, WORD_BITS), dtype=np.uint8)
            new_bits = stored_bits.copy()
            new_bits[100:131] = update
            pipeline.write_rows(update, start_row=100)
            new_expected, _, _ = reference(new_bits, queries, noisy=False)
            after, _, _ = pipeline.search_batch(queries)
            assert np.array_equal(after, new_expected)
            pipeline.add_shard()
            again, _, _ = pipeline.search_batch(queries)
            assert np.array_equal(again, new_expected)
        finally:
            pipeline.close()

    def test_noisy_rebalance_keeps_the_noise_stream_in_lockstep(
            self, stored_bits, queries):
        # Two noisy searches from identically seeded amplifiers must agree
        # even when one cluster rebalances (and re-publishes) in between.
        baseline = make_pipeline(stored_bits, "processes", "ports", True)
        moving = make_pipeline(stored_bits, "processes", "ports", True)
        try:
            a1, _, _ = baseline.search_batch(queries)
            b1, _, _ = moving.search_batch(queries)
            assert np.array_equal(a1, b1)
            moving.rebalance(num_shards=3, policy="contiguous")
            a2, _, _ = baseline.search_batch(queries)
            b2, _, _ = moving.search_batch(queries)
            assert np.array_equal(a2, b2)
        finally:
            baseline.close()
            moving.close()


class TestPlaneLifecycle:
    def test_pool_sized_by_worker_budget_not_shard_count(self, stored_bits,
                                                         queries):
        # The pre-plane pool was keyed on the shard count at first use; the
        # plane must follow the configured budget through any rebalance.
        pipeline = make_pipeline(stored_bits, "threads", "ports", False,
                                 num_shards=2)
        try:
            pipeline.search_batch(queries)
            assert pipeline._plane.workers == 2
            pipeline.rebalance(num_shards=6)
            pipeline.search_batch(queries)
            assert pipeline._plane.workers == 2
            assert pipeline.stats()["fanout_workers"] == 2
        finally:
            pipeline.close()

    def test_fused_without_configured_executor_creates_no_plane(
            self, stored_bits, queries):
        pipeline = ShardedCamPipeline(total_rows=ROWS, word_bits=WORD_BITS,
                                      num_shards=4)
        pipeline.write_rows(stored_bits)
        pipeline.search_batch(queries)
        assert pipeline._plane is None
        assert pipeline.stats()["executor"] is None
        pipeline.close()

    def test_no_leaked_segments_after_close(self, stored_bits, queries):
        baseline = shm_segments()
        pipeline = make_pipeline(stored_bits, "processes", "ports", False)
        pipeline.search_batch(queries)
        pipeline.topk_packed(pack_bits(queries), 3)
        assert len(shm_segments()) > len(baseline)  # storage is published
        pipeline.close()
        assert shm_segments() == baseline

    def test_stats_surface_the_engine(self, stored_bits, queries):
        pipeline = make_pipeline(stored_bits, "processes", "ports", False)
        try:
            pipeline.search_batch(queries)
            stats = pipeline.stats()
            assert stats["executor"] == "processes"
            assert stats["executor_stats"]["workers"] == 2
            assert stats["executor_stats"]["worker_crashes"] == 0
            # The search really fanned out on the pool: one task per shard.
            assert stats["executor_stats"]["tasks_executed"] == 4
        finally:
            pipeline.close()
