"""The execution plane's engine contract: bit-identity and lifecycle.

Every engine must produce byte-for-byte the results of the serial
reference kernel for both fan-out primitives, shapes and selectors
included, because the layers above (kernel, shard, serve, net) treat the
engine as a pure substitution.
"""

import os

import numpy as np
import pytest

from repro.bitops import packed_hamming_matrix
from repro.exec import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV,
    EXECUTOR_NAMES,
    FallbackExecutor,
    InlineExecutor,
    ProcessExecutor,
    StorageHandle,
    ThreadExecutor,
    resolve_executor,
    resolve_executor_name,
    resolve_workers,
    split_rows,
)

EXECUTORS = list(EXECUTOR_NAMES)


def shm_segments():
    """Live execution-plane SharedMemory segments on this host."""
    try:
        return sorted(name for name in os.listdir("/dev/shm")
                      if name.startswith("repro_exec_"))
    except FileNotFoundError:  # non-Linux fallback: nothing to observe
        return []


@pytest.fixture
def engine(request):
    executor = resolve_executor(request.param, workers=2)
    yield executor
    executor.close()


def packed(rng, rows, words):
    return rng.integers(0, 2 ** 63, size=(rows, words), dtype=np.uint64)


class TestEngineBitIdentity:
    @pytest.mark.parametrize("engine", EXECUTORS, indirect=True)
    @pytest.mark.parametrize("rows_a,rows_b,words", [
        (1, 1, 1), (7, 13, 3), (700, 90, 2), (65, 1300, 4),
    ])
    def test_hamming_blocked_matches_kernel(self, rng, engine,
                                            rows_a, rows_b, words):
        a, b = packed(rng, rows_a, words), packed(rng, rows_b, words)
        assert np.array_equal(engine.hamming_blocked(a, b),
                              packed_hamming_matrix(a, b))

    @pytest.mark.parametrize("engine", EXECUTORS, indirect=True)
    def test_hamming_fanout_matches_kernel_slices(self, rng, engine):
        queries, storage = packed(rng, 9, 3), packed(rng, 500, 3)
        selectors = [(0, 200), (200, 450), (450, 500),
                     np.array([499, 0, 17, 17, 3], dtype=np.int64),
                     np.array([], dtype=np.int64)]
        handle = engine.publish(storage)
        try:
            blocks = engine.hamming_fanout(queries, handle, selectors)
        finally:
            handle.retire()
        for selector, block in zip(selectors, blocks):
            rows = (storage[selector[0]:selector[1]]
                    if isinstance(selector, tuple) else storage[selector])
            assert np.array_equal(block, packed_hamming_matrix(queries, rows))

    @pytest.mark.parametrize("engine", EXECUTORS, indirect=True)
    def test_raw_array_storage_is_accepted(self, rng, engine):
        queries, storage = packed(rng, 4, 2), packed(rng, 64, 2)
        blocks = engine.hamming_fanout(queries, storage, [(0, 64)])
        assert np.array_equal(blocks[0],
                              packed_hamming_matrix(queries, storage))

    @pytest.mark.parametrize("engine", EXECUTORS, indirect=True)
    def test_empty_query_batch_is_a_shaped_noop(self, rng, engine):
        queries = np.zeros((0, 2), dtype=np.uint64)
        storage = packed(rng, 32, 2)
        out = engine.hamming_blocked(queries, storage)
        assert out.shape == (0, 32) and out.dtype == np.int64
        blocks = engine.hamming_fanout(queries, storage, [(0, 32)])
        assert blocks[0].shape == (0, 32)

    @pytest.mark.parametrize("engine", EXECUTORS, indirect=True)
    def test_selector_bounds_are_validated(self, rng, engine):
        queries, storage = packed(rng, 2, 1), packed(rng, 8, 1)
        with pytest.raises(ValueError):
            engine.hamming_fanout(queries, storage, [(0, 9)])
        with pytest.raises(ValueError):
            engine.hamming_fanout(queries, storage,
                                  [np.array([8], dtype=np.int64)])


class TestKernelExecutorHook:
    def test_explicit_executor_argument(self, rng):
        a, b = packed(rng, 40, 2), packed(rng, 600, 2)
        reference = packed_hamming_matrix(a, b)
        for name in EXECUTOR_NAMES:
            assert np.array_equal(
                packed_hamming_matrix(a, b, executor=name), reference)

    def test_environment_hook_routes_through_plane(self, rng, monkeypatch):
        a, b = packed(rng, 30, 2), packed(rng, 300, 2)
        reference = packed_hamming_matrix(a, b)
        monkeypatch.setenv(EXECUTOR_ENV, "processes")
        assert np.array_equal(packed_hamming_matrix(a, b), reference)
        # An explicit num_threads pins the legacy path (and is what keeps
        # fork-inheriting workers from re-entering the plane).
        assert np.array_equal(packed_hamming_matrix(a, b, num_threads=1),
                              reference)

    def test_bad_environment_name_raises(self, rng, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "warp-drive")
        with pytest.raises(ValueError, match="executor"):
            packed_hamming_matrix(packed(rng, 2, 1), packed(rng, 2, 1))


class TestResolution:
    def test_name_precedence(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert resolve_executor_name() == DEFAULT_EXECUTOR
        monkeypatch.setenv(EXECUTOR_ENV, "inline")
        assert resolve_executor_name() == "inline"
        assert resolve_executor_name("processes") == "processes"
        with pytest.raises(ValueError):
            resolve_executor_name("gpu")

    def test_resolve_executor_wraps_processes_in_fallback(self):
        executor = resolve_executor("processes", workers=1)
        try:
            assert isinstance(executor, FallbackExecutor)
            assert isinstance(executor.primary, ProcessExecutor)
            assert isinstance(executor.fallback, InlineExecutor)
            assert executor.name == "processes"
            assert not executor.in_process
        finally:
            executor.close()

    def test_resolve_executor_passthrough_instance(self):
        inline = InlineExecutor()
        assert resolve_executor(inline) is inline

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) == resolve_workers(None)
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_engine_types(self):
        assert isinstance(resolve_executor("inline"), InlineExecutor)
        threads = resolve_executor("threads", workers=2)
        try:
            assert isinstance(threads, ThreadExecutor)
            assert threads.workers == 2
        finally:
            threads.close()


class TestSplitRows:
    def test_spans_partition_exactly(self):
        for total in (1, 7, 64, 513, 2048):
            for parts in (1, 2, 4, 9):
                spans = split_rows(total, parts)
                assert spans[0][0] == 0 and spans[-1][1] == total
                for (_, stop), (start, _) in zip(spans, spans[1:]):
                    assert stop == start
                assert len(spans) <= parts

    def test_min_rows_caps_the_span_count(self):
        spans = split_rows(100, 8, min_rows=64)
        assert len(spans) == 2  # ceil(100/64)
        assert split_rows(0, 4) == []


class TestStorageHandle:
    def test_refcount_defers_destroy_until_release(self, rng):
        engine = ProcessExecutor(workers=1)
        try:
            handle = engine.publish(packed(rng, 16, 1))
            assert shm_segments()  # the segment exists while published
            handle.acquire()       # an in-flight search pins it...
            handle.retire()        # ...so the owner's retire must not free it
            assert shm_segments()
            handle.release()       # the search finishes -> segment unlinked
            assert shm_segments() == []
        finally:
            engine.close()

    def test_inprocess_publish_wraps_without_copy(self, rng):
        storage = packed(rng, 8, 1)
        handle = InlineExecutor().publish(storage)
        assert handle.array is storage
        handle.retire()

    def test_release_below_zero_raises(self, rng):
        handle = StorageHandle(packed(rng, 2, 1))
        handle.retire()
        with pytest.raises(RuntimeError):
            handle.release()
