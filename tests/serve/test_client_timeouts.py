"""The enqueue vs result-wait timeout split on both serve clients.

Two separately-bounded resources per request: queue admission under
backpressure (``enqueue_timeout``) and compute (``timeout``).  The split
must also preserve the historical one-knob behaviour -- a bare per-call
``timeout`` bounds both steps.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    AsyncServeClient,
    MicroBatchServer,
    QueueFullError,
    ServeClient,
    ServeConfig,
    build_demo_engine,
    demo_queries,
)

GEOMETRY = dict(classes=8, input_dim=32, hash_length=128)


class SlowEngine:
    """Engine whose execute blocks until released (controllable stall)."""

    name = "slow"
    output_dim = 4

    def __init__(self):
        self.release = threading.Event()

    def prepare(self, queries):
        from repro.serve.engine import PreparedBatch
        matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return PreparedBatch(queries=matrix)

    def execute(self, prepared):
        self.release.wait(timeout=10.0)
        return np.zeros((prepared.size, self.output_dim))

    def stats(self):
        return {}


class TestWaitResolution:
    """_waits is the one place the (enqueue, result) bounds come from."""

    @pytest.fixture
    def client(self):
        with ServeClient(build_demo_engine(**GEOMETRY), timeout_s=30.0,
                         enqueue_timeout_s=5.0) as client:
            yield client

    def test_defaults(self, client):
        assert client._waits(None, None) == (5.0, 30.0)

    def test_explicit_enqueue_only(self, client):
        assert client._waits(None, 1.0) == (1.0, 30.0)

    def test_both_explicit(self, client):
        assert client._waits(2.0, 1.0) == (1.0, 2.0)

    def test_bare_timeout_bounds_both(self, client):
        # The historical one-knob call: timeout=3 must override the
        # configured enqueue default too, not mix 5.0 admission with a
        # 3.0 result wait.
        assert client._waits(3.0, None) == (3.0, 3.0)

    def test_enqueue_default_follows_timeout_when_unset(self):
        with ServeClient(build_demo_engine(**GEOMETRY),
                         timeout_s=7.0) as client:
            assert client.enqueue_timeout_s == 7.0
            assert client._waits(None, None) == (7.0, 7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeClient(build_demo_engine(**GEOMETRY), enqueue_timeout_s=0)
        with pytest.raises(ValueError):
            ServeClient(build_demo_engine(**GEOMETRY), enqueue_timeout_s=-1.0)

    def test_async_client_mirrors_sync_rules(self):
        async def scenario():
            async with AsyncServeClient(build_demo_engine(**GEOMETRY),
                                        timeout_s=30.0,
                                        enqueue_timeout_s=5.0) as client:
                assert client.enqueue_timeout_s == 5.0
                assert client._waits(None, None) == (5.0, 30.0)
                assert client._waits(3.0, None) == (3.0, 3.0)
                assert client._waits(2.0, 1.0) == (1.0, 2.0)
        asyncio.run(scenario())


class TestBackpressureBehaviour:
    def make_stalled_server(self):
        """A running server whose queue is full behind a stalled batch."""
        engine = SlowEngine()
        config = ServeConfig(max_batch=1, queue_depth=1, max_wait_ms=0.0,
                             full_policy="block")
        server = MicroBatchServer(engine, config=config).start()
        # The first request stalls the worker; submits then pile up until
        # one times out on admission -- the queue is provably full.
        server.submit(np.zeros(4), timeout=5.0)
        deadline = time.monotonic() + 5.0
        while True:
            try:
                server.submit(np.zeros(4), timeout=0.05)
            except QueueFullError:
                return engine, server
            if time.monotonic() > deadline:  # pragma: no cover
                raise AssertionError("queue never filled")

    def test_short_enqueue_timeout_raises_queue_full(self):
        engine, server = self.make_stalled_server()
        try:
            client = ServeClient(server=server, timeout_s=30.0)
            started = time.monotonic()
            with pytest.raises(QueueFullError):
                client.infer(np.zeros(4), enqueue_timeout=0.05)
            # The admission bound did the limiting, not the 30 s result wait.
            assert time.monotonic() - started < 5.0
        finally:
            engine.release.set()
            server.stop(drain=True)

    def test_result_wait_unaffected_by_enqueue_bound(self):
        # A healthy server with a generous result wait but a tiny enqueue
        # bound: admission is instant, so the request must succeed.
        with ServeClient(build_demo_engine(**GEOMETRY),
                         timeout_s=30.0) as client:
            queries = demo_queries(client.server.engine, 2)
            row = client.infer(queries[0], enqueue_timeout=0.25)
            assert row.shape == (GEOMETRY["classes"],)
            rows = client.infer_many(queries, enqueue_timeout=0.25)
            assert rows.shape == (2, GEOMETRY["classes"])
            indices, distances = client.topk(queries[0], 3,
                                             enqueue_timeout=0.25)
            assert indices.shape == distances.shape == (3,)
            many_i, many_d = client.topk_many(queries, 3,
                                              enqueue_timeout=0.25)
            assert many_i.shape == many_d.shape == (2, 3)

    def test_async_short_enqueue_timeout_raises_queue_full(self):
        engine, server = self.make_stalled_server()
        try:
            async def scenario():
                async with AsyncServeClient(server=server,
                                            timeout_s=30.0) as client:
                    with pytest.raises(QueueFullError):
                        await client.infer(np.zeros(4), enqueue_timeout=0.05)
            asyncio.run(scenario())
        finally:
            engine.release.set()
            server.stop(drain=True)
