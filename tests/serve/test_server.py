"""Tests for the micro-batching server, client facade, metrics and observers."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    MicroBatchServer,
    PackedSignatureCache,
    QueueFullError,
    RecordingObserver,
    ServeClient,
    ServeConfig,
    ServeMetrics,
    build_demo_engine,
    demo_queries,
    notify_all,
)


def small_engine(seed=0):
    return build_demo_engine(classes=8, input_dim=32, hash_length=128, seed=seed)


def small_config(**overrides):
    defaults = dict(max_batch=16, max_wait_ms=5.0, queue_depth=256,
                    cache_capacity=512)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestServingCorrectness:
    def test_served_rows_match_direct_execution(self, rng):
        engine = small_engine()
        reference_engine = small_engine()
        queries = demo_queries(engine, 100, seed=4)
        reference = reference_engine.execute(reference_engine.prepare(queries))
        with MicroBatchServer(engine, config=small_config()) as server:
            futures = [server.submit(query) for query in queries]
            served = np.stack([future.result(30) for future in futures])
        assert np.array_equal(served, reference)

    def test_responses_are_read_only(self):
        engine = small_engine()
        with MicroBatchServer(engine, config=small_config()) as server:
            row = server.submit(demo_queries(engine, 1)[0]).result(30)
        assert not row.flags.writeable

    def test_cached_responses_are_bit_identical_to_fresh(self):
        engine = small_engine()
        query = demo_queries(engine, 1, seed=9)[0]
        with MicroBatchServer(engine, config=small_config()) as server:
            fresh = server.submit(query).result(30)
            cached = server.submit(query).result(30)
            stats = server.stats()
        assert stats["cache"]["hits"] == 1
        assert np.array_equal(fresh, cached)

    def test_mixed_hit_miss_batches_merge_correctly(self, rng):
        engine = small_engine()
        queries = demo_queries(engine, 24, seed=1)
        with MicroBatchServer(engine, config=small_config()) as server:
            first = np.stack([f.result(30) for f in server.submit_many(queries[:12])])
            # Second wave interleaves cached (first 12) and new queries.
            wave = np.concatenate([queries[:12], queries[12:]])
            second = np.stack([f.result(30) for f in server.submit_many(wave)])
            stats = server.stats()
        assert np.array_equal(second[:12], first)
        assert stats["cache"]["hits"] >= 12

    def test_duplicate_queries_in_one_batch_execute_once(self):
        engine = small_engine()
        query = demo_queries(engine, 1, seed=7)[0]
        # 16 copies of one query submitted together coalesce into one batch;
        # the engine must see the distinct query exactly once.
        with MicroBatchServer(engine, config=small_config(max_batch=16,
                                                          max_wait_ms=50.0)) as server:
            futures = server.submit_many([query] * 16)
            rows = [future.result(30) for future in futures]
            stats = server.stats()
        assert stats["engine"]["queries_served"] == 1
        assert all(np.array_equal(row, rows[0]) for row in rows)

    def test_multiworker_engine_counters_stay_exact(self):
        engine = small_engine()
        queries = demo_queries(engine, 120, seed=8)
        config = small_config(num_workers=4, max_batch=4, cache_capacity=0)
        with MicroBatchServer(engine, config=config) as server:
            for future in server.submit_many(queries):
                future.result(30)
        assert engine.stats()["queries_served"] == 120
        assert engine.stats()["cam_search_count"] == 120

    def test_cache_disabled_still_serves(self):
        engine = small_engine()
        queries = demo_queries(engine, 10)
        with MicroBatchServer(engine,
                              config=small_config(cache_capacity=0)) as server:
            rows = [f.result(30) for f in server.submit_many(queries)]
            assert server.cache is None
            assert server.stats()["cache"]["hits"] == 0
        assert len(rows) == 10

    def test_shared_cache_instance_across_servers(self):
        cache = PackedSignatureCache(capacity=64)
        engine = small_engine()
        query = demo_queries(engine, 1, seed=2)[0]
        with MicroBatchServer(engine, config=small_config(),
                              cache=cache) as server:
            server.submit(query).result(30)
        with MicroBatchServer(small_engine(), config=small_config(),
                              cache=cache) as server:
            server.submit(query).result(30)
            assert server.stats()["cache"]["hits"] == 1

    def test_shared_cache_never_aliases_different_engines(self):
        # Same query, same hasher geometry/seed, but different prototypes:
        # a shared cache must not return engine A's logits for engine B.
        cache = PackedSignatureCache(capacity=64)
        engine_a = small_engine(seed=0)
        engine_b = small_engine(seed=1)  # different prototypes
        query = demo_queries(engine_a, 1, seed=2)[0]
        with MicroBatchServer(engine_a, config=small_config(),
                              cache=cache) as server:
            row_a = server.submit(query).result(30)
        with MicroBatchServer(engine_b, config=small_config(),
                              cache=cache) as server:
            row_b = server.submit(query).result(30)
            assert server.stats()["cache"]["hits"] == 0
        assert not np.array_equal(row_a, row_b)

    def test_malformed_sample_is_rejected_at_submit(self):
        engine = small_engine()
        with MicroBatchServer(engine, config=small_config()) as server:
            with pytest.raises(ValueError, match="shape"):
                server.submit(np.zeros(33))  # engine input_dim is 32
            with pytest.raises(ValueError, match="shape"):
                server.submit(np.zeros((2, 32)))
            # Innocent co-batched requests are unaffected.
            row = server.submit(demo_queries(engine, 1)[0]).result(30)
        assert row.shape == (8,)

    def test_cache_off_skips_key_construction(self):
        engine = small_engine()
        seen = []
        original = engine.prepare
        engine.prepare = lambda q, want_keys=True: (
            seen.append(want_keys) or original(q, want_keys=want_keys))
        with MicroBatchServer(engine,
                              config=small_config(cache_capacity=0)) as server:
            server.submit(demo_queries(engine, 1)[0]).result(30)
        assert seen == [False]


class TestLifecycleAndBackpressure:
    def test_submit_before_start_raises(self):
        server = MicroBatchServer(small_engine(), config=small_config())
        with pytest.raises(RuntimeError, match="not running"):
            server.submit(np.zeros(32))

    def test_double_start_raises(self):
        server = MicroBatchServer(small_engine(), config=small_config())
        server.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent_and_restartable(self):
        engine = small_engine()
        server = MicroBatchServer(engine, config=small_config())
        server.start()
        server.stop()
        server.stop()  # no-op
        server.start()  # restart on the same queue
        try:
            row = server.submit(demo_queries(engine, 1)[0]).result(30)
            assert row.shape == (8,)
        finally:
            server.stop()

    def test_reject_policy_raises_queue_full(self):
        engine = small_engine()
        # A tiny queue with a huge poll keeps workers asleep long enough
        # for the producer to overrun it deterministically.
        config = ServeConfig(max_batch=4, max_wait_ms=1.0, queue_depth=2,
                             num_workers=1, full_policy="reject",
                             poll_timeout_ms=10_000.0, cache_capacity=0)
        server = MicroBatchServer(engine, config=config)
        # Do not start the workers: the queue can only fill.
        server._running = True  # submit guard only; workers stay down
        try:
            queries = demo_queries(engine, 3)
            server.submit(queries[0])
            server.submit(queries[1])
            with pytest.raises(QueueFullError):
                server.submit(queries[2])
            assert server.metrics.snapshot()["requests"]["rejected"] == 1
        finally:
            server._running = False
            server._flush_queue(RuntimeError("test teardown"))

    def test_block_policy_waits_for_capacity(self):
        engine = small_engine()
        config = small_config(queue_depth=8, full_policy="block")
        with MicroBatchServer(engine, config=config) as server:
            futures = server.submit_many(demo_queries(engine, 64))
            for future in futures:
                future.result(30)
        assert len(futures) == 64

    def test_stop_without_drain_fails_pending(self):
        engine = small_engine()
        config = ServeConfig(max_batch=4, max_wait_ms=1.0, queue_depth=64,
                             poll_timeout_ms=10_000.0, cache_capacity=0)
        server = MicroBatchServer(engine, config=config)
        server._running = True  # enqueue without workers
        futures = server.submit_many(demo_queries(engine, 5))
        server._running = False
        server._stop_event.set()
        server._flush_queue(RuntimeError("server stopped before serving"))
        server._stop_event.clear()
        for future in futures:
            with pytest.raises(RuntimeError, match="stopped"):
                future.result(1)

    def test_context_manager_drains_on_clean_exit(self):
        engine = small_engine()
        with MicroBatchServer(engine, config=small_config()) as server:
            futures = server.submit_many(demo_queries(engine, 40))
        # After exit every future is resolved even if never awaited inside.
        assert all(future.done() for future in futures)

    def test_multiple_workers_serve_everything(self):
        engine = small_engine()
        reference_engine = small_engine()
        queries = demo_queries(engine, 80, seed=3)
        reference = reference_engine.execute(reference_engine.prepare(queries))
        config = small_config(num_workers=3, max_batch=8)
        with MicroBatchServer(engine, config=config) as server:
            served = np.stack([f.result(30)
                               for f in server.submit_many(queries)])
        assert np.array_equal(served, reference)


class TestFailureIsolation:
    class _FlakyEngine:
        """Fails whole batches whenever a poison sample is present."""

        name = "flaky"
        output_dim = 1

        def prepare(self, queries):
            from repro.serve import PreparedBatch
            return PreparedBatch(queries=np.asarray(queries, dtype=np.float64))

        def execute(self, prepared):
            if np.any(prepared.queries > 1e6):
                raise ValueError("poison sample")
            return prepared.queries.sum(axis=1, keepdims=True)

    def test_failed_batch_fails_its_futures_and_server_survives(self):
        config = ServeConfig(max_batch=4, max_wait_ms=1.0, queue_depth=64,
                             cache_capacity=0)
        with MicroBatchServer(self._FlakyEngine(), config=config) as server:
            poisoned = server.submit(np.full(4, 1e9))
            with pytest.raises(ValueError, match="poison"):
                poisoned.result(30)
            healthy = server.submit(np.ones(4))
            assert healthy.result(30)[0] == pytest.approx(4.0)
            stats = server.stats()
        assert stats["requests"]["failed"] >= 1
        assert stats["requests"]["completed"] >= 1


class TestObserversAndMetrics:
    def test_recording_observer_sees_the_event_flow(self):
        engine = small_engine()
        recorder = RecordingObserver()
        with MicroBatchServer(engine, config=small_config(),
                              observers=(recorder,)) as server:
            for future in server.submit_many(demo_queries(engine, 6)):
                future.result(30)
        names = recorder.names()
        assert names[0] == "server_started"
        assert names[-1] == "server_stopped"
        for expected in ("request_enqueued", "batch_collected",
                         "batch_completed", "request_completed"):
            assert expected in names
        total_batched = sum(args[0] for args in recorder.of("batch_completed"))
        assert total_batched == 6

    def test_broken_observer_does_not_break_serving(self, capsys):
        class Broken:
            def batch_completed(self, *args):
                raise RuntimeError("observer bug")

        engine = small_engine()
        with MicroBatchServer(engine, config=small_config(),
                              observers=(Broken(),)) as server:
            row = server.submit(demo_queries(engine, 1)[0]).result(30)
        assert row.shape == (8,)

    def test_metrics_snapshot_shape(self):
        engine = small_engine()
        with MicroBatchServer(engine, config=small_config()) as server:
            for future in server.submit_many(demo_queries(engine, 20)):
                future.result(30)
            snapshot = server.stats()
        assert snapshot["requests"]["completed"] == 20
        assert snapshot["batches"]["count"] >= 1
        assert sum(size * count for size, count
                   in snapshot["batches"]["size_histogram"].items()) == 20
        assert snapshot["latency_ms"]["p99"] >= snapshot["latency_ms"]["p50"] >= 0
        assert snapshot["throughput_rps"] > 0
        assert snapshot["engine_name"] == "cam_pipeline"
        assert snapshot["config"]["max_batch"] == 16

    def test_batch_size_histogram_respects_max_batch(self):
        engine = small_engine()
        config = small_config(max_batch=8)
        with MicroBatchServer(engine, config=config) as server:
            for future in server.submit_many(demo_queries(engine, 50)):
                future.result(30)
            histogram = server.stats()["batches"]["size_histogram"]
        assert max(histogram) <= 8

    def test_notify_all_skips_missing_hooks(self):
        class Partial:
            def batch_completed(self, *args):
                self.seen = args

        partial = Partial()
        notify_all((partial,), "request_enqueued", 3)  # no such hook: skipped
        notify_all((partial,), "batch_completed", 4, 1, 3, 0.5)
        assert partial.seen == (4, 1, 3, 0.5)

    def test_throughput_accumulates_across_restarts(self):
        # A restart must not divide lifetime completions by only the most
        # recent run's elapsed time.
        metrics = ServeMetrics()
        metrics.server_started(None)
        time.sleep(0.05)
        for _ in range(100):
            metrics.request_completed(1.0)
        metrics.server_stopped({})
        metrics.server_started(None)
        metrics.server_stopped({})
        snapshot = metrics.snapshot()
        assert snapshot["elapsed_s"] >= 0.05
        assert snapshot["throughput_rps"] <= 100 / 0.05

    def test_serve_metrics_reservoir_bounds_memory(self):
        metrics = ServeMetrics(reservoir=10)
        for index in range(100):
            metrics.request_completed(float(index))
        snapshot = metrics.snapshot()
        assert snapshot["requests"]["completed"] == 100
        assert snapshot["latency_ms"]["max"] == 99.0  # newest samples kept


class TestServeClient:
    def test_client_owns_engine_lifecycle(self):
        engine = small_engine()
        client = ServeClient(engine, config=small_config())
        try:
            logits = client.infer(demo_queries(engine, 1)[0])
            assert logits.shape == (8,)
        finally:
            client.close()
        assert not client.server.running

    def test_infer_many_stacks_results(self):
        engine = small_engine()
        with ServeClient(engine, config=small_config()) as client:
            logits = client.infer_many(demo_queries(engine, 9))
        assert logits.shape == (9, 8)

    def test_infer_many_empty_is_free(self):
        engine = small_engine()
        with ServeClient(engine, config=small_config()) as client:
            logits = client.infer_many([])
            assert logits.shape == (0, 8)
            assert client.stats()["requests"]["enqueued"] == 0

    def test_attached_server_lifecycle_stays_external(self):
        engine = small_engine()
        server = MicroBatchServer(engine, config=small_config()).start()
        try:
            with ServeClient(server=server) as client:
                client.infer(demo_queries(engine, 1)[0])
            assert server.running  # client.close() must not stop it
        finally:
            server.stop()

    def test_engine_and_server_are_mutually_exclusive(self):
        engine = small_engine()
        server = MicroBatchServer(engine, config=small_config()).start()
        try:
            with pytest.raises(ValueError):
                ServeClient(engine=engine, server=server)
            with pytest.raises(ValueError):
                ServeClient()
        finally:
            server.stop()

    def test_concurrent_clients_share_one_server(self):
        engine = small_engine()
        reference_engine = small_engine()
        queries = demo_queries(engine, 40, seed=6)
        reference = reference_engine.execute(reference_engine.prepare(queries))
        results = {}
        errors = []
        server = MicroBatchServer(engine, config=small_config()).start()

        def call(tag, chunk, offset):
            try:
                client = ServeClient(server=server)
                results[tag] = (offset, client.infer_many(chunk))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        try:
            threads = [
                threading.Thread(target=call, args=(t, queries[t * 10:(t + 1) * 10],
                                                    t * 10))
                for t in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            server.stop()
        assert not errors
        for offset, served in results.values():
            assert np.array_equal(served, reference[offset:offset + 10])
