"""Tests for the serving engines (CAM pipeline + generic backend adapter)."""

import numpy as np
import pytest

from repro.core.hashing import RandomProjectionHasher, hamming_distance_matrix
from repro.core.minifloat import MINIFLOAT8
from repro.hw.cosine_unit import CosineUnit
from repro.serve import (
    BackendEngine,
    CamPipelineEngine,
    InferenceEngine,
    PreparedBatch,
    build_demo_engine,
    demo_queries,
)


@pytest.fixture
def engine(rng):
    prototypes = rng.standard_normal((8, 32))
    return CamPipelineEngine(prototypes, hash_length=128, seed=5)


class TestCamPipelineEngine:
    def test_satisfies_engine_protocol(self, engine):
        assert isinstance(engine, InferenceEngine)

    def test_logits_match_manual_pipeline(self, rng):
        prototypes = rng.standard_normal((6, 24))
        engine = CamPipelineEngine(prototypes, hash_length=256, seed=9)
        queries = rng.standard_normal((5, 24))
        logits = engine.execute(engine.prepare(queries))

        hasher = RandomProjectionHasher(24, 256, seed=9)
        distances = hamming_distance_matrix(hasher.hash_batch(queries),
                                            hasher.hash_batch(prototypes))
        thetas = np.pi * distances / 256
        cosines = np.asarray(CosineUnit()(thetas.ravel())).reshape(thetas.shape)
        expected = (np.linalg.norm(queries, axis=1)[:, None]
                    * np.linalg.norm(prototypes, axis=1)[None, :]
                    * cosines)
        assert np.allclose(logits, expected)

    def test_execute_is_deterministic_and_batch_invariant(self, engine, rng):
        queries = rng.standard_normal((12, 32))
        full = engine.execute(engine.prepare(queries))
        again = engine.execute(engine.prepare(queries))
        assert np.array_equal(full, again)
        # A row computed inside a different batch composition is identical.
        subset = engine.execute(engine.prepare(queries[3:7]))
        assert np.array_equal(subset, full[3:7])

    def test_prepare_produces_stable_unique_keys(self, engine, rng):
        queries = rng.standard_normal((6, 32))
        prepared = engine.prepare(queries)
        assert len(prepared.keys) == 6
        assert len(set(prepared.keys)) == 6  # random queries: all distinct
        assert prepared.keys == engine.prepare(queries).keys
        # Same signature bits + same norm => same key regardless of identity.
        assert engine.prepare(queries[:1]).keys[0] == prepared.keys[0]

    def test_want_keys_false_skips_key_construction(self, engine, rng):
        queries = rng.standard_normal((4, 32))
        prepared = engine.prepare(queries, want_keys=False)
        assert prepared.keys is None
        # Execution is unaffected by the missing keys.
        assert np.array_equal(engine.execute(prepared),
                              engine.execute(engine.prepare(queries)))

    def test_different_prototypes_never_share_keys(self, rng):
        queries = rng.standard_normal((3, 16))
        one = CamPipelineEngine(rng.standard_normal((4, 16)), hash_length=64,
                                seed=2)
        two = CamPipelineEngine(rng.standard_normal((4, 16)), hash_length=64,
                                seed=2)
        assert not set(one.prepare(queries).keys) & set(two.prepare(queries).keys)

    def test_prepared_select_aligns_all_fields(self, engine, rng):
        prepared = engine.prepare(rng.standard_normal((8, 32)))
        subset = prepared.select([1, 4, 6])
        assert subset.size == 3
        assert subset.keys == (prepared.keys[1], prepared.keys[4], prepared.keys[6])
        assert np.array_equal(subset.packed_words, prepared.packed_words[[1, 4, 6]])
        assert np.array_equal(subset.norms, prepared.norms[[1, 4, 6]])
        assert np.array_equal(subset.queries, prepared.queries[[1, 4, 6]])

    def test_empty_batch_executes_to_zero_rows(self, engine):
        prepared = engine.prepare(np.empty((0, 32)))
        assert prepared.size == 0
        logits = engine.execute(prepared)
        assert logits.shape == (0, 8)

    def test_input_dim_is_validated(self, engine):
        with pytest.raises(ValueError, match="shape"):
            engine.prepare(np.zeros((2, 33)))

    def test_rows_must_fit_prototypes(self, rng):
        with pytest.raises(ValueError, match="rows"):
            CamPipelineEngine(rng.standard_normal((8, 16)), rows=4)

    def test_extra_rows_stay_unpopulated(self, rng):
        engine = CamPipelineEngine(rng.standard_normal((4, 16)),
                                   hash_length=64, rows=10)
        logits = engine.execute(engine.prepare(rng.standard_normal((3, 16))))
        assert logits.shape == (3, 4)  # only prototype rows are reported

    def test_norm_quantization_changes_keys(self, rng):
        prototypes = rng.standard_normal((4, 16))
        exact = CamPipelineEngine(prototypes, hash_length=64, seed=1)
        quantized = CamPipelineEngine(prototypes, hash_length=64, seed=1,
                                      quantize_norms=MINIFLOAT8)
        queries = rng.standard_normal((2, 16))
        assert exact.prepare(queries).keys != quantized.prepare(queries).keys

    def test_stats_counts_served_queries(self, engine, rng):
        engine.execute(engine.prepare(rng.standard_normal((5, 32))))
        stats = engine.stats()
        assert stats["queries_served"] == 5
        assert stats["cam_search_count"] == 5
        assert stats["cam_search_energy_pj"] > 0


class _DotBackend:
    """Minimal Backend-protocol stand-in: logits = batch @ weights."""

    name = "dot"

    def __init__(self, weights):
        self.weights = weights

    def infer(self, model, batch):
        return np.asarray(batch) @ self.weights


class TestBackendEngine:
    def test_execute_routes_through_backend_infer(self, rng):
        weights = rng.standard_normal((10, 3))
        engine = BackendEngine(_DotBackend(weights), model=None)
        queries = rng.standard_normal((4, 10))
        logits = engine.execute(engine.prepare(queries))
        assert np.allclose(logits, queries @ weights)
        assert engine.name == "backend/dot"

    def test_keys_are_exact_content_digests(self, rng):
        engine = BackendEngine(_DotBackend(rng.standard_normal((4, 2))), None)
        queries = rng.standard_normal((3, 4))
        prepared = engine.prepare(queries)
        assert len(set(prepared.keys)) == 3
        # Identical content -> identical key; one flipped bit -> different.
        assert engine.prepare(queries[:1]).keys[0] == prepared.keys[0]
        nudged = queries[:1].copy()
        nudged[0, 0] = np.nextafter(nudged[0, 0], np.inf)
        assert engine.prepare(nudged).keys[0] != prepared.keys[0]


class TestDemoHelpers:
    def test_build_demo_engine_is_reproducible(self):
        first = build_demo_engine(classes=4, input_dim=16, hash_length=64, seed=3)
        second = build_demo_engine(classes=4, input_dim=16, hash_length=64, seed=3)
        queries = demo_queries(first, 5, seed=8)
        assert np.array_equal(first.execute(first.prepare(queries)),
                              second.execute(second.prepare(queries)))

    def test_demo_queries_match_engine_dim(self):
        engine = build_demo_engine(classes=4, input_dim=16, hash_length=64)
        assert demo_queries(engine, 7).shape == (7, 16)
