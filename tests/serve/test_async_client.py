"""AsyncServeClient: the awaitable facade over the future-based submit path."""

import asyncio

import numpy as np
import pytest

from repro.serve import (
    AsyncServeClient,
    MicroBatchServer,
    QueueFullError,
    ServeClient,
    ServeConfig,
    build_demo_engine,
    demo_queries,
)

GEOMETRY = dict(classes=8, input_dim=32, hash_length=128)


def run(coro):
    return asyncio.run(coro)


class TestLifecycle:
    def test_owns_and_stops_its_server(self):
        async def scenario():
            client = AsyncServeClient(build_demo_engine(**GEOMETRY))
            server = client.server
            assert server.running
            await client.close()
            return server

        server = run(scenario())
        assert not server.running

    def test_attaches_to_running_server_without_owning_it(self):
        engine = build_demo_engine(**GEOMETRY)
        server = MicroBatchServer(engine).start()
        try:
            async def scenario():
                async with AsyncServeClient(server=server) as client:
                    await client.infer(demo_queries(engine, 1)[0])
            run(scenario())
            assert server.running  # attached, so still up after client exit
        finally:
            server.stop()

    def test_requires_exactly_one_of_engine_or_server(self):
        with pytest.raises(ValueError):
            AsyncServeClient()
        with pytest.raises(ValueError):
            AsyncServeClient(engine=build_demo_engine(**GEOMETRY),
                             server=MicroBatchServer(
                                 build_demo_engine(**GEOMETRY)))


class TestInference:
    def test_infer_matches_sync_client_bit_for_bit(self):
        engine = build_demo_engine(**GEOMETRY)
        queries = demo_queries(engine, 24, seed=3)
        with ServeClient(build_demo_engine(**GEOMETRY)) as sync_client:
            expected = sync_client.infer_many(queries)

        async def scenario():
            async with AsyncServeClient(engine) as client:
                return await client.infer_many(queries)

        assert np.array_equal(run(scenario()), expected)

    def test_concurrent_awaits_coalesce_into_batches(self):
        engine = build_demo_engine(**GEOMETRY)
        queries = demo_queries(engine, 32, seed=4)
        config = ServeConfig(max_batch=16, max_wait_ms=20.0)

        async def scenario():
            async with AsyncServeClient(engine, config=config) as client:
                rows = await asyncio.gather(
                    *(client.infer(query) for query in queries))
                return np.stack(rows), client.stats()

        stacked, stats = run(scenario())
        assert stacked.shape == (32, 8)
        assert max(stats["batches"]["size_histogram"]) > 1

    def test_empty_infer_many_is_free(self):
        async def scenario():
            async with AsyncServeClient(build_demo_engine(**GEOMETRY)) as client:
                before = client.stats()["requests"]["enqueued"]
                empty = await client.infer_many([])
                return empty, before, client.stats()["requests"]["enqueued"]

        empty, before, after = run(scenario())
        assert empty.shape == (0, 8)
        assert before == after

    def test_result_timeout_raises(self):
        engine = build_demo_engine(**GEOMETRY)

        async def scenario():
            # max_wait_ms far beyond the timeout: the lone request sits in
            # the batcher long enough for the await to expire first.
            config = ServeConfig(max_batch=64, max_wait_ms=5000.0)
            async with AsyncServeClient(engine, config=config,
                                        timeout_s=0.05) as client:
                await client.infer(demo_queries(engine, 1)[0])

        with pytest.raises(asyncio.TimeoutError):
            run(scenario())

    def test_enqueue_timeout_forwards_to_backpressure(self):
        class SlowEngine:
            name = "slow"
            input_dim = 4
            output_dim = 1

            def prepare(self, queries):
                from repro.serve import PreparedBatch
                return PreparedBatch(queries=np.asarray(queries))

            def execute(self, prepared):
                import time
                time.sleep(0.5)
                return np.zeros((prepared.size, 1))

        config = ServeConfig(max_batch=1, max_wait_ms=0.0, queue_depth=1,
                             num_workers=1, full_policy="block",
                             poll_timeout_ms=5.0, cache_capacity=0)
        server = MicroBatchServer(SlowEngine(), config=config).start()
        try:
            # First request occupies the worker (slow execute); the second
            # fills the 1-deep queue; the third's enqueue must then hit
            # its (tiny) backpressure timeout.
            server.submit(np.zeros(4))
            server.submit(np.zeros(4), timeout=2.0)

            async def scenario():
                client = AsyncServeClient(server=server)
                await client.infer(np.zeros(4), timeout=0.05)

            with pytest.raises(QueueFullError):
                run(scenario())
        finally:
            server.stop(drain=True)

    def test_stats_passthrough(self):
        async def scenario():
            client = AsyncServeClient(build_demo_engine(**GEOMETRY))
            await client.infer(np.zeros(32))
            # Drain first: the awaited future resolves just before the
            # worker emits request_completed, so only a stopped server's
            # snapshot is guaranteed to have counted it.
            await client.close()
            return client.stats()

        stats = run(scenario())
        assert stats["requests"]["completed"] == 1
