"""Tests for the packed-signature LRU result cache."""

import threading

import numpy as np
import pytest

from repro.serve import CacheStats, PackedSignatureCache, signature_key


class TestSignatureKey:
    def test_key_is_word_bytes_plus_extra(self):
        words = np.array([1, 2], dtype=np.uint64)
        key = signature_key(words, b"norm")
        assert key == words.tobytes() + b"norm"

    def test_distinct_signatures_distinct_keys(self, rng):
        a = rng.integers(0, 2**63, size=4, dtype=np.uint64)
        b = a.copy()
        b[-1] ^= np.uint64(1)
        assert signature_key(a) != signature_key(b)

    def test_extra_disambiguates_equal_signatures(self):
        words = np.arange(3, dtype=np.uint64)
        assert signature_key(words, b"a") != signature_key(words, b"b")


class TestLruBehavior:
    def test_miss_then_hit_roundtrip(self):
        cache = PackedSignatureCache(capacity=4)
        row = np.array([1.0, 2.0])
        assert cache.get(b"k") is None
        cache.put(b"k", row)
        hit = cache.get(b"k")
        assert np.array_equal(hit, row)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_stored_rows_are_read_only_copies(self):
        cache = PackedSignatureCache(capacity=2)
        row = np.array([1.0, 2.0])
        cache.put(b"k", row)
        row[0] = 99.0  # mutating the original must not corrupt the cache
        hit = cache.get(b"k")
        assert hit[0] == 1.0
        assert not hit.flags.writeable
        with pytest.raises(ValueError):
            hit[0] = 5.0

    def test_readonly_input_is_stored_without_copy(self):
        cache = PackedSignatureCache(capacity=2)
        row = np.array([3.0, 4.0])
        row.flags.writeable = False
        cache.put(b"k", row)
        assert cache.get(b"k") is row

    def test_eviction_is_least_recently_used(self):
        cache = PackedSignatureCache(capacity=2)
        cache.put(b"a", np.array([1.0]))
        cache.put(b"b", np.array([2.0]))
        assert cache.get(b"a") is not None  # refresh a; b is now LRU
        cache.put(b"c", np.array([3.0]))
        assert cache.get(b"b") is None
        assert cache.get(b"a") is not None
        assert cache.get(b"c") is not None
        assert cache.stats().evictions == 1

    def test_put_existing_key_updates_and_refreshes(self):
        cache = PackedSignatureCache(capacity=2)
        cache.put(b"a", np.array([1.0]))
        cache.put(b"b", np.array([2.0]))
        cache.put(b"a", np.array([9.0]))  # refresh + replace
        cache.put(b"c", np.array([3.0]))  # evicts b
        assert cache.get(b"b") is None
        assert cache.get(b"a")[0] == 9.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PackedSignatureCache(capacity=0)

    def test_clear_keeps_lifetime_counters(self):
        cache = PackedSignatureCache(capacity=4)
        cache.put(b"a", np.array([1.0]))
        cache.get(b"a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_get_many_preserves_order(self):
        cache = PackedSignatureCache(capacity=4)
        cache.put(b"a", np.array([1.0]))
        results = cache.get_many([b"a", b"missing", b"a"])
        assert results[0] is not None and results[2] is not None
        assert results[1] is None

    def test_contains_and_len(self):
        cache = PackedSignatureCache(capacity=4)
        cache.put(b"a", np.array([1.0]))
        assert b"a" in cache and b"b" not in cache
        assert len(cache) == 1


class TestDoorkeeperAdmission:
    def test_first_sighting_is_rejected_second_admitted(self):
        cache = PackedSignatureCache(capacity=4, admission_threshold=2)
        cache.put(b"k", np.array([1.0]))
        assert b"k" not in cache
        cache.put(b"k", np.array([1.0]))
        assert b"k" in cache
        stats = cache.stats()
        assert stats.rejected_admissions == 1
        assert stats.admission_threshold == 2

    def test_default_threshold_admits_immediately(self):
        cache = PackedSignatureCache(capacity=4)
        cache.put(b"k", np.array([1.0]))
        assert b"k" in cache
        assert cache.stats().rejected_admissions == 0

    def test_resident_keys_update_without_doorkeeper(self):
        cache = PackedSignatureCache(capacity=4, admission_threshold=3)
        for _ in range(3):
            cache.put(b"k", np.array([1.0]))
        assert b"k" in cache
        cache.put(b"k", np.array([2.0]))  # already resident: updates in place
        assert cache.get(b"k")[0] == 2.0

    def test_one_shot_flood_never_displaces_hot_set(self):
        cache = PackedSignatureCache(capacity=8, admission_threshold=2)
        hot = [f"hot-{i}".encode() for i in range(4)]
        for _ in range(2):  # second round admits the hot set
            for key in hot:
                cache.put(key, np.array([1.0]))
        assert all(key in cache for key in hot)
        for index in range(100):  # the flood: every key seen exactly once
            cache.put(f"flood-{index}".encode(), np.array([0.0]))
        assert all(key in cache for key in hot)
        assert cache.stats().evictions == 0

    def test_plain_lru_collapses_under_the_same_flood(self):
        cache = PackedSignatureCache(capacity=8)  # no doorkeeper
        hot = [f"hot-{i}".encode() for i in range(4)]
        for key in hot:
            cache.put(key, np.array([1.0]))
        for index in range(100):
            cache.put(f"flood-{index}".encode(), np.array([0.0]))
        assert not any(key in cache for key in hot)

    def test_doorkeeper_reset_ages_out_stale_counts(self):
        cache = PackedSignatureCache(capacity=4, admission_threshold=2,
                                     doorkeeper_capacity=3)
        cache.put(b"a", np.array([1.0]))
        cache.put(b"b", np.array([1.0]))
        cache.put(b"c", np.array([1.0]))  # doorkeeper now full
        cache.put(b"d", np.array([1.0]))  # triggers the reset first
        # a's single sighting was aged out by the reset: still not admitted.
        cache.put(b"a", np.array([1.0]))
        assert b"a" not in cache
        cache.put(b"a", np.array([1.0]))
        assert b"a" in cache

    def test_clear_drops_doorkeeper_state(self):
        cache = PackedSignatureCache(capacity=4, admission_threshold=2)
        cache.put(b"k", np.array([1.0]))
        cache.clear()
        cache.put(b"k", np.array([1.0]))  # sighting count restarted
        assert b"k" not in cache

    def test_validation(self):
        with pytest.raises(ValueError):
            PackedSignatureCache(capacity=4, admission_threshold=0)
        with pytest.raises(ValueError):
            PackedSignatureCache(capacity=4, doorkeeper_capacity=0)


class TestConcurrency:
    def test_parallel_put_get_is_consistent(self):
        cache = PackedSignatureCache(capacity=64)
        errors = []

        def worker(tag):
            try:
                for index in range(200):
                    key = f"{tag}-{index % 32}".encode()
                    cache.put(key, np.array([float(index)]))
                    hit = cache.get(key)
                    assert hit is None or hit.shape == (1,)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64

    def test_doorkeeper_counter_algebra_under_concurrent_hammer(self):
        # Sighting + LRU insert are one atomic step under the cache lock,
        # so per fresh key with P >= t puts and threshold t, exactly t - 1
        # are rejected -- no interleaving can double-count a sighting or
        # admit early.
        threshold = 3
        writers = 8
        keys = [f"hammer-{index}".encode() for index in range(16)]
        cache = PackedSignatureCache(capacity=256,
                                     admission_threshold=threshold)
        barrier = threading.Barrier(writers)
        errors = []

        def worker(tag):
            try:
                barrier.wait(5)
                # Half the writers walk the keys backwards to force
                # different interleavings on every key.
                for key in (keys if tag % 2 else reversed(keys)):
                    cache.put(key, np.array([1.0]))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats.rejected_admissions == len(keys) * (threshold - 1)
        assert stats.size == len(keys)
        for key in keys:
            assert cache.get(key) is not None


class TestCacheStats:
    def test_hit_rate_and_to_dict(self):
        stats = CacheStats(capacity=8, size=2, hits=3, misses=1, evictions=0)
        assert stats.hit_rate == pytest.approx(0.75)
        assert stats.to_dict()["hit_rate"] == pytest.approx(0.75)

    def test_zero_lookup_hit_rate_is_zero(self):
        stats = CacheStats(capacity=8, size=0, hits=0, misses=0, evictions=0)
        assert stats.hit_rate == 0.0


class TestProvenance:
    def test_put_records_producing_trace(self):
        cache = PackedSignatureCache(capacity=4)
        cache.put(b"k", np.array([1.0]), trace_id="abc123")
        assert cache.provenance(b"k") == "abc123"

    def test_put_without_trace_leaves_none(self):
        cache = PackedSignatureCache(capacity=4)
        cache.put(b"k", np.array([1.0]))
        assert cache.provenance(b"k") is None

    def test_provenance_does_not_count_as_lookup(self):
        cache = PackedSignatureCache(capacity=4)
        cache.put(b"k", np.array([1.0]), trace_id="t")
        cache.provenance(b"k")
        cache.provenance(b"missing")
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 0)

    def test_eviction_drops_provenance(self):
        cache = PackedSignatureCache(capacity=2)
        cache.put(b"a", np.array([1.0]), trace_id="ta")
        cache.put(b"b", np.array([2.0]), trace_id="tb")
        cache.put(b"c", np.array([3.0]), trace_id="tc")  # evicts a
        assert cache.provenance(b"a") is None
        assert cache.provenance(b"b") == "tb"
        assert cache.provenance(b"c") == "tc"
        # No orphaned provenance entries pinning memory.
        assert len(cache._provenance) == 2

    def test_clear_drops_provenance(self):
        cache = PackedSignatureCache(capacity=4)
        cache.put(b"k", np.array([1.0]), trace_id="t")
        cache.clear()
        assert cache.provenance(b"k") is None

    def test_refresh_overwrites_provenance(self):
        cache = PackedSignatureCache(capacity=4)
        cache.put(b"k", np.array([1.0]), trace_id="old")
        cache.put(b"k", np.array([2.0]), trace_id="new")
        assert cache.provenance(b"k") == "new"

    def test_doorkeeper_rejection_records_nothing(self):
        cache = PackedSignatureCache(capacity=4, admission_threshold=2)
        cache.put(b"k", np.array([1.0]), trace_id="first")  # rejected
        assert cache.provenance(b"k") is None
        cache.put(b"k", np.array([1.0]), trace_id="second")  # admitted
        assert cache.provenance(b"k") == "second"
