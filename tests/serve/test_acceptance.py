"""Acceptance criteria of the serving subsystem (ISSUE 3).

On a 1000-request uniform load the micro-batcher (``max_batch=64``) must
reach >= 5x the throughput of batch-size-1 serving on the same engine
geometry, and cached responses must be bit-identical to freshly computed
logits.  The throughput comparison reuses the exact workload recorded in
``BENCH_e2e.json`` (:func:`repro.api.bench.serve_benchmarks`).
"""

import numpy as np
import pytest

from repro.api.bench import (
    SERVE_ACCEPTANCE_MAX_BATCH,
    SERVE_ACCEPTANCE_MIN_SPEEDUP,
    SERVE_ACCEPTANCE_REQUESTS,
    SERVE_BENCH_ENGINE,
    _serve_run_seconds,
)
from repro.serve import MicroBatchServer, ServeConfig, build_demo_engine


class TestThroughputAcceptance:
    def test_microbatch_is_5x_over_serial_on_1000_uniform_requests(self):
        rng = np.random.default_rng(0)
        queries = rng.standard_normal((SERVE_ACCEPTANCE_REQUESTS,
                                       SERVE_BENCH_ENGINE["input_dim"]))
        # Best-of-3 per mode smooths scheduler hiccups on shared CI boxes
        # without hiding a real regression.
        batched_s = min(_serve_run_seconds(SERVE_ACCEPTANCE_MAX_BATCH,
                                           queries)[0]
                        for _ in range(3))
        serial_s = min(_serve_run_seconds(1, queries)[0] for _ in range(3))
        speedup = serial_s / batched_s
        assert speedup >= SERVE_ACCEPTANCE_MIN_SPEEDUP, (
            f"micro-batching speedup {speedup:.1f}x below the "
            f"{SERVE_ACCEPTANCE_MIN_SPEEDUP}x acceptance bar "
            f"(batched {batched_s * 1e3:.1f} ms, serial {serial_s * 1e3:.1f} ms)"
        )


class TestCacheBitIdentity:
    def test_cached_logits_equal_fresh_logits_exactly(self):
        engine = build_demo_engine(**SERVE_BENCH_ENGINE)
        rng = np.random.default_rng(1)
        queries = rng.standard_normal((64, SERVE_BENCH_ENGINE["input_dim"]))
        config = ServeConfig(max_batch=16, max_wait_ms=5.0, queue_depth=256,
                             cache_capacity=1024)
        with MicroBatchServer(engine, config=config) as server:
            fresh = np.stack([future.result(60)
                              for future in server.submit_many(queries)])
            cached = np.stack([future.result(60)
                               for future in server.submit_many(queries)])
            stats = server.stats()
        assert stats["cache"]["hits"] == 64
        assert fresh.dtype == cached.dtype
        assert np.array_equal(fresh, cached), (
            "cached responses are not bit-identical to fresh logits")

    def test_cache_hits_equal_direct_engine_execution(self):
        served_engine = build_demo_engine(**SERVE_BENCH_ENGINE)
        direct_engine = build_demo_engine(**SERVE_BENCH_ENGINE)
        rng = np.random.default_rng(2)
        queries = rng.standard_normal((48, SERVE_BENCH_ENGINE["input_dim"]))
        direct = direct_engine.execute(direct_engine.prepare(queries))
        config = ServeConfig(max_batch=8, max_wait_ms=5.0, queue_depth=256,
                             cache_capacity=1024)
        with MicroBatchServer(served_engine, config=config) as server:
            server.submit_many(queries)  # populate
            replay = np.stack([future.result(60)
                               for future in server.submit_many(queries)])
        assert np.array_equal(replay, direct)
