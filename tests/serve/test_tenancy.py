"""Multi-tenant traffic control: bucket properties, DWRR fairness, admission.

The token-bucket and fair-queueing tests run on injected clocks and plain
data objects -- no timers, no real traffic -- so every property is exact.
The admission tests drive a real :class:`MicroBatchServer` (workers down
for the deterministic rejection paths, running for the served ones).
"""

from __future__ import annotations

import queue as queue_module
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine, SloSpec
from repro.serve import (
    DEFAULT_TENANT,
    MicroBatchServer,
    QueueFullError,
    QuotaExceededError,
    RateLimitedError,
    ServeConfig,
    TenantPolicy,
    TenantQueues,
    TenantRegistry,
    TokenBucket,
    build_demo_engine,
    demo_queries,
)


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def small_engine(seed=0):
    return build_demo_engine(classes=8, input_dim=32, hash_length=128,
                             seed=seed)


def small_config(**overrides):
    defaults = dict(max_batch=16, max_wait_ms=5.0, queue_depth=256,
                    cache_capacity=512)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestTokenBucket:
    def test_starts_full_and_burst_is_the_cap(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=3.0, clock=clock)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_request_above_capacity_never_grants(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        assert not bucket.try_acquire(3.0)
        assert bucket.retry_after(3.0) == float("inf")
        clock.advance(1e6)  # no amount of waiting banks above capacity
        assert not bucket.try_acquire(3.0)

    def test_zero_rate_grants_only_the_initial_bank(self):
        bucket = TokenBucket(rate=0.0, capacity=2.0, clock=FakeClock())
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.retry_after() == float("inf")

    def test_retry_after_is_exact_and_sufficient(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=1.0, clock=clock)
        assert bucket.try_acquire()
        hint = bucket.retry_after()
        assert hint == pytest.approx(0.5)
        clock.advance(hint - 1e-6)
        assert not bucket.try_acquire()
        clock.advance(1e-6)
        assert bucket.try_acquire()

    def test_refill_is_monotone_and_capped(self, rng):
        clock = FakeClock()
        bucket = TokenBucket(rate=7.0, capacity=5.0, clock=clock)
        for _ in range(5):
            bucket.try_acquire()
        previous = bucket.tokens
        for dt in rng.uniform(0.0, 0.3, size=200):
            clock.advance(float(dt))
            tokens = bucket.tokens
            assert tokens >= previous - 1e-9  # no acquisition: never shrinks
            assert tokens <= 5.0 + 1e-9
            previous = tokens
        assert bucket.tokens == pytest.approx(5.0)  # long idle refills to cap

    def test_backwards_clock_is_not_a_refund(self):
        clock = FakeClock(now=100.0)
        bucket = TokenBucket(rate=1.0, capacity=4.0, clock=clock)
        for _ in range(4):
            bucket.try_acquire()
        clock.advance(-50.0)
        assert bucket.tokens == pytest.approx(0.0)
        assert not bucket.try_acquire()
        # Time resumes from the high-water mark, not the rewound instant.
        clock.advance(50.0)
        assert bucket.tokens == pytest.approx(0.0)
        clock.advance(1.0)
        assert bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)
        bucket = TokenBucket(rate=1.0, capacity=1.0)
        with pytest.raises(ValueError):
            bucket.try_acquire(0.0)
        with pytest.raises(ValueError):
            bucket.retry_after(-1.0)


class TestTenantPolicy:
    def test_burst_defaults_to_rate_with_a_floor_of_one(self):
        assert TenantPolicy(rate=8.0).effective_burst == 8.0
        assert TenantPolicy(rate=0.25).effective_burst == 1.0
        assert TenantPolicy(rate=4.0, burst=32.0).effective_burst == 32.0
        assert TenantPolicy().effective_burst is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantPolicy(weight=0.0)
        with pytest.raises(ValueError):
            TenantPolicy(rate=-1.0)
        with pytest.raises(ValueError):
            TenantPolicy(rate=1.0, burst=0.0)
        with pytest.raises(ValueError):
            TenantPolicy(queue_quota=0)
        with pytest.raises(ValueError):
            TenantPolicy(degradation="explode")
        with pytest.raises(ValueError):
            TenantPolicy(degrade_pressure=0.0)


class TestTenantRegistry:
    def test_unknown_tenants_materialise_under_the_default_policy(self):
        registry = TenantRegistry(default_policy=TenantPolicy(weight=2.0))
        state = registry.state("newcomer")
        assert state.policy.weight == 2.0
        assert registry.tenants() == ["newcomer"]

    def test_none_resolves_to_the_default_tenant(self):
        registry = TenantRegistry()
        assert registry.state(None).name == DEFAULT_TENANT

    def test_register_is_idempotent_but_rejects_redefinition(self):
        registry = TenantRegistry()
        policy = TenantPolicy(rate=5.0)
        first = registry.register("gold", policy)
        assert registry.register("gold", TenantPolicy(rate=5.0)) is first
        with pytest.raises(ValueError, match="different policy"):
            registry.register("gold", TenantPolicy(rate=6.0))
        with pytest.raises(ValueError):
            registry.register("")

    def test_key_suffixes_never_alias_across_tenant_names(self):
        registry = TenantRegistry()
        # "ab" + "c" vs "a" + "bc" must not collide: length-prefixed names.
        assert registry.state("abc").key_suffix != registry.state("ab").key_suffix
        assert (registry.state("ab").key_suffix + b"c"
                != registry.state("abc").key_suffix)

    def test_snapshot_carries_policy_and_counters(self):
        registry = TenantRegistry(clock=FakeClock())
        registry.register("gold", TenantPolicy(weight=3.0, rate=10.0))
        registry.state("gold").count("admitted")
        snap = registry.snapshot()["gold"]
        assert snap["weight"] == 3.0 and snap["admitted"] == 1
        assert snap["tokens"] == pytest.approx(10.0)


def item(tenant):
    return SimpleNamespace(tenant=tenant)


class TestTenantQueuesDWRR:
    def make(self, weights, maxsize=4096):
        registry = TenantRegistry()
        for name, weight in weights.items():
            registry.register(name, TenantPolicy(weight=weight))
        return TenantQueues(maxsize, registry)

    def drain(self, queues, count):
        return [queues.get_nowait().tenant for _ in range(count)]

    @pytest.mark.parametrize("weights", [{"a": 3.0, "b": 1.0},
                                         {"a": 1.0, "b": 1.0},
                                         {"a": 1.5, "b": 1.0, "c": 0.5}])
    def test_backlogged_share_tracks_weight_share_over_any_window(self, weights):
        queues = self.make(weights)
        per_tenant = 120
        for name in weights:
            for _ in range(per_tenant):
                queues.put(item(name))
        total_weight = sum(weights.values())
        drained = self.drain(queues, per_tenant * len(weights) // 2)
        counts = {name: 0 for name in weights}
        # Every prefix window stays within one rotation of the weight share.
        slack = max(weights.values()) + 1.0
        for position, name in enumerate(drained, start=1):
            counts[name] += 1
            for tenant, weight in weights.items():
                expected = position * weight / total_weight
                assert abs(counts[tenant] - expected) <= slack, (
                    f"{tenant} drained {counts[tenant]} of {position}, "
                    f"expected ~{expected:.1f}")

    def test_flood_cannot_displace_a_light_tenant(self):
        queues = self.make({"flood": 1.0, "light": 1.0})
        for _ in range(200):
            queues.put(item("flood"))
        queues.put(item("light"))
        # The light tenant's lone request drains within one rotation, not
        # behind the flood's 200-deep backlog.
        assert "light" in self.drain(queues, 3)

    def test_emptied_tenant_leaves_the_rotation(self):
        queues = self.make({"a": 1.0, "b": 1.0})
        queues.put(item("a"))
        queues.put(item("b"))
        while True:
            try:
                queues.get_nowait()
            except queue_module.Empty:
                break
        assert queues.depths() == {}
        assert queues.qsize() == 0

    def test_capacity_bound_and_stdlib_exceptions(self):
        queues = self.make({"a": 1.0}, maxsize=2)
        queues.put(item("a"))
        queues.put(item("a"))
        with pytest.raises(queue_module.Full):
            queues.put_nowait(item("a"))
        with pytest.raises(queue_module.Full):
            queues.put(item("a"), timeout=0.01)
        self.drain(queues, 2)
        with pytest.raises(queue_module.Empty):
            queues.get_nowait()
        with pytest.raises(queue_module.Empty):
            queues.get(timeout=0.01)

    def test_sentinels_bypass_capacity_and_are_served_first(self):
        queues = self.make({"a": 1.0}, maxsize=1)
        queues.put(item("a"))
        queues.put_nowait(None)  # control lane ignores the full queue
        assert queues.get_nowait() is None
        assert queues.get_nowait().tenant == "a"
        assert queues.qsize() == 0

    def test_join_waits_for_task_done_including_sentinels(self):
        queues = self.make({"a": 1.0})
        queues.put(item("a"))
        queues.put_nowait(None)
        done = threading.Event()

        def consume():
            for _ in range(2):
                queues.get(timeout=5)
                queues.task_done()
            done.set()

        worker = threading.Thread(target=consume)
        worker.start()
        queues.join()
        worker.join(5)
        assert done.is_set()
        with pytest.raises(ValueError):
            queues.task_done()

    def test_tenant_depth_tracks_per_tenant_backlog(self):
        queues = self.make({"a": 1.0, "b": 1.0})
        for _ in range(3):
            queues.put(item("a"))
        queues.put(item("b"))
        assert queues.tenant_depth("a") == 3
        assert queues.tenant_depth("b") == 1
        assert queues.tenant_depth("ghost") == 0
        assert queues.depths() == {"a": 3, "b": 1}


class TestAdmissionRejections:
    """Deterministic rejection paths: workers down, queue can only fill."""

    def idle_server(self, tenancy, **config_overrides):
        config = small_config(full_policy="reject", poll_timeout_ms=10_000.0,
                              cache_capacity=0, **config_overrides)
        server = MicroBatchServer(small_engine(), config=config,
                                  tenancy=tenancy)
        server._running = True  # submit guard only; workers stay down
        return server

    def teardown_server(self, server):
        server._running = False
        server._flush_queue(RuntimeError("test teardown"))

    def test_rate_limit_sheds_with_a_retry_hint(self):
        clock = FakeClock()
        registry = TenantRegistry(clock=clock)
        registry.register("flood", TenantPolicy(rate=5.0, burst=2.0))
        server = self.idle_server(registry)
        try:
            queries = demo_queries(server.engine, 3)
            server.submit(queries[0], tenant="flood")
            server.submit(queries[1], tenant="flood")
            with pytest.raises(RateLimitedError) as excinfo:
                server.submit(queries[2], tenant="flood")
            assert excinfo.value.tenant == "flood"
            assert excinfo.value.retry_after_s == pytest.approx(0.2)
            # The hint is honest: waiting that long readmits.
            clock.advance(0.2)
            server.submit(queries[2], tenant="flood")
            snap = server.stats()["tenants"]["flood"]
            assert snap["admitted"] == 3
            assert snap["rate_limited"] == 1 and snap["shed"] == 1
        finally:
            self.teardown_server(server)

    def test_queue_quota_rejects_as_queue_full(self):
        registry = TenantRegistry()
        registry.register("greedy", TenantPolicy(queue_quota=2))
        server = self.idle_server(registry)
        try:
            queries = demo_queries(server.engine, 4)
            server.submit(queries[0], tenant="greedy")
            server.submit(queries[1], tenant="greedy")
            with pytest.raises(QuotaExceededError) as excinfo:
                server.submit(queries[2], tenant="greedy")
            # Pre-tenancy backpressure handling must keep working:
            assert isinstance(excinfo.value, QueueFullError)
            # the quota is per tenant -- others still get in.
            server.submit(queries[3], tenant="polite")
            snap = server.stats()["tenants"]
            assert snap["greedy"]["quota_rejected"] == 1
            assert snap["greedy"]["queued"] == 2
            assert snap["polite"]["admitted"] == 1
        finally:
            self.teardown_server(server)

    def test_queue_degradation_admits_until_pressure(self):
        registry = TenantRegistry(clock=FakeClock())
        registry.register("besteffort", TenantPolicy(
            rate=5.0, burst=1.0, degradation="queue", degrade_pressure=0.9))
        server = self.idle_server(registry, queue_depth=4)
        try:
            queries = demo_queries(server.engine, 5)
            server.submit(queries[0], tenant="besteffort")   # the one token
            for query in queries[1:4]:                       # over rate, low pressure
                server.submit(query, tenant="besteffort")
            with pytest.raises(RateLimitedError):            # pressure 1.0 >= 0.9
                server.submit(queries[4], tenant="besteffort")
            snap = server.stats()["tenants"]["besteffort"]
            assert snap["admitted"] == 4
            assert snap["degraded_queued"] == 3
            assert snap["shed"] == 1
        finally:
            self.teardown_server(server)

    def test_admission_rejections_count_in_serve_metrics(self):
        registry = TenantRegistry(clock=FakeClock())
        registry.register("flood", TenantPolicy(rate=1.0, burst=1.0))
        server = self.idle_server(registry)
        try:
            queries = demo_queries(server.engine, 2)
            server.submit(queries[0], tenant="flood")
            with pytest.raises(RateLimitedError):
                server.submit(queries[1], tenant="flood")
            snapshot = server.metrics.snapshot()
            assert snapshot["requests"]["rejected"] == 1
            assert snapshot["tenants"]["flood"]["rejected"] == {
                "rate_limited": 1}
        finally:
            self.teardown_server(server)


class TestServedTenancy:
    """End-to-end behaviour with workers running."""

    def test_tenants_get_isolated_cache_namespaces(self):
        registry = TenantRegistry()
        query = demo_queries(small_engine(), 1, seed=3)[0]
        with MicroBatchServer(small_engine(), config=small_config(),
                              tenancy=registry) as server:
            row_a = server.submit(query, tenant="a").result(30)
            row_b = server.submit(query, tenant="b").result(30)
            cold = server.stats()["cache"]
            row_a_again = server.submit(query, tenant="a").result(30)
            warm = server.stats()["cache"]
        assert np.array_equal(row_a, row_b)          # same engine, same maths
        assert cold["hits"] == 0 and cold["misses"] == 2   # namespaces split
        assert warm["hits"] == 1                     # within a tenant: shared
        assert np.array_equal(row_a, row_a_again)

    def test_tenanted_answers_match_untenanted_execution(self):
        queries = demo_queries(small_engine(), 12, seed=5)
        reference_engine = small_engine()
        reference = reference_engine.execute(reference_engine.prepare(queries))
        with MicroBatchServer(small_engine(), config=small_config(),
                              tenancy=TenantRegistry()) as server:
            served = np.stack([
                server.submit(query, tenant=f"t{index % 3}").result(30)
                for index, query in enumerate(queries)])
        assert np.array_equal(served, reference)

    def test_stale_degradation_serves_bit_identical_cached_answers(self):
        clock = FakeClock()
        registry = TenantRegistry(clock=clock)
        registry.register("spiky", TenantPolicy(
            rate=1.0, burst=1.0, degradation="stale", degrade_pressure=1.0))
        query = demo_queries(small_engine(), 1, seed=7)[0]
        with MicroBatchServer(small_engine(), config=small_config(),
                              tenancy=registry) as server:
            fresh = server.submit(query, tenant="spiky").result(30)  # token spent
            stale = server.submit(query, tenant="spiky").result(30)  # over rate
            snap = server.stats()["tenants"]["spiky"]
        assert np.array_equal(fresh, stale)
        assert snap["stale_served"] == 1
        assert snap["completed"] == 2

    def test_stale_miss_falls_back_to_queue_pressure_decision(self):
        clock = FakeClock()
        registry = TenantRegistry(clock=clock)
        registry.register("spiky", TenantPolicy(
            rate=1.0, burst=1.0, degradation="stale", degrade_pressure=1.0))
        queries = demo_queries(small_engine(), 2, seed=11)
        with MicroBatchServer(small_engine(), config=small_config(),
                              tenancy=registry) as server:
            server.submit(queries[0], tenant="spiky").result(30)
            # Over rate AND a cache miss: low pressure admits it normally.
            row = server.submit(queries[1], tenant="spiky").result(30)
            snap = server.stats()["tenants"]["spiky"]
        assert row.shape == (8,)
        assert snap["stale_served"] == 0
        assert snap["degraded_queued"] == 1

    def test_unattributed_requests_book_under_the_default_tenant(self):
        engine = small_engine()
        with MicroBatchServer(engine, config=small_config(),
                              tenancy=TenantRegistry()) as server:
            server.submit(demo_queries(engine, 1)[0]).result(30)
            snap = server.stats()["tenants"]
        assert snap[DEFAULT_TENANT]["admitted"] == 1
        assert snap[DEFAULT_TENANT]["completed"] == 1

    def test_untenanted_server_path_is_unchanged(self):
        engine = small_engine()
        with MicroBatchServer(engine, config=small_config()) as server:
            server.submit(demo_queries(engine, 1)[0]).result(30)
            stats = server.stats()
        assert server.tenancy is None
        assert "tenants" not in stats

    def test_per_tenant_labelled_instruments_and_slo(self):
        metrics_registry = MetricsRegistry()
        tenancy = TenantRegistry()
        engine = small_engine()
        # The SLO engine samples a baseline at construction: build it
        # *before* traffic so the evaluation window sees the deltas.
        engine_slo = SloEngine(
            [SloSpec(name="gold-latency", latency_p99_ms=60_000.0,
                     tenant="gold"),
             SloSpec(name="ghost-latency", latency_p99_ms=60_000.0,
                     tenant="ghost")],
            metrics_registry)
        with MicroBatchServer(engine, config=small_config(),
                              registry=metrics_registry,
                              tenancy=tenancy) as server:
            for future in server.submit_many(demo_queries(engine, 8),
                                             tenant="gold"):
                future.result(30)
        counter = metrics_registry.get("serve_requests_completed",
                                       labels={"tenant": "gold"})
        assert counter is not None and counter.value == 8
        histogram = metrics_registry.get("serve_request_latency_ms",
                                         labels={"tenant": "gold"})
        assert histogram is not None and histogram.count == 8
        report = {spec["name"]: spec["status"]
                  for spec in engine_slo.evaluate()["specs"]}
        assert report["gold-latency"] == "ok"
        assert report["ghost-latency"] == "no_data"  # no such labelled series

    def test_metrics_snapshot_reports_per_tenant_latency(self):
        engine = small_engine()
        with MicroBatchServer(engine, config=small_config(),
                              tenancy=TenantRegistry()) as server:
            for future in server.submit_many(demo_queries(engine, 6),
                                             tenant="gold"):
                future.result(30)
            snap = server.stats()["tenants"]["gold"]
        assert snap["completed"] == 6
        assert snap["latency_ms"]["p99"] >= snap["latency_ms"]["p50"] >= 0.0
