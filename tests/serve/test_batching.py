"""Tests for the serve config and the size/time micro-batch drain."""

import queue
import threading
import time

import numpy as np
import pytest

from repro.serve import ServeConfig, ServeRequest, adaptive_wait_s, drain_batch


def make_request(value=0.0):
    return ServeRequest(sample=np.array([value]))


class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.max_batch == 64
        assert config.full_policy == "block"

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_wait_ms": -1.0},
        {"queue_depth": 0},
        {"num_workers": 0},
        {"cache_capacity": -1},
        {"full_policy": "drop"},
        {"poll_timeout_ms": 0.0},
        {"cache_admission": 0},
    ])
    def test_invalid_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_batch_one_is_allowed(self):
        assert ServeConfig(max_batch=1).max_batch == 1

    def test_adaptive_wait_defaults_off(self):
        config = ServeConfig()
        assert config.adaptive_wait is False
        assert config.cache_admission == 1


class TestAdaptiveWait:
    def test_empty_queue_gets_the_full_cap(self):
        assert adaptive_wait_s(0.002, 0, 64) == 0.002

    def test_full_batch_queued_waits_zero(self):
        assert adaptive_wait_s(0.002, 64, 64) == 0.0
        assert adaptive_wait_s(0.002, 200, 64) == 0.0  # deeper than a batch

    def test_window_shrinks_linearly_with_fill(self):
        assert adaptive_wait_s(0.002, 16, 64) == pytest.approx(0.0015)
        assert adaptive_wait_s(0.002, 32, 64) == pytest.approx(0.001)
        assert adaptive_wait_s(0.002, 48, 64) == pytest.approx(0.0005)

    def test_monotone_in_queue_depth(self):
        waits = [adaptive_wait_s(0.005, depth, 32) for depth in range(0, 40)]
        assert all(a >= b for a, b in zip(waits, waits[1:]))

    def test_degenerate_knobs(self):
        assert adaptive_wait_s(0.0, 10, 64) == 0.0  # greedy stays greedy
        assert adaptive_wait_s(0.002, 10, 1) == 0.002  # batch-1: no batching

    def test_adaptive_server_serves_correctly_under_load(self):
        from repro.serve import MicroBatchServer, build_demo_engine

        engine = build_demo_engine(classes=8, input_dim=32, hash_length=128)
        reference = build_demo_engine(classes=8, input_dim=32, hash_length=128)
        queries = np.random.default_rng(3).standard_normal((64, 32))
        expected = reference.execute(reference.prepare(queries))
        config = ServeConfig(max_batch=16, max_wait_ms=10.0,
                             adaptive_wait=True)
        with MicroBatchServer(engine, config=config) as server:
            served = np.stack([future.result(30)
                               for future in server.submit_many(queries)])
            stats = server.stats()
        assert np.array_equal(served, expected)
        assert stats["config"]["adaptive_wait"] is True
        # A deep backlog flushes batches without burning the wait window.
        assert max(stats["batches"]["size_histogram"]) == 16


class TestDrainBatch:
    def test_empty_queue_times_out_to_empty_batch(self):
        q = queue.Queue()
        start = time.perf_counter()
        batch = drain_batch(q, max_batch=8, max_wait_s=0.5, first_timeout_s=0.01)
        assert batch == []
        assert time.perf_counter() - start < 0.4  # waited only the poll

    def test_flushes_on_size_before_time(self):
        q = queue.Queue()
        for _ in range(10):
            q.put(make_request())
        start = time.perf_counter()
        batch = drain_batch(q, max_batch=4, max_wait_s=5.0, first_timeout_s=1.0)
        assert len(batch) == 4
        assert time.perf_counter() - start < 1.0  # never waited for the clock
        assert q.qsize() == 6

    def test_flushes_on_time_with_partial_batch(self):
        q = queue.Queue()
        q.put(make_request())
        q.put(make_request())
        start = time.perf_counter()
        batch = drain_batch(q, max_batch=64, max_wait_s=0.05, first_timeout_s=1.0)
        elapsed = time.perf_counter() - start
        assert len(batch) == 2
        assert 0.03 <= elapsed < 0.5

    def test_zero_wait_takes_only_what_is_queued(self):
        q = queue.Queue()
        for _ in range(3):
            q.put(make_request())
        start = time.perf_counter()
        batch = drain_batch(q, max_batch=8, max_wait_s=0.0, first_timeout_s=1.0)
        assert len(batch) == 3
        assert time.perf_counter() - start < 0.2

    def test_late_arrivals_within_window_join_the_batch(self):
        q = queue.Queue()
        q.put(make_request(1.0))

        def late_producer():
            time.sleep(0.02)
            q.put(make_request(2.0))

        thread = threading.Thread(target=late_producer)
        thread.start()
        batch = drain_batch(q, max_batch=8, max_wait_s=0.3, first_timeout_s=1.0)
        thread.join()
        assert len(batch) == 2

    def test_adaptive_mid_drain_burst_collapses_a_stale_window(self):
        # Regression: the adaptive window used to be computed from one
        # qsize() sample when the drain started (empty queue -> the full
        # cap), so a burst arriving mid-drain still waited out the cap.
        # Per-iteration re-evaluation shrinks the window with the backlog.
        q = queue.Queue()
        q.put(make_request())

        def burst():
            time.sleep(0.05)
            for _ in range(32):
                q.put(make_request())

        thread = threading.Thread(target=burst)
        thread.start()
        start = time.perf_counter()
        batch = drain_batch(q, max_batch=64, max_wait_s=1.0,
                            first_timeout_s=1.0, adaptive=True)
        elapsed = time.perf_counter() - start
        thread.join()
        assert len(batch) == 33  # the burst flushed with the opener
        # adaptive_wait_s(1.0, 33, 64) ~ 0.48: well under the stale cap.
        assert elapsed < 0.8

    def test_adaptive_partial_backlog_waits_only_the_shrunk_window(self):
        q = queue.Queue()
        for _ in range(4):
            q.put(make_request())
        start = time.perf_counter()
        batch = drain_batch(q, max_batch=8, max_wait_s=0.4,
                            first_timeout_s=1.0, adaptive=True)
        elapsed = time.perf_counter() - start
        assert len(batch) == 4
        # Window is 0.4 * (1 - 4/8) = 0.2, re-derived every iteration --
        # the drain waits that, never the full 0.4 cap.
        assert 0.15 <= elapsed < 0.35

    def test_adaptive_window_closure_takes_the_queued_backlog(self):
        # When the window closes with work still queued, the flush takes
        # it greedily instead of leaving a partial batch behind.
        q = queue.Queue()
        for _ in range(8):
            q.put(make_request())
        start = time.perf_counter()
        batch = drain_batch(q, max_batch=8, max_wait_s=5.0,
                            first_timeout_s=1.0, adaptive=True)
        assert len(batch) == 8
        assert time.perf_counter() - start < 0.5
        assert q.qsize() == 0

    def test_preserves_fifo_order(self):
        q = queue.Queue()
        for value in range(5):
            q.put(make_request(float(value)))
        batch = drain_batch(q, max_batch=5, max_wait_s=1.0, first_timeout_s=1.0)
        assert [request.sample[0] for request in batch] == [0.0, 1.0, 2.0, 3.0, 4.0]
