"""The /v1/slo route, NetClient.slo(), and the OpenMetrics exposition
appended to /v1/metrics."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.net import protocol
from repro.net.async_client import AsyncNetClient
from repro.net.client import NetClient
from repro.net.server import NetApp, NetServer
from repro.obs import SloSpec
from repro.serve import build_demo_engine, demo_queries

GEOMETRY = dict(classes=8, input_dim=32, hash_length=128)
JSON = protocol.CONTENT_TYPE_JSON

TIGHT = SloSpec(name="tight", latency_p99_ms=1e-6)
LOOSE = SloSpec(name="loose", latency_p99_ms=1e9, error_rate_max=0.99)


def unwrap(response):
    status, content_type, body = response
    assert status == 200 and content_type == JSON
    return protocol.parse_response(protocol.loads(body))


def classify(app, n=4):
    queries = demo_queries(app.server.engine, n)
    envelope = protocol.request_envelope(
        "classify", protocol.encode_classify_request(queries))
    status, _, _ = app.handle("POST", "/v1/classify",
                              {"Content-Type": JSON},
                              protocol.dumps(envelope))
    assert status == 200


class TestSloRoute:
    def test_disabled_without_specs(self):
        app = NetApp(engine=build_demo_engine(**GEOMETRY))
        try:
            result = unwrap(app.handle("GET", "/v1/slo"))
            assert result == {"enabled": False, "specs": []}
        finally:
            app.close()

    def test_specs_need_a_serve_surface(self):
        with pytest.raises(ValueError, match="serve"):
            NetApp(shard_rows=8, word_bits=128, slo_specs=[TIGHT])

    def test_tight_breaches_loose_passes(self):
        app = NetApp(engine=build_demo_engine(**GEOMETRY),
                     slo_specs=[TIGHT, LOOSE])
        try:
            classify(app)
            result = unwrap(app.handle("GET", "/v1/slo"))
            assert result["enabled"] is True
            assert result["status"] == "breach"
            by_name = {spec["name"]: spec["status"]
                       for spec in result["specs"]}
            assert by_name["tight"] == "breach"
            assert by_name["loose"] == "ok"
        finally:
            app.close()

    def test_report_carries_the_spec_and_burn(self):
        app = NetApp(engine=build_demo_engine(**GEOMETRY),
                     slo_specs=[LOOSE])
        try:
            classify(app)
            result = unwrap(app.handle("GET", "/v1/slo"))
            (spec,) = result["specs"]
            assert spec["spec"]["latency_p99_ms"] == 1e9
            for objective in spec["objectives"]:
                assert set(objective["windows"]) == {"short", "long"}
                for window in objective["windows"].values():
                    assert "burn" in window and "budget" in window
        finally:
            app.close()


class TestMetricsExposition:
    def test_json_metrics_include_instruments(self):
        app = NetApp(engine=build_demo_engine(**GEOMETRY))
        try:
            classify(app)
            result = unwrap(app.handle("GET", "/v1/metrics",
                                       {"Accept": JSON}))
            assert "instruments" in result
            merged = {}
            for registry in result["instruments"].values():
                merged.update(registry)
            latency = merged["serve_request_latency_ms"]
            assert latency["type"] == "histogram"
            assert latency["count"] == 4
        finally:
            app.close()

    def test_text_metrics_append_openmetrics(self):
        app = NetApp(engine=build_demo_engine(**GEOMETRY))
        try:
            classify(app)
            status, content_type, body = app.handle("GET", "/v1/metrics")
            assert status == 200
            from repro.obs import CONTENT_TYPE_PROMETHEUS
            assert content_type == CONTENT_TYPE_PROMETHEUS
            text = body.decode("utf-8")
            # Legacy flattened gauges stay first (locked wire format)...
            assert "# TYPE repro_net_requests gauge" in text
            # ...then the typed instruments in OpenMetrics syntax.
            assert "# TYPE repro_serve_request_latency_ms histogram" in text
            assert 'repro_serve_request_latency_ms_bucket{le="' in text
            assert "repro_serve_requests_completed_total 4" in text
            # One terminating EOF, at the very end.
            assert text.count("# EOF") == 1
            assert text.rstrip().endswith("# EOF")
        finally:
            app.close()

    def test_exemplars_render_when_traced(self):
        from repro.obs import InMemoryExporter, Tracer

        tracer = Tracer(exporters=[InMemoryExporter()], sample_rate=1.0,
                        flush_interval_s=0.01)
        app = NetApp(engine=build_demo_engine(**GEOMETRY), tracer=tracer)
        try:
            classify(app)
            assert tracer.flush()
            _, _, body = app.handle("GET", "/v1/metrics")
            text = body.decode("utf-8")
            assert " # {trace_id=" in text
        finally:
            app.close()
            tracer.shutdown()


class TestClientSlo:
    def test_sync_and_async_clients_fetch_slo(self):
        with NetServer(engine=build_demo_engine(**GEOMETRY),
                       slo_specs=[LOOSE]) as server:
            with NetClient(server.base_url) as client:
                queries = demo_queries(server.app.server.engine, 3)
                client.infer_many(np.asarray(queries))
                report = client.slo()
                assert report["enabled"] is True
                assert report["status"] in ("ok", "no_data")

            async def fetch():
                async with AsyncNetClient(server.base_url) as client:
                    return await client.slo()

            report = asyncio.run(fetch())
            assert report["enabled"] is True

    def test_client_slo_when_disabled(self):
        with NetServer(engine=build_demo_engine(**GEOMETRY)) as server:
            with NetClient(server.base_url) as client:
                assert client.slo() == {"enabled": False, "specs": []}
