"""Remote shard cluster: bit-identity, replica failover, re-replication.

Failures are injected two ways: :class:`FlakyTransport` wrappers below the
retry layer (deterministic, no sockets harmed) and real server kills
through :class:`LocalShardCluster` (port unbound, connections severed).
Either way the oracle is the in-process cluster: a remote answer must be
``array_equal`` to it before, during and after the chaos.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitops import pack_bits
from repro.net.cluster import LocalShardCluster
from repro.net.remote import (
    RemoteCamCluster,
    RemoteShardTransport,
    RemoteShardedEngine,
    ShardUnavailableError,
    build_demo_remote_engine,
)
from repro.net.server import NetServer
from repro.net.transport import FlakyConfig, FlakyTransport, HttpTransport
from repro.serve import ServeClient, build_demo_engine, demo_queries
from repro.shard import ShardRouter
from repro.shard.pipeline import ShardedCamPipeline

ROWS, BITS = 16, 256


@pytest.fixture
def row_bits(rng):
    return rng.integers(0, 2, size=(ROWS, BITS)).astype(np.uint8)


@pytest.fixture
def queries(rng):
    return rng.integers(0, 2, size=(5, BITS)).astype(np.uint8)


@pytest.fixture
def reference(row_bits):
    pipeline = ShardedCamPipeline(total_rows=ROWS, word_bits=BITS,
                                  num_shards=2, num_replicas=2,
                                  fanout="ports")
    pipeline.write_rows(row_bits)
    try:
        yield pipeline
    finally:
        pipeline.close()


@pytest.fixture
def shard_servers():
    with LocalShardCluster(total_rows=ROWS, word_bits=BITS, num_shards=2,
                           num_replicas=2) as cluster:
        yield cluster


def make_remote(cluster, flaky=None, **kwargs):
    """A remote cluster over ``cluster``; ``flaky`` collects the wrappers."""
    factory = None
    if flaky is not None:
        def factory(base_url):
            transport = FlakyTransport(HttpTransport(base_url), seed=0)
            flaky.append(transport)
            return transport
    return RemoteCamCluster(cluster.endpoints, total_rows=ROWS,
                            word_bits=BITS, transport_factory=factory,
                            **kwargs)


class TestRemoteShardTransport:
    @pytest.fixture
    def server(self):
        with NetServer(shard_rows=ROWS, word_bits=BITS) as server:
            yield server

    @pytest.mark.parametrize("use_frames", [True, False])
    def test_port_surface_matches_local_array(self, server, row_bits,
                                              queries, use_frames):
        port = RemoteShardTransport(
            server.base_url, global_rows=np.arange(ROWS, dtype=np.int64),
            id_bound=ROWS, word_bits=BITS, use_frames=use_frames)
        try:
            assert port.rows == ROWS
            energy = port.write_rows(row_bits)
            assert energy > 0
            packed = pack_bits(queries)
            counts, search_energy, latency = (
                port.mismatch_counts_packed(packed))
            expected = (queries[:, None, :] != row_bits[None, :, :]).sum(axis=2)
            assert np.array_equal(counts, expected)
            assert search_energy > 0 and latency > 0
            indices, raw, _, _ = port.topk_candidates(packed, 3)
            order = np.argsort(expected, axis=1, kind="stable")[:, :3]
            assert np.array_equal(indices, order)
            assert np.array_equal(raw, np.take_along_axis(expected, order,
                                                          axis=1))
            assert port.healthz()["plane"] == "shard"
            assert port.info()["occupancy"] == ROWS
            assert port.stats()["retry"]["requests"] >= 4
        finally:
            port.close()

    def test_frames_and_json_agree(self, server, row_bits, queries):
        kwargs = dict(global_rows=np.arange(ROWS, dtype=np.int64),
                      id_bound=ROWS, word_bits=BITS)
        framed = RemoteShardTransport(server.base_url, use_frames=True,
                                      **kwargs)
        plain = RemoteShardTransport(server.base_url, use_frames=False,
                                     **kwargs)
        try:
            framed.write_rows(row_bits)
            packed = pack_bits(queries)
            assert np.array_equal(framed.mismatch_counts_packed(packed)[0],
                                  plain.mismatch_counts_packed(packed)[0])
            f_idx, f_raw, _, _ = framed.topk_candidates(packed, 4)
            p_idx, p_raw, _, _ = plain.topk_candidates(packed, 4)
            assert np.array_equal(f_idx, p_idx)
            assert np.array_equal(f_raw, p_raw)
        finally:
            framed.close()
            plain.close()


class TestRemoteClusterBitIdentity:
    def test_search_and_topk_match_inprocess(self, shard_servers, row_bits,
                                             queries, reference):
        remote = make_remote(shard_servers)
        try:
            remote.write_rows(row_bits)
            expected = reference.search_batch(queries)[0]
            assert np.array_equal(remote.search_batch(queries)[0], expected)
            packed = pack_bits(queries)
            ours = remote.topk_packed(packed, 4)
            theirs = reference.topk_packed(packed, 4)
            assert np.array_equal(ours.indices, theirs.indices)
            assert np.array_equal(ours.distances, theirs.distances)
        finally:
            remote.close()

    def test_fixed_geometry(self, shard_servers, row_bits):
        remote = make_remote(shard_servers)
        try:
            remote.write_rows(row_bits)
            with pytest.raises(NotImplementedError):
                remote.add_shard()
            with pytest.raises(NotImplementedError):
                remote.rebalance(num_shards=4)
        finally:
            remote.close()

    def test_endpoint_grid_validation(self):
        with pytest.raises(ValueError):
            RemoteCamCluster([], total_rows=ROWS, word_bits=BITS)
        with pytest.raises(ValueError):
            RemoteCamCluster([["http://a:1", "http://a:2"], ["http://b:1"]],
                             total_rows=ROWS, word_bits=BITS)


class TestFailover:
    def test_killed_replica_fails_over(self, shard_servers, row_bits,
                                       queries, reference):
        flaky = []
        remote = make_remote(shard_servers, flaky=flaky)
        try:
            remote.write_rows(row_bits)
            expected = reference.search_batch(queries)[0]
            # Port order is (shard 0 replicas..., shard 1 replicas...).
            flaky[0].kill()
            for _ in range(3):
                assert np.array_equal(remote.search_batch(queries)[0],
                                      expected)
            stats = remote.stats()["net"]
            assert stats["failovers"] >= 1
            assert stats["re_replications"] == 0  # no factory configured
            assert (0, 0) in stats["dead_replicas"]
        finally:
            remote.close()

    def test_topk_fails_over_too(self, shard_servers, row_bits, queries,
                                 reference):
        flaky = []
        remote = make_remote(shard_servers, flaky=flaky)
        try:
            remote.write_rows(row_bits)
            packed = pack_bits(queries)
            theirs = reference.topk_packed(packed, 4)
            flaky[1].kill()  # shard 0, replica 1
            ours = remote.topk_packed(packed, 4)
            assert np.array_equal(ours.indices, theirs.indices)
            assert np.array_equal(ours.distances, theirs.distances)
        finally:
            remote.close()

    def test_transient_faults_absorbed_by_retries(self, shard_servers,
                                                  row_bits, queries,
                                                  reference):
        # A lossy-but-alive replica: the transport's retry layer recovers
        # without ever declaring the replica dead.
        flaky = []
        remote = make_remote(shard_servers, flaky=flaky)
        try:
            remote.write_rows(row_bits)
            for transport in flaky:
                transport.config = FlakyConfig(drop_rate=0.2)
            expected = reference.search_batch(queries)[0]
            for _ in range(5):
                assert np.array_equal(remote.search_batch(queries)[0],
                                      expected)
            assert remote.stats()["net"]["dead_replicas"] == []
        finally:
            remote.close()

    def test_all_replicas_dead_raises(self, shard_servers, row_bits,
                                      queries):
        flaky = []
        remote = make_remote(shard_servers, flaky=flaky)
        try:
            remote.write_rows(row_bits)
            for transport in flaky[:2]:  # the whole of shard 0
                transport.kill()
            with pytest.raises(ShardUnavailableError):
                remote.search_batch(queries)
        finally:
            remote.close()

    def test_check_health_reports_and_marks(self, shard_servers, row_bits):
        flaky = []
        remote = make_remote(shard_servers, flaky=flaky)
        try:
            remote.write_rows(row_bits)
            report = remote.check_health()
            assert len(report["alive"]) == 4 and report["dead"] == []
            flaky[2].kill()  # shard 1, replica 0
            report = remote.check_health()
            assert (1, 0) in report["dead"]
            assert not remote.router.alive(1, 0)
            flaky[2].revive()
            report = remote.check_health()
            assert report["dead"] == [] and remote.router.alive(1, 0)
        finally:
            remote.close()


class TestReReplication:
    def test_real_kill_repairs_onto_fresh_server(self, shard_servers,
                                                 row_bits, queries,
                                                 reference):
        remote = make_remote(
            shard_servers,
            replacement_factory=shard_servers.spawn_replacement)
        try:
            remote.write_rows(row_bits)
            expected = reference.search_batch(queries)[0]
            dead_url = shard_servers.endpoints[0][0]
            shard_servers.kill(0, 0)
            for _ in range(4):  # round-robin lands on the slot both ways
                assert np.array_equal(remote.search_batch(queries)[0],
                                      expected)
            stats = remote.stats()["net"]
            assert stats["failovers"] >= 1
            assert stats["re_replications"] >= 1
            # The repaired slot points at the replacement, is marked
            # alive again, and serves bit-identical answers.
            assert stats["endpoints"][0][0] != dead_url
            assert stats["dead_replicas"] == []
            packed = pack_bits(queries)
            ours = remote.topk_packed(packed, 4)
            theirs = reference.topk_packed(packed, 4)
            assert np.array_equal(ours.indices, theirs.indices)
            assert np.array_equal(ours.distances, theirs.distances)
        finally:
            remote.close()

    def test_replacement_failure_leaves_slot_dead(self, shard_servers,
                                                  row_bits, queries,
                                                  reference):
        def broken_factory(shard):
            return "http://127.0.0.1:1"  # nothing listens there

        flaky = []
        remote = make_remote(shard_servers, flaky=flaky,
                             replacement_factory=broken_factory)
        try:
            remote.write_rows(row_bits)
            expected = reference.search_batch(queries)[0]
            flaky[0].kill()
            assert np.array_equal(remote.search_batch(queries)[0], expected)
            stats = remote.stats()["net"]
            assert stats["re_replications"] == 0
            assert (0, 0) in stats["dead_replicas"]
        finally:
            remote.close()


class TestRemoteEngine:
    def test_bit_identical_to_demo_engine_through_chaos(self):
        geometry = dict(classes=16, input_dim=64, hash_length=BITS)
        with LocalShardCluster(total_rows=16, word_bits=BITS) as cluster:
            engine = build_demo_remote_engine(
                cluster.endpoints,
                replacement_factory=cluster.spawn_replacement, **geometry)
            try:
                local = build_demo_engine(**geometry)
                queries = demo_queries(local, 6)
                with ServeClient(local) as oracle:
                    expected_logits = oracle.infer_many(queries)
                    expected_i, expected_d = oracle.topk_many(queries, 4)
                with ServeClient(engine) as client:
                    assert np.array_equal(client.infer_many(queries),
                                          expected_logits)
                    cluster.kill(0, 1)
                    assert np.array_equal(client.infer_many(queries),
                                          expected_logits)
                    indices, distances = client.topk_many(queries, 4)
                assert np.array_equal(indices, expected_i)
                assert np.array_equal(distances, expected_d)
                stats = engine.cam.stats()["net"]
                assert stats["failovers"] >= 1
                assert stats["re_replications"] >= 1
                with pytest.raises(NotImplementedError):
                    engine.rebalance()
                with pytest.raises(NotImplementedError):
                    engine.add_shard()
                assert engine.name == "remote_sharded_cam_pipeline"
            finally:
                engine.close()


class TestRouterHealthMarks:
    def test_round_robin_skips_dead_replica(self):
        router = ShardRouter(num_shards=1, num_replicas=3,
                             policy="round_robin")
        router.mark_dead(0, 1)
        picks = []
        for _ in range(4):
            selection = router.begin_search()
            picks.append(selection[0])
            router.end_search(selection)
        assert 1 not in picks
        assert set(picks) == {0, 2}

    def test_selection_identical_when_nothing_dead(self):
        healthy = ShardRouter(num_shards=2, num_replicas=3)
        marked = ShardRouter(num_shards=2, num_replicas=3)
        marked.mark_dead(0, 2)
        marked.mark_alive(0, 2)
        for _ in range(6):
            ours = marked.begin_search()
            theirs = healthy.begin_search()
            assert ours == theirs
            marked.end_search(ours)
            healthy.end_search(theirs)

    def test_least_loaded_prefers_live(self):
        router = ShardRouter(num_shards=1, num_replicas=2,
                             policy="least_loaded")
        router.mark_dead(0, 0)
        for _ in range(3):
            selection = router.begin_search()
            assert selection == (1,)
            router.end_search(selection)

    def test_all_dead_falls_back_to_policy(self):
        router = ShardRouter(num_shards=1, num_replicas=2)
        router.mark_dead(0, 0)
        router.mark_dead(0, 1)
        selection = router.begin_search()  # caller's failover owns give-up
        assert selection[0] in (0, 1)
        router.end_search(selection)

    def test_dead_replicas_and_stats(self):
        router = ShardRouter(num_shards=2, num_replicas=2)
        router.mark_dead(1, 0)
        assert router.dead_replicas() == ((1, 0),)
        assert router.stats()["dead"] == [(1, 0)]
        assert not router.alive(1, 0) and router.alive(0, 0)
        with pytest.raises(ValueError):
            router.mark_dead(5, 0)
