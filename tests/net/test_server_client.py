"""NetApp routing (socket-free), live NetServer loopback, and both clients.

The bit-identity oracle throughout: a remote answer must ``array_equal``
what an in-process ``ServeClient`` on an identically-seeded engine
returns -- the network layer adds transport, never arithmetic.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.bitops import pack_bits
from repro.net import protocol
from repro.net.client import NetClient
from repro.net.async_client import AsyncNetClient
from repro.net.server import IDEMPOTENCY_CACHE_SIZE, NetApp, NetServer
from repro.net.transport import IDEMPOTENCY_HEADER
from repro.serve import ServeClient, build_demo_engine, demo_queries

GEOMETRY = dict(classes=8, input_dim=32, hash_length=128)

JSON = protocol.CONTENT_TYPE_JSON
FRAME = protocol.CONTENT_TYPE_FRAME


def post(app, path, envelope, content_type=JSON, headers=None):
    merged = {"Content-Type": content_type, **(headers or {})}
    return app.handle("POST", path, merged, protocol.dumps(envelope))


def unwrap(response):
    status, content_type, body = response
    assert content_type == JSON
    document = protocol.loads(body)
    if status == 200:
        return protocol.parse_response(document)
    with pytest.raises(protocol.WireError) as excinfo:
        protocol.parse_response(document)
    assert excinfo.value.status == status
    return excinfo.value


class TestNetAppConstruction:
    def test_exactly_one_surface(self):
        with pytest.raises(ValueError):
            NetApp()
        with pytest.raises(ValueError):
            NetApp(engine=build_demo_engine(**GEOMETRY), shard_rows=8,
                   word_bits=128)

    def test_shard_geometry_goes_together(self):
        with pytest.raises(ValueError):
            NetApp(shard_rows=8)

    def test_timeout_validated(self):
        with pytest.raises(ValueError):
            NetApp(shard_rows=8, word_bits=128, timeout_s=0)


class TestServePlaneRoutes:
    @pytest.fixture
    def app(self):
        app = NetApp(engine=build_demo_engine(**GEOMETRY))
        try:
            yield app
        finally:
            app.close()

    def test_healthz(self, app):
        result = unwrap(app.handle("GET", "/v1/healthz"))
        assert result["plane"] == "serve" and result["status"] == "ok"

    def test_metrics_has_net_and_serve_sections(self, app):
        result = unwrap(app.handle("GET", "/v1/metrics",
                                   {"Accept": protocol.CONTENT_TYPE_JSON}))
        assert result["net"]["requests"] >= 1
        assert "latency_ms" in result["serve"]

    def test_classify_matches_inprocess(self, app):
        queries = demo_queries(app.server.engine, 4)
        envelope = protocol.request_envelope(
            "classify", protocol.encode_classify_request(queries))
        remote = protocol.decode_classify_response(
            unwrap(post(app, "/v1/classify", envelope)))
        with ServeClient(build_demo_engine(**GEOMETRY)) as reference:
            expected = reference.infer_many(queries)
        assert np.array_equal(remote, expected)

    def test_classify_empty_batch(self, app):
        envelope = protocol.request_envelope(
            "classify", protocol.encode_classify_request(
                np.empty((0, GEOMETRY["input_dim"]))))
        logits = protocol.decode_classify_response(
            unwrap(post(app, "/v1/classify", envelope)))
        assert logits.shape == (0, GEOMETRY["classes"])

    def test_topk_matches_inprocess(self, app):
        queries = demo_queries(app.server.engine, 3)
        envelope = protocol.request_envelope(
            "topk", protocol.encode_topk_request(queries, 4))
        rows = protocol.decode_topk_response(
            unwrap(post(app, "/v1/topk", envelope)))
        with ServeClient(build_demo_engine(**GEOMETRY)) as reference:
            indices, distances = reference.topk_many(queries, 4)
        assert np.array_equal(rows[:, :4].astype(np.int64), indices)
        assert np.array_equal(rows[:, 4:].astype(np.int64), distances)

    def test_unknown_route_is_404(self, app):
        error = unwrap(app.handle("GET", "/v1/nonsense"))
        assert error.code == "not_found"

    def test_wrong_method_is_405(self, app):
        error = unwrap(app.handle("GET", "/v1/classify"))
        assert error.code == "method_not_allowed"

    def test_wrong_media_type_is_415(self, app):
        response = app.handle("POST", "/v1/classify",
                              {"Content-Type": "text/plain"}, b"hi")
        assert unwrap(response).code == "unsupported_media"

    def test_malformed_body_is_bad_request(self, app):
        response = app.handle("POST", "/v1/classify",
                              {"Content-Type": JSON}, b"{broken")
        assert unwrap(response).code == "bad_request"

    def test_version_mismatch_is_unsupported_version(self, app):
        envelope = protocol.request_envelope("classify", {})
        envelope["v"] = 99
        assert unwrap(post(app, "/v1/classify", envelope)).code == (
            "unsupported_version")

    def test_stopped_server_is_shutting_down(self, app):
        queries = demo_queries(app.server.engine, 1)
        app.server.stop(drain=True)
        envelope = protocol.request_envelope(
            "classify", protocol.encode_classify_request(queries))
        error = unwrap(post(app, "/v1/classify", envelope))
        assert error.code == "shutting_down" and error.status == 503

    def test_shard_routes_absent_on_serve_plane(self, app):
        error = unwrap(app.handle("GET", "/v1/shard/info"))
        assert error.code == "not_found"


class TestShardPlaneRoutes:
    @pytest.fixture
    def app(self):
        return NetApp(shard_rows=8, word_bits=128)

    @pytest.fixture
    def loaded(self, app, rng):
        bits = rng.integers(0, 2, size=(8, 128)).astype(np.uint8)
        envelope = protocol.request_envelope(
            "shard_write", protocol.encode_shard_write_request(
                bits, 0, np.arange(8, dtype=np.int64), 8))
        unwrap(post(app, "/v1/shard/write", envelope))
        return app, bits

    def packed_queries(self, app, rng, n=3):
        bits = rng.integers(0, 2, size=(n, 128)).astype(np.uint8)
        return pack_bits(bits), bits

    def test_healthz_and_info(self, app):
        assert unwrap(app.handle("GET", "/v1/healthz"))["plane"] == "shard"
        info = unwrap(app.handle("GET", "/v1/shard/info"))
        assert info["rows"] == 8 and info["word_bits"] == 128

    def test_write_then_search_json(self, loaded, rng):
        app, bits = loaded
        packed, query_bits = self.packed_queries(app, rng)
        envelope = protocol.request_envelope(
            "shard_search", protocol.encode_shard_search_request(packed))
        counts, energy, latency = protocol.decode_shard_search_response(
            unwrap(post(app, "/v1/shard/search", envelope)))
        expected = (query_bits[:, None, :] != bits[None, :, :]).sum(axis=2)
        assert np.array_equal(counts, expected)
        assert energy > 0 and latency > 0

    def test_search_frame_round_trip(self, loaded, rng):
        app, bits = loaded
        packed, query_bits = self.packed_queries(app, rng)
        frame = protocol.encode_array_frame("shard_search", packed)
        status, content_type, body = app.handle(
            "POST", "/v1/shard/search", {"Content-Type": FRAME}, frame)
        assert status == 200 and content_type == FRAME
        counts, header = protocol.decode_array_frame(
            body, kind="shard_counts", dtype="int64", ndim=2)
        expected = (query_bits[:, None, :] != bits[None, :, :]).sum(axis=2)
        assert np.array_equal(counts, expected)
        assert header["energy_pj"] > 0

    def test_topk_json_and_frame_agree(self, loaded, rng):
        app, _ = loaded
        packed, _ = self.packed_queries(app, rng)
        envelope = protocol.request_envelope(
            "shard_topk", protocol.encode_shard_topk_request(packed, 3))
        indices, raw, _, _ = protocol.decode_shard_topk_response(
            unwrap(post(app, "/v1/shard/topk", envelope)))
        frame = protocol.encode_array_frame("shard_topk", packed,
                                            extra={"k": 3})
        status, content_type, body = app.handle(
            "POST", "/v1/shard/topk", {"Content-Type": FRAME}, frame)
        assert status == 200 and content_type == FRAME
        stacked, _ = protocol.decode_array_frame(
            body, kind="shard_candidates", dtype="int64", ndim=3)
        assert np.array_equal(stacked[0], indices)
        assert np.array_equal(stacked[1], raw)

    def test_topk_returns_global_ids(self, app, rng):
        # Placement offset 100..107: the candidates must come back in
        # global ids, not local row numbers.
        bits = rng.integers(0, 2, size=(8, 128)).astype(np.uint8)
        envelope = protocol.request_envelope(
            "shard_write", protocol.encode_shard_write_request(
                bits, 0, np.arange(100, 108, dtype=np.int64), 200))
        unwrap(post(app, "/v1/shard/write", envelope))
        packed, _ = self.packed_queries(app, rng, n=1)
        request = protocol.request_envelope(
            "shard_topk", protocol.encode_shard_topk_request(packed, 8))
        indices, _, _, _ = protocol.decode_shard_topk_response(
            unwrap(post(app, "/v1/shard/topk", request)))
        assert set(indices.ravel()) <= set(range(100, 108))

    def test_topk_frame_requires_k(self, loaded, rng):
        app, _ = loaded
        packed, _ = self.packed_queries(app, rng)
        frame = protocol.encode_array_frame("shard_topk", packed)
        response = app.handle("POST", "/v1/shard/topk",
                              {"Content-Type": FRAME}, frame)
        assert unwrap(response).code == "bad_request"

    def test_write_replay_is_idempotent(self, app, rng):
        bits = rng.integers(0, 2, size=(4, 128)).astype(np.uint8)
        envelope = protocol.request_envelope(
            "shard_write", protocol.encode_shard_write_request(
                bits, 0, np.arange(4, dtype=np.int64), 8))
        headers = {IDEMPOTENCY_HEADER: "write-1"}
        first = unwrap(post(app, "/v1/shard/write", envelope,
                            headers=headers))
        again = unwrap(post(app, "/v1/shard/write", envelope,
                            headers=headers))
        assert again == first
        # Replay answered from the cache: one write, not two.
        assert app.shard.info()["writes"] == 1
        assert app.stats()["replayed"] == 1

    def test_distinct_keys_both_execute(self, app, rng):
        bits = rng.integers(0, 2, size=(4, 128)).astype(np.uint8)
        for row, key in ((0, "a"), (4, "b")):
            envelope = protocol.request_envelope(
                "shard_write", protocol.encode_shard_write_request(
                    bits, row, np.arange(row, row + 4, dtype=np.int64), 8))
            unwrap(post(app, "/v1/shard/write", envelope,
                        headers={IDEMPOTENCY_HEADER: key}))
        assert app.shard.info()["writes"] == 2

    def test_idempotency_cache_is_bounded(self, app, rng):
        bits = rng.integers(0, 2, size=(1, 128)).astype(np.uint8)
        for index in range(IDEMPOTENCY_CACHE_SIZE + 16):
            envelope = protocol.request_envelope(
                "shard_write", protocol.encode_shard_write_request(
                    bits, 0, np.zeros(1, dtype=np.int64), 8))
            unwrap(post(app, "/v1/shard/write", envelope,
                        headers={IDEMPOTENCY_HEADER: f"key-{index}"}))
        assert len(app._idempotent) == IDEMPOTENCY_CACHE_SIZE

    def test_serve_routes_absent_on_shard_plane(self, app):
        envelope = protocol.request_envelope("classify", {})
        assert unwrap(post(app, "/v1/classify", envelope)).code == "not_found"


class TestNetServerLifecycle:
    def test_start_stop_and_base_url(self):
        server = NetServer(shard_rows=4, word_bits=128)
        with pytest.raises(RuntimeError):
            server.base_url
        server.start()
        assert server.running and server.base_url.startswith("http://127.0.0.1:")
        with pytest.raises(RuntimeError):
            server.start()
        server.stop()
        assert not server.running

    def test_context_manager_owns_micro_batch_server(self):
        with NetServer(engine=build_demo_engine(**GEOMETRY)) as server:
            micro = server.app.server
            assert micro.running
        assert not micro.running

    def test_stats_passthrough(self):
        with NetServer(shard_rows=4, word_bits=128) as server:
            with NetClient(server.base_url) as client:
                client.healthz()
            assert server.stats()["requests"] >= 1


class TestNetClientLoopback:
    @pytest.fixture
    def serve_server(self):
        with NetServer(engine=build_demo_engine(**GEOMETRY)) as server:
            yield server

    def test_requires_exactly_one_of_url_or_transport(self):
        with pytest.raises(ValueError):
            NetClient()

    def test_infer_bit_identical_to_inprocess(self, serve_server):
        queries = demo_queries(serve_server.app.server.engine, 5)
        with ServeClient(build_demo_engine(**GEOMETRY)) as reference:
            expected = reference.infer_many(queries)
            single = reference.infer(queries[0])
        with NetClient(serve_server.base_url) as client:
            assert np.array_equal(client.infer_many(queries), expected)
            assert np.array_equal(client.infer(queries[0]), single)

    def test_topk_bit_identical_to_inprocess(self, serve_server):
        queries = demo_queries(serve_server.app.server.engine, 4)
        with ServeClient(build_demo_engine(**GEOMETRY)) as reference:
            expected_i, expected_d = reference.topk_many(queries, 3)
        with NetClient(serve_server.base_url) as client:
            indices, distances = client.topk_many(queries, 3)
            assert np.array_equal(indices, expected_i)
            assert np.array_equal(distances, expected_d)
            one_i, one_d = client.topk(queries[0], 3)
            assert np.array_equal(one_i, expected_i[0])
            assert np.array_equal(one_d, expected_d[0])

    def test_healthz_metrics_stats(self, serve_server):
        with NetClient(serve_server.base_url) as client:
            assert client.healthz()["plane"] == "serve"
            metrics = client.metrics()
            assert metrics["net"]["requests"] >= 1
            stats = client.stats()
            assert stats["retry"]["requests"] >= 2
            assert stats["requests"] >= 2  # pooled transport counter

    def test_server_errors_surface_as_wire_errors(self, serve_server):
        with NetClient(serve_server.base_url) as client:
            with pytest.raises(protocol.WireError) as excinfo:
                client._call("GET", "/v1/nonsense")
            assert excinfo.value.code == "not_found"


class TestAsyncNetClientLoopback:
    def test_matches_sync_client(self):
        with NetServer(engine=build_demo_engine(**GEOMETRY)) as server:
            queries = demo_queries(server.app.server.engine, 3)
            with NetClient(server.base_url) as sync_client:
                expected_logits = sync_client.infer_many(queries)
                expected_i, expected_d = sync_client.topk_many(queries, 3)

            async def scenario():
                async with AsyncNetClient(server.base_url) as client:
                    logits = await client.infer_many(queries)
                    one = await client.infer(queries[0])
                    indices, distances = await client.topk_many(queries, 3)
                    one_i, one_d = await client.topk(queries[0], 3)
                    health = await client.healthz()
                    metrics = await client.metrics()
                    stats = client.stats()
                return (logits, one, indices, distances, one_i, one_d,
                        health, metrics, stats)

            (logits, one, indices, distances, one_i, one_d, health, metrics,
             stats) = asyncio.run(scenario())
            assert np.array_equal(logits, expected_logits)
            assert np.array_equal(one, expected_logits[0])
            assert np.array_equal(indices, expected_i)
            assert np.array_equal(distances, expected_d)
            assert np.array_equal(one_i, expected_i[0])
            assert np.array_equal(one_d, expected_d[0])
            assert health["plane"] == "serve"
            assert metrics["net"]["requests"] >= 1
            assert stats["retry"]["requests"] >= 1

    def test_concurrent_requests_on_one_client(self):
        with NetServer(engine=build_demo_engine(**GEOMETRY)) as server:
            queries = demo_queries(server.app.server.engine, 6)
            with ServeClient(build_demo_engine(**GEOMETRY)) as reference:
                expected = reference.infer_many(queries)

            async def scenario():
                async with AsyncNetClient(server.base_url) as client:
                    rows = await asyncio.gather(
                        *(client.infer(query) for query in queries))
                return np.stack(rows)

            assert np.array_equal(asyncio.run(scenario()), expected)
