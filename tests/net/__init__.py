# Package marker: keeps these module names (test_server, test_client) from
# colliding with the same basenames under tests/serve/.
