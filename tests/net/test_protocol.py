"""Wire-protocol unit tests: codecs, envelopes, framing, typed errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import protocol
from repro.net.protocol import WireError


class TestArrayCodec:
    @pytest.mark.parametrize("encoding", ["b64", "hex"])
    @pytest.mark.parametrize("dtype", ["float64", "int64", "uint64", "uint8"])
    def test_round_trip_exact(self, rng, encoding, dtype):
        if dtype == "float64":
            array = rng.standard_normal((3, 5))
        else:
            array = rng.integers(0, 200, size=(3, 5)).astype(dtype)
        decoded = protocol.decode_array(protocol.encode_array(array, encoding))
        assert decoded.dtype == array.dtype
        assert np.array_equal(decoded, array)

    def test_float_bits_survive(self):
        # Exact bytes, not digits: values that would lose bits through a
        # decimal text round-trip come back identical.
        array = np.array([[np.pi, np.nextafter(1.0, 2.0), -0.0, 1e-308]])
        decoded = protocol.decode_array(protocol.encode_array(array))
        assert array.tobytes() == decoded.tobytes()

    def test_zero_sized(self):
        array = np.zeros((0, 7), dtype=np.int64)
        decoded = protocol.decode_array(protocol.encode_array(array))
        assert decoded.shape == (0, 7)

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            protocol.encode_array(np.zeros(2), "utf8")

    @pytest.mark.parametrize("mutation", [
        {"dtype": "float32"},               # dtype mismatch vs declared bytes
        {"data": "not base64!!"},           # undecodable payload
        {"shape": [5, 5]},                  # byte count disagrees with shape
        {"encoding": "zip"},                # unknown encoding
        {"shape": [-1, 4]},                 # negative dimension
    ])
    def test_damaged_object_raises_bad_request(self, mutation):
        obj = protocol.encode_array(np.arange(8, dtype=np.int64).reshape(2, 4))
        obj.update(mutation)
        with pytest.raises(WireError) as excinfo:
            protocol.decode_array(obj)
        assert excinfo.value.code == "bad_request"

    def test_expected_dtype_and_ndim_enforced(self):
        obj = protocol.encode_array(np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(WireError):
            protocol.decode_array(obj, dtype="uint64")
        with pytest.raises(WireError):
            protocol.decode_array(obj, ndim=1)


class TestEnvelopes:
    def test_request_round_trip(self):
        payload = {"alpha": 1, "beta": [1, 2]}
        document = protocol.request_envelope("classify", payload)
        assert protocol.parse_request(document, "classify") == payload

    def test_version_mismatch(self):
        document = protocol.request_envelope("classify", {})
        document["v"] = 99
        with pytest.raises(WireError) as excinfo:
            protocol.parse_request(document)
        assert excinfo.value.code == "unsupported_version"
        assert excinfo.value.status == 400

    def test_kind_mismatch(self):
        document = protocol.request_envelope("classify", {})
        with pytest.raises(WireError):
            protocol.parse_request(document, "topk")

    def test_ok_response_round_trip(self):
        result = {"answer": 42}
        assert protocol.parse_response(protocol.ok_envelope(result)) == result

    def test_error_response_raises_typed(self):
        document = protocol.error_envelope("unavailable", "busy")
        with pytest.raises(WireError) as excinfo:
            protocol.parse_response(document)
        assert excinfo.value.code == "unavailable"
        assert excinfo.value.status == 503

    def test_unknown_error_code_maps_to_500(self):
        assert protocol.error_status("from-the-future") == 500

    def test_dumps_handles_numpy_scalars(self):
        blob = protocol.dumps({"a": np.int64(3), "b": np.float64(0.5),
                               "c": np.arange(2)})
        assert protocol.loads(blob) == {"a": 3, "b": 0.5, "c": [0, 1]}

    def test_loads_rejects_damage(self):
        with pytest.raises(WireError):
            protocol.loads(b"{not json")


class TestBinaryFraming:
    def test_array_frame_round_trip(self, rng):
        packed = rng.integers(0, 2**63, size=(4, 4)).astype(np.uint64)
        frame = protocol.encode_array_frame("shard_search", packed,
                                            extra={"k": 7})
        decoded, header = protocol.decode_array_frame(
            frame, kind="shard_search", dtype="uint64", ndim=2)
        assert np.array_equal(decoded, packed)
        assert header["k"] == 7

    def test_bad_magic(self):
        frame = protocol.encode_array_frame("x", np.zeros(1))
        with pytest.raises(WireError):
            protocol.decode_frame(b"XXXX" + frame[4:])

    def test_truncated_frame(self):
        frame = protocol.encode_array_frame("x", np.arange(8.0))
        for cut in (2, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireError):
                protocol.decode_frame(frame[:cut])

    def test_trailing_garbage_rejected(self):
        frame = protocol.encode_array_frame("x", np.arange(8.0))
        with pytest.raises(WireError):
            protocol.decode_frame(frame + b"tail")

    def test_kind_and_dtype_enforced(self):
        frame = protocol.encode_array_frame("a", np.zeros((1, 1)))
        with pytest.raises(WireError):
            protocol.decode_array_frame(frame, kind="b")
        with pytest.raises(WireError):
            protocol.decode_array_frame(frame, dtype="int64")


class TestTypedPayloads:
    def test_classify_round_trip(self, rng):
        samples = rng.standard_normal((6, 16))
        payload = protocol.encode_classify_request(samples)
        assert np.array_equal(protocol.decode_classify_request(payload),
                              samples)
        logits = rng.standard_normal((6, 4))
        result = protocol.encode_classify_response(logits)
        assert np.array_equal(protocol.decode_classify_response(result),
                              logits)

    def test_topk_round_trip(self, rng):
        samples = rng.standard_normal((3, 8))
        payload = protocol.encode_topk_request(samples, 5)
        decoded, k = protocol.decode_topk_request(payload)
        assert np.array_equal(decoded, samples) and k == 5
        rows = rng.standard_normal((3, 10))
        result = protocol.encode_topk_response(rows)
        assert np.array_equal(protocol.decode_topk_response(result), rows)

    def test_topk_k_validation(self, rng):
        samples = rng.standard_normal((1, 4))
        with pytest.raises(ValueError):
            protocol.encode_topk_request(samples, -1)
        payload = protocol.encode_topk_request(samples, 2)
        payload["k"] = "three"
        with pytest.raises(WireError):
            protocol.decode_topk_request(payload)

    def test_shard_search_round_trip(self, rng):
        packed = rng.integers(0, 2**63, size=(2, 4)).astype(np.uint64)
        payload = protocol.encode_shard_search_request(packed)
        assert np.array_equal(protocol.decode_shard_search_request(payload),
                              packed)
        counts = rng.integers(0, 256, size=(2, 8)).astype(np.int64)
        result = protocol.encode_shard_search_response(counts, 1.5, 7)
        back, energy, latency = protocol.decode_shard_search_response(result)
        assert np.array_equal(back, counts)
        assert energy == 1.5 and latency == 7

    def test_shard_topk_round_trip(self, rng):
        packed = rng.integers(0, 2**63, size=(2, 4)).astype(np.uint64)
        payload = protocol.encode_shard_topk_request(packed, 3)
        back, k = protocol.decode_shard_topk_request(payload)
        assert np.array_equal(back, packed) and k == 3
        indices = rng.integers(0, 16, size=(2, 3)).astype(np.int64)
        raw = rng.integers(0, 256, size=(2, 3)).astype(np.int64)
        result = protocol.encode_shard_topk_response(indices, raw, 2.0, 9)
        b_idx, b_raw, energy, latency = (
            protocol.decode_shard_topk_response(result))
        assert np.array_equal(b_idx, indices)
        assert np.array_equal(b_raw, raw)
        assert energy == 2.0 and latency == 9

    def test_shard_topk_shape_mismatch(self, rng):
        result = protocol.encode_shard_topk_response(
            np.zeros((2, 3), dtype=np.int64), np.zeros((2, 3), dtype=np.int64),
            0.0, 0)
        result["raw"] = protocol.encode_array(np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(WireError):
            protocol.decode_shard_topk_response(result)

    def test_shard_write_round_trip(self, rng):
        bits = rng.integers(0, 2, size=(4, 8)).astype(np.uint8)
        ids = np.arange(10, 14, dtype=np.int64)
        payload = protocol.encode_shard_write_request(bits, 2, ids, 32)
        b_bits, start, b_ids, bound = (
            protocol.decode_shard_write_request(payload))
        assert np.array_equal(b_bits, bits)
        assert start == 2 and bound == 32
        assert np.array_equal(b_ids, ids)

    def test_shard_write_placement_validation(self, rng):
        bits = rng.integers(0, 2, size=(4, 8)).astype(np.uint8)
        with pytest.raises(ValueError):
            protocol.encode_shard_write_request(
                bits, 0, np.arange(3, dtype=np.int64), 32)
        payload = protocol.encode_shard_write_request(
            bits, 0, np.arange(4, dtype=np.int64), 32)
        payload["id_bound"] = 0
        with pytest.raises(WireError):
            protocol.decode_shard_write_request(payload)
