"""Tenant identity over the wire: header carry, 429 mapping, retry hints.

Socket-free throughout: ``NetApp.handle`` exercises the routing and the
scripted transport pins the retry layer's reaction to ``Retry-After``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.net import protocol
from repro.net.client import NetClient
from repro.net.server import NetApp
from repro.net.transport import (
    RetryPolicy,
    RetryingTransport,
    TransportResponse,
)
from repro.serve import TenantPolicy, TenantRegistry, build_demo_engine, demo_queries

GEOMETRY = dict(classes=8, input_dim=32, hash_length=128)
JSON = protocol.CONTENT_TYPE_JSON


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class ScriptedTransport:
    """Replays a script of responses and records every attempt."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = []

    def send_once(self, method, path, body=b"", headers=None):
        self.calls.append((method, path, bytes(body), dict(headers or {})))
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step

    def close(self):
        pass

    def stats(self):
        return {}


def ok_response(payload=None):
    return TransportResponse(
        status=200,
        headers={"content-type": JSON},
        body=protocol.dumps(protocol.ok_envelope(payload or {})),
    )


def rate_limited_response(retry_after_s=None, header=None):
    headers = {"content-type": JSON}
    if header is not None:
        headers["retry-after"] = header
    return TransportResponse(
        status=429,
        headers=headers,
        body=protocol.dumps(protocol.error_envelope(
            "rate_limited", "slow down", retry_after_s=retry_after_s)),
    )


def classify_envelope(engine, count=1, seed=0):
    queries = demo_queries(engine, count, seed=seed)
    return protocol.request_envelope(
        "classify", protocol.encode_classify_request(queries))


class TestTenantRoutes:
    @pytest.fixture
    def app(self):
        clock = FakeClock()
        registry = TenantRegistry(clock=clock)
        registry.register("flood", TenantPolicy(rate=5.0, burst=1.0))
        app = NetApp(engine=build_demo_engine(**GEOMETRY), tenancy=registry)
        app.clock = clock  # test handle
        try:
            yield app
        finally:
            app.close()

    def post(self, app, envelope, tenant=None):
        headers = {"Content-Type": JSON}
        if tenant is not None:
            headers[protocol.TENANT_HEADER] = tenant
        return app.handle("POST", "/v1/classify", headers,
                          protocol.dumps(envelope))

    def test_tenant_header_attributes_the_request(self, app):
        envelope = classify_envelope(app.server.engine)
        status, _, _ = self.post(app, envelope, tenant="acme")
        assert status == 200
        tenants = app.server.stats()["tenants"]
        assert tenants["acme"]["admitted"] == 1
        assert tenants["acme"]["completed"] == 1

    def test_over_rate_maps_to_429_with_a_retry_hint(self, app):
        envelope = classify_envelope(app.server.engine)
        assert self.post(app, envelope, tenant="flood")[0] == 200
        status, content_type, body = self.post(app, envelope, tenant="flood")
        assert status == 429 and content_type == JSON
        with pytest.raises(protocol.WireError) as excinfo:
            protocol.parse_response(protocol.loads(body))
        assert excinfo.value.code == "rate_limited"
        assert excinfo.value.retry_after_s == pytest.approx(0.2)
        # The hint is honest: advancing the bucket clock readmits.
        app.clock.advance(0.2)
        assert self.post(app, envelope, tenant="flood")[0] == 200

    def test_missing_header_books_under_the_default_tenant(self, app):
        envelope = classify_envelope(app.server.engine)
        assert self.post(app, envelope)[0] == 200
        assert app.server.stats()["tenants"]["default"]["admitted"] == 1

    def test_tenanted_answers_stay_bit_identical(self, app):
        queries = demo_queries(app.server.engine, 4, seed=3)
        envelope = protocol.request_envelope(
            "classify", protocol.encode_classify_request(queries))
        status, _, body = self.post(app, envelope, tenant="acme")
        assert status == 200
        remote = protocol.decode_classify_response(
            protocol.parse_response(protocol.loads(body)))
        reference_engine = build_demo_engine(**GEOMETRY)
        expected = reference_engine.execute(reference_engine.prepare(queries))
        assert np.array_equal(remote, expected)


class TestProtocolRetryAfter:
    def test_error_envelope_round_trips_the_hint(self):
        document = protocol.error_envelope("rate_limited", "slow down",
                                           retry_after_s=1.5)
        with pytest.raises(protocol.WireError) as excinfo:
            protocol.parse_response(document)
        assert excinfo.value.retry_after_s == 1.5

    def test_error_envelope_without_hint_parses_to_none(self):
        document = protocol.error_envelope("bad_request", "nope")
        with pytest.raises(protocol.WireError) as excinfo:
            protocol.parse_response(document)
        assert excinfo.value.retry_after_s is None

    def test_rate_codes_map_to_429(self):
        assert protocol.ERROR_STATUS["rate_limited"] == 429
        assert protocol.ERROR_STATUS["quota_exceeded"] == 429


class TestClientTenantHeader:
    def make_client(self, script, **kwargs):
        inner = ScriptedTransport(script)
        client = NetClient(transport=inner, **kwargs)
        return client, inner

    def test_client_stamps_the_tenant_header(self):
        client, inner = self.make_client([ok_response({"status": "ok"})],
                                         tenant="acme")
        client.healthz()
        assert inner.calls[0][3][protocol.TENANT_HEADER] == "acme"

    def test_untenanted_client_sends_no_header(self):
        client, inner = self.make_client([ok_response({"status": "ok"})])
        client.healthz()
        assert protocol.TENANT_HEADER not in inner.calls[0][3]


class TestRetryHonoursRetryAfter:
    def make(self, script):
        inner = ScriptedTransport(script)
        sleeps = []
        transport = RetryingTransport(
            inner,
            policy=RetryPolicy(base_delay_s=0.001, max_delay_s=0.05),
            rng=random.Random(0),
            sleep=sleeps.append,
        )
        return transport, inner, sleeps

    def test_retry_after_header_floors_the_backoff_delay(self):
        transport, inner, sleeps = self.make(
            [rate_limited_response(header="0.040"), ok_response()])
        response = transport.send("POST", "/v1/classify", b"{}")
        assert response.status == 200 and len(inner.calls) == 2
        # Jittered delay from these knobs is ~0.003; the server's hint wins.
        assert sleeps[0] >= 0.040

    def test_envelope_hint_is_the_header_fallback(self):
        transport, inner, sleeps = self.make(
            [rate_limited_response(retry_after_s=0.030), ok_response()])
        response = transport.send("POST", "/v1/classify", b"{}")
        assert response.status == 200
        assert sleeps[0] >= 0.030

    def test_hint_is_capped_by_the_policy_ceiling(self):
        transport, inner, sleeps = self.make(
            [rate_limited_response(header="9999"), ok_response()])
        transport.send("POST", "/v1/classify", b"{}")
        assert sleeps[0] == pytest.approx(0.05)  # max_delay_s wins
