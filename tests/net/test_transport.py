"""Transport-layer tests: retry/backoff determinism, fault injection, pooling.

The retry tests never sleep for real: ``RetryingTransport`` takes an
injected rng and sleep, so attempt counts and the exact jittered delay
sequence are pinned, not sampled.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.net import protocol
from repro.net.server import NetServer
from repro.net.transport import (
    IDEMPOTENCY_HEADER,
    ConnectError,
    FlakyConfig,
    FlakyTransport,
    HttpTransport,
    RetryBudgetExhausted,
    RetryPolicy,
    RetryingTransport,
    TransportError,
    TransportResponse,
)


def ok_response(status: int = 200) -> TransportResponse:
    return TransportResponse(
        status=status,
        headers={"content-type": protocol.CONTENT_TYPE_JSON},
        body=protocol.dumps(protocol.ok_envelope({})),
    )


class ScriptedTransport:
    """Replays a script of responses/exceptions and records every attempt."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = []

    def send_once(self, method, path, body=b"", headers=None):
        self.calls.append((method, path, bytes(body), dict(headers or {})))
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step

    def close(self):
        pass

    def stats(self):
        return {"scripted_calls": len(self.calls)}


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.5, max_delay_s=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(budget_s=-1.0)

    def test_next_delay_decorrelated_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0)
        rng = random.Random(7)
        reference = random.Random(7)
        delay = policy.base_delay_s
        for _ in range(6):
            expected = min(1.0, reference.uniform(0.1, max(0.1, 3.0 * delay)))
            delay = policy.next_delay(delay, rng)
            assert delay == expected
            assert 0.1 <= delay <= 1.0


class TestRetryingTransport:
    def make(self, script, **policy_kw):
        inner = ScriptedTransport(script)
        sleeps = []
        transport = RetryingTransport(
            inner,
            policy=RetryPolicy(**{"base_delay_s": 0.01, "max_delay_s": 0.05,
                                  **policy_kw}),
            rng=random.Random(0),
            sleep=sleeps.append,
            key_factory=lambda: "fixed-key",
        )
        return transport, inner, sleeps

    def test_success_first_attempt_no_sleep(self):
        transport, inner, sleeps = self.make([ok_response()])
        response = transport.send("POST", "/v1/classify", b"{}")
        assert response.status == 200
        assert len(inner.calls) == 1 and sleeps == []

    def test_retries_connect_errors_then_succeeds(self):
        transport, inner, sleeps = self.make(
            [ConnectError("down"), ConnectError("down"), ok_response()])
        response = transport.send("POST", "/p", b"")
        assert response.status == 200
        assert len(inner.calls) == 3 and len(sleeps) == 2
        assert transport.stats()["retry"]["retries"] == 2

    def test_retries_retryable_statuses(self):
        transport, inner, _ = self.make([ok_response(503), ok_response(429),
                                         ok_response(200)])
        assert transport.send("GET", "/p").status == 200
        assert len(inner.calls) == 3

    def test_non_retryable_status_returned_as_is(self):
        transport, inner, sleeps = self.make([ok_response(404)])
        assert transport.send("GET", "/missing").status == 404
        assert len(inner.calls) == 1 and sleeps == []

    def test_exact_attempt_count_on_exhaustion(self):
        transport, inner, sleeps = self.make(
            [ConnectError(f"down {i}") for i in range(10)], max_attempts=4)
        with pytest.raises(RetryBudgetExhausted) as excinfo:
            transport.send("POST", "/p", b"")
        assert excinfo.value.attempts == 4
        assert isinstance(excinfo.value.last_error, ConnectError)
        assert len(inner.calls) == 4 and len(sleeps) == 3
        assert transport.stats()["retry"]["exhausted"] == 1

    def test_jittered_delay_sequence_is_pinned(self):
        transport, _, sleeps = self.make(
            [ConnectError("down")] * 4, max_attempts=4,
            base_delay_s=0.01, max_delay_s=10.0)
        with pytest.raises(RetryBudgetExhausted):
            transport.send("POST", "/p", b"")
        # Recompute the decorrelated-jitter chain with the same seed.
        reference = random.Random(0)
        delay, expected = 0.01, []
        for _ in range(3):
            delay = min(10.0, reference.uniform(0.01, max(0.01, 3.0 * delay)))
            expected.append(delay)
        assert sleeps == expected

    def test_wall_clock_budget_stops_before_max_attempts(self):
        transport, inner, sleeps = self.make(
            [ConnectError("down")] * 50, max_attempts=50,
            base_delay_s=0.05, max_delay_s=0.05, budget_s=0.12)
        with pytest.raises(RetryBudgetExhausted) as excinfo:
            transport.send("POST", "/p", b"")
        # Fixed 0.05 s delays: two fit in the 0.12 s budget, the third
        # would overflow it, so exactly 3 attempts run.
        assert excinfo.value.attempts == 3
        assert len(inner.calls) == 3 and sleeps == [0.05, 0.05]

    def test_idempotency_key_stable_across_attempts(self):
        transport, inner, _ = self.make(
            [ConnectError("down"), ok_response(503), ok_response()])
        transport.send("POST", "/p", b"")
        keys = {call[3][IDEMPOTENCY_HEADER] for call in inner.calls}
        assert keys == {"fixed-key"}

    def test_caller_supplied_key_wins(self):
        transport, inner, _ = self.make([ok_response()])
        transport.send("POST", "/p", b"", idempotency_key="mine")
        assert inner.calls[0][3][IDEMPOTENCY_HEADER] == "mine"

    def test_fresh_key_per_logical_request(self):
        counter = iter(range(100))
        inner = ScriptedTransport([ok_response(), ok_response()])
        transport = RetryingTransport(
            inner, policy=RetryPolicy(), rng=random.Random(0),
            sleep=lambda _: None, key_factory=lambda: f"key-{next(counter)}")
        transport.send("POST", "/p", b"")
        transport.send("POST", "/p", b"")
        assert inner.calls[0][3][IDEMPOTENCY_HEADER] == "key-0"
        assert inner.calls[1][3][IDEMPOTENCY_HEADER] == "key-1"

    def test_send_once_is_the_retried_surface(self):
        transport, inner, _ = self.make([ConnectError("down"), ok_response()])
        assert transport.send_once("GET", "/p").status == 200
        assert len(inner.calls) == 2

    def test_stats_merge_inner(self):
        transport, _, _ = self.make([ok_response()])
        transport.send("GET", "/p")
        stats = transport.stats()
        assert stats["scripted_calls"] == 1
        assert stats["retry"]["requests"] == 1


class TestFlakyTransport:
    def test_deterministic_fault_sequence(self):
        # Same seed, same config => identical injected fault pattern.
        def run(seed):
            inner = ScriptedTransport([ok_response()] * 64)
            flaky = FlakyTransport(
                inner, FlakyConfig(drop_rate=0.3, error_rate=0.3), seed=seed)
            pattern = []
            for _ in range(32):
                try:
                    pattern.append(flaky.send_once("GET", "/p").status)
                except ConnectError:
                    pattern.append("drop")
            return pattern

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_drops_raise_connect_error(self):
        flaky = FlakyTransport(ScriptedTransport([]),
                               FlakyConfig(drop_rate=1.0), seed=0)
        with pytest.raises(ConnectError):
            flaky.send_once("GET", "/p")
        assert flaky.stats()["injected"]["dropped"] == 1

    def test_errors_return_unavailable_envelope(self):
        flaky = FlakyTransport(ScriptedTransport([]),
                               FlakyConfig(error_rate=1.0), seed=0)
        response = flaky.send_once("GET", "/p")
        assert response.status == 503
        with pytest.raises(protocol.WireError) as excinfo:
            protocol.parse_response(response.json())
        assert excinfo.value.code == "unavailable"

    def test_delays_use_injected_sleep(self):
        sleeps = []
        flaky = FlakyTransport(
            ScriptedTransport([ok_response()]),
            FlakyConfig(delay_rate=1.0, delay_s=0.5), seed=0,
            sleep=sleeps.append)
        assert flaky.send_once("GET", "/p").status == 200
        assert sleeps == [0.5]
        assert flaky.stats()["injected"]["delayed"] == 1

    def test_kill_and_revive(self):
        flaky = FlakyTransport(ScriptedTransport([ok_response()]), seed=0)
        flaky.kill()
        assert flaky.dead
        with pytest.raises(ConnectError):
            flaky.send_once("GET", "/p")
        flaky.revive()
        assert flaky.send_once("GET", "/p").status == 200

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FlakyConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            FlakyConfig(delay_s=-1.0)

    def test_under_retry_layer_recovers(self):
        # The intended stacking: seeded faults below, retry loop above.
        inner = ScriptedTransport([ok_response()] * 40)
        flaky = FlakyTransport(inner, FlakyConfig(drop_rate=0.5), seed=3)
        retrying = RetryingTransport(
            flaky, policy=RetryPolicy(max_attempts=8, base_delay_s=0.001,
                                      max_delay_s=0.001),
            rng=random.Random(0), sleep=lambda _: None)
        for _ in range(10):
            assert retrying.send("GET", "/p").status == 200
        stats = retrying.stats()
        assert stats["injected"]["dropped"] > 0
        assert stats["retry"]["retries"] == stats["injected"]["dropped"]


class TestHttpTransport:
    def test_rejects_bad_urls_and_timeouts(self):
        with pytest.raises(ValueError):
            HttpTransport("ftp://host")
        with pytest.raises(ValueError):
            HttpTransport("http:///nohost")
        with pytest.raises(ValueError):
            HttpTransport("http://h", connect_timeout_s=0)

    def test_connect_error_on_unbound_port(self):
        # Reserve a port, close it, and dial it: nothing listens there.
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        transport = HttpTransport(f"http://127.0.0.1:{port}",
                                  connect_timeout_s=0.5, read_timeout_s=0.5)
        with pytest.raises(ConnectError):
            transport.send_once("GET", "/v1/healthz")

    def test_keep_alive_pooling_and_stats(self, shard_server):
        transport = HttpTransport(shard_server.base_url)
        try:
            for _ in range(3):
                response = transport.send_once("GET", "/v1/healthz")
                assert response.status == 200
            stats = transport.stats()
            assert stats["requests"] == 3
            # All three rode the same pooled connection.
            assert stats["reconnects"] == 0
        finally:
            transport.close()

    def test_silent_reconnect_after_server_restart(self, shard_server):
        transport = HttpTransport(shard_server.base_url)
        try:
            assert transport.send_once("GET", "/v1/healthz").status == 200
            # Sever every kept-alive socket server-side; the pooled
            # connection is now stale and the next attempt must silently
            # reconnect instead of failing.
            shard_server._httpd.close_connections()
            assert transport.send_once("GET", "/v1/healthz").status == 200
            assert transport.stats()["reconnects"] == 1
        finally:
            transport.close()

    def test_thread_safety_under_contention(self, shard_server):
        transport = HttpTransport(shard_server.base_url)
        failures = []

        def worker():
            try:
                for _ in range(5):
                    if transport.send_once("GET", "/v1/healthz").status != 200:
                        failures.append("bad status")
            except Exception as error:  # pragma: no cover - failure path
                failures.append(repr(error))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        transport.close()
        assert failures == []


@pytest.fixture
def shard_server():
    """A small live shard-plane server on a loopback port."""
    server = NetServer(shard_rows=8, word_bits=256)
    server.start()
    try:
        yield server
    finally:
        server.stop()
