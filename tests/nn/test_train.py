"""Tests for the training / evaluation loop."""

import numpy as np
import pytest

from repro.nn.layers import Flatten, Linear, ReLU, Sequential
from repro.nn.optim import Adam
from repro.nn.train import Trainer, evaluate_accuracy, iterate_minibatches


class TestMinibatches:
    def test_covers_all_samples_once(self, rng):
        images = rng.normal(size=(25, 2))
        labels = np.arange(25)
        seen = []
        for batch_images, batch_labels in iterate_minibatches(images, labels, 8, shuffle=False):
            assert batch_images.shape[0] == batch_labels.shape[0]
            seen.extend(batch_labels.tolist())
        assert sorted(seen) == list(range(25))

    def test_shuffle_is_deterministic_with_rng(self, rng):
        images = rng.normal(size=(10, 2))
        labels = np.arange(10)
        a = [l.tolist() for _, l in iterate_minibatches(images, labels, 4,
                                                        rng=np.random.default_rng(3))]
        b = [l.tolist() for _, l in iterate_minibatches(images, labels, 4,
                                                        rng=np.random.default_rng(3))]
        assert a == b

    def test_validates_inputs(self, rng):
        with pytest.raises(ValueError):
            list(iterate_minibatches(rng.normal(size=(4, 2)), np.zeros(3), 2))
        with pytest.raises(ValueError):
            list(iterate_minibatches(rng.normal(size=(4, 2)), np.zeros(4), 0))


def _flat_classifier(rng, num_features=32, num_classes=3):
    return Sequential(Linear(num_features, 32, rng=rng), ReLU(), Linear(32, num_classes, rng=rng))


def _separable_problem(rng, samples=300, num_features=32, num_classes=3):
    """Linearly separable clusters: quick to learn, deterministic."""
    centers = rng.normal(scale=3.0, size=(num_classes, num_features))
    labels = rng.integers(0, num_classes, size=samples)
    images = centers[labels] + rng.normal(scale=0.5, size=(samples, num_features))
    return images, labels.astype(np.int64)


class TestTrainer:
    def test_training_improves_accuracy(self, rng):
        images, labels = _separable_problem(rng)
        model = _flat_classifier(rng)
        trainer = Trainer(model, Adam(model, lr=5e-3), batch_size=32)
        history = trainer.fit(images, labels, epochs=5, validation=(images, labels))
        assert history.train_accuracy[-1] > 0.9
        assert history.best_validation_accuracy > 0.9

    def test_loss_decreases(self, rng):
        images, labels = _separable_problem(rng)
        model = _flat_classifier(rng)
        trainer = Trainer(model, Adam(model, lr=5e-3), batch_size=32)
        history = trainer.fit(images, labels, epochs=4)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_invalid_epochs(self, rng):
        model = _flat_classifier(rng)
        trainer = Trainer(model, Adam(model))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 32)), np.zeros(4, dtype=np.int64), epochs=0)


class TestEvaluateAccuracy:
    def test_perfect_model_scores_one(self, rng):
        images, labels = _separable_problem(rng, samples=100)
        model = _flat_classifier(rng)
        trainer = Trainer(model, Adam(model, lr=5e-3), batch_size=32)
        trainer.fit(images, labels, epochs=6)
        assert evaluate_accuracy(model, images, labels) > 0.95

    def test_custom_forward_fn_is_used(self, rng):
        images, labels = _separable_problem(rng, samples=50, num_classes=2)
        model = _flat_classifier(rng, num_classes=2)

        def oracle_forward(batch):
            # Perfect predictions regardless of the model.
            logits = np.zeros((batch.shape[0], 2))
            return logits

        # With all-zero logits argmax is class 0 -> accuracy equals fraction of 0 labels.
        accuracy = evaluate_accuracy(model, images, labels, forward_fn=oracle_forward)
        assert accuracy == pytest.approx(np.mean(labels == 0))

    def test_untrained_model_near_chance(self, rng):
        images, labels = _separable_problem(rng, samples=200, num_classes=4)
        model = _flat_classifier(rng, num_classes=4)
        accuracy = evaluate_accuracy(model, images, labels)
        assert accuracy < 0.7
