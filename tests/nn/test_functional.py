"""Tests for the NN functional primitives."""

import numpy as np
import pytest
from scipy import signal

from repro.nn import functional as F


class TestConvOutputSize:
    def test_basic_sizes(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 5, 1, 0) == 28
        assert F.conv_output_size(32, 3, 2, 1) == 16

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = F.im2col(x, 3, 1, 1)
        assert cols.shape == (2, 64, 27)

    def test_identity_kernel_recovers_pixels(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        cols = F.im2col(x, 1, 1, 0)
        assert np.allclose(cols.reshape(5, 5), x[0, 0])

    def test_col2im_is_adjoint_of_im2col(self, rng):
        # <im2col(x), y> == <x, col2im(y)> for random x, y -- the defining
        # property of a correct backward pass.
        x = rng.normal(size=(2, 3, 6, 6))
        cols = F.im2col(x, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * F.col2im(y, x.shape, 3, 2, 1)))
        assert lhs == pytest.approx(rhs)

    def test_col2im_shape_validation(self, rng):
        with pytest.raises(ValueError):
            F.col2im(rng.normal(size=(1, 4, 9)), (1, 1, 5, 5), 3, 1, 0)


class TestConv2d:
    def test_matches_scipy_correlate(self, rng):
        x = rng.normal(size=(1, 1, 10, 10))
        w = rng.normal(size=(1, 1, 3, 3))
        ours = F.conv2d(x, w)
        reference = signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        assert np.allclose(ours[0, 0], reference)

    def test_multi_channel_sum(self, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        w = rng.normal(size=(2, 3, 3, 3))
        ours = F.conv2d(x, w)
        reference = np.zeros((2, 6, 6))
        for o in range(2):
            for c in range(3):
                reference[o] += signal.correlate2d(x[0, c], w[o, c], mode="valid")
        assert np.allclose(ours[0], reference)

    def test_bias_added_per_channel(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = rng.normal(size=(2, 1, 3, 3))
        bias = np.array([1.0, -2.0])
        with_bias = F.conv2d(x, w, bias=bias)
        without = F.conv2d(x, w)
        assert np.allclose(with_bias - without, bias.reshape(1, 2, 1, 1))

    def test_stride_and_padding_shapes(self, rng):
        x = rng.normal(size=(2, 3, 32, 32))
        w = rng.normal(size=(8, 3, 3, 3))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 8, 16, 16)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(rng.normal(size=(1, 2, 8, 8)), rng.normal(size=(4, 3, 3, 3)))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled, _ = F.max_pool2d(x, 2)
        assert np.array_equal(pooled[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_gradient_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled, argmax = F.max_pool2d(x, 2)
        grad = np.ones_like(pooled)
        grad_in = F.max_pool2d_backward(grad, argmax, x.shape, 2)
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        assert np.array_equal(grad_in[0, 0], expected)

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled = F.avg_pool2d(x, 2)
        assert np.allclose(pooled[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        pooled = F.global_avg_pool2d(x)
        assert pooled.shape == (2, 3, 1, 1)
        assert np.allclose(pooled[:, :, 0, 0], x.mean(axis=(2, 3)))


class TestActivationsAndLosses:
    def test_relu(self):
        assert np.array_equal(F.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_softmax_sums_to_one(self, rng):
        logits = rng.normal(size=(4, 10)) * 50  # large values: stability check
        probs = F.softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_log_softmax_consistent_with_softmax(self, rng):
        logits = rng.normal(size=(3, 5))
        assert np.allclose(np.exp(F.log_softmax(logits)), F.softmax(logits))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        loss, grad = F.cross_entropy(logits, labels)
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.allclose(grad, 0.0, atol=1e-6)

    def test_cross_entropy_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        _, grad = F.cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numerical = (F.cross_entropy(plus, labels)[0]
                             - F.cross_entropy(minus, labels)[0]) / (2 * eps)
                assert grad[i, j] == pytest.approx(numerical, abs=1e-5)

    def test_cross_entropy_validates_shapes(self, rng):
        with pytest.raises(ValueError):
            F.cross_entropy(rng.normal(size=(3, 4)), np.array([0, 1]))

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4], [0.3, 0.7]])
        labels = np.array([0, 1, 1, 1])
        assert F.accuracy(logits, labels) == pytest.approx(0.75)

    def test_kaiming_normal_statistics(self, rng):
        weights = F.kaiming_normal((1000, 64), fan_in=64, rng=rng)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 64), rel=0.1)
