"""Tests for the layer modules, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)


def numerical_gradient(func, array, eps=1e-6):
    """Central-difference gradient of a scalar-valued ``func`` w.r.t. ``array``."""
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = func()
        flat[index] = original - eps
        minus = func()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_input_gradient(layer, x, tolerance=1e-5):
    """Verify the layer's input gradient against finite differences."""
    out = layer.forward(x)
    upstream = np.random.default_rng(0).normal(size=out.shape)
    analytic = layer.backward(upstream)

    def loss():
        return float(np.sum(layer.forward(x) * upstream))

    numeric = numerical_gradient(loss, x)
    assert np.allclose(analytic, numeric, atol=tolerance), (
        f"input gradient mismatch: max abs diff "
        f"{np.max(np.abs(analytic - numeric)):.2e}")


def check_parameter_gradients(layer, x, tolerance=1e-5):
    """Verify every parameter gradient of the layer against finite differences."""
    out = layer.forward(x)
    upstream = np.random.default_rng(1).normal(size=out.shape)
    layer.zero_grad()
    layer.backward(upstream)

    for name, param in layer.params.items():
        analytic = layer.grads[name].copy()

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        numeric = numerical_gradient(loss, param)
        assert np.allclose(analytic, numeric, atol=tolerance), (
            f"gradient mismatch for parameter {name!r}")


class TestConv2d:
    def test_forward_matches_functional(self, rng):
        layer = Conv2d(3, 4, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(2, 3, 8, 8))
        expected = F.conv2d(x, layer.weight, layer.bias, stride=1, padding=1)
        assert np.allclose(layer(x), expected)

    def test_weight_matrix_shape(self):
        layer = Conv2d(3, 8, kernel_size=5)
        assert layer.weight_matrix().shape == (8, 75)

    def test_input_gradient(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng)
        check_input_gradient(layer, rng.normal(size=(2, 2, 6, 6)))

    def test_parameter_gradients(self, rng):
        layer = Conv2d(2, 2, kernel_size=3, rng=rng)
        check_parameter_gradients(layer, rng.normal(size=(2, 2, 5, 5)))

    def test_output_shape_helper(self):
        layer = Conv2d(1, 1, kernel_size=5, stride=1, padding=2)
        assert layer.output_shape((28, 28)) == (28, 28)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            Conv2d(1, 1, 3).backward(rng.normal(size=(1, 1, 3, 3)))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1, 3)


class TestLinear:
    def test_forward(self, rng):
        layer = Linear(8, 4, rng=rng)
        x = rng.normal(size=(3, 8))
        assert np.allclose(layer(x), x @ layer.weight.T + layer.bias)

    def test_input_gradient(self, rng):
        check_input_gradient(Linear(6, 5, rng=rng), rng.normal(size=(4, 6)))

    def test_parameter_gradients(self, rng):
        check_parameter_gradients(Linear(5, 3, rng=rng), rng.normal(size=(3, 5)))

    def test_no_bias_mode(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert np.allclose(layer(np.zeros((1, 4))), 0.0)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            Linear(4, 2)(rng.normal(size=(1, 5)))


class TestActivationAndPooling:
    def test_relu_gradient(self, rng):
        check_input_gradient(ReLU(), rng.normal(size=(3, 4)) + 0.1)

    def test_maxpool_gradient(self, rng):
        check_input_gradient(MaxPool2d(2), rng.normal(size=(2, 2, 4, 4)))

    def test_avgpool_gradient(self, rng):
        check_input_gradient(AvgPool2d(2), rng.normal(size=(2, 2, 4, 4)))

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer(x)
        assert out.shape == (2, 48)
        assert np.array_equal(layer.backward(out), x)


class TestBatchNorm2d:
    def test_training_normalises_batch(self, rng):
        layer = BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4))
        out = layer(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_eval_uses_running_statistics(self, rng):
        layer = BatchNorm2d(2)
        for _ in range(20):
            layer(rng.normal(loc=2.0, size=(16, 2, 4, 4)))
        layer.eval()
        x = rng.normal(loc=2.0, size=(4, 2, 4, 4))
        out = layer(x)
        assert abs(out.mean()) < 0.5

    def test_input_gradient(self, rng):
        layer = BatchNorm2d(2)
        check_input_gradient(layer, rng.normal(size=(4, 2, 3, 3)), tolerance=1e-4)

    def test_parameter_gradients(self, rng):
        layer = BatchNorm2d(2)
        check_parameter_gradients(layer, rng.normal(size=(4, 2, 3, 3)), tolerance=1e-4)

    def test_fold_into_affine_matches_eval_forward(self, rng):
        layer = BatchNorm2d(3)
        for _ in range(10):
            layer(rng.normal(size=(8, 3, 4, 4)))
        layer.eval()
        x = rng.normal(size=(2, 3, 4, 4))
        scale, shift = layer.fold_into_affine()
        expected = x * scale.reshape(1, -1, 1, 1) + shift.reshape(1, -1, 1, 1)
        assert np.allclose(layer(x), expected)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(rng.normal(size=(1, 2, 4, 4)))


class TestSequentialAndModule:
    def test_forward_backward_chain_gradient(self, rng):
        model = Sequential(Linear(6, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng))
        x = rng.normal(size=(4, 6))
        check_input_gradient(model, x)

    def test_parameter_enumeration(self, rng):
        model = Sequential(Conv2d(1, 2, 3, rng=rng), ReLU(), Flatten(), Linear(8, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == 4  # conv weight/bias + linear weight/bias
        assert model.num_parameters() == sum(p.size for p in model.parameters())

    def test_state_dict_roundtrip(self, rng):
        model = Sequential(Linear(4, 3, rng=rng), ReLU(), Linear(3, 2, rng=rng))
        state = model.state_dict()
        clone = Sequential(Linear(4, 3, rng=np.random.default_rng(99)), ReLU(),
                           Linear(3, 2, rng=np.random.default_rng(98)))
        clone.load_state_dict(state)
        x = rng.normal(size=(2, 4))
        assert np.allclose(model(x), clone(x))

    def test_load_state_dict_rejects_mismatch(self, rng):
        model = Sequential(Linear(4, 3, rng=rng))
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(1)})

    def test_train_eval_propagates(self):
        model = Sequential(BatchNorm2d(2), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_gradients(self, rng):
        model = Sequential(Linear(4, 2, rng=rng))
        out = model(rng.normal(size=(2, 4)))
        model.backward(np.ones_like(out))
        assert np.any(model.layers[0].grads["weight"] != 0)
        model.zero_grad()
        assert np.all(model.layers[0].grads["weight"] == 0)

    def test_sequential_indexing_and_append(self, rng):
        model = Sequential(Linear(4, 4, rng=rng))
        model.append(ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_base_module_interface_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros(1))
