"""Tests for INT8 post-training quantisation."""

import numpy as np
import pytest

from repro.nn.layers import Conv2d, Flatten, Linear, ReLU, Sequential
from repro.nn.quantize import (
    QuantizationParams,
    activation_fake_quantizer,
    compute_scale,
    dequantize,
    fake_quantize,
    quantization_error,
    quantize,
    quantize_model_weights,
)


class TestQuantizationParams:
    def test_qmin_qmax_for_int8(self):
        params = QuantizationParams(scale=0.1, num_bits=8)
        assert params.qmax == 127
        assert params.qmin == -128

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QuantizationParams(scale=0.0)
        with pytest.raises(ValueError):
            QuantizationParams(scale=0.1, num_bits=1)


class TestQuantizeDequantize:
    def test_roundtrip_error_bounded_by_half_step(self, rng):
        tensor = rng.normal(size=1000)
        params = compute_scale(tensor)
        recovered = dequantize(quantize(tensor, params), params)
        assert np.max(np.abs(recovered - tensor)) <= params.scale / 2 + 1e-12

    def test_quantized_values_within_range(self, rng):
        tensor = rng.normal(size=500) * 10
        params = compute_scale(tensor)
        codes = quantize(tensor, params)
        assert codes.max() <= params.qmax
        assert codes.min() >= params.qmin

    def test_zero_tensor_has_unit_scale(self):
        params = compute_scale(np.zeros(10))
        assert params.scale > 0

    def test_fake_quantize_idempotent(self, rng):
        tensor = rng.normal(size=200)
        once = fake_quantize(tensor)
        twice = fake_quantize(once)
        assert np.allclose(once, twice)

    def test_quantization_error_decreases_with_bits(self, rng):
        tensor = rng.normal(size=2000)
        assert quantization_error(tensor, 8) < quantization_error(tensor, 4)
        assert quantization_error(tensor, 4) < quantization_error(tensor, 2)

    def test_quantization_error_empty_tensor(self):
        assert quantization_error(np.array([])) == 0.0


class TestModelQuantisation:
    def _model(self, rng):
        return Sequential(Conv2d(1, 4, 3, rng=rng), ReLU(), Flatten(),
                          Linear(4 * 6 * 6, 5, rng=rng))

    def test_quantised_model_output_close_to_original(self, rng):
        model = self._model(rng)
        x = rng.normal(size=(2, 1, 8, 8))
        before = model(x)
        quantize_model_weights(model, num_bits=8)
        after = model(x)
        assert np.allclose(before, after, rtol=0.1, atol=0.1)

    def test_weights_land_on_quantisation_grid(self, rng):
        model = self._model(rng)
        quantize_model_weights(model, num_bits=8, per_channel=False)
        weight = model.layers[0].weight
        params = compute_scale(weight)
        codes = weight / params.scale
        assert np.allclose(codes, np.round(codes), atol=1e-6)

    def test_per_channel_mode_runs(self, rng):
        model = self._model(rng)
        quantize_model_weights(model, num_bits=8, per_channel=True)
        assert np.all(np.isfinite(model.layers[0].weight))

    def test_activation_quantizer_callable(self, rng):
        quantizer = activation_fake_quantizer(8)
        tensor = rng.normal(size=(4, 4))
        assert quantizer(tensor).shape == tensor.shape
