"""Tests for the LeNet5 / VGG / ResNet18 model builders."""

import numpy as np
import pytest

from repro.nn.models.lenet import build_lenet5
from repro.nn.models.resnet import BasicBlock, build_resnet18
from repro.nn.models.vgg import VGG_PLANS, build_vgg, build_vgg11, build_vgg16


class TestLeNet5:
    def test_forward_shape_28(self, rng):
        model = build_lenet5(num_classes=10, input_size=28)
        logits = model(rng.normal(size=(2, 1, 28, 28)))
        assert logits.shape == (2, 10)

    def test_forward_shape_32(self, rng):
        model = build_lenet5(num_classes=10, input_size=32)
        logits = model(rng.normal(size=(2, 1, 32, 32)))
        assert logits.shape == (2, 10)

    def test_parameter_count_full_width(self):
        # Classic LeNet5 has ~61.7k parameters (conv 156+2416, fc 48120+10164+850).
        model = build_lenet5(num_classes=10, input_size=32, width_multiplier=1.0)
        assert model.num_parameters() == pytest.approx(61706, abs=0)

    def test_width_multiplier_reduces_parameters(self):
        full = build_lenet5(width_multiplier=1.0).num_parameters()
        half = build_lenet5(width_multiplier=0.5).num_parameters()
        assert half < full

    def test_invalid_input_size(self):
        with pytest.raises(ValueError):
            build_lenet5(input_size=30)

    def test_backward_runs(self, rng):
        model = build_lenet5(width_multiplier=0.5)
        logits = model(rng.normal(size=(2, 1, 32, 32)))
        model.backward(np.ones_like(logits))


class TestVGG:
    def test_vgg11_forward_shape(self, rng):
        model = build_vgg11(num_classes=10, width_multiplier=0.125)
        logits = model(rng.normal(size=(2, 3, 32, 32)))
        assert logits.shape == (2, 10)

    def test_vgg16_forward_shape(self, rng):
        model = build_vgg16(num_classes=100, width_multiplier=0.125)
        logits = model(rng.normal(size=(1, 3, 32, 32)))
        assert logits.shape == (1, 100)

    def test_vgg11_has_8_convs_vgg16_has_13(self):
        from repro.nn.layers import Conv2d
        vgg11 = build_vgg11(width_multiplier=0.125)
        vgg16 = build_vgg16(width_multiplier=0.125)
        assert sum(isinstance(m, Conv2d) for m in vgg11.modules()) == 8
        assert sum(isinstance(m, Conv2d) for m in vgg16.modules()) == 13

    def test_custom_plan(self, rng):
        model = build_vgg((8, "M", 16, "M"), num_classes=5, input_size=32)
        assert model(rng.normal(size=(1, 3, 32, 32))).shape == (1, 5)

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError):
            build_vgg("vgg99")

    def test_input_size_must_match_pooling(self):
        with pytest.raises(ValueError):
            build_vgg("vgg11", input_size=24)

    def test_all_named_plans_are_consistent(self):
        for name, plan in VGG_PLANS.items():
            convs = sum(1 for item in plan if item != "M")
            pools = sum(1 for item in plan if item == "M")
            assert pools == 5, name
            assert convs in (8, 10, 13, 16), name


class TestResNet18:
    def test_forward_shape(self, rng):
        model = build_resnet18(num_classes=20, width_multiplier=0.125)
        logits = model(rng.normal(size=(2, 3, 32, 32)))
        assert logits.shape == (2, 20)

    def test_has_8_basic_blocks(self):
        model = build_resnet18(width_multiplier=0.125)
        assert len(model.blocks) == 8

    def test_downsample_only_on_stride_or_channel_change(self):
        model = build_resnet18(width_multiplier=0.25)
        downsamples = [block.downsample is not None for block in model.blocks]
        # First block of stages 2-4 change stride/channels; stage 1 does not.
        assert downsamples == [False, False, True, False, True, False, True, False]

    def test_backward_runs_and_produces_gradients(self, rng):
        model = build_resnet18(num_classes=5, width_multiplier=0.125)
        logits = model(rng.normal(size=(2, 3, 32, 32)))
        model.backward(np.ones_like(logits))
        grads = [np.abs(module.grads[name]).sum()
                 for module in model.modules() for name in module.grads]
        assert sum(g > 0 for g in grads) > len(grads) // 2

    def test_basic_block_identity_path_shape(self, rng):
        block = BasicBlock(8, 8, stride=1)
        x = rng.normal(size=(1, 8, 8, 8))
        assert block(x).shape == x.shape

    def test_basic_block_downsample_shape(self, rng):
        block = BasicBlock(8, 16, stride=2)
        x = rng.normal(size=(1, 8, 8, 8))
        assert block(x).shape == (1, 16, 4, 4)

    def test_invalid_width_multiplier(self):
        with pytest.raises(ValueError):
            build_resnet18(width_multiplier=0.0)

    def test_resnet_full_width_parameter_count_order(self):
        # CIFAR ResNet18 has ~11.2M parameters; allow a wide band since the
        # classifier size depends on num_classes.
        model = build_resnet18(num_classes=100, width_multiplier=1.0)
        assert 10.5e6 < model.num_parameters() < 11.6e6
