"""Tests for losses and optimisers."""

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam


class TestCrossEntropyLoss:
    def test_uniform_logits_loss_is_log_classes(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        labels = np.zeros(4, dtype=np.int64)
        assert loss(logits, labels) == pytest.approx(np.log(10))

    def test_backward_requires_forward(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_gradient_shape(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(5, 3))
        loss(logits, np.array([0, 1, 2, 1, 0]))
        assert loss.backward().shape == (5, 3)


class TestMSELoss:
    def test_zero_for_equal_inputs(self, rng):
        loss = MSELoss()
        x = rng.normal(size=(3, 4))
        assert loss(x, x.copy()) == 0.0

    def test_gradient_matches_analytic(self, rng):
        loss = MSELoss()
        predictions = rng.normal(size=(2, 3))
        targets = rng.normal(size=(2, 3))
        loss(predictions, targets)
        assert np.allclose(loss.backward(), 2 * (predictions - targets) / predictions.size)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            MSELoss()(rng.normal(size=(2, 3)), rng.normal(size=(3, 2)))


def _quadratic_model_and_loss(rng):
    """A tiny regression problem: fit y = Wx with one linear layer."""
    model = Sequential(Linear(4, 1, rng=rng))
    true_w = rng.normal(size=(1, 4))
    x = rng.normal(size=(64, 4))
    y = x @ true_w.T
    return model, x, y


def _train_steps(model, optimizer, x, y, steps):
    loss_fn = MSELoss()
    losses = []
    for _ in range(steps):
        predictions = model(x)
        losses.append(loss_fn(predictions, y))
        optimizer.zero_grad()
        model.backward(loss_fn.backward())
        optimizer.step()
    return losses


class TestSGD:
    def test_decreases_loss_on_regression(self, rng):
        model, x, y = _quadratic_model_and_loss(rng)
        losses = _train_steps(model, SGD(model, lr=0.05), x, y, steps=60)
        assert losses[-1] < losses[0] * 0.1

    def test_momentum_converges_faster_than_plain(self, rng):
        model_a, x, y = _quadratic_model_and_loss(rng)
        model_b = Sequential(Linear(4, 1, rng=np.random.default_rng(1234)))
        model_b.load_state_dict(model_a.state_dict())
        plain = _train_steps(model_a, SGD(model_a, lr=0.02), x, y, steps=40)
        momentum = _train_steps(model_b, SGD(model_b, lr=0.02, momentum=0.9), x, y, steps=40)
        assert momentum[-1] < plain[-1]

    def test_weight_decay_shrinks_weights(self, rng):
        model = Sequential(Linear(4, 4, rng=rng))
        optimizer = SGD(model, lr=0.1, weight_decay=0.5)
        x = np.zeros((2, 4))
        before = np.linalg.norm(model.layers[0].weight)
        _train_steps(model, optimizer, x, np.zeros((2, 4)), steps=5)
        assert np.linalg.norm(model.layers[0].weight) < before

    def test_invalid_hyperparameters(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        with pytest.raises(ValueError):
            SGD(model, lr=0.0)
        with pytest.raises(ValueError):
            SGD(model, lr=0.1, momentum=1.0)


class TestAdam:
    def test_decreases_loss_on_regression(self, rng):
        model, x, y = _quadratic_model_and_loss(rng)
        losses = _train_steps(model, Adam(model, lr=0.05), x, y, steps=80)
        assert losses[-1] < losses[0] * 0.1

    def test_handles_relu_network(self, rng):
        model = Sequential(Linear(4, 16, rng=rng), ReLU(), Linear(16, 1, rng=rng))
        x = rng.normal(size=(64, 4))
        y = np.abs(x[:, :1])
        losses = _train_steps(model, Adam(model, lr=0.01), x, y, steps=100)
        assert losses[-1] < losses[0]

    def test_invalid_hyperparameters(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        with pytest.raises(ValueError):
            Adam(model, lr=-1.0)
        with pytest.raises(ValueError):
            Adam(model, betas=(1.0, 0.999))
