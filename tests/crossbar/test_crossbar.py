"""Tests for the NVM hashing crossbar."""

import numpy as np
import pytest

from repro.core.hashing import RandomProjectionHasher
from repro.crossbar.crossbar import CrossbarConfig, HashingCrossbar, SignSenseAmplifier


class TestSignSenseAmplifier:
    def test_ideal_comparator_decides_on_sign(self):
        amp = SignSenseAmplifier()
        positive = np.array([1.0, 3.0, 0.5])
        negative = np.array([0.5, 4.0, 0.5])
        assert list(amp.decide(positive, negative)) == [1, 0, 1]

    def test_offset_is_static_per_instance(self):
        amp = SignSenseAmplifier(offset_sigma_ua=5.0, seed=3)
        assert amp.offset_ua == SignSenseAmplifier(offset_sigma_ua=5.0, seed=3).offset_ua

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            SignSenseAmplifier(offset_sigma_ua=-1.0)


class TestCrossbarConfig:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CrossbarConfig(rows=0, columns=10)
        with pytest.raises(ValueError):
            CrossbarConfig(rows=10, columns=10, conductance_levels=1)
        with pytest.raises(ValueError):
            CrossbarConfig(rows=10, columns=10, g_min_us=5.0, g_max_us=1.0)


class TestHashingCrossbar:
    def test_matches_ideal_hash_without_nonidealities(self, rng):
        hasher = RandomProjectionHasher(input_dim=24, hash_length=256, seed=4)
        crossbar = HashingCrossbar(hasher.projection_matrix)
        data = rng.normal(size=(16, 24))
        ideal = hasher.hash_batch(data)
        produced = crossbar.hash_batch(data)
        agreement = np.mean(produced == ideal)
        # Conductance quantisation flips only bits whose projection is very
        # close to zero; agreement stays essentially perfect.
        assert agreement > 0.97

    def test_single_vector_hash_matches_batch(self, rng):
        hasher = RandomProjectionHasher(input_dim=12, hash_length=256, seed=1)
        crossbar = HashingCrossbar(hasher.projection_matrix)
        vector = rng.normal(size=12)
        assert np.array_equal(crossbar.hash(vector), crossbar.hash_batch(vector.reshape(1, -1))[0])

    def test_device_variation_reduces_agreement(self, rng):
        hasher = RandomProjectionHasher(input_dim=32, hash_length=512, seed=2)
        data = rng.normal(size=(32, 32))
        ideal = hasher.hash_batch(data)
        clean = HashingCrossbar(hasher.projection_matrix)
        noisy = HashingCrossbar(
            hasher.projection_matrix,
            config=CrossbarConfig(rows=32, columns=512, device_variation_sigma=0.5),
            seed=9)
        assert noisy.agreement_with_ideal(data, ideal) <= clean.agreement_with_ideal(data, ideal)
        # Even heavy variation keeps a clear majority of bits correct.
        assert noisy.agreement_with_ideal(data, ideal) > 0.7

    def test_geometry_mismatch_rejected(self, rng):
        projection = rng.normal(size=(16, 64))
        with pytest.raises(ValueError):
            HashingCrossbar(projection, config=CrossbarConfig(rows=8, columns=64))
        crossbar = HashingCrossbar(projection)
        with pytest.raises(ValueError):
            crossbar.hash_batch(rng.normal(size=(4, 15)))

    def test_energy_and_latency_positive_and_scale(self):
        small = HashingCrossbar(np.ones((16, 256)))
        large = HashingCrossbar(np.ones((64, 1024)))
        assert 0 < small.energy_per_hash_pj() < large.energy_per_hash_pj()
        assert small.latency_cycles() == small.config.input_bits + 1
        assert small.area_um2() < large.area_um2()

    def test_agreement_helper_validates_shape(self, rng):
        crossbar = HashingCrossbar(rng.normal(size=(8, 64)))
        data = rng.normal(size=(4, 8))
        with pytest.raises(ValueError):
            crossbar.agreement_with_ideal(data, np.zeros((3, 64), dtype=np.uint8))
