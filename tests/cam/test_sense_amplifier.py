"""Tests for the clocked self-referenced sense amplifier."""

import numpy as np
import pytest

from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp


class TestDischargeModel:
    def test_full_match_never_discharges(self):
        amp = ClockedSelfReferencedSenseAmp(word_bits=256)
        assert np.isinf(amp.discharge_time_ns(0))

    def test_more_mismatches_discharge_faster(self):
        amp = ClockedSelfReferencedSenseAmp(word_bits=256)
        times = [amp.discharge_time_ns(n) for n in (1, 4, 16, 64, 256)]
        assert all(times[i] > times[i + 1] for i in range(len(times) - 1))

    def test_out_of_range_mismatch_rejected(self):
        amp = ClockedSelfReferencedSenseAmp(word_bits=64)
        with pytest.raises(ValueError):
            amp.discharge_time_ns(65)
        with pytest.raises(ValueError):
            amp.discharge_time_ns(-1)

    def test_capacitance_scales_with_word_width(self):
        short = ClockedSelfReferencedSenseAmp(word_bits=256)
        long = ClockedSelfReferencedSenseAmp(word_bits=1024)
        assert long.match_line_capacitance_ff > short.match_line_capacitance_ff


class TestNoiseFreeReadout:
    @pytest.mark.parametrize("distance", [0, 1, 2, 5, 17, 64, 200, 256])
    def test_exact_recovery_without_noise(self, distance):
        amp = ClockedSelfReferencedSenseAmp(word_bits=256, timing_noise_sigma_ps=0.0)
        reading = amp.read(distance)
        assert reading.hamming_distance == distance
        assert reading.true_distance == distance

    def test_read_many_matches_read(self):
        amp = ClockedSelfReferencedSenseAmp(word_bits=128)
        distances = np.array([0, 3, 7, 100, 128])
        readings = amp.read_many(distances)
        assert [r.hamming_distance for r in readings] == list(distances)

    def test_estimate_distances_vectorised(self):
        amp = ClockedSelfReferencedSenseAmp(word_bits=64)
        distances = np.arange(0, 65)
        assert np.array_equal(amp.estimate_distances(distances), distances)

    def test_sampling_cycles_zero_for_match(self):
        amp = ClockedSelfReferencedSenseAmp(word_bits=256)
        assert amp.read(0).sampling_cycles == 0
        assert amp.read(1).sampling_cycles >= 1

    def test_rejects_out_of_range_distances(self):
        amp = ClockedSelfReferencedSenseAmp(word_bits=32)
        with pytest.raises(ValueError):
            amp.read(33)


class TestNoisyReadout:
    def test_noise_introduces_bounded_errors(self):
        amp = ClockedSelfReferencedSenseAmp(word_bits=256, timing_noise_sigma_ps=2.0, seed=0)
        true = np.full(200, 8)
        estimates = amp.estimate_distances(true)
        # Small distances are well separated in time, so errors stay small.
        assert np.all(np.abs(estimates - 8) <= 2)

    def test_noise_is_reproducible_with_seed(self):
        a = ClockedSelfReferencedSenseAmp(word_bits=256, timing_noise_sigma_ps=5.0, seed=42)
        b = ClockedSelfReferencedSenseAmp(word_bits=256, timing_noise_sigma_ps=5.0, seed=42)
        distances = np.full(50, 100)
        assert np.array_equal(a.estimate_distances(distances), b.estimate_distances(distances))

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            ClockedSelfReferencedSenseAmp(word_bits=64, timing_noise_sigma_ps=-1.0)


class TestResolution:
    def test_resolution_limit_within_word(self):
        amp = ClockedSelfReferencedSenseAmp(word_bits=256)
        limit = amp.resolution_limit()
        assert 1 <= limit <= 256

    def test_faster_clock_improves_resolution(self):
        slow = ClockedSelfReferencedSenseAmp(word_bits=256, sampling_frequency_ghz=1.0)
        fast = ClockedSelfReferencedSenseAmp(word_bits=256, sampling_frequency_ghz=8.0)
        assert fast.resolution_limit() >= slow.resolution_limit()
