"""Tests for the CAM cell device models."""

import pytest

from repro.cam.cell import (
    CamCell,
    CellTechnology,
    CMOS_CAM_CELL,
    CMOS_TCAM_CELL,
    FEFET_CAM_CELL,
    cell_for_technology,
)


class TestReferenceCells:
    def test_transistor_counts_match_paper(self):
        # Paper Sec. II-A: CMOS CAM 9-10 T, CMOS TCAM 16 T, FeFET cell 2 T.
        assert CMOS_CAM_CELL.transistors in (9, 10)
        assert CMOS_TCAM_CELL.transistors == 16
        assert FEFET_CAM_CELL.transistors == 2

    def test_fefet_area_advantage_is_7_5x(self):
        assert CMOS_TCAM_CELL.area_um2 / FEFET_CAM_CELL.area_um2 == pytest.approx(7.5)

    def test_fefet_search_energy_advantage_is_2_4x(self):
        ratio = CMOS_TCAM_CELL.search_energy_fj / FEFET_CAM_CELL.search_energy_fj
        assert ratio == pytest.approx(2.4)

    def test_fefet_is_nonvolatile_cmos_is_not(self):
        assert FEFET_CAM_CELL.is_nonvolatile
        assert not CMOS_TCAM_CELL.is_nonvolatile

    def test_ratio_helpers(self):
        assert FEFET_CAM_CELL.scaled_area_ratio(CMOS_TCAM_CELL) == pytest.approx(1 / 7.5)
        assert FEFET_CAM_CELL.scaled_energy_ratio(CMOS_TCAM_CELL) == pytest.approx(1 / 2.4)


class TestLookup:
    def test_lookup_by_enum(self):
        assert cell_for_technology(CellTechnology.FEFET) is FEFET_CAM_CELL

    def test_lookup_by_string(self):
        assert cell_for_technology("cmos") is CMOS_TCAM_CELL
        assert cell_for_technology("cmos", ternary=False) is CMOS_CAM_CELL
        assert cell_for_technology("fefet") is FEFET_CAM_CELL

    def test_unknown_technology_raises(self):
        with pytest.raises(ValueError):
            cell_for_technology("rram")


class TestValidation:
    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            CamCell(technology=CellTechnology.CMOS, ternary=False, transistors=0,
                    area_um2=1.0, search_energy_fj=1.0, write_energy_fj=1.0,
                    leakage_nw=0.1, match_pulldown_current_ua=10.0)
        with pytest.raises(ValueError):
            CamCell(technology=CellTechnology.CMOS, ternary=False, transistors=9,
                    area_um2=-1.0, search_energy_fj=1.0, write_energy_fj=1.0,
                    leakage_nw=0.1, match_pulldown_current_ua=10.0)
        with pytest.raises(ValueError):
            CamCell(technology=CellTechnology.CMOS, ternary=False, transistors=9,
                    area_um2=1.0, search_energy_fj=1.0, write_energy_fj=1.0,
                    leakage_nw=0.1, match_pulldown_current_ua=0.0)
