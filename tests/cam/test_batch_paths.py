"""Degenerate-batch handling and the packed batch-search fast path."""

import numpy as np
import pytest

from repro.bitops import pack_bits
from repro.cam.array import CamArray
from repro.cam.dynamic import DynamicCam, DynamicCamConfig
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp


@pytest.fixture
def filled_array(rng):
    array = CamArray(rows=24, word_bits=300)
    array.write_rows(rng.integers(0, 2, size=(17, 300), dtype=np.uint8))
    return array


@pytest.fixture
def filled_dynamic(rng):
    cam = DynamicCam(DynamicCamConfig(rows=16))
    cam.configure_word_bits(512)
    cam.write_rows(rng.integers(0, 2, size=(11, 512), dtype=np.uint8))
    return cam


class TestEmptyBatches:
    """An empty ``(0, k)`` query batch is a no-op, never an error."""

    def test_cam_array_empty_batch_returns_zero_rows(self, filled_array):
        distances, energy, latency = filled_array.search_batch(
            np.zeros((0, 300), dtype=np.uint8))
        assert distances.shape == (0, 24)
        assert distances.dtype == np.int64
        assert energy == 0.0
        assert latency == 0
        assert filled_array.search_count == 0

    def test_cam_array_empty_batch_any_width(self, filled_array):
        # Width validation is per-query work; an empty batch has no queries.
        for width in (0, 1, 300, 999):
            distances, energy, latency = filled_array.search_batch(
                np.zeros((0, width), dtype=np.uint8))
            assert distances.shape == (0, 24)

    def test_cam_array_empty_packed_batch(self, filled_array):
        distances, energy, latency = filled_array.search_batch_packed(
            np.zeros((0, 5), dtype=np.uint64))
        assert distances.shape == (0, 24)
        assert energy == 0.0 and latency == 0

    def test_dynamic_cam_empty_batch(self, filled_dynamic):
        distances, energy, latency = filled_dynamic.search_batch(
            np.zeros((0, 512), dtype=np.uint8))
        assert distances.shape == (0, 16)
        assert energy == 0.0 and latency == 0

    def test_dynamic_cam_empty_packed_batch(self, filled_dynamic):
        distances, energy, latency = filled_dynamic.search_batch_packed(
            np.zeros((0, 8), dtype=np.uint64))
        assert distances.shape == (0, 16)
        assert energy == 0.0 and latency == 0

    def test_one_dimensional_input_still_rejected(self, filled_array):
        with pytest.raises(ValueError, match="2-D"):
            filled_array.search_batch(np.zeros(300, dtype=np.uint8))
        with pytest.raises(ValueError, match="2-D"):
            filled_array.search_batch_packed(np.zeros(5, dtype=np.uint64))
        with pytest.raises(ValueError, match="2-D"):
            filled_array.mismatch_counts_packed(np.zeros(5, dtype=np.uint64))
        with pytest.raises(ValueError, match="2-D"):
            filled_array.topk_packed(np.zeros(5, dtype=np.uint64), 3)

    def test_cam_array_empty_mismatch_counts(self, filled_array):
        # The scatter-gather substrate follows the same no-op contract:
        # shaped (0, rows) counts, zero cost, no accounting movement.
        for words in (1, 5, 9):
            counts, energy, latency = filled_array.mismatch_counts_packed(
                np.zeros((0, words), dtype=np.uint64))
            assert counts.shape == (0, 24)
            assert counts.dtype == np.int64
            assert energy == 0.0 and latency == 0
        assert filled_array.search_count == 0

    def test_dynamic_cam_empty_mismatch_counts(self, filled_dynamic):
        counts, energy, latency = filled_dynamic.mismatch_counts_packed(
            np.zeros((0, 8), dtype=np.uint64))
        assert counts.shape == (0, 16)
        assert energy == 0.0 and latency == 0

    def test_cam_array_empty_topk_batch(self, filled_array):
        # k_eff still reflects the array (min(k, occupancy)), the batch
        # axis is 0, and no search is issued -- for any word count.
        for words in (1, 5, 9):
            result = filled_array.topk_packed(
                np.zeros((0, words), dtype=np.uint64), 3)
            assert result.indices.shape == (0, 3)
            assert result.distances.shape == (0, 3)
            assert result.energy_pj == 0.0
            assert result.latency_cycles == 0
            assert result.gathered_values == 0
        big = filled_array.topk_packed(np.zeros((0, 5), dtype=np.uint64), 999)
        assert big.indices.shape == (0, filled_array.occupancy)
        assert filled_array.search_count == 0

    def test_cam_array_zero_k_topk_is_free(self, filled_array, rng):
        queries = pack_bits(rng.integers(0, 2, size=(4, 300), dtype=np.uint8))
        result = filled_array.topk_packed(queries, 0)
        assert result.indices.shape == (4, 0)
        assert result.energy_pj == 0.0 and result.latency_cycles == 0
        assert filled_array.search_count == 0

    def test_dynamic_cam_empty_topk_batch(self, filled_dynamic):
        result = filled_dynamic.topk_packed(
            np.zeros((0, 8), dtype=np.uint64), 4)
        assert result.indices.shape == (0, 4)
        assert result.energy_pj == 0.0 and result.latency_cycles == 0


class TestPackedBatchSearch:
    """``search_batch_packed`` == ``search_batch`` on pre-packed queries."""

    def test_cam_array_packed_matches_bit_path(self, filled_array, rng):
        queries = rng.integers(0, 2, size=(9, 300), dtype=np.uint8)
        bit_result = filled_array.search_batch(queries)
        packed_result = filled_array.search_batch_packed(pack_bits(queries))
        assert np.array_equal(bit_result[0], packed_result[0])
        assert bit_result[1] == pytest.approx(packed_result[1])
        assert bit_result[2] == packed_result[2]

    def test_packed_path_counts_searches_and_energy(self, filled_array, rng):
        queries = pack_bits(rng.integers(0, 2, size=(4, 300), dtype=np.uint8))
        before = filled_array.search_count
        _, energy, latency = filled_array.search_batch_packed(queries)
        assert filled_array.search_count == before + 4
        assert energy == pytest.approx(4 * filled_array.search_energy_pj())
        assert latency == 4 * filled_array.search_latency_cycles

    def test_packed_word_count_is_validated(self, filled_array):
        with pytest.raises(ValueError, match="words"):
            filled_array.search_batch_packed(np.zeros((3, 4), dtype=np.uint64))

    def test_packed_matches_noisy_sense_amp_stream(self, rng):
        # The packed path must reuse the exact same sense-amp read-out, so
        # even a noisy amplifier yields identical results for identical
        # construction seeds.
        def build():
            array = CamArray(
                rows=12, word_bits=128,
                sense_amp=ClockedSelfReferencedSenseAmp(
                    word_bits=128, timing_noise_sigma_ps=40.0, seed=11))
            array.write_rows(stored)
            return array

        stored = rng.integers(0, 2, size=(12, 128), dtype=np.uint8)
        queries = rng.integers(0, 2, size=(6, 128), dtype=np.uint8)
        bit_result = build().search_batch(queries)
        packed_result = build().search_batch_packed(pack_bits(queries))
        assert np.array_equal(bit_result[0], packed_result[0])

    def test_dynamic_cam_packed_matches_bit_path(self, filled_dynamic, rng):
        queries = rng.integers(0, 2, size=(7, 512), dtype=np.uint8)
        bit_result = filled_dynamic.search_batch(queries)
        packed = pack_bits(queries)
        assert packed.shape[1] == 8  # active width 512 -> 8 words
        packed_result = filled_dynamic.search_batch_packed(packed)
        assert np.array_equal(bit_result[0], packed_result[0])
        assert bit_result[1] == pytest.approx(packed_result[1])
        assert bit_result[2] == packed_result[2]

    def test_dynamic_cam_packed_rejects_wrong_word_count(self, filled_dynamic):
        with pytest.raises(ValueError, match="active"):
            filled_dynamic.search_batch_packed(np.zeros((2, 16), dtype=np.uint64))

    def test_dynamic_cam_packed_energy_scales_with_active_fraction(self, rng):
        cam = DynamicCam(DynamicCamConfig(rows=8))
        cam.configure_word_bits(256)
        cam.write_rows(rng.integers(0, 2, size=(8, 256), dtype=np.uint8))
        queries = pack_bits(rng.integers(0, 2, size=(3, 256), dtype=np.uint8))
        _, energy, _ = cam.search_batch_packed(queries)
        full_energy = cam._array.search_energy_pj() * 3
        assert energy == pytest.approx(full_energy * 256 / 1024)
