"""Tests for the EvaCAM-style CAM overhead model (Fig. 8)."""

import pytest

from repro.cam.energy_model import CamEnergyModel, compare_technologies


class TestScaling:
    def test_energy_grows_with_rows(self):
        model = CamEnergyModel()
        assert model.search_energy_pj(512, 256) > model.search_energy_pj(64, 256)

    def test_energy_grows_with_word_bits(self):
        model = CamEnergyModel()
        assert model.search_energy_pj(64, 1024) > model.search_energy_pj(64, 256)

    def test_area_grows_with_both_dimensions(self):
        model = CamEnergyModel()
        assert model.area_um2(128, 256) > model.area_um2(64, 256)
        assert model.area_um2(64, 512) > model.area_um2(64, 256)

    def test_delay_grows_weakly_with_rows(self):
        model = CamEnergyModel()
        d64 = model.search_delay_ns(64, 256)
        d512 = model.search_delay_ns(512, 256)
        assert d512 > d64
        assert d512 / d64 < 2.0  # log-like, not linear

    def test_energy_roughly_linear_in_cells(self):
        model = CamEnergyModel()
        small = model.search_energy_pj(64, 256)
        quadrupled = model.search_energy_pj(256, 256)
        assert 3.0 < quadrupled / small < 5.0

    def test_leakage_scales_with_cells(self):
        model = CamEnergyModel()
        assert model.leakage_uw(128, 512) == pytest.approx(4 * model.leakage_uw(64, 256), rel=0.01)

    def test_invalid_geometry_rejected(self):
        model = CamEnergyModel()
        with pytest.raises(ValueError):
            model.search_energy_pj(0, 256)
        with pytest.raises(ValueError):
            model.area_um2(64, -1)


class TestSweep:
    def test_sweep_covers_all_combinations(self):
        model = CamEnergyModel()
        reports = model.sweep(row_sizes=(64, 128), word_sizes=(256, 512))
        assert len(reports) == 4
        assert {(r.rows, r.word_bits) for r in reports} == {(64, 256), (64, 512),
                                                            (128, 256), (128, 512)}

    def test_report_fields_consistent(self):
        report = CamEnergyModel().report(64, 256)
        assert report.energy_per_bit_fj == pytest.approx(
            report.search_energy_pj * 1e3 / (64 * 256))
        assert report.search_delay_ns > 0
        assert report.area_um2 > 0

    def test_default_sweep_matches_paper_grid(self):
        reports = CamEnergyModel().sweep()
        assert len(reports) == 16  # 4 row sizes x 4 word widths (Fig. 8 grid)


class TestTechnologyComparison:
    def test_fefet_beats_cmos_in_energy_and_area(self):
        comparison = compare_technologies(64, 256)
        assert comparison["fefet"].search_energy_pj < comparison["cmos"].search_energy_pj
        assert comparison["fefet"].area_um2 < comparison["cmos"].area_um2

    def test_fefet_cmos_ratios_close_to_cited_values(self):
        comparison = compare_technologies(256, 1024)
        energy_ratio = comparison["cmos"].search_energy_pj / comparison["fefet"].search_energy_pj
        area_ratio = comparison["cmos"].area_um2 / comparison["fefet"].area_um2
        # Cell-level ratios are 2.4x / 7.5x; macro-level ratios are diluted by
        # shared peripherals but must stay clearly above 1.
        assert 1.5 < energy_ratio <= 2.4 + 0.1
        assert 3.0 < area_ratio <= 7.5 + 0.1
