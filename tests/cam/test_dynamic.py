"""Tests for the dynamic-size (chunked) CAM."""

import numpy as np
import pytest

from repro.cam.dynamic import CHUNK_BITS, DynamicCam, DynamicCamConfig


def random_bits(rng, *shape):
    return rng.integers(0, 2, size=shape).astype(np.uint8)


class TestConfiguration:
    def test_default_geometry_matches_paper(self):
        config = DynamicCamConfig()
        assert config.chunk_bits == 256
        assert config.num_chunks == 4
        assert config.supported_word_bits == (256, 512, 768, 1024)

    def test_initial_width_is_one_chunk(self):
        cam = DynamicCam()
        assert cam.active_word_bits == CHUNK_BITS
        assert cam.active_chunks == 1

    def test_configure_word_bits(self):
        cam = DynamicCam()
        cam.configure_word_bits(768)
        assert cam.active_word_bits == 768
        assert cam.active_chunks == 3

    def test_configure_rejects_unsupported_width(self):
        cam = DynamicCam()
        with pytest.raises(ValueError):
            cam.configure_word_bits(300)

    def test_configure_for_hash_length_rounds_up(self):
        cam = DynamicCam()
        assert cam.configure_for_hash_length(257) == 512
        assert cam.configure_for_hash_length(1024) == 1024
        assert cam.configure_for_hash_length(100) == 256

    def test_configure_for_hash_length_rejects_oversize(self):
        cam = DynamicCam()
        with pytest.raises(ValueError):
            cam.configure_for_hash_length(1025)

    def test_reconfiguration_counts_and_energy(self):
        cam = DynamicCam()
        cam.configure_word_bits(1024)
        cam.configure_word_bits(1024)  # no-op
        cam.configure_word_bits(256)
        assert cam.reconfiguration_count == 2
        assert cam.reconfiguration_energy_pj > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DynamicCamConfig(rows=0)
        with pytest.raises(ValueError):
            DynamicCamConfig(max_word_bits=1000, chunk_bits=256)


class TestDataPath:
    def test_search_matches_exact_hamming_at_each_width(self, rng):
        for width in (256, 512, 768, 1024):
            cam = DynamicCam(DynamicCamConfig(rows=8))
            cam.configure_word_bits(width)
            stored = random_bits(rng, 8, width)
            cam.write_rows(stored)
            query = random_bits(rng, width)
            result = cam.search(query)
            expected = (stored != query).sum(axis=1)
            assert np.array_equal(result.distances, expected), f"width={width}"

    def test_write_rejects_data_wider_than_active_width(self, rng):
        cam = DynamicCam()
        with pytest.raises(ValueError):
            cam.write_row(0, random_bits(rng, 512))

    def test_search_rejects_query_wider_than_active_width(self, rng):
        cam = DynamicCam()
        with pytest.raises(ValueError):
            cam.search(random_bits(rng, 512))

    def test_search_energy_scales_with_active_chunks(self, rng):
        narrow = DynamicCam(DynamicCamConfig(rows=16))
        wide = DynamicCam(DynamicCamConfig(rows=16))
        narrow.configure_word_bits(256)
        wide.configure_word_bits(1024)
        narrow.write_rows(random_bits(rng, 16, 256))
        wide.write_rows(random_bits(rng, 16, 1024))
        narrow_energy = narrow.search(random_bits(rng, 256)).energy_pj
        wide_energy = wide.search(random_bits(rng, 1024)).energy_pj
        assert wide_energy > 2 * narrow_energy

    def test_search_batch(self, rng):
        cam = DynamicCam(DynamicCamConfig(rows=8))
        cam.configure_word_bits(512)
        cam.write_rows(random_bits(rng, 8, 512))
        queries = random_bits(rng, 3, 512)
        distances, energy, latency = cam.search_batch(queries)
        assert distances.shape == (3, 8)
        assert energy > 0
        assert latency == 3 * cam.config.search_latency_cycles

    def test_clear_and_occupancy(self, rng):
        cam = DynamicCam(DynamicCamConfig(rows=4))
        cam.write_rows(random_bits(rng, 2, 256))
        assert cam.occupancy == 2
        assert cam.utilization == pytest.approx(0.5)
        cam.clear()
        assert cam.occupancy == 0

    def test_area_includes_transmission_gates(self):
        chunked = DynamicCam(DynamicCamConfig(rows=64))
        assert chunked.area_um2() > 0
        # More rows -> more gates -> more area.
        bigger = DynamicCam(DynamicCamConfig(rows=512))
        assert bigger.area_um2() > chunked.area_um2()
