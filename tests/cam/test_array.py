"""Tests for the CAM array functional model."""

import numpy as np
import pytest

from repro.cam.array import CamArray
from repro.cam.cell import CMOS_TCAM_CELL, FEFET_CAM_CELL


def random_bits(rng, *shape):
    return rng.integers(0, 2, size=shape).astype(np.uint8)


class TestStorage:
    def test_write_and_read_roundtrip(self, rng):
        cam = CamArray(rows=8, word_bits=64)
        bits = random_bits(rng, 64)
        cam.write_row(3, bits)
        assert np.array_equal(cam.read_row(3), bits)

    def test_occupancy_and_utilization(self, rng):
        cam = CamArray(rows=10, word_bits=32)
        cam.write_rows(random_bits(rng, 4, 32))
        assert cam.occupancy == 4
        assert cam.utilization == pytest.approx(0.4)

    def test_clear_resets_contents(self, rng):
        cam = CamArray(rows=4, word_bits=16)
        cam.write_rows(random_bits(rng, 4, 16))
        cam.clear()
        assert cam.occupancy == 0
        with pytest.raises(ValueError):
            cam.read_row(0)

    def test_write_bounds_checked(self, rng):
        cam = CamArray(rows=4, word_bits=16)
        with pytest.raises(IndexError):
            cam.write_row(4, random_bits(rng, 16))
        with pytest.raises(ValueError):
            cam.write_row(0, random_bits(rng, 15))
        with pytest.raises(ValueError):
            cam.write_row(0, np.full(16, 2, dtype=np.uint8))
        with pytest.raises(ValueError):
            cam.write_rows(random_bits(rng, 3, 16), start_row=2)

    def test_write_energy_accumulates(self, rng):
        cam = CamArray(rows=4, word_bits=16)
        energy = cam.write_row(0, random_bits(rng, 16))
        assert energy > 0
        cam.write_row(1, random_bits(rng, 16))
        assert cam.accumulated_write_energy_pj == pytest.approx(2 * energy)


class TestSearch:
    def test_distances_match_exact_hamming(self, rng):
        cam = CamArray(rows=16, word_bits=128)
        stored = random_bits(rng, 16, 128)
        cam.write_rows(stored)
        query = random_bits(rng, 128)
        result = cam.search(query)
        expected = (stored != query).sum(axis=1)
        assert np.array_equal(result.distances, expected)
        assert np.array_equal(result.true_distances, expected)

    def test_unpopulated_rows_report_minus_one(self, rng):
        cam = CamArray(rows=8, word_bits=32)
        cam.write_rows(random_bits(rng, 3, 32))
        result = cam.search(random_bits(rng, 32))
        assert np.all(result.distances[3:] == -1)

    def test_exact_match_detection(self, rng):
        cam = CamArray(rows=4, word_bits=64)
        stored = random_bits(rng, 4, 64)
        cam.write_rows(stored)
        result = cam.search(stored[2])
        assert 2 in result.matched_rows

    def test_search_energy_scales_with_occupancy(self, rng):
        sparse = CamArray(rows=64, word_bits=256)
        dense = CamArray(rows=64, word_bits=256)
        sparse.write_rows(random_bits(rng, 8, 256))
        dense.write_rows(random_bits(rng, 64, 256))
        assert dense.search_energy_pj() > sparse.search_energy_pj()

    def test_fefet_search_cheaper_than_cmos(self, rng):
        fefet = CamArray(rows=32, word_bits=256, cell=FEFET_CAM_CELL)
        cmos = CamArray(rows=32, word_bits=256, cell=CMOS_TCAM_CELL)
        bits = random_bits(rng, 32, 256)
        fefet.write_rows(bits)
        cmos.write_rows(bits)
        assert fefet.search_energy_pj() < cmos.search_energy_pj()

    def test_search_validates_query(self, rng):
        cam = CamArray(rows=4, word_bits=32)
        with pytest.raises(ValueError):
            cam.search(random_bits(rng, 31))
        with pytest.raises(ValueError):
            cam.search(np.full(32, 3, dtype=np.uint8))

    def test_search_batch_accumulates_energy_and_latency(self, rng):
        cam = CamArray(rows=8, word_bits=64)
        cam.write_rows(random_bits(rng, 8, 64))
        queries = random_bits(rng, 5, 64)
        distances, energy, latency = cam.search_batch(queries)
        assert distances.shape == (5, 8)
        assert energy == pytest.approx(5 * cam.search_energy_pj())
        assert latency == 5 * cam.search_latency_cycles
        assert cam.search_count == 5

    def test_debug_validate_recheck_is_transparent(self, rng):
        plain = CamArray(rows=8, word_bits=64)
        checked = CamArray(rows=8, word_bits=64, debug_validate=True)
        stored = random_bits(rng, 8, 64)
        plain.write_rows(stored)
        checked.write_rows(stored)
        query = random_bits(rng, 64)
        assert np.array_equal(plain.search(query).distances,
                              checked.search(query).distances)

    def test_debug_validate_detects_padding_corruption(self, rng):
        # A stray bit in the zero-padded tail of a storage word is the one
        # corruption that skews every search; the debug recheck must fire.
        cam = CamArray(rows=4, word_bits=48, debug_validate=True)
        cam.write_rows(random_bits(rng, 4, 48))
        cam._storage[1, 0] |= np.uint64(1) << np.uint64(50)
        with pytest.raises(AssertionError, match="padding"):
            cam.search(random_bits(rng, 48))

    def test_packed_storage_is_readonly(self, rng):
        cam = CamArray(rows=4, word_bits=64)
        cam.write_rows(random_bits(rng, 4, 64))
        view = cam.packed_storage
        assert view.shape == (4, 1)
        with pytest.raises(ValueError):
            view[0] = 0

    def test_write_rows_rejects_non_binary_block(self, rng):
        cam = CamArray(rows=4, word_bits=16)
        with pytest.raises(ValueError):
            cam.write_rows(np.full((2, 16), 2, dtype=np.uint8))

    def test_write_rows_empty_block_is_noop(self):
        cam = CamArray(rows=4, word_bits=16)
        assert cam.write_rows(np.empty((0, 16), dtype=np.uint8)) == 0.0
        assert cam.occupancy == 0

    def test_area_scales_with_cells(self):
        small = CamArray(rows=16, word_bits=256).area_um2()
        big = CamArray(rows=64, word_bits=256).area_um2()
        assert big == pytest.approx(4 * small)

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            CamArray(rows=0, word_bits=64)
        with pytest.raises(ValueError):
            CamArray(rows=4, word_bits=0)
        with pytest.raises(ValueError):
            CamArray(rows=4, word_bits=64, peripheral_energy_factor=0.5)
