"""Tests for the report formatting helpers."""

import pytest

from repro.evaluation.reporting import format_table, series_to_rows


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 7]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert "1.235" in text
        assert "bb" in text

    def test_column_alignment(self):
        text = format_table(["x"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2])  # separator matches width

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_no_title(self):
        text = format_table(["a"], [[1]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].strip() == "a"


class TestSeriesToRows:
    def test_roundtrip(self):
        series = {64: {"energy": 1.0, "area": 2.0}, 128: {"energy": 3.0, "area": 4.0}}
        headers, rows = series_to_rows(series, key_header="rows")
        assert headers == ["rows", "energy", "area"]
        assert rows[0] == [64, 1.0, 2.0]
        assert rows[1] == [128, 3.0, 4.0]

    def test_empty_series(self):
        headers, rows = series_to_rows({})
        assert headers == ["key"]
        assert rows == []

    def test_feeds_format_table(self):
        series = {"a": {"v": 1}, "b": {"v": 2}}
        headers, rows = series_to_rows(series)
        assert "v" in format_table(headers, rows)
