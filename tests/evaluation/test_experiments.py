"""Tests for the experiment runners (fast subsets).

The slow accuracy experiment (Fig. 5) is exercised end-to-end in the
integration tests and the benchmark harness; here only its fast path is
checked so the unit suite stays quick.
"""

import pytest

from repro.core.config import Dataflow, DeepCAMConfig
from repro.evaluation.experiments import (
    PAPER_EXAMPLE_X,
    PAPER_EXAMPLE_Y,
    default_vhl_profile,
    run_fig2_dot_product_sweep,
    run_fig8_cam_overhead,
    run_fig9_cycles,
    run_fig10_energy,
    run_headline_claims,
    run_table1_setup,
    run_table2_pim_comparison,
)
from repro.workloads.specs import vgg16_trace


class TestFig2:
    def test_error_decreases_with_hash_length(self):
        sweep = run_fig2_dot_product_sweep(hash_lengths=(64, 2048),
                                           seeds=tuple(range(10)),
                                           use_exact_cosine=True)
        assert sweep[2048]["mean_relative_error"] < sweep[64]["mean_relative_error"]

    def test_reference_matches_paper_value(self):
        sweep = run_fig2_dot_product_sweep(hash_lengths=(256,), seeds=(0,))
        assert sweep[256]["reference"] == pytest.approx(2.0765, abs=1e-3)

    def test_paper_example_vectors_have_four_elements(self):
        assert len(PAPER_EXAMPLE_X) == len(PAPER_EXAMPLE_Y) == 4


class TestFig8:
    def test_sweep_grid_and_ratios(self):
        result = run_fig8_cam_overhead()
        assert len(result["sweep"]) == 16
        assert result["fefet_vs_cmos_energy_ratio"] > 1.5
        assert result["fefet_vs_cmos_area_ratio"] > 3.0

    def test_energy_monotone_in_word_width(self):
        result = run_fig8_cam_overhead(row_sizes=(64,), word_sizes=(256, 512, 768, 1024))
        energies = [r.search_energy_pj for r in result["sweep"]]
        assert energies == sorted(energies)


class TestVHLProfile:
    def test_profile_covers_all_layers_with_supported_lengths(self):
        trace = vgg16_trace()
        profile = default_vhl_profile(trace)
        assert set(profile) == {layer.name for layer in trace}
        assert set(profile.values()).issubset({256, 512, 768, 1024})

    def test_longer_contexts_get_longer_hashes(self):
        trace = vgg16_trace()
        profile = default_vhl_profile(trace)
        assert profile["conv1"] <= profile["conv13"]


class TestFig9:
    def test_deepcam_beats_eyeriss_and_cpu_everywhere(self):
        rows = run_fig9_cycles(cam_rows=64)
        assert len(rows) == 4
        for row in rows:
            assert row.speedup_vs_eyeriss_as > 1.0
            assert row.speedup_vs_cpu_as > 1.0

    def test_lenet_activation_stationary_beats_weight_stationary(self):
        rows = run_fig9_cycles(cam_rows=64, networks=("lenet5",))
        lenet = rows[0]
        assert lenet.deepcam_as_cycles <= lenet.deepcam_ws_cycles
        assert lenet.deepcam_as_utilization >= lenet.deepcam_ws_utilization

    def test_more_rows_reduce_deepcam_cycles(self):
        small = run_fig9_cycles(cam_rows=64, networks=("resnet18",))[0]
        large = run_fig9_cycles(cam_rows=512, networks=("resnet18",))[0]
        assert large.deepcam_as_cycles < small.deepcam_as_cycles


class TestFig10:
    def test_normalisation_ordering(self):
        rows = run_fig10_energy(cam_rows_list=(64,), networks=("lenet5", "vgg11"),
                                dataflows=(Dataflow.ACTIVATION_STATIONARY,))
        for row in rows:
            assert row.vhl_normalized >= 1.0 - 1e-9          # VHL never cheaper than all-256
            assert row.max_normalized >= row.vhl_normalized  # Max DeepCAM is the ceiling
            assert row.energy_reduction_vs_eyeriss > 1.0     # DeepCAM beats Eyeriss

    def test_row_and_dataflow_grid(self):
        rows = run_fig10_energy(cam_rows_list=(64, 512), networks=("lenet5",))
        assert len(rows) == 4  # 2 row counts x 2 dataflows


class TestTables:
    def test_table1_mentions_all_platforms(self):
        table = run_table1_setup()
        assert any("Eyeriss" in row["systolic"] for row in table)
        assert any("FeFET" in row["deepcam"] for row in table)
        assert any("lenet5" in row["cpu"] for row in table)

    def test_table2_qualitative_claims(self):
        rows = run_table2_pim_comparison(cam_rows=64)
        by_work = {row.work: row for row in rows}
        deepcam = by_work["DeepCAM (ours)"]
        neurosim = by_work["NeuroSim"]
        valavi = by_work["Valavi et al."]
        # DeepCAM is the most energy-efficient of the three (paper: 71.7x and
        # 7.27x better), and needs fewer cycles than the RRAM design.
        assert deepcam.energy_uj < valavi.energy_uj < neurosim.energy_uj
        assert deepcam.cycles < neurosim.cycles
        assert deepcam.dot_product_mode == "Geometric"
        # Paper reference numbers are carried for the report.
        assert neurosim.paper_energy_uj == pytest.approx(34.98)
        assert deepcam.paper_cycles == pytest.approx(2.652e5)


class TestHeadlineClaims:
    def test_directions_of_all_claims(self):
        claims = run_headline_claims(cam_rows=64)
        assert claims["max_speedup_vs_eyeriss"] > 10
        assert claims["max_speedup_vs_cpu"] > 10
        assert claims["min_energy_reduction_vs_eyeriss"] > 1.0
        assert claims["max_energy_reduction_vs_eyeriss"] > claims["min_energy_reduction_vs_eyeriss"]
        # The speedup over the CPU exceeds the speedup over Eyeriss for the
        # large networks, as in the paper's abstract.
        assert claims["max_speedup_vs_cpu"] > claims["resnet18_speedup_vs_eyeriss"]
