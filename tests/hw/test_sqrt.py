"""Tests for the non-restoring digital square-root module."""

import math

import pytest

from repro.hw.sqrt import DigitalSquareRoot


class TestIntegerSqrt:
    @pytest.mark.parametrize("radicand", [0, 1, 2, 3, 4, 15, 16, 17, 255, 256, 1000, 65535])
    def test_matches_floor_sqrt(self, radicand):
        unit = DigitalSquareRoot(radicand_bits=16, fraction_bits=0)
        assert unit.isqrt(radicand).value == math.isqrt(radicand)

    def test_exact_flag_for_perfect_squares(self):
        unit = DigitalSquareRoot(radicand_bits=16, fraction_bits=0)
        assert unit.isqrt(144).exact is True
        assert unit.isqrt(145).exact is False

    def test_rejects_negative_radicand(self):
        with pytest.raises(ValueError):
            DigitalSquareRoot().isqrt(-1)

    def test_rejects_out_of_range_radicand(self):
        unit = DigitalSquareRoot(radicand_bits=8, fraction_bits=0)
        with pytest.raises(ValueError):
            unit.isqrt(256)

    def test_iterations_is_half_the_width(self):
        unit = DigitalSquareRoot(radicand_bits=16, fraction_bits=0)
        assert unit.isqrt(1000).iterations == 8


class TestFractionalSqrt:
    @pytest.mark.parametrize("value", [0.0, 0.25, 1.0, 2.0, 7.3, 100.0, 4095.9])
    def test_relative_error_small(self, value):
        unit = DigitalSquareRoot(radicand_bits=16, fraction_bits=6)
        assert unit.relative_error(value) < 0.02

    def test_more_fraction_bits_reduce_error(self):
        coarse = DigitalSquareRoot(radicand_bits=16, fraction_bits=1)
        fine = DigitalSquareRoot(radicand_bits=16, fraction_bits=8)
        value = 7.7
        assert fine.relative_error(value) <= coarse.relative_error(value)

    def test_zero_input(self):
        assert DigitalSquareRoot().sqrt(0.0).value == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DigitalSquareRoot().sqrt(-0.5)


class TestCostModel:
    def test_latency_includes_fraction_iterations(self):
        base = DigitalSquareRoot(radicand_bits=16, fraction_bits=0)
        extended = DigitalSquareRoot(radicand_bits=16, fraction_bits=4)
        assert extended.iterations_per_op == base.iterations_per_op + 4

    def test_hardware_cost_positive(self):
        cost = DigitalSquareRoot().hardware_cost()
        assert cost.energy_pj > 0
        assert cost.area_um2 > 0
        assert cost.latency_cycles == DigitalSquareRoot().iterations_per_op

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DigitalSquareRoot(radicand_bits=0)
        with pytest.raises(ValueError):
            DigitalSquareRoot(fraction_bits=-1)
