"""Tests for the adder-tree model."""

import numpy as np
import pytest

from repro.hw.adder_tree import AdderTree


class TestStructure:
    def test_depth_is_log2_of_inputs(self):
        assert AdderTree(8).depth == 3
        assert AdderTree(9).depth == 4
        assert AdderTree(2).depth == 1

    def test_num_adders(self):
        assert AdderTree(8).num_adders == 7
        assert AdderTree(32).num_adders == 31

    def test_rejects_fewer_than_two_inputs(self):
        with pytest.raises(ValueError):
            AdderTree(1)

    def test_stage_widths_grow_by_one_bit(self):
        tree = AdderTree(8, input_bits=16)
        assert tree.stage_widths() == [17, 18, 19]

    def test_hardware_cost_latency_equals_depth(self):
        tree = AdderTree(16)
        assert tree.hardware_cost().latency_cycles == tree.depth


class TestReduction:
    def test_exact_sum(self, rng):
        tree = AdderTree(16)
        values = rng.uniform(0, 10, size=16)
        assert tree.reduce(values).value == pytest.approx(values.sum())

    def test_sum_with_padding(self, rng):
        tree = AdderTree(16)
        values = rng.uniform(0, 10, size=11)
        assert tree.reduce(values).value == pytest.approx(values.sum())

    def test_multi_pass_sum(self, rng):
        tree = AdderTree(8)
        values = rng.uniform(0, 5, size=50)
        report = tree.reduce(values)
        assert report.value == pytest.approx(values.sum())
        # 50 leaves over 8-input tree -> 7 passes, extra accumulate adds.
        assert report.adders_used > tree.num_adders

    def test_empty_input_gives_zero(self):
        report = AdderTree(8).reduce([])
        assert report.value == 0.0
        assert report.energy_pj == 0.0

    def test_energy_grows_with_passes(self, rng):
        tree = AdderTree(8)
        small = tree.reduce(rng.uniform(0, 1, size=8)).energy_pj
        large = tree.reduce(rng.uniform(0, 1, size=64)).energy_pj
        assert large > small

    def test_truncation_floors_partial_sums(self):
        tree = AdderTree(4)
        report = tree.reduce([1.9, 1.9, 1.9, 1.9], truncate_bits=8)
        # Each pairwise sum 3.8 is floored to 3, final 6.
        assert report.value == pytest.approx(6.0)


class TestSumOfSquares:
    def test_matches_numpy(self, rng):
        tree = AdderTree(32)
        values = rng.normal(0, 2, size=32)
        report = tree.sum_of_squares(values)
        assert report.value == pytest.approx(float(np.sum(values ** 2)))

    def test_includes_multiplier_energy(self, rng):
        tree = AdderTree(16)
        values = rng.normal(0, 1, size=16)
        squares_energy = tree.sum_of_squares(values).energy_pj
        plain_energy = tree.reduce(values ** 2).energy_pj
        assert squares_energy > plain_energy
