"""Tests for the 45 nm cost library."""

import math

import pytest

from repro.hw.components import (
    ComponentCost,
    CostLibrary,
    DEFAULT_COST_LIBRARY,
    TechnologyNode,
    energy_of_mac_sweep,
)


class TestTechnologyNode:
    def test_default_is_45nm_300mhz(self):
        node = TechnologyNode()
        assert node.feature_nm == 45.0
        assert node.frequency_hz == 300e6

    def test_cycle_time(self):
        node = TechnologyNode(frequency_hz=300e6)
        assert node.cycle_time_s == pytest.approx(1.0 / 300e6)

    def test_scaled_to_changes_name_and_geometry(self):
        node = TechnologyNode().scaled_to(22.0)
        assert node.feature_nm == 22.0
        assert "22" in node.name

    def test_scaled_to_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TechnologyNode().scaled_to(0.0)


class TestComponentCost:
    def test_scaled_multiplies_energy_and_area(self):
        cost = ComponentCost(energy_pj=1.0, area_um2=10.0, latency_cycles=1.0)
        scaled = cost.scaled(energy=2.0, area=3.0)
        assert scaled.energy_pj == pytest.approx(2.0)
        assert scaled.area_um2 == pytest.approx(30.0)

    def test_addition_sums_fields(self):
        a = ComponentCost(energy_pj=1.0, area_um2=2.0, latency_cycles=1.0)
        b = ComponentCost(energy_pj=0.5, area_um2=1.0, latency_cycles=2.0)
        total = a + b
        assert total.energy_pj == pytest.approx(1.5)
        assert total.area_um2 == pytest.approx(3.0)
        assert total.latency_cycles == pytest.approx(3.0)


class TestCostLibrary:
    def test_contains_core_operations(self):
        for name in ("int8_mac", "int8_add", "int8_mult", "sram_read_8b",
                     "dram_read_8b", "cosine_pwl", "sign_sense_amp"):
            assert name in DEFAULT_COST_LIBRARY

    def test_unknown_operation_raises_keyerror_with_hint(self):
        with pytest.raises(KeyError):
            DEFAULT_COST_LIBRARY.get("int8_divide")

    def test_energy_scales_with_count(self):
        unit = DEFAULT_COST_LIBRARY.energy_pj("int8_mac", 1)
        assert DEFAULT_COST_LIBRARY.energy_pj("int8_mac", 10) == pytest.approx(10 * unit)

    def test_mac_cheaper_than_sram_cheaper_than_dram(self):
        # The memory-hierarchy ordering the paper's introduction quotes.
        mac = DEFAULT_COST_LIBRARY.get("int8_mac").energy_pj
        sram = DEFAULT_COST_LIBRARY.get("sram_read_8b").energy_pj
        dram = DEFAULT_COST_LIBRARY.get("dram_read_8b").energy_pj
        assert mac < sram < dram
        assert sram / mac > 3.0
        assert dram / mac > 100.0

    def test_adder_scales_linearly(self):
        lib = DEFAULT_COST_LIBRARY
        assert lib.adder(16).energy_pj == pytest.approx(2 * lib.adder(8).energy_pj)

    def test_multiplier_scales_quadratically(self):
        lib = DEFAULT_COST_LIBRARY
        assert lib.multiplier(16).energy_pj == pytest.approx(4 * lib.multiplier(8).energy_pj)

    def test_adder_and_multiplier_reject_non_positive_width(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_LIBRARY.adder(0)
        with pytest.raises(ValueError):
            DEFAULT_COST_LIBRARY.multiplier(-8)

    def test_with_override_does_not_mutate_original(self):
        new_cost = ComponentCost(energy_pj=99.0, area_um2=1.0)
        lib = DEFAULT_COST_LIBRARY.with_override(int8_mac=new_cost)
        assert lib.get("int8_mac").energy_pj == 99.0
        assert DEFAULT_COST_LIBRARY.get("int8_mac").energy_pj != 99.0

    def test_scaled_to_node_reduces_energy_and_area(self):
        scaled = DEFAULT_COST_LIBRARY.scaled_to_node(22.5)
        assert scaled.get("int8_mac").energy_pj < DEFAULT_COST_LIBRARY.get("int8_mac").energy_pj
        assert scaled.get("int8_mac").area_um2 < DEFAULT_COST_LIBRARY.get("int8_mac").area_um2

    def test_sram_access_scales_with_bits(self):
        lib = DEFAULT_COST_LIBRARY
        assert lib.sram_access(64).energy_pj == pytest.approx(8 * lib.sram_access(8).energy_pj)

    def test_summary_lists_all_entries(self):
        text = DEFAULT_COST_LIBRARY.summary()
        assert "int8_mac" in text
        assert len(text.splitlines()) >= len(DEFAULT_COST_LIBRARY) + 2

    def test_len_and_iteration_sorted(self):
        names = list(DEFAULT_COST_LIBRARY)
        assert len(names) == len(DEFAULT_COST_LIBRARY)
        assert names == sorted(names)


class TestMacSweep:
    def test_mac_energy_increases_with_width(self):
        sweep = energy_of_mac_sweep((4, 8, 16, 32))
        values = [sweep[b] for b in (4, 8, 16, 32)]
        assert values == sorted(values)
        assert all(v > 0 for v in values)
