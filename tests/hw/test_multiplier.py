"""Tests for the fixed-point and minifloat multipliers."""

import numpy as np
import pytest

from repro.core.minifloat import MINIFLOAT8
from repro.hw.multiplier import FixedPointMultiplier, MinifloatMultiplier


class TestFixedPointMultiplier:
    def test_exact_product_on_grid(self):
        mult = FixedPointMultiplier(word_bits=16, fraction_bits=8)
        result = mult.multiply(2.0, 3.0)
        assert result.value == pytest.approx(6.0)
        assert not result.saturated

    def test_quantize_rounds_to_grid(self):
        mult = FixedPointMultiplier(word_bits=16, fraction_bits=8)
        assert mult.quantize(1.0 / 512) in (0.0, 1.0 / 256)

    def test_saturation_flag(self):
        mult = FixedPointMultiplier(word_bits=8, fraction_bits=2)
        result = mult.multiply(30.0, 30.0)
        assert result.saturated
        assert result.value <= mult.max_value

    def test_negative_operands(self):
        mult = FixedPointMultiplier(word_bits=16, fraction_bits=8)
        assert mult.multiply(-2.0, 3.0).value == pytest.approx(-6.0)

    def test_multiply_array_matches_scalar(self, rng):
        mult = FixedPointMultiplier(word_bits=16, fraction_bits=8)
        a = rng.uniform(-5, 5, size=16)
        b = rng.uniform(-5, 5, size=16)
        products, energy = mult.multiply_array(a, b)
        scalar = np.array([mult.multiply(x, y).value for x, y in zip(a, b)])
        assert np.allclose(products, scalar)
        assert energy == pytest.approx(mult.hardware_cost().energy_pj * 16)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            FixedPointMultiplier(word_bits=1)
        with pytest.raises(ValueError):
            FixedPointMultiplier(word_bits=8, fraction_bits=8)

    def test_quantization_error_bounded_by_half_lsb(self, rng):
        mult = FixedPointMultiplier(word_bits=16, fraction_bits=10)
        values = rng.uniform(-10, 10, size=100)
        for value in values:
            assert abs(mult.quantize(value) - value) <= mult.scale / 2 + 1e-12


class TestMinifloatMultiplier:
    def test_product_close_to_exact(self, rng):
        mult = MinifloatMultiplier(MINIFLOAT8)
        for _ in range(20):
            a = float(rng.uniform(0.1, 100.0))
            b = float(rng.uniform(0.1, 100.0))
            result = mult.multiply(a, b)
            if not result.saturated:
                assert result.value == pytest.approx(a * b, rel=0.20)

    def test_saturation_on_overflow(self):
        mult = MinifloatMultiplier(MINIFLOAT8)
        result = mult.multiply(MINIFLOAT8.max_value, MINIFLOAT8.max_value)
        assert result.saturated
        assert result.value <= MINIFLOAT8.max_value

    def test_energy_cheaper_than_fp32_style_multiplier(self):
        mini = MinifloatMultiplier().hardware_cost().energy_pj
        fixed = FixedPointMultiplier(word_bits=32).hardware_cost().energy_pj
        assert mini < fixed

    def test_multiply_array_shape_and_energy(self, rng):
        mult = MinifloatMultiplier()
        a = rng.uniform(0.5, 4.0, size=(3, 4))
        b = rng.uniform(0.5, 4.0, size=(3, 4))
        products, energy = mult.multiply_array(a, b)
        assert products.shape == (3, 4)
        assert energy > 0
