"""Tests for the piecewise-linear cosine unit (Eq. 5)."""

import math

import numpy as np
import pytest

from repro.hw.cosine_unit import CosineUnit


class TestPiecewiseValues:
    def test_segment_boundaries_follow_eq5(self):
        unit = CosineUnit()
        # Low segment: 1 - theta/pi.
        assert unit(0.0) == pytest.approx(1.0)
        assert unit(math.pi / 4) == pytest.approx(1 - 0.25)
        # Middle segment: -0.96*theta + 1.51.
        theta = math.pi / 2.5  # between pi/3 and pi/2
        assert unit(theta) == pytest.approx(-0.96 * theta + 1.51)
        # Obtuse fold: cos(theta) = -cos(pi - theta).
        assert unit(3 * math.pi / 4) == pytest.approx(-unit(math.pi / 4))

    def test_orthogonal_vectors_give_near_zero(self):
        unit = CosineUnit()
        assert abs(unit(math.pi / 2)) < 0.01

    def test_pi_gives_minus_one(self):
        assert CosineUnit()(math.pi) == pytest.approx(-1.0)

    def test_scalar_in_scalar_out(self):
        result = CosineUnit()(0.3)
        assert isinstance(result, float)

    def test_array_in_array_out(self):
        angles = np.linspace(0, math.pi, 11)
        result = CosineUnit()(angles)
        assert isinstance(result, np.ndarray)
        assert result.shape == angles.shape

    def test_rejects_out_of_range_angles(self):
        with pytest.raises(ValueError):
            CosineUnit()(-0.5)
        with pytest.raises(ValueError):
            CosineUnit()(math.pi + 0.5)

    def test_monotonically_decreasing(self):
        angles = np.linspace(0, math.pi, 200)
        values = CosineUnit()(angles)
        assert np.all(np.diff(values) <= 1e-12)


class TestErrorAgainstExactCosine:
    def test_max_error_is_bounded(self):
        stats = CosineUnit().error_stats()
        # Eq. 5 is deliberately crude: its worst error (at theta = pi/3,
        # where the first segment gives 2/3 against cos = 1/2) is 1/6.
        assert stats.max_abs_error == pytest.approx(1.0 / 6.0, abs=5e-3)
        assert stats.mean_abs_error < 0.05
        assert stats.rmse <= stats.max_abs_error

    def test_exact_mode_has_zero_error(self):
        unit = CosineUnit(use_exact=True)
        angles = np.linspace(0, math.pi, 50)
        assert np.allclose(unit(angles), np.cos(angles))

    def test_error_stats_needs_two_points(self):
        with pytest.raises(ValueError):
            CosineUnit().error_stats(num_points=1)


class TestCost:
    def test_pwl_cheaper_than_cordic(self):
        pwl = CosineUnit(use_exact=False).hardware_cost()
        cordic = CosineUnit(use_exact=True).hardware_cost()
        assert pwl.energy_pj < cordic.energy_pj
        assert pwl.latency_cycles < cordic.latency_cycles
