"""Concurrency stress: mixed classify + top-k traffic from many threads.

One server (multiple workers, shared cache) is hammered from N submitter
threads, each interleaving classification requests with top-k requests at
its own ``k``.  Every response must be bit-identical to direct execution on
an identically-built reference engine -- batching, grouping-by-k, caching
and replica routing may change *when* work happens, never *what* comes
back.  Extends the ``tests/serve/test_acceptance.py`` pattern to the
mixed-kind queue.
"""

import threading

import numpy as np
import pytest

from repro.serve import MicroBatchServer, ServeConfig, build_demo_engine
from repro.shard import build_demo_sharded_engine

GEOM = dict(classes=20, input_dim=24, hash_length=128)
NUM_THREADS = 6
REQUESTS_PER_THREAD = 30


def reference_answers(queries, k):
    """Direct (unserved, unsharded) execution of both request kinds."""
    engine = build_demo_engine(**GEOM)
    prepared = engine.prepare(queries)
    return engine.execute(prepared), engine.execute_topk(prepared, k)


@pytest.mark.parametrize("build_engine", [
    pytest.param(lambda: build_demo_engine(**GEOM), id="single_array"),
    pytest.param(lambda: build_demo_sharded_engine(
        **GEOM, num_shards=4, num_replicas=2, routing="least_loaded"),
        id="sharded_cluster"),
])
def test_mixed_traffic_from_many_threads_matches_direct(build_engine):
    server = MicroBatchServer(
        build_engine(),
        config=ServeConfig(max_batch=16, max_wait_ms=2.0, num_workers=3,
                           queue_depth=512, cache_capacity=256))
    per_thread = {}
    for thread_id in range(NUM_THREADS):
        rng = np.random.default_rng(100 + thread_id)
        queries = rng.standard_normal((REQUESTS_PER_THREAD,
                                       GEOM["input_dim"]))
        k = 2 + thread_id % 4  # several distinct k groups per batch
        per_thread[thread_id] = (queries, k, *reference_answers(queries, k))

    results = {}
    errors = []

    def hammer(thread_id):
        queries, k, _, _ = per_thread[thread_id]
        try:
            futures = []
            for index, query in enumerate(queries):
                if index % 2 == 0:
                    futures.append(("classify", server.submit(query)))
                else:
                    futures.append(("topk", server.submit_topk(query, k)))
            results[thread_id] = [(kind, future.result(60))
                                  for kind, future in futures]
        except Exception as error:  # noqa: BLE001 -- surfaced after join
            errors.append((thread_id, error))

    with server:
        threads = [threading.Thread(target=hammer, args=(thread_id,))
                   for thread_id in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not errors, errors
    for thread_id, answers in results.items():
        queries, k, expected_logits, expected_topk = per_thread[thread_id]
        for index, (kind, row) in enumerate(answers):
            if kind == "classify":
                assert np.array_equal(row, expected_logits[index]), (
                    f"thread {thread_id} request {index}: classify response "
                    f"diverged from direct execution")
            else:
                assert np.array_equal(row, expected_topk[index]), (
                    f"thread {thread_id} request {index}: top-k response "
                    f"diverged from direct execution")
