"""Property tests: the native top-k path is a full-sort, bit for bit.

The retrieval contract is that ``topk_packed`` -- on a single array, a
dynamic CAM, or the sharded cluster's partial gather -- returns exactly
what a caller would get by running the full search and sorting the sensed
distance matrix: same row indices, same distances, for any geometry.
These properties pin that across randomly drawn row counts, partial
population, k (including ``k = 0`` and ``k >= rows``), shard counts, both
placement policies, both fan-out modes, replicas and noisy seeded sense
amplifiers.  The in-test oracle is an independent per-query ``lexsort``
over the full search output, not the library's own selection code.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bitops import pack_bits
from repro.cam.array import CamArray
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp
from repro.shard import ShardedCamPipeline

WORD_BITS = 128


def lexsort_reference(distances: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-query full-sort oracle: ascending (distance, row id), -1 excluded.

    Deliberately written as a plain per-row ``np.lexsort`` loop so it
    shares no code with ``select_topk`` / ``full_sort_topk``.
    """
    indices, values = [], []
    k_eff = None
    for row in distances:
        ids = np.nonzero(row >= 0)[0]
        order = np.lexsort((ids, row[ids]))
        k_eff = min(k, ids.size)
        indices.append(ids[order[:k_eff]])
        values.append(row[ids][order[:k_eff]])
    width = 0 if k_eff is None else k_eff
    return (np.asarray(indices, dtype=np.int64).reshape(len(indices), width),
            np.asarray(values, dtype=np.int64).reshape(len(values), width))


def build_amp(noise_sigma_ps: float, seed: int) -> ClockedSelfReferencedSenseAmp:
    return ClockedSelfReferencedSenseAmp(
        word_bits=WORD_BITS, timing_noise_sigma_ps=noise_sigma_ps,
        seed=seed + 1)


class TestTopKEquivalence:
    @given(data=st.data(),
           rows=st.integers(1, 32),
           policy=st.sampled_from(["contiguous", "strided"]),
           fanout=st.sampled_from(["fused", "ports"]),
           replicas=st.integers(1, 2),
           noisy=st.booleans(),
           seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_array_and_sharded_topk_match_full_sort(self, data, rows, policy,
                                                    fanout, replicas, noisy,
                                                    seed):
        num_shards = data.draw(st.integers(1, rows))
        # k deliberately spans the degenerate ends: 0, everything, beyond.
        k = data.draw(st.sampled_from(
            sorted({0, 1, rows // 2 + 1, rows, rows + 7})))
        populated = data.draw(st.integers(1, rows))
        start_row = data.draw(st.integers(0, rows - populated))
        batch = data.draw(st.integers(1, 6))
        sigma = 50.0 if noisy else 0.0

        rng = np.random.default_rng(seed)
        stored = rng.integers(0, 2, size=(populated, WORD_BITS),
                              dtype=np.uint8)
        queries = pack_bits(rng.integers(0, 2, size=(batch, WORD_BITS),
                                         dtype=np.uint8))

        reference = CamArray(rows, WORD_BITS, sense_amp=build_amp(sigma, seed))
        array = CamArray(rows, WORD_BITS, sense_amp=build_amp(sigma, seed))
        pipeline = ShardedCamPipeline(
            rows, WORD_BITS, num_shards=num_shards, policy=policy,
            fanout=fanout, num_replicas=replicas,
            sense_amp=build_amp(sigma, seed))
        for holder in (reference, array, pipeline):
            holder.write_rows(stored, start_row=start_row)

        for _ in range(2):  # repeat: noise streams must stay in lock-step
            full, _, _ = reference.search_batch_packed(queries)
            expected_indices, expected_distances = lexsort_reference(full, k)

            got = array.topk_packed(queries, k)
            assert np.array_equal(got.indices, expected_indices)
            assert np.array_equal(got.distances, expected_distances)

            sharded = pipeline.topk_packed(queries, k)
            assert np.array_equal(sharded.indices, expected_indices)
            assert np.array_equal(sharded.distances, expected_distances)

    @given(seed=st.integers(0, 1000),
           num_shards=st.integers(1, 8),
           fanout=st.sampled_from(["fused", "ports"]),
           k=st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_topk_energy_matches_single_array_and_gather_shrinks(
            self, seed, num_shards, fanout, k):
        # The search still touches every populated cell -- energy must sum
        # to the single-array total -- while the partial gather moves at
        # most k x shards values per query instead of every row.
        rows, batch = 24, 3
        rng = np.random.default_rng(seed)
        stored = rng.integers(0, 2, size=(rows, WORD_BITS), dtype=np.uint8)
        queries = pack_bits(rng.integers(0, 2, size=(batch, WORD_BITS),
                                         dtype=np.uint8))
        array = CamArray(rows, WORD_BITS)
        pipeline = ShardedCamPipeline(rows, WORD_BITS,
                                      num_shards=min(num_shards, rows),
                                      fanout=fanout)
        array.write_rows(stored)
        pipeline.write_rows(stored)
        single = array.topk_packed(queries, k)
        sharded = pipeline.topk_packed(queries, k)
        np.testing.assert_allclose(sharded.energy_pj, single.energy_pj,
                                   rtol=1e-9)
        assert sharded.gathered_values <= batch * min(k, rows) * pipeline.num_shards
        assert sharded.gathered_values <= batch * rows
        if 0 < k:
            assert single.gathered_values == batch * min(k, rows)

    @given(seed=st.integers(0, 500), k=st.integers(0, 12),
           next_shards=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_rebalance_never_changes_topk(self, seed, k, next_shards):
        rows = 12
        rng = np.random.default_rng(seed)
        stored = rng.integers(0, 2, size=(rows, WORD_BITS), dtype=np.uint8)
        queries = pack_bits(rng.integers(0, 2, size=(4, WORD_BITS),
                                         dtype=np.uint8))
        pipeline = ShardedCamPipeline(rows, WORD_BITS, num_shards=3)
        pipeline.write_rows(stored)
        before = pipeline.topk_packed(queries, k)
        pipeline.rebalance(num_shards=next_shards, policy="strided")
        after = pipeline.topk_packed(queries, k)
        assert np.array_equal(before.indices, after.indices)
        assert np.array_equal(before.distances, after.distances)
