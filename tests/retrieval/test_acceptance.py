"""Acceptance criteria of the retrieval subsystem (ISSUE 5).

On the 16384-row, 4-shard cluster at 256-bit signatures, the top-k partial
gather must reach >= 2x the throughput of the full-gather-then-sort path at
k=16 -- the exact workload recorded as ``retrieval/partial_gather`` vs
``retrieval/full_gather_sort`` in ``BENCH_e2e.json``
(:func:`repro.api.bench.retrieval_benchmarks`) -- and the two paths must be
bit-identical before any timing is believed.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.api.bench import (
    RETRIEVAL_ACCEPTANCE_MIN_SPEEDUP,
    RETRIEVAL_ACCEPTANCE_WORKLOAD,
    build_retrieval_workload,
)
from repro.retrieval import topk_via_full_search

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRetrievalAcceptance:
    def test_partial_gather_is_2x_over_full_gather_sort(self):
        workload = RETRIEVAL_ACCEPTANCE_WORKLOAD
        k = workload["k"]
        pipeline, queries = build_retrieval_workload(
            workload["rows"], workload["word_bits"], workload["shards"],
            workload["batch"])

        # Same answers first, then throughput: the gate compares work.
        partial = pipeline.topk_packed(queries, k)
        full_indices, full_distances = topk_via_full_search(pipeline,
                                                            queries, k)
        assert np.array_equal(partial.indices, full_indices)
        assert np.array_equal(partial.distances, full_distances)
        # The partial gather moves k x shards values per query, not rows.
        assert partial.gathered_values == (
            queries.shape[0] * k * workload["shards"])

        def best_of(fn, rounds=3):
            fn()  # warmup
            times = []
            for _ in range(rounds):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        partial_s = best_of(lambda: pipeline.topk_packed(queries, k))
        full_s = best_of(lambda: topk_via_full_search(pipeline, queries, k))
        speedup = full_s / partial_s
        assert speedup >= RETRIEVAL_ACCEPTANCE_MIN_SPEEDUP, (
            f"partial-gather speedup {speedup:.1f}x below the "
            f"{RETRIEVAL_ACCEPTANCE_MIN_SPEEDUP}x acceptance bar "
            f"(partial {partial_s * 1e3:.1f} ms, full {full_s * 1e3:.1f} ms)"
        )

    def test_bench_file_records_partial_vs_full_gather(self):
        document = json.loads((REPO_ROOT / "BENCH_e2e.json").read_text())
        names = {record["name"] for record in document["benchmarks"]}
        assert any(name.startswith("retrieval/partial_gather/")
                   for name in names), names
        assert any(name.startswith("retrieval/full_gather_sort/")
                   for name in names), names
        acceptance = document["retrieval"]["acceptance"]
        assert acceptance["min_required_speedup"] == (
            RETRIEVAL_ACCEPTANCE_MIN_SPEEDUP)
        assert acceptance["passed"], acceptance
