"""Unit tests of the retrieval building blocks.

The selection substrate (``select_topk`` / encode / decode), the per-layer
``topk_packed`` accounting, the full-sort reference's edge cases, the
engine-level ``execute_topk`` surface and the :class:`RetrievalIndex`
facade -- the pieces the property suite composes.
"""

import numpy as np
import pytest

from repro.bitops import pack_bits
from repro.cam import GATHER_CYCLES_PER_VALUE, TopKResult
from repro.cam.array import CamArray
from repro.cam.dynamic import DynamicCam, DynamicCamConfig
from repro.cam.topk import (
    decode_topk_rows,
    encode_topk_rows,
    select_topk,
    validate_k,
)
from repro.retrieval import RetrievalIndex, full_sort_topk
from repro.serve import MicroBatchServer, ServeConfig, build_demo_engine
from repro.serve.engine import BackendEngine
from repro.shard import ShardedCamPipeline


class TestSelectTopk:
    def test_orders_by_value_then_row_id(self):
        values = np.array([[5, 3, 3, 7, 1]])
        row_ids = np.array([10, 20, 4, 1, 9])
        indices, distances = select_topk(values, row_ids, 3, id_bound=100)
        assert indices.tolist() == [[9, 4, 20]]
        assert distances.tolist() == [[1, 3, 3]]

    def test_tie_breaks_toward_lower_global_row_id(self):
        values = np.zeros((2, 4), dtype=np.int64)  # all distances equal
        row_ids = np.array([7, 2, 9, 0])
        indices, _ = select_topk(values, row_ids, 2, id_bound=16)
        assert indices.tolist() == [[0, 2], [0, 2]]

    def test_per_query_row_id_matrices(self):
        # The merge step of a partial gather: each query selected its own
        # candidate ids.
        values = np.array([[2, 1], [1, 2]])
        row_ids = np.array([[5, 6], [7, 8]])
        indices, distances = select_topk(values, row_ids, 1, id_bound=16)
        assert indices.tolist() == [[6], [7]]
        assert distances.tolist() == [[1], [1]]

    def test_k_clamps_and_zero_k(self):
        values = np.array([[3, 1]])
        row_ids = np.array([0, 1])
        indices, distances = select_topk(values, row_ids, 99, id_bound=4)
        assert indices.tolist() == [[1, 0]]
        empty_i, empty_d = select_topk(values, row_ids, 0, id_bound=4)
        assert empty_i.shape == (1, 0) and empty_d.shape == (1, 0)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_k(-1)
        with pytest.raises(ValueError, match="non-negative"):
            select_topk(np.zeros((1, 2)), np.arange(2), -3, id_bound=4)


class TestEncodeDecode:
    def test_round_trip_is_lossless(self):
        indices = np.array([[3, 1], [0, 2]], dtype=np.int64)
        distances = np.array([[10, 12], [0, 99]], dtype=np.int64)
        rows = encode_topk_rows(indices, distances)
        assert rows.shape == (2, 4) and rows.dtype == np.float64
        back_i, back_d = decode_topk_rows(rows)
        assert np.array_equal(back_i, indices)
        assert np.array_equal(back_d, distances)

    def test_single_row_decode(self):
        rows = encode_topk_rows(np.array([[5, 6]]), np.array([[1, 2]]))
        indices, distances = decode_topk_rows(rows[0])
        assert indices.tolist() == [[5, 6]]
        assert distances.tolist() == [[1, 2]]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            encode_topk_rows(np.zeros((2, 3)), np.zeros((2, 2)))
        with pytest.raises(ValueError, match="even"):
            decode_topk_rows(np.zeros((1, 3)))


class TestCamArrayTopK:
    def test_accounting_energy_latency_gather(self, rng):
        array = CamArray(rows=16, word_bits=128)
        array.write_rows(rng.integers(0, 2, size=(16, 128), dtype=np.uint8))
        queries = pack_bits(rng.integers(0, 2, size=(3, 128), dtype=np.uint8))
        result = array.topk_packed(queries, 5)
        assert isinstance(result, TopKResult)
        assert result.k_eff == 5
        assert result.energy_pj == pytest.approx(3 * array.search_energy_pj())
        assert result.gathered_values == 3 * 5
        assert result.latency_cycles == (
            3 * array.search_latency_cycles
            + 3 * 5 * GATHER_CYCLES_PER_VALUE)

    def test_unpopulated_array_returns_empty(self):
        array = CamArray(rows=8, word_bits=64)
        result = array.topk_packed(np.zeros((2, 1), dtype=np.uint64), 4)
        assert result.indices.shape == (2, 0)
        assert result.energy_pj == 0.0 and result.latency_cycles == 0

    def test_wrong_word_count_rejected(self, rng):
        array = CamArray(rows=8, word_bits=64)
        array.write_rows(rng.integers(0, 2, size=(8, 64), dtype=np.uint8))
        with pytest.raises(ValueError, match="words"):
            array.topk_packed(np.zeros((2, 9), dtype=np.uint64), 2)

    def test_dynamic_cam_energy_scales_with_active_fraction(self, rng):
        cam = DynamicCam(DynamicCamConfig(rows=8))
        cam.configure_word_bits(256)
        cam.write_rows(rng.integers(0, 2, size=(8, 256), dtype=np.uint8))
        queries = pack_bits(rng.integers(0, 2, size=(3, 256), dtype=np.uint8))
        result = cam.topk_packed(queries, 2)
        full_energy = cam._array.search_energy_pj() * 3
        assert result.energy_pj == pytest.approx(full_energy * 256 / 1024)
        assert result.k_eff == 2


class TestFullSortReference:
    def test_excludes_unpopulated_rows(self):
        distances = np.array([[3, -1, 0, 2], [1, -1, 1, 0]])
        indices, values = full_sort_topk(distances, 2)
        assert indices.tolist() == [[2, 3], [3, 0]]
        assert values.tolist() == [[0, 2], [0, 1]]

    def test_empty_batch_and_zero_k(self):
        indices, values = full_sort_topk(np.zeros((0, 4), dtype=np.int64), 3)
        assert indices.shape == (0, 3)
        indices, values = full_sort_topk(np.zeros((2, 4), dtype=np.int64), 0)
        assert indices.shape == (2, 0) and values.shape == (2, 0)


class TestEngineTopK:
    GEOM = dict(classes=10, input_dim=16, hash_length=128)

    def test_execute_topk_matches_cam_port(self, rng):
        engine = build_demo_engine(**self.GEOM)
        queries = rng.standard_normal((6, self.GEOM["input_dim"]))
        prepared = engine.prepare(queries)
        rows = engine.execute_topk(prepared, 4)
        assert rows.shape == (6, engine.topk_width(4))
        indices, distances = decode_topk_rows(rows)
        direct = engine.cam.topk_packed(prepared.packed_words, 4)
        assert np.array_equal(indices, direct.indices)
        assert np.array_equal(distances, direct.distances)

    def test_topk_width_clamps_to_classes(self):
        engine = build_demo_engine(**self.GEOM)
        assert engine.topk_width(4) == 8
        assert engine.topk_width(99) == 2 * self.GEOM["classes"]
        assert engine.topk_width(0) == 0

    def test_server_rejects_engines_without_topk(self):
        class FakeBackend:
            name = "fake"

            def infer(self, model, batch):
                return np.zeros((len(batch), 2))

        engine = BackendEngine(FakeBackend(), model=None)
        server = MicroBatchServer(engine, config=ServeConfig(max_batch=2))
        server.start()
        try:
            with pytest.raises(TypeError, match="top-k"):
                server.submit_topk(np.zeros(4), 2)
        finally:
            server.stop()


class TestRetrievalIndex:
    def test_self_match_and_insertion_order_ids(self, rng):
        corpus = rng.standard_normal((60, 24))
        index = RetrievalIndex(input_dim=24, capacity=64, hash_length=128,
                               num_shards=3)
        ids = index.add(corpus)
        assert np.array_equal(ids, np.arange(60))
        assert len(index) == 60
        hits = index.search(corpus[:5], k=3)
        # A vector's own signature is Hamming-distance 0 from itself.
        assert np.array_equal(hits.indices[:, 0], np.arange(5))
        assert np.all(hits.distances[:, 0] == 0)

    def test_capacity_and_shape_validation(self, rng):
        index = RetrievalIndex(input_dim=8, capacity=4, num_shards=2)
        index.add(rng.standard_normal((3, 8)))
        with pytest.raises(ValueError, match="cannot add"):
            index.add(rng.standard_normal((2, 8)))
        with pytest.raises(ValueError, match="shape"):
            index.add(rng.standard_normal((2, 9)))
        with pytest.raises(ValueError, match="shape"):
            index.search(rng.standard_normal((1, 9)), 2)

    def test_k_beyond_size_returns_everything(self, rng):
        index = RetrievalIndex(input_dim=8, capacity=16, num_shards=2)
        index.add(rng.standard_normal((5, 8)))
        hits = index.search(rng.standard_normal((2, 8)), k=50)
        assert hits.indices.shape == (2, 5)
        empty = index.search(rng.standard_normal((2, 8)), k=0)
        assert empty.indices.shape == (2, 0)

    def test_stats_and_empty_add(self, rng):
        index = RetrievalIndex(input_dim=8, capacity=16, num_shards=2)
        assert index.add(np.zeros((0, 8))).size == 0
        index.add(rng.standard_normal((4, 8)))
        stats = index.stats()
        assert stats["indexed_vectors"] == 4
        assert stats["capacity"] == 16
        assert stats["num_shards"] == 2


class TestPipelineTopKValidation:
    def test_wrong_word_count_and_dims_rejected(self, rng):
        pipeline = ShardedCamPipeline(8, 64, num_shards=2)
        pipeline.write_rows(rng.integers(0, 2, size=(8, 64), dtype=np.uint8))
        with pytest.raises(ValueError, match="words"):
            pipeline.topk_packed(np.zeros((2, 9), dtype=np.uint64), 2)
        with pytest.raises(ValueError, match="2-D"):
            pipeline.topk_packed(np.zeros(1, dtype=np.uint64), 2)
        with pytest.raises(ValueError, match="non-negative"):
            pipeline.topk_packed(np.zeros((2, 1), dtype=np.uint64), -1)
