"""Integration tests across the full DeepCAM stack.

These tests exercise the paths the paper's system actually uses end to end:
train a CNN, run it through the DeepCAM functional simulator with variable
hash lengths, check the accuracy story (Fig. 5 mechanism), and check that the
offline (software) and online (crossbar + adder tree + sqrt) context
generators produce interoperable contexts.
"""

import numpy as np
import pytest

from repro.core.accelerator import DeepCAMSimulator
from repro.core.config import DeepCAMConfig
from repro.core.context import ContextGenerator
from repro.core.energy import DeepCAMEnergyModel
from repro.core.hash_search import VariableHashLengthSearch
from repro.core.mapping import DeepCAMMapper
from repro.core.postprocess import OnlineContextGenerator, PostProcessor
from repro.core.hashing import hamming_distance_matrix
from repro.evaluation.experiments import default_vhl_profile
from repro.nn.train import evaluate_accuracy
from repro.workloads.specs import lenet5_trace


class TestAccuracyPipeline:
    def test_deepcam_preserves_most_of_the_accuracy(self, trained_tiny_lenet):
        # Fig. 5 in miniature: the DeepCAM forward pass with a generous hash
        # length stays close to the software baseline.
        model, dataset, baseline_accuracy = trained_tiny_lenet
        assert baseline_accuracy > 0.5  # the substrate must have learned something

        images = dataset.test.images[:80]
        labels = dataset.test.labels[:80]
        software = evaluate_accuracy(model, images, labels)
        simulator = DeepCAMSimulator(DeepCAMConfig().homogeneous(1024))
        deepcam = evaluate_accuracy(model, images, labels,
                                    forward_fn=simulator.forward_fn(model))
        assert deepcam >= software - 0.15

    def test_very_short_hash_degrades_accuracy_more_than_long_hash(self, trained_tiny_lenet):
        model, dataset, _ = trained_tiny_lenet
        images = dataset.test.images[:80]
        labels = dataset.test.labels[:80]

        def deepcam_accuracy(hash_length):
            simulator = DeepCAMSimulator(DeepCAMConfig(use_exact_cosine=True)
                                         .homogeneous(hash_length))
            return evaluate_accuracy(model, images, labels,
                                     forward_fn=simulator.forward_fn(model))

        assert deepcam_accuracy(1024) >= deepcam_accuracy(256) - 0.05

    def test_search_then_simulate_roundtrip(self, trained_tiny_lenet):
        # The lengths chosen by the search, fed back through a fresh
        # simulator, reproduce the accuracy the search reported.
        model, dataset, _ = trained_tiny_lenet
        images = dataset.test.images[:60]
        labels = dataset.test.labels[:60]
        search = VariableHashLengthSearch(config=DeepCAMConfig(),
                                          candidate_lengths=(256, 1024),
                                          tolerance=0.08, batch_size=30)
        result = search.search(model, images, labels)
        config = DeepCAMConfig(homogeneous_hash_length=1024).with_hash_lengths(
            result.layer_hash_lengths)
        simulator = DeepCAMSimulator(config)
        accuracy = evaluate_accuracy(model, images, labels,
                                     forward_fn=simulator.forward_fn(model),
                                     batch_size=30)
        assert accuracy == pytest.approx(result.deepcam_accuracy, abs=1e-9)


class TestContextInteroperability:
    def test_online_and_offline_contexts_agree_in_the_cam(self, rng):
        # Weights hashed offline and activations hashed online (crossbar +
        # adder tree + sqrt) must meet meaningfully in the CAM: the Hamming
        # distances computed from the two paths match the all-software path.
        generator = ContextGenerator(input_dim=27, hash_length=256, seed=5,
                                     layer_name="conv")
        online = OnlineContextGenerator(generator)

        weights = rng.normal(size=(8, 27))
        patches = rng.normal(size=(20, 27))

        weight_contexts = generator.weight_contexts(weights)
        offline_activations = generator.contexts_from_matrix(patches)
        online_activations, report = online.generate(patches)

        reference = hamming_distance_matrix(weight_contexts.bits, offline_activations.bits)
        hardware = hamming_distance_matrix(weight_contexts.bits, online_activations.bits)
        assert report.hash_agreement > 0.97
        # Distances may differ by at most the few disagreeing bits.
        assert np.max(np.abs(reference - hardware)) <= 256 * (1 - report.hash_agreement) + 2

    def test_postprocessor_completes_dot_products_consistently(self, rng):
        # CAM distances + PostProcessor == ApproximateDotProduct matrix path.
        generator = ContextGenerator(input_dim=16, hash_length=256, seed=1,
                                     norm_format=None, layer_name="fc")
        weights = rng.normal(size=(4, 16))
        activations = rng.normal(size=(6, 16))
        w_ctx = generator.weight_contexts(weights)
        a_ctx = generator.contexts_from_matrix(activations)
        distances = hamming_distance_matrix(w_ctx.bits, a_ctx.bits)
        processor = PostProcessor(hash_length=256)
        products = processor.dot_products(distances, w_ctx.norms, a_ctx.norms)

        from repro.core.geometric import ApproximateDotProduct
        engine = ApproximateDotProduct(input_dim=16, hash_length=256, seed=1)
        expected = engine.compute_matrix(weights, activations)
        assert np.allclose(products, expected)


class TestPerformanceAndEnergyPipeline:
    def test_mapping_and_energy_share_the_vhl_profile(self):
        trace = lenet5_trace()
        profile = default_vhl_profile(trace)
        config = DeepCAMConfig().with_hash_lengths(profile)
        mapping = DeepCAMMapper(config).map_network(trace, hash_lengths=profile)
        energy = DeepCAMEnergyModel(config).network_energy(trace, hash_lengths=profile)
        assert [m.hash_length for m in mapping.layers] == [l.hash_length for l in energy.layers]
        assert mapping.total_cycles > 0
        assert energy.total_uj > 0

    def test_simulator_search_count_matches_mapper_estimate(self, rng):
        # The functional simulator's search counter and the analytical
        # mapper agree on the number of CAM searches for the same layer
        # geometry (activation-stationary, single image).
        from repro.nn.layers import Conv2d, Sequential
        from repro.workloads.specs import ConvSpec

        conv = Conv2d(1, 6, kernel_size=5, rng=rng)
        model = Sequential(conv)
        config = DeepCAMConfig(cam_rows=64)
        simulator = DeepCAMSimulator(config)
        simulator.run(model, rng.normal(size=(1, 1, 32, 32)))

        spec = ConvSpec("conv1", in_channels=1, out_channels=6, kernel_size=5, input_size=32)
        mapping = DeepCAMMapper(config).map_layer(spec)
        assert simulator.stats.cam_searches == mapping.searches
        assert simulator.stats.cam_fills == mapping.fills
