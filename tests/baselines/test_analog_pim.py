"""Tests for the analog PIM baselines (Table II)."""

import pytest

from repro.baselines.analog_pim import (
    AnalogPIMConfig,
    AnalogPIMModel,
    NEUROSIM_RRAM,
    VALAVI_SRAM,
)
from repro.workloads.specs import lenet5_trace, vgg11_trace


class TestConfigs:
    def test_presets_valid(self):
        assert NEUROSIM_RRAM.weight_slices == 8
        assert VALAVI_SRAM.weight_slices == 1
        assert NEUROSIM_RRAM.cell_reads_per_mac == 64
        assert VALAVI_SRAM.cell_reads_per_mac == 8

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            AnalogPIMConfig(name="bad", crossbar_rows=0, crossbar_cols=1, num_macros=1,
                            weight_bits_per_cell=1, weight_bits=8, activation_bits=8,
                            cell_read_energy_fj=1, adc_energy_pj=1,
                            adc_conversions_per_output=1, adcs_per_macro=1,
                            cycle_time_ns=1, digital_energy_per_mac_fj=1)
        with pytest.raises(ValueError):
            AnalogPIMConfig(name="bad", crossbar_rows=8, crossbar_cols=8, num_macros=1,
                            weight_bits_per_cell=1, weight_bits=8, activation_bits=8,
                            cell_read_energy_fj=-1, adc_energy_pj=1,
                            adc_conversions_per_output=1, adcs_per_macro=1,
                            cycle_time_ns=1, digital_energy_per_mac_fj=1)


class TestEnergyAndCycles:
    def test_rram_costs_more_energy_than_charge_domain_sram(self):
        trace = vgg11_trace()
        rram = AnalogPIMModel(NEUROSIM_RRAM).evaluate(trace)
        sram = AnalogPIMModel(VALAVI_SRAM).evaluate(trace)
        # The published gap is ~10x (34.98 uJ vs 3.55 uJ); require a clear win.
        assert rram.energy_uj > 5 * sram.energy_uj

    def test_energy_per_mac_in_published_ranges(self):
        trace = vgg11_trace()
        rram = AnalogPIMModel(NEUROSIM_RRAM).energy_per_mac_fj(trace)
        sram = AnalogPIMModel(VALAVI_SRAM).energy_per_mac_fj(trace)
        assert 100 < rram < 600      # RRAM + ADC designs: hundreds of fJ/MAC
        assert 5 < sram < 60         # charge-domain SRAM: tens of fJ/MAC

    def test_vgg11_energy_order_of_magnitude_vs_paper(self):
        # Paper Table II: 34.98 uJ (NeuroSim) and 3.55 uJ (Valavi).
        trace = vgg11_trace()
        rram = AnalogPIMModel(NEUROSIM_RRAM).evaluate(trace).energy_uj
        sram = AnalogPIMModel(VALAVI_SRAM).evaluate(trace).energy_uj
        assert 10 < rram < 120
        assert 0.5 < sram < 12

    def test_cycles_positive_and_rram_slower(self):
        trace = vgg11_trace()
        rram = AnalogPIMModel(NEUROSIM_RRAM).evaluate(trace)
        sram = AnalogPIMModel(VALAVI_SRAM).evaluate(trace)
        assert rram.cycles > sram.cycles > 0

    def test_small_network_costs_less(self):
        model = AnalogPIMModel(NEUROSIM_RRAM)
        assert (model.evaluate(lenet5_trace()).energy_uj
                < model.evaluate(vgg11_trace()).energy_uj)

    def test_report_unit_conversion(self):
        report = AnalogPIMModel(VALAVI_SRAM).evaluate(lenet5_trace())
        assert report.energy_pj == pytest.approx(report.energy_uj * 1e6)
