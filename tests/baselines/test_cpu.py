"""Tests for the Skylake AVX-512 CPU model."""

import pytest

from repro.baselines.cpu import SkylakeCPUModel
from repro.workloads.specs import ConvSpec, FCSpec, lenet5_trace, resnet18_trace, vgg11_trace


class TestLayerModel:
    def test_compute_cycles_scale_with_macs(self):
        model = SkylakeCPUModel()
        small = model.map_layer(ConvSpec("s", 16, 16, 3, input_size=8))
        large = model.map_layer(ConvSpec("l", 64, 64, 3, input_size=16))
        assert large.compute_cycles > small.compute_cycles

    def test_total_includes_overhead(self):
        model = SkylakeCPUModel(per_layer_overhead_cycles=5000)
        report = model.map_layer(FCSpec("fc", 128, 10))
        assert report.cycles >= 5000

    def test_spilled_working_set_uses_dram_bandwidth(self):
        model = SkylakeCPUModel(cache_bytes=1024)
        big_layer = ConvSpec("c", 256, 256, 3, input_size=8, padding=1)
        slow = model.map_layer(big_layer).memory_cycles
        fast = SkylakeCPUModel(cache_bytes=64 * 1024 * 1024).map_layer(big_layer).memory_cycles
        assert slow > fast

    def test_efficiency_increases_speed(self):
        layer = ConvSpec("c", 64, 64, 3, input_size=16, padding=1)
        slow = SkylakeCPUModel(issue_efficiency=0.1).map_layer(layer).compute_cycles
        fast = SkylakeCPUModel(issue_efficiency=0.8).map_layer(layer).compute_cycles
        assert fast < slow

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SkylakeCPUModel(vector_macs_per_cycle=0)
        with pytest.raises(ValueError):
            SkylakeCPUModel(issue_efficiency=0.0)
        with pytest.raises(ValueError):
            SkylakeCPUModel(per_layer_overhead_cycles=-1)


class TestNetworkModel:
    def test_totals_and_latency(self):
        model = SkylakeCPUModel()
        trace = lenet5_trace()
        report = model.map_network(trace)
        assert report.total_cycles == sum(l.cycles for l in report.layers)
        assert model.latency_s(trace) == pytest.approx(report.total_cycles / model.frequency_hz)

    def test_network_ordering(self):
        model = SkylakeCPUModel()
        lenet = model.map_network(lenet5_trace()).total_cycles
        vgg = model.map_network(vgg11_trace()).total_cycles
        resnet = model.map_network(resnet18_trace()).total_cycles
        assert lenet < vgg < resnet

    def test_effective_throughput_is_sub_peak(self):
        # The model must not be optimistic: sustained MACs/cycle stays well
        # below the 128 MACs/cycle AVX-512 VNNI peak for small-batch CNNs.
        model = SkylakeCPUModel()
        trace = vgg11_trace()
        cycles = model.map_network(trace).total_cycles
        macs_per_cycle = trace.total_macs / cycles
        assert macs_per_cycle < 64
