"""Tests for the SCALE-Sim-style systolic array model."""

import pytest

from repro.baselines.systolic import SystolicArrayConfig, SystolicArrayModel
from repro.workloads.specs import ConvSpec, FCSpec, lenet5_trace, vgg11_trace


class TestConfig:
    def test_eyeriss_default_geometry(self):
        config = SystolicArrayConfig()
        assert (config.rows, config.cols) == (14, 12)
        assert config.num_pes == 168
        assert config.weight_bits == 8

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SystolicArrayConfig(rows=0)
        with pytest.raises(ValueError):
            SystolicArrayConfig(frequency_hz=0)


class TestLayerMapping:
    def test_fold_count(self):
        model = SystolicArrayModel()
        layer = ConvSpec("c", in_channels=1, out_channels=6, kernel_size=5, input_size=32)
        report = model.map_layer(layer)
        # context_length 25 over 14 rows -> 2 folds; 6 kernels over 12 cols -> 1.
        assert report.folds == 2

    def test_cycles_grow_with_larger_layers(self):
        model = SystolicArrayModel()
        small = model.map_layer(ConvSpec("s", 16, 16, 3, input_size=8))
        large = model.map_layer(ConvSpec("l", 64, 64, 3, input_size=16))
        assert large.cycles > small.cycles

    def test_utilization_bounded(self):
        model = SystolicArrayModel()
        for layer in vgg11_trace():
            report = model.map_layer(layer)
            assert 0.0 < report.utilization <= 1.0

    def test_fc_layer_has_poor_utilization(self):
        # One im2col column (P=1) cannot keep a systolic array busy.
        model = SystolicArrayModel()
        report = model.map_layer(FCSpec("fc", in_features=400, out_features=120))
        assert report.utilization < 0.05

    def test_big_conv_has_good_utilization(self):
        model = SystolicArrayModel()
        report = model.map_layer(ConvSpec("c", 128, 128, 3, input_size=16, padding=1))
        assert report.utilization > 0.5


class TestNetworkMapping:
    def test_totals_are_sums(self):
        model = SystolicArrayModel()
        report = model.map_network(lenet5_trace())
        assert report.total_cycles == sum(l.cycles for l in report.layers)
        assert report.total_macs == lenet5_trace().total_macs

    def test_vgg_needs_more_cycles_than_lenet(self):
        model = SystolicArrayModel()
        assert (model.map_network(vgg11_trace()).total_cycles
                > model.map_network(lenet5_trace()).total_cycles)

    def test_bigger_array_is_faster(self):
        small = SystolicArrayModel(SystolicArrayConfig(rows=14, cols=12))
        big = SystolicArrayModel(SystolicArrayConfig(rows=28, cols=24))
        trace = vgg11_trace()
        assert big.map_network(trace).total_cycles < small.map_network(trace).total_cycles

    def test_latency_uses_frequency(self):
        model = SystolicArrayModel()
        trace = lenet5_trace()
        assert model.latency_s(trace) == pytest.approx(
            model.map_network(trace).total_cycles / 300e6)

    def test_mean_utilization_weighted_by_cycles(self):
        model = SystolicArrayModel()
        report = model.map_network(lenet5_trace())
        assert 0.0 < report.mean_utilization < 1.0
