"""Tests for the Eyeriss energy model."""

import pytest

from repro.baselines.eyeriss import EyerissModel
from repro.workloads.specs import lenet5_trace, resnet18_trace, vgg11_trace


class TestLayerEnergy:
    def test_breakdown_positive(self):
        model = EyerissModel()
        energy = model.layer_energy(lenet5_trace().layer("conv1"))
        assert energy.mac_pj > 0
        assert energy.rf_pj > 0
        assert energy.sram_pj > 0
        assert energy.dram_pj > 0
        assert energy.total_pj == pytest.approx(
            energy.mac_pj + energy.rf_pj + energy.noc_pj + energy.sram_pj + energy.dram_pj)

    def test_memory_dominates_compute(self):
        # The architectural premise the paper leans on: data movement costs
        # far more than the MACs themselves in a von-Neumann accelerator.
        model = EyerissModel()
        report = model.evaluate(vgg11_trace())
        breakdown = report.breakdown()
        memory = breakdown["rf_pj"] + breakdown["noc_pj"] + breakdown["sram_pj"] + breakdown["dram_pj"]
        assert memory > breakdown["mac_pj"]

    def test_batching_amortises_weight_traffic(self):
        single = EyerissModel(batch_size=1).evaluate(vgg11_trace()).total_energy_uj
        batched = EyerissModel(batch_size=16).evaluate(vgg11_trace()).total_energy_uj
        assert batched < single


class TestNetworkReport:
    def test_report_fields(self):
        report = EyerissModel().evaluate(lenet5_trace())
        assert report.network == "lenet5"
        assert report.total_cycles > 0
        assert 0 < report.mean_utilization <= 1.0
        assert report.total_energy_uj == pytest.approx(report.total_energy_pj * 1e-6)

    def test_energy_ordering_across_networks(self):
        model = EyerissModel()
        lenet = model.evaluate(lenet5_trace()).total_energy_uj
        vgg = model.evaluate(vgg11_trace()).total_energy_uj
        resnet = model.evaluate(resnet18_trace()).total_energy_uj
        assert lenet < vgg < resnet

    def test_energy_per_mac_is_physically_plausible(self):
        # End-to-end energy per MAC for an Eyeriss-class design sits in the
        # single-digit picojoule range once memory traffic is included.
        model = EyerissModel()
        trace = vgg11_trace()
        energy_pj = model.evaluate(trace).total_energy_pj
        per_mac = energy_pj / trace.total_macs
        assert 0.5 < per_mac < 20.0

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            EyerissModel(batch_size=0)
