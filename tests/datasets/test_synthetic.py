"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.loaders import DatasetSplit, SyntheticImageDataset, train_test_split
from repro.datasets.synthetic import (
    SyntheticSpec,
    make_cifar10_like,
    make_cifar100_like,
    make_mnist_like,
    make_synthetic_classification,
)


class TestSyntheticSpec:
    def test_valid_spec(self):
        spec = SyntheticSpec(num_classes=10, channels=3, image_size=32)
        assert spec.difficulty == pytest.approx(0.35)

    @pytest.mark.parametrize("kwargs", [
        {"num_classes": 1, "channels": 1, "image_size": 28},
        {"num_classes": 10, "channels": 2, "image_size": 28},
        {"num_classes": 10, "channels": 1, "image_size": 4},
        {"num_classes": 10, "channels": 1, "image_size": 28, "difficulty": 1.5},
        {"num_classes": 10, "channels": 1, "image_size": 28, "max_shift": -1},
    ])
    def test_invalid_specs(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticSpec(**kwargs)


class TestGeneration:
    def test_shapes_and_labels(self):
        spec = SyntheticSpec(num_classes=5, channels=1, image_size=16)
        images, labels = make_synthetic_classification(spec, 50, seed=0)
        assert images.shape == (50, 1, 16, 16)
        assert labels.shape == (50,)
        assert labels.min() >= 0 and labels.max() < 5

    def test_deterministic_given_seed(self):
        spec = SyntheticSpec(num_classes=3, channels=1, image_size=12)
        a = make_synthetic_classification(spec, 20, seed=5)
        b = make_synthetic_classification(spec, 20, seed=5)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        spec = SyntheticSpec(num_classes=3, channels=1, image_size=12)
        a = make_synthetic_classification(spec, 20, seed=1)
        b = make_synthetic_classification(spec, 20, seed=2)
        assert not np.array_equal(a[0], b[0])

    def test_same_class_samples_are_correlated(self):
        # Low difficulty: two samples of the same class correlate much more
        # than samples of different classes (that is what makes it learnable).
        spec = SyntheticSpec(num_classes=2, channels=1, image_size=20,
                             difficulty=0.1, max_shift=0)
        images, labels = make_synthetic_classification(spec, 200, seed=3)
        flat = images.reshape(len(images), -1)
        same, different = [], []
        for i in range(0, 100, 2):
            for j in range(1, 100, 2):
                corr = np.corrcoef(flat[i], flat[j])[0, 1]
                (same if labels[i] == labels[j] else different).append(corr)
        assert np.mean(same) > np.mean(different) + 0.2

    def test_difficulty_increases_noise(self):
        easy_spec = SyntheticSpec(num_classes=2, channels=1, image_size=16, difficulty=0.0)
        hard_spec = SyntheticSpec(num_classes=2, channels=1, image_size=16, difficulty=1.0)
        easy, _ = make_synthetic_classification(easy_spec, 50, seed=0)
        hard, _ = make_synthetic_classification(hard_spec, 50, seed=0)
        assert hard.std() > easy.std()

    def test_invalid_sample_count(self):
        spec = SyntheticSpec(num_classes=2, channels=1, image_size=16)
        with pytest.raises(ValueError):
            make_synthetic_classification(spec, 0)

    def test_named_generators_geometry(self):
        mnist_images, _, mnist_spec = make_mnist_like(num_samples=10)
        cifar_images, _, cifar_spec = make_cifar10_like(num_samples=10)
        cifar100_images, _, cifar100_spec = make_cifar100_like(num_samples=10, num_classes=100)
        assert mnist_images.shape[1:] == (1, 28, 28)
        assert cifar_images.shape[1:] == (3, 32, 32)
        assert cifar100_images.shape[1:] == (3, 32, 32)
        assert cifar100_spec.num_classes == 100
        assert mnist_spec.channels == 1 and cifar_spec.channels == 3


class TestSplitsAndDatasets:
    def test_train_test_split_fractions(self, rng):
        images = rng.normal(size=(100, 1, 8, 8))
        labels = rng.integers(0, 3, size=100)
        train, test = train_test_split(images, labels, test_fraction=0.2, seed=0)
        assert len(train) == 80
        assert len(test) == 20

    def test_split_is_disjoint_and_complete(self, rng):
        images = np.arange(50).reshape(50, 1, 1, 1).astype(float)
        labels = np.zeros(50, dtype=np.int64)
        train, test = train_test_split(images, labels, test_fraction=0.3, seed=1)
        combined = np.concatenate([train.images, test.images]).ravel()
        assert sorted(combined.tolist()) == list(range(50))

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            train_test_split(rng.normal(size=(10, 1, 2, 2)), np.zeros(10), test_fraction=1.5)

    def test_dataset_split_validation(self, rng):
        with pytest.raises(ValueError):
            DatasetSplit(images=rng.normal(size=(5, 1, 2, 2)), labels=np.zeros(4))

    def test_dataset_split_subset(self, rng):
        split = DatasetSplit(images=rng.normal(size=(10, 1, 2, 2)),
                             labels=np.arange(10))
        subset = split.subset(3)
        assert len(subset) == 3
        with pytest.raises(ValueError):
            split.subset(0)

    def test_synthetic_dataset_factories(self):
        dataset = SyntheticImageDataset.mnist_like(num_samples=60, num_classes=3, seed=0)
        assert dataset.num_classes == 3
        assert dataset.input_shape == (1, 28, 28)
        assert len(dataset.train) + len(dataset.test) == 60
