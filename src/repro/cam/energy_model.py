"""EvaCAM-style analytical CAM overhead model (paper Fig. 8).

The paper extracts FeFET CAM search-energy and area statistics from the
EvaCAM tool for every row/column combination it evaluates (rows 64..512,
word widths 256..1024) and plots them in Fig. 8.  EvaCAM itself is not
available offline, so this module provides an analytical stand-in with the
same interface and the same first-order scaling behaviour:

* search energy grows linearly with the number of active cells
  (rows x word bits) plus a per-row sense-amplifier term and a per-column
  search-line driver term;
* area grows linearly with cell count plus peripheral area that scales with
  the array perimeter;
* search delay grows weakly (logarithmically) with row count due to the
  longer search-line RC, and linearly with match-line length.

The absolute constants are anchored to the FeFET cell model in
:mod:`repro.cam.cell`, which already embeds the 7.5x area and 2.4x
search-energy advantages over CMOS the paper quotes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cam.cell import CamCell, CellTechnology, FEFET_CAM_CELL, cell_for_technology


@dataclass(frozen=True)
class CamOverheadReport:
    """Overhead of one CAM geometry (one point of the Fig. 8 sweep).

    Attributes
    ----------
    rows / word_bits:
        The geometry evaluated.
    search_energy_pj:
        Dynamic energy of one search over the whole array.
    area_um2:
        Total macro area (cells + peripherals).
    search_delay_ns:
        Latency of one search operation.
    energy_per_bit_fj:
        Search energy divided by the number of cells, in femtojoules.
    """

    rows: int
    word_bits: int
    search_energy_pj: float
    area_um2: float
    search_delay_ns: float
    energy_per_bit_fj: float


class CamEnergyModel:
    """Analytical search energy / area / delay model for CAM macros.

    Parameters
    ----------
    cell:
        CAM cell device model (FeFET by default).
    senseamp_energy_fj:
        Energy of one clocked self-referenced sense amplifier per search.
    driver_energy_fj_per_bit:
        Search-line driver energy per column per search.
    peripheral_area_um2_per_row / per_col:
        Area of the row decoder + sense amplifier (per row) and of the
        search-line driver (per column).
    base_delay_ns:
        Intrinsic compare + sensing delay of a minimum-size array.
    """

    def __init__(self, cell: CamCell = FEFET_CAM_CELL,
                 senseamp_energy_fj: float = 45.0,
                 driver_energy_fj_per_bit: float = 0.35,
                 peripheral_area_um2_per_row: float = 18.0,
                 peripheral_area_um2_per_col: float = 2.2,
                 base_delay_ns: float = 1.1) -> None:
        if senseamp_energy_fj < 0 or driver_energy_fj_per_bit < 0:
            raise ValueError("energy terms must be non-negative")
        if base_delay_ns <= 0:
            raise ValueError("base_delay_ns must be positive")
        self.cell = cell
        self.senseamp_energy_fj = float(senseamp_energy_fj)
        self.driver_energy_fj_per_bit = float(driver_energy_fj_per_bit)
        self.peripheral_area_um2_per_row = float(peripheral_area_um2_per_row)
        self.peripheral_area_um2_per_col = float(peripheral_area_um2_per_col)
        self.base_delay_ns = float(base_delay_ns)

    @classmethod
    def for_technology(cls, technology: CellTechnology | str) -> "CamEnergyModel":
        """Construct a model for a given cell technology (CMOS or FeFET)."""
        cell = cell_for_technology(technology)
        # CMOS sense amplifiers and drivers are slightly cheaper per event but
        # the cells dominate, so keep the peripheral constants shared.
        return cls(cell=cell)

    # -- single-point queries -----------------------------------------------------

    def search_energy_pj(self, rows: int, word_bits: int) -> float:
        """Dynamic energy of one search over a ``rows`` x ``word_bits`` array."""
        self._validate(rows, word_bits)
        cell_energy_fj = rows * word_bits * self.cell.search_energy_fj
        senseamp_fj = rows * self.senseamp_energy_fj
        driver_fj = word_bits * self.driver_energy_fj_per_bit * rows ** 0.5
        return (cell_energy_fj + senseamp_fj + driver_fj) * 1e-3

    def area_um2(self, rows: int, word_bits: int) -> float:
        """Macro area of a ``rows`` x ``word_bits`` array."""
        self._validate(rows, word_bits)
        cell_area = rows * word_bits * self.cell.area_um2
        peripheral = (rows * self.peripheral_area_um2_per_row
                      + word_bits * self.peripheral_area_um2_per_col)
        return cell_area + peripheral

    def search_delay_ns(self, rows: int, word_bits: int) -> float:
        """Latency of one search operation."""
        self._validate(rows, word_bits)
        row_factor = 1.0 + 0.08 * math.log2(max(rows / 64.0, 1.0))
        col_factor = 1.0 + 0.15 * (word_bits / 256.0 - 1.0)
        return self.base_delay_ns * row_factor * col_factor

    def leakage_uw(self, rows: int, word_bits: int) -> float:
        """Static leakage power of the array."""
        self._validate(rows, word_bits)
        return rows * word_bits * self.cell.leakage_nw * 1e-3

    def report(self, rows: int, word_bits: int) -> CamOverheadReport:
        """Bundle energy, area and delay for one geometry."""
        energy = self.search_energy_pj(rows, word_bits)
        return CamOverheadReport(
            rows=rows,
            word_bits=word_bits,
            search_energy_pj=energy,
            area_um2=self.area_um2(rows, word_bits),
            search_delay_ns=self.search_delay_ns(rows, word_bits),
            energy_per_bit_fj=energy * 1e3 / (rows * word_bits),
        )

    # -- sweeps (Fig. 8) ------------------------------------------------------------

    def sweep(self, row_sizes: Sequence[int] = (64, 128, 256, 512),
              word_sizes: Sequence[int] = (256, 512, 768, 1024)) -> list[CamOverheadReport]:
        """Evaluate every (rows, word_bits) combination, as Fig. 8 does."""
        reports = []
        for rows in row_sizes:
            for word_bits in word_sizes:
                reports.append(self.report(int(rows), int(word_bits)))
        return reports

    @staticmethod
    def _validate(rows: int, word_bits: int) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        if word_bits <= 0:
            raise ValueError("word_bits must be positive")


def compare_technologies(rows: int, word_bits: int) -> dict[str, CamOverheadReport]:
    """FeFET vs CMOS overhead at one geometry.

    Convenience helper used in the documentation and the Fig. 8 benchmark to
    confirm that the modelled FeFET advantage matches the ratios the paper
    quotes (7.5x smaller cells, 2.4x lower search energy).
    """
    results = {}
    for name in ("fefet", "cmos"):
        model = CamEnergyModel.for_technology(name)
        results[name] = model.report(rows, word_bits)
    return results
