"""Content-addressable memory (CAM) substrate.

This subpackage implements the CAM hardware that DeepCAM is built on
(paper Sec. II-A and III-B):

* :mod:`repro.cam.cell` -- CMOS and FeFET CAM/TCAM cell models with the
  transistor-count, area and search-energy relationships the paper cites.
* :mod:`repro.cam.sense_amplifier` -- the clocked self-referenced sense
  amplifier (Ni et al., Nature Electronics 2019) that converts match-line
  discharge time into a Hamming distance.
* :mod:`repro.cam.array` -- a functional + timing model of a single CAM
  array: store rows, broadcast a search key, obtain per-row Hamming
  distances through the match-line discharge model.
* :mod:`repro.cam.dynamic` -- the dynamic-size CAM built from 256-bit
  chunks joined by transmission gates, reconfigurable from 256 to 1024 bits.
* :mod:`repro.cam.energy_model` -- an EvaCAM-style analytical model of
  search energy, area and delay versus row count, word width and device
  technology, used for the Fig. 8 overhead sweep.
* :mod:`repro.cam.topk` -- deterministic top-k selection over distance
  matrices (``(distance, row id)`` total order), the substrate of the
  retrieval path (``topk_packed`` on arrays and the sharded partial
  gather).
"""

from repro.cam.array import CamArray, CamSearchResult
from repro.cam.topk import GATHER_CYCLES_PER_VALUE, TopKResult, select_topk
from repro.cam.cell import CamCell, CellTechnology, CMOS_CAM_CELL, CMOS_TCAM_CELL, FEFET_CAM_CELL
from repro.cam.dynamic import DynamicCam, DynamicCamConfig
from repro.cam.energy_model import CamEnergyModel, CamOverheadReport
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp, SenseAmpReading

__all__ = [
    "CamArray",
    "CamCell",
    "CamEnergyModel",
    "CamOverheadReport",
    "CamSearchResult",
    "CellTechnology",
    "ClockedSelfReferencedSenseAmp",
    "CMOS_CAM_CELL",
    "CMOS_TCAM_CELL",
    "DynamicCam",
    "DynamicCamConfig",
    "FEFET_CAM_CELL",
    "GATHER_CYCLES_PER_VALUE",
    "SenseAmpReading",
    "TopKResult",
    "select_topk",
]
