"""Functional and timing model of a single CAM array.

A CAM array stores ``rows`` words of ``word_bits`` bits each.  During a
search the query is broadcast on the search lines, every row compares itself
against the query in parallel, and the per-row match-line discharge time is
digitised by the clocked self-referenced sense amplifiers into per-row
Hamming distances -- all within O(1) time, independent of the number of rows
(paper Sec. II-A).

The model in this module is *bit-accurate* for the stored contents and the
mismatch counts, and *analytical* for energy and latency: search energy is
``cells_active * cell.search_energy_fj`` plus peripheral overhead, and search
latency is a fixed number of accelerator clock cycles per search operation
(precharge + discharge sensing + read-out).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cam.cell import CamCell, FEFET_CAM_CELL
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp


@dataclass(frozen=True)
class CamSearchResult:
    """Outcome of one CAM search operation.

    Attributes
    ----------
    distances:
        Per-row Hamming distances as reported by the sense amplifiers
        (``-1`` for rows that are not populated).
    true_distances:
        Exact per-row Hamming distances (for populated rows).
    energy_pj:
        Dynamic search energy of the operation in picojoules.
    latency_cycles:
        Latency of the operation in accelerator clock cycles.
    matched_rows:
        Indices of populated rows with distance zero (exact matches), kept
        for associative-memory style uses of the array.
    """

    distances: np.ndarray
    true_distances: np.ndarray
    energy_pj: float
    latency_cycles: int
    matched_rows: tuple[int, ...]


class CamArray:
    """A single CAM array of ``rows`` x ``word_bits`` cells.

    Parameters
    ----------
    rows:
        Number of CAM words (rows).
    word_bits:
        Width of each word in bits.
    cell:
        Device model of the cells.
    search_latency_cycles:
        Accelerator cycles consumed by one search (precharge, discharge
        sensing window, sense-amplifier read-out).  DeepCAM runs its CAM at
        300 MHz with a 3-cycle search pipeline by default.
    sense_amp:
        Sense-amplifier model; a noise-free one is constructed by default.
    peripheral_energy_factor:
        Multiplier applied on top of raw cell search energy to account for
        search-line drivers, precharge and sense amplifiers (1.25 = 25 %
        overhead, consistent with EvaCAM-style breakdowns).
    """

    def __init__(self, rows: int, word_bits: int, cell: CamCell = FEFET_CAM_CELL,
                 search_latency_cycles: int = 3,
                 sense_amp: ClockedSelfReferencedSenseAmp | None = None,
                 peripheral_energy_factor: float = 1.25) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        if word_bits <= 0:
            raise ValueError("word_bits must be positive")
        if search_latency_cycles <= 0:
            raise ValueError("search_latency_cycles must be positive")
        if peripheral_energy_factor < 1.0:
            raise ValueError("peripheral_energy_factor must be >= 1.0")
        self.rows = int(rows)
        self.word_bits = int(word_bits)
        self.cell = cell
        self.search_latency_cycles = int(search_latency_cycles)
        self.peripheral_energy_factor = float(peripheral_energy_factor)
        self.sense_amp = sense_amp if sense_amp is not None else ClockedSelfReferencedSenseAmp(
            word_bits=word_bits, cell=cell)
        self._storage = np.zeros((self.rows, self.word_bits), dtype=np.uint8)
        self._populated = np.zeros(self.rows, dtype=bool)
        self._write_energy_pj = 0.0
        self._search_energy_pj = 0.0
        self._search_count = 0

    # -- contents ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of populated rows."""
        return int(np.count_nonzero(self._populated))

    @property
    def utilization(self) -> float:
        """Fraction of rows currently populated (the Fig. 9 utilization metric)."""
        return self.occupancy / self.rows

    @property
    def total_cells(self) -> int:
        """Number of cells in the array."""
        return self.rows * self.word_bits

    def area_um2(self) -> float:
        """Cell-array area (peripheral area is covered by the energy model)."""
        return self.total_cells * self.cell.area_um2

    def clear(self) -> None:
        """Erase all rows (contents and occupancy flags)."""
        self._storage[:] = 0
        self._populated[:] = False

    def write_row(self, row: int, bits: np.ndarray) -> float:
        """Store ``bits`` into ``row``; returns the write energy in pJ."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range 0..{self.rows - 1}")
        data = np.asarray(bits).ravel()
        if data.size != self.word_bits:
            raise ValueError(f"expected {self.word_bits} bits, got {data.size}")
        if not np.all(np.isin(data, (0, 1))):
            raise ValueError("bits must be 0/1 values")
        self._storage[row] = data.astype(np.uint8)
        self._populated[row] = True
        energy_pj = self.word_bits * self.cell.write_energy_fj * 1e-3
        self._write_energy_pj += energy_pj
        return energy_pj

    def write_rows(self, bits_matrix: np.ndarray, start_row: int = 0) -> float:
        """Store several rows starting at ``start_row``; returns write energy in pJ."""
        matrix = np.asarray(bits_matrix)
        if matrix.ndim != 2:
            raise ValueError("bits_matrix must be 2-D")
        if start_row + matrix.shape[0] > self.rows:
            raise ValueError(
                f"cannot store {matrix.shape[0]} rows starting at {start_row}: "
                f"array has only {self.rows} rows"
            )
        energy = 0.0
        for offset, row_bits in enumerate(matrix):
            energy += self.write_row(start_row + offset, row_bits)
        return energy

    def read_row(self, row: int) -> np.ndarray:
        """Read back a stored row (for verification; not a hardware fast path)."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range 0..{self.rows - 1}")
        if not self._populated[row]:
            raise ValueError(f"row {row} is not populated")
        return self._storage[row].copy()

    # -- search --------------------------------------------------------------------

    def search_energy_pj(self) -> float:
        """Dynamic energy of one search over the whole array in pJ."""
        active_cells = self.occupancy * self.word_bits
        raw_fj = active_cells * self.cell.search_energy_fj
        return raw_fj * self.peripheral_energy_factor * 1e-3

    def search(self, query_bits: np.ndarray) -> CamSearchResult:
        """Broadcast ``query_bits`` and return per-row Hamming distances."""
        query = np.asarray(query_bits).ravel()
        if query.size != self.word_bits:
            raise ValueError(f"query must have {self.word_bits} bits, got {query.size}")
        if not np.all(np.isin(query, (0, 1))):
            raise ValueError("query bits must be 0/1 values")

        mismatches = np.where(
            self._populated[:, None],
            self._storage != query.astype(np.uint8)[None, :],
            False,
        ).sum(axis=1)

        true_distances = np.where(self._populated, mismatches, -1).astype(np.int64)
        populated_counts = mismatches[self._populated]
        sensed = np.full(self.rows, -1, dtype=np.int64)
        if populated_counts.size:
            sensed_populated = self.sense_amp.estimate_distances(populated_counts)
            sensed[self._populated] = sensed_populated

        energy = self.search_energy_pj()
        self._search_energy_pj += energy
        self._search_count += 1

        matched = tuple(int(i) for i in np.nonzero((sensed == 0) & self._populated)[0])
        return CamSearchResult(
            distances=sensed,
            true_distances=true_distances,
            energy_pj=energy,
            latency_cycles=self.search_latency_cycles,
            matched_rows=matched,
        )

    def search_batch(self, queries: np.ndarray) -> tuple[np.ndarray, float, int]:
        """Search several queries back to back.

        Returns
        -------
        (distances, energy_pj, latency_cycles):
            ``distances`` has shape ``(num_queries, rows)``; unpopulated rows
            hold ``-1``.  Energy and latency are totals over all queries
            (queries are serialised on the single search port).
        """
        query_matrix = np.asarray(queries)
        if query_matrix.ndim != 2:
            raise ValueError("queries must be a 2-D bit matrix")
        distances = np.empty((query_matrix.shape[0], self.rows), dtype=np.int64)
        energy = 0.0
        latency = 0
        for index, query in enumerate(query_matrix):
            result = self.search(query)
            distances[index] = result.distances
            energy += result.energy_pj
            latency += result.latency_cycles
        return distances, energy, latency

    # -- accounting ----------------------------------------------------------------

    @property
    def accumulated_write_energy_pj(self) -> float:
        """Total write energy spent since construction/clear."""
        return self._write_energy_pj

    @property
    def accumulated_search_energy_pj(self) -> float:
        """Total search energy spent since construction."""
        return self._search_energy_pj

    @property
    def search_count(self) -> int:
        """Number of search operations performed."""
        return self._search_count
