"""Functional and timing model of a single CAM array.

A CAM array stores ``rows`` words of ``word_bits`` bits each.  During a
search the query is broadcast on the search lines, every row compares itself
against the query in parallel, and the per-row match-line discharge time is
digitised by the clocked self-referenced sense amplifiers into per-row
Hamming distances -- all within O(1) time, independent of the number of rows
(paper Sec. II-A).

The model in this module is *bit-accurate* for the stored contents and the
mismatch counts, and *analytical* for energy and latency: search energy is
``cells_active * cell.search_energy_fj`` plus peripheral overhead, and search
latency is a fixed number of accelerator clock cycles per search operation
(precharge + discharge sensing + read-out).

Storage is held bit-packed (``uint64`` words, 64 cells per word) and every
search is one vectorised XOR+popcount over the packed matrix -- mirroring
the hardware, where the comparison happens in all cells at once rather than
cell by cell.  Bits are validated to be 0/1 once, when they are written;
searches only validate the (small) query.  Set ``debug_validate=True`` to
additionally re-check the stored contents on every search, which is useful
when hunting memory-corruption bugs in new kernels but is off the hot path
by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cam.cell import CamCell, FEFET_CAM_CELL
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp
from repro.cam.topk import (
    GATHER_CYCLES_PER_VALUE,
    TopKResult,
    empty_topk,
    select_topk,
    validate_k,
)
from repro.bitops import (
    pack_bits,
    packed_hamming_matrix,
    packed_hamming_vector,
    unpack_bits,
    words_for_bits,
)


def _validate_binary(bits: np.ndarray, what: str) -> np.ndarray:
    """Check 0/1-ness in one vectorised pass and return a uint8 view/copy."""
    data = np.asarray(bits)
    if data.size and not np.all((data == 0) | (data == 1)):
        raise ValueError(f"{what} must be 0/1 values")
    return data.astype(np.uint8, copy=False)


@dataclass(frozen=True)
class CamSearchResult:
    """Outcome of one CAM search operation.

    Attributes
    ----------
    distances:
        Per-row Hamming distances as reported by the sense amplifiers
        (``-1`` for rows that are not populated).
    true_distances:
        Exact per-row Hamming distances (for populated rows).
    energy_pj:
        Dynamic search energy of the operation in picojoules.
    latency_cycles:
        Latency of the operation in accelerator clock cycles.
    matched_rows:
        Indices of populated rows with distance zero (exact matches), kept
        for associative-memory style uses of the array.
    """

    distances: np.ndarray
    true_distances: np.ndarray
    energy_pj: float
    latency_cycles: int
    matched_rows: tuple[int, ...]


class CamArray:
    """A single CAM array of ``rows`` x ``word_bits`` cells.

    Parameters
    ----------
    rows:
        Number of CAM words (rows).
    word_bits:
        Width of each word in bits.
    cell:
        Device model of the cells.
    search_latency_cycles:
        Accelerator cycles consumed by one search (precharge, discharge
        sensing window, sense-amplifier read-out).  DeepCAM runs its CAM at
        300 MHz with a 3-cycle search pipeline by default.
    sense_amp:
        Sense-amplifier model; a noise-free one is constructed by default.
    peripheral_energy_factor:
        Multiplier applied on top of raw cell search energy to account for
        search-line drivers, precharge and sense amplifiers (1.25 = 25 %
        overhead, consistent with EvaCAM-style breakdowns).
    debug_validate:
        Re-validate the stored contents on every search.  Contents are
        always validated at write time; this flag adds a belt-and-braces
        recheck for debugging and is deliberately off the hot path.
    """

    def __init__(self, rows: int, word_bits: int, cell: CamCell = FEFET_CAM_CELL,
                 search_latency_cycles: int = 3,
                 sense_amp: ClockedSelfReferencedSenseAmp | None = None,
                 peripheral_energy_factor: float = 1.25,
                 debug_validate: bool = False) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        if word_bits <= 0:
            raise ValueError("word_bits must be positive")
        if search_latency_cycles <= 0:
            raise ValueError("search_latency_cycles must be positive")
        if peripheral_energy_factor < 1.0:
            raise ValueError("peripheral_energy_factor must be >= 1.0")
        self.rows = int(rows)
        self.word_bits = int(word_bits)
        self.cell = cell
        self.search_latency_cycles = int(search_latency_cycles)
        self.peripheral_energy_factor = float(peripheral_energy_factor)
        self.debug_validate = bool(debug_validate)
        self.sense_amp = sense_amp if sense_amp is not None else ClockedSelfReferencedSenseAmp(
            word_bits=word_bits, cell=cell)
        self._storage_words = int(words_for_bits(self.word_bits))
        self._storage = np.zeros((self.rows, self._storage_words), dtype=np.uint64)
        self._populated = np.zeros(self.rows, dtype=bool)
        self._write_energy_pj = 0.0
        self._search_energy_pj = 0.0
        self._search_count = 0

    # -- contents ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of populated rows."""
        return int(np.count_nonzero(self._populated))

    @property
    def utilization(self) -> float:
        """Fraction of rows currently populated (the Fig. 9 utilization metric)."""
        return self.occupancy / self.rows

    @property
    def total_cells(self) -> int:
        """Number of cells in the array."""
        return self.rows * self.word_bits

    @property
    def packed_storage(self) -> np.ndarray:
        """Read-only view of the packed ``(rows, words)`` storage matrix."""
        view = self._storage.view()
        view.flags.writeable = False
        return view

    @property
    def populated_mask(self) -> np.ndarray:
        """Read-only ``(rows,)`` boolean mask of populated rows."""
        view = self._populated.view()
        view.flags.writeable = False
        return view

    def area_um2(self) -> float:
        """Cell-array area (peripheral area is covered by the energy model)."""
        return self.total_cells * self.cell.area_um2

    def clear(self) -> None:
        """Erase all rows (contents and occupancy flags)."""
        self._storage[:] = 0
        self._populated[:] = False

    def write_row(self, row: int, bits: np.ndarray) -> float:
        """Store ``bits`` into ``row``; returns the write energy in pJ."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range 0..{self.rows - 1}")
        data = np.asarray(bits).ravel()
        if data.size != self.word_bits:
            raise ValueError(f"expected {self.word_bits} bits, got {data.size}")
        self._storage[row] = pack_bits(_validate_binary(data, "bits"))
        self._populated[row] = True
        energy_pj = self._row_write_energy_pj()
        self._write_energy_pj += energy_pj
        return energy_pj

    def write_rows(self, bits_matrix: np.ndarray, start_row: int = 0) -> float:
        """Store several rows starting at ``start_row``; returns write energy in pJ.

        The whole block is validated and packed in one vectorised pass and
        stored with a single slice assignment; energy is one closed-form
        computation (rows are homogeneous) rather than a per-row loop.
        """
        matrix = np.asarray(bits_matrix)
        if matrix.ndim != 2:
            raise ValueError("bits_matrix must be 2-D")
        if start_row < 0 or start_row + matrix.shape[0] > self.rows:
            raise ValueError(
                f"cannot store {matrix.shape[0]} rows starting at {start_row}: "
                f"array has only {self.rows} rows"
            )
        if matrix.shape[0] == 0:
            return 0.0
        if matrix.shape[1] != self.word_bits:
            raise ValueError(
                f"expected {self.word_bits} bits per row, got {matrix.shape[1]}"
            )
        stop = start_row + matrix.shape[0]
        self._storage[start_row:stop] = pack_bits(_validate_binary(matrix, "bits"))
        self._populated[start_row:stop] = True
        energy_pj = matrix.shape[0] * self._row_write_energy_pj()
        self._write_energy_pj += energy_pj
        return energy_pj

    def read_row(self, row: int) -> np.ndarray:
        """Read back a stored row (for verification; not a hardware fast path)."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range 0..{self.rows - 1}")
        if not self._populated[row]:
            raise ValueError(f"row {row} is not populated")
        return unpack_bits(self._storage[row], self.word_bits).astype(np.uint8)

    def _row_write_energy_pj(self) -> float:
        return self.word_bits * self.cell.write_energy_fj * 1e-3

    def _debug_recheck_storage(self) -> None:
        """Optional paranoia pass over the packed storage.

        The one corruption mode that skews search results is a nonzero bit
        in the zero-padded tail of the last storage word (the XOR+popcount
        kernel sees all 64 bits of every word).  Re-packing the decoded
        bits must reproduce the storage exactly; any stray padding bit
        breaks that round-trip.
        """
        repacked = pack_bits(unpack_bits(self._storage, self.word_bits))
        if not np.array_equal(repacked, self._storage):
            raise AssertionError(
                "CAM storage corrupted: nonzero padding bits in packed words")

    # -- search --------------------------------------------------------------------

    def search_energy_pj(self) -> float:
        """Dynamic energy of one search over the whole array in pJ."""
        active_cells = self.occupancy * self.word_bits
        raw_fj = active_cells * self.cell.search_energy_fj
        return raw_fj * self.peripheral_energy_factor * 1e-3

    def _pack_queries(self, queries: np.ndarray, what: str) -> np.ndarray:
        """Validate a (batch, word_bits) query block and pack it once."""
        if queries.shape[-1] != self.word_bits:
            raise ValueError(
                f"{what} must have {self.word_bits} bits, got {queries.shape[-1]}"
            )
        return pack_bits(_validate_binary(queries, f"{what} bits"))

    def search(self, query_bits: np.ndarray) -> CamSearchResult:
        """Broadcast ``query_bits`` and return per-row Hamming distances."""
        query = np.asarray(query_bits).ravel()
        packed_query = self._pack_queries(query, "query")
        if self.debug_validate:
            self._debug_recheck_storage()

        mismatches = packed_hamming_vector(packed_query, self._storage)

        true_distances = np.where(self._populated, mismatches, -1).astype(np.int64)
        populated_counts = mismatches[self._populated]
        sensed = np.full(self.rows, -1, dtype=np.int64)
        if populated_counts.size:
            sensed_populated = self.sense_amp.estimate_distances(populated_counts)
            sensed[self._populated] = sensed_populated

        energy = self.search_energy_pj()
        self._search_energy_pj += energy
        self._search_count += 1

        matched = tuple(int(i) for i in np.nonzero((sensed == 0) & self._populated)[0])
        return CamSearchResult(
            distances=sensed,
            true_distances=true_distances,
            energy_pj=energy,
            latency_cycles=self.search_latency_cycles,
            matched_rows=matched,
        )

    def search_batch(self, queries: np.ndarray) -> tuple[np.ndarray, float, int]:
        """Search several queries back to back.

        Returns
        -------
        (distances, energy_pj, latency_cycles):
            ``distances`` has shape ``(num_queries, rows)``; unpopulated rows
            hold ``-1``.  Energy and latency are totals over all queries
            (queries are serialised on the single search port).  An empty
            ``(0, k)`` batch is a no-op: ``(0, rows)`` distances, zero energy
            and latency.

        The whole batch is one packed XOR+popcount (no per-query Python
        loop); the sense amplifiers then digitise every populated (query,
        row) count in a single vectorised read-out.  Results, including the
        noise stream of a noisy sense amplifier, are bit-identical to
        issuing the queries one at a time through :meth:`search`.
        """
        query_matrix = np.asarray(queries)
        if query_matrix.ndim != 2:
            raise ValueError("queries must be a 2-D bit matrix")
        if query_matrix.shape[0] == 0:
            return np.full((0, self.rows), -1, dtype=np.int64), 0.0, 0
        packed_queries = self._pack_queries(query_matrix, "query")
        return self._search_packed_batch(packed_queries)

    def search_batch_packed(self, packed_queries: np.ndarray) -> tuple[np.ndarray, float, int]:
        """Batch search over already-packed ``(num_queries, words)`` queries.

        Same contract as :meth:`search_batch`, but the queries arrive as the
        ``uint64`` words the kernels natively consume (e.g. straight from
        :meth:`repro.core.hashing.RandomProjectionHasher.hash_batch_packed`),
        skipping the bit validation and re-packing entirely -- the serving
        fast path.  Packings must come from :func:`repro.bitops.pack_bits`
        (or equivalent), i.e. with the padding bits of the last word zero;
        stray padding bits would be counted as mismatches.
        """
        packed = np.ascontiguousarray(packed_queries, dtype=np.uint64)
        if packed.ndim != 2:
            raise ValueError("packed queries must be a 2-D word matrix")
        if packed.shape[0] == 0:
            return np.full((0, self.rows), -1, dtype=np.int64), 0.0, 0
        if packed.shape[1] != self._storage_words:
            raise ValueError(
                f"packed queries must have {self._storage_words} words, "
                f"got {packed.shape[1]}"
            )
        return self._search_packed_batch(packed)

    def mismatch_counts_packed(self, packed_queries: np.ndarray) -> tuple[np.ndarray, float, int]:
        """Raw per-row mismatch counts for a packed batch (no sense-amp read-out).

        The scatter-gather substrate of :mod:`repro.shard`: each shard array
        reports the exact XOR+popcount mismatch counts for *all* of its rows
        (unpopulated rows count against the all-zero stored word; mask them
        with :attr:`populated_mask`), so a cluster can reassemble the global
        count matrix and digitise it once, in global row order -- which is
        what keeps sharded results bit-identical to a single array, noise or
        no noise.  Energy, latency and the search counter accrue exactly as
        in :meth:`search_batch_packed`; only the sense-amplifier read-out is
        left to the caller.
        """
        packed = np.ascontiguousarray(packed_queries, dtype=np.uint64)
        if packed.ndim != 2:
            raise ValueError("packed queries must be a 2-D word matrix")
        if packed.shape[0] == 0:
            return np.zeros((0, self.rows), dtype=np.int64), 0.0, 0
        if packed.shape[1] != self._storage_words:
            raise ValueError(
                f"packed queries must have {self._storage_words} words, "
                f"got {packed.shape[1]}"
            )
        return self._mismatch_core(packed)

    def _mismatch_core(self, packed: np.ndarray) -> tuple[np.ndarray, float, int]:
        """Kernel + accounting for a validated, non-empty packed batch."""
        if self.debug_validate:
            self._debug_recheck_storage()
        mismatches = packed_hamming_matrix(packed, self._storage)
        energy, latency = self.account_packed_search(packed.shape[0])
        return mismatches, energy, latency

    def account_packed_search(self, num_queries: int) -> tuple[float, int]:
        """Accrue search counters for a packed batch computed off-array.

        The execution plane can evaluate this array's rows outside the
        object -- process workers reading the cluster's shared packed
        storage -- but the analytic cost model is per-array state, so
        accounting stays on this side.  Charges exactly what an in-array
        :meth:`search_batch_packed` of ``num_queries`` queries would and
        returns the ``(energy_pj, latency_cycles)`` pair for the batch.
        """
        num_queries = int(num_queries)
        energy = num_queries * self.search_energy_pj()
        self._search_energy_pj += energy
        self._search_count += num_queries
        return energy, num_queries * self.search_latency_cycles

    def topk_packed(self, packed_queries: np.ndarray, k: int) -> TopKResult:
        """Top-k nearest rows for a packed batch (the retrieval fast path).

        Returns the ``k_eff = min(k, occupancy)`` best populated rows per
        query as a :class:`~repro.cam.topk.TopKResult`, sorted ascending by
        ``(sensed distance, row id)`` -- the deterministic tie-break every
        layer of the retrieval stack shares.  Degenerate batches are shaped
        no-ops exactly like :meth:`search_batch_packed`: an empty ``(0, w)``
        batch, ``k = 0`` or an empty array returns zero-row/zero-column
        results without issuing a search.

        With the noise-free default sense amplifier the selection runs on
        the raw mismatch counts (``argpartition`` over the count matrix) and
        only the ``k`` survivors are digitised -- noise-free read-out is an
        elementwise deterministic map, so this is bit-identical to
        digitise-everything-then-sort while skipping the full read-out
        pass.  A *noisy* amplifier digitises every populated row first, in
        the exact flat order :meth:`search_batch_packed` uses, so the noise
        stream is consumed identically and the top-k over the sensed
        distances matches a full search followed by a sort.
        """
        k_eff = min(validate_k(k), self.occupancy)
        packed = np.ascontiguousarray(packed_queries, dtype=np.uint64)
        if packed.ndim != 2:
            raise ValueError("packed queries must be a 2-D word matrix")
        num_queries = packed.shape[0]
        if num_queries == 0 or k_eff == 0:
            return empty_topk(num_queries, k_eff)
        if packed.shape[1] != self._storage_words:
            raise ValueError(
                f"packed queries must have {self._storage_words} words, "
                f"got {packed.shape[1]}"
            )
        counts, energy, latency = self._mismatch_core(packed)
        populated = self._populated
        row_ids = np.nonzero(populated)[0].astype(np.int64)
        populated_counts = counts[:, populated]
        if self.sense_amp.timing_noise_sigma_ps > 0.0:
            sensed = self.sense_amp.estimate_distances(
                populated_counts.reshape(-1)).reshape(num_queries, -1)
            indices, distances = select_topk(sensed, row_ids, k_eff, self.rows)
        else:
            indices, raw = select_topk(populated_counts, row_ids, k_eff,
                                       self.rows)
            distances = np.asarray(self.sense_amp.estimate_distances(
                raw.reshape(-1)), dtype=np.int64).reshape(raw.shape)
        gathered = num_queries * k_eff
        return TopKResult(
            indices=indices,
            distances=distances,
            energy_pj=energy,
            latency_cycles=latency + gathered * GATHER_CYCLES_PER_VALUE,
            gathered_values=gathered,
        )

    def _search_packed_batch(self, packed_queries: np.ndarray) -> tuple[np.ndarray, float, int]:
        """Shared body of the batch search paths (validated packed input)."""
        mismatches, energy, latency = self._mismatch_core(packed_queries)
        num_queries = packed_queries.shape[0]
        distances = np.full((num_queries, self.rows), -1, dtype=np.int64)

        populated = self._populated
        if populated.any():
            flat_counts = mismatches[:, populated].reshape(-1)
            sensed = self.sense_amp.estimate_distances(flat_counts)
            distances[:, populated] = sensed.reshape(num_queries, -1)
        return distances, energy, latency

    # -- accounting ----------------------------------------------------------------

    @property
    def accumulated_write_energy_pj(self) -> float:
        """Total write energy spent since construction/clear."""
        return self._write_energy_pj

    @property
    def accumulated_search_energy_pj(self) -> float:
        """Total search energy spent since construction."""
        return self._search_energy_pj

    @property
    def search_count(self) -> int:
        """Number of search operations performed."""
        return self._search_count
