"""Dynamic-size CAM built from 256-bit chunks (paper Sec. III-B, Fig. 6).

The DeepCAM accelerator needs a different hash length -- and therefore a
different CAM word width -- for every CNN layer.  Rather than provisioning a
fixed 1024-bit CAM and wasting search energy on unused columns, the paper
splits each row into four 256-bit *chunks* connected by transmission gates.
Enabling one to four chunks yields effective word widths of 256, 512, 768 or
1024 bits; disabled chunks are isolated from the match line and consume no
search energy.

:class:`DynamicCam` wraps a full-width :class:`~repro.cam.array.CamArray`
and adds the chunk-enable control, the transmission-gate overhead, and the
reconfiguration bookkeeping.  It is the hardware unit the DeepCAM mapper
(:mod:`repro.core.mapping`) instantiates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitops import words_for_bits
from repro.cam.array import CamArray, CamSearchResult
from repro.cam.topk import TopKResult, empty_topk, validate_k
from repro.cam.cell import CamCell, FEFET_CAM_CELL
from repro.cam.sense_amplifier import ClockedSelfReferencedSenseAmp

#: Width of one chunk in bits.
CHUNK_BITS = 256

#: Number of chunks per row in the DeepCAM design.
NUM_CHUNKS = 4

#: Row counts the paper evaluates (Sec. IV-A).
SUPPORTED_ROW_COUNTS = (64, 128, 256, 512)


@dataclass(frozen=True)
class DynamicCamConfig:
    """Static configuration of a dynamic CAM instance.

    Attributes
    ----------
    rows:
        Number of CAM rows (64/128/256/512 in the paper's sweeps; other
        positive values are accepted for exploration).
    max_word_bits:
        Full word width when all chunks are enabled.
    chunk_bits:
        Width of one chunk.
    cell:
        Device model of the cells.
    search_latency_cycles:
        Pipeline depth of one search operation in accelerator cycles.
    transmission_gate_energy_fj:
        Energy of toggling one transmission gate during reconfiguration.
    """

    rows: int = 64
    max_word_bits: int = CHUNK_BITS * NUM_CHUNKS
    chunk_bits: int = CHUNK_BITS
    cell: CamCell = FEFET_CAM_CELL
    search_latency_cycles: int = 3
    transmission_gate_energy_fj: float = 2.0

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError("rows must be positive")
        if self.chunk_bits <= 0:
            raise ValueError("chunk_bits must be positive")
        if self.max_word_bits % self.chunk_bits != 0:
            raise ValueError("max_word_bits must be a multiple of chunk_bits")

    @property
    def num_chunks(self) -> int:
        """Number of chunks per row."""
        return self.max_word_bits // self.chunk_bits

    @property
    def supported_word_bits(self) -> tuple[int, ...]:
        """Word widths reachable by enabling 1..num_chunks chunks."""
        return tuple(self.chunk_bits * n for n in range(1, self.num_chunks + 1))


class DynamicCam:
    """A chunked, width-reconfigurable CAM array.

    The active word width starts at one chunk (256 bits) and is changed with
    :meth:`configure_word_bits`.  Writes and searches always operate at the
    *active* width; the underlying storage keeps the full width so that
    re-enabling chunks does not destroy previously written data.
    """

    def __init__(self, config: DynamicCamConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else DynamicCamConfig()
        self._array = CamArray(
            rows=self.config.rows,
            word_bits=self.config.max_word_bits,
            cell=self.config.cell,
            search_latency_cycles=self.config.search_latency_cycles,
            sense_amp=ClockedSelfReferencedSenseAmp(
                word_bits=self.config.max_word_bits, cell=self.config.cell, seed=seed),
        )
        self._active_chunks = 1
        self._reconfigurations = 0
        self._reconfiguration_energy_pj = 0.0

    # -- configuration ----------------------------------------------------------

    @property
    def rows(self) -> int:
        """Number of CAM rows."""
        return self.config.rows

    @property
    def active_chunks(self) -> int:
        """Number of currently enabled chunks."""
        return self._active_chunks

    @property
    def active_word_bits(self) -> int:
        """Currently active word width in bits."""
        return self._active_chunks * self.config.chunk_bits

    @property
    def reconfiguration_count(self) -> int:
        """How many times the word width has been changed."""
        return self._reconfigurations

    @property
    def reconfiguration_energy_pj(self) -> float:
        """Total energy spent toggling transmission gates."""
        return self._reconfiguration_energy_pj

    def configure_word_bits(self, word_bits: int) -> None:
        """Enable as many chunks as needed to reach ``word_bits``.

        ``word_bits`` must be one of the chunk-aligned widths (256/512/768/
        1024 for the default geometry).  Reconfiguration toggles one
        transmission gate per row per chunk whose enable state changes.
        """
        if word_bits not in self.config.supported_word_bits:
            raise ValueError(
                f"word_bits {word_bits} not supported; choose one of "
                f"{self.config.supported_word_bits}"
            )
        new_chunks = word_bits // self.config.chunk_bits
        if new_chunks == self._active_chunks:
            return
        toggled = abs(new_chunks - self._active_chunks) * self.rows
        self._reconfiguration_energy_pj += (
            toggled * self.config.transmission_gate_energy_fj * 1e-3
        )
        self._active_chunks = new_chunks
        self._reconfigurations += 1

    def configure_for_hash_length(self, hash_length: int) -> int:
        """Enable the minimum word width that fits ``hash_length`` bits.

        Returns the configured word width.  Hash lengths above the maximum
        word width are rejected -- the mapper must split such signatures.
        """
        if hash_length <= 0:
            raise ValueError("hash_length must be positive")
        if hash_length > self.config.max_word_bits:
            raise ValueError(
                f"hash_length {hash_length} exceeds the maximum word width "
                f"{self.config.max_word_bits}"
            )
        for width in self.config.supported_word_bits:
            if hash_length <= width:
                self.configure_word_bits(width)
                return width
        raise AssertionError("unreachable: supported widths cover max_word_bits")

    # -- data path -----------------------------------------------------------------

    def clear(self) -> None:
        """Erase all stored rows."""
        self._array.clear()

    def _pad_to_active_width(self, bits: np.ndarray) -> np.ndarray:
        data = np.asarray(bits).ravel()
        if data.size > self.active_word_bits:
            raise ValueError(
                f"data of {data.size} bits exceeds the active word width "
                f"{self.active_word_bits}"
            )
        padded = np.zeros(self.config.max_word_bits, dtype=np.uint8)
        padded[: data.size] = data
        return padded

    def write_row(self, row: int, bits: np.ndarray) -> float:
        """Write a signature into a row at the active word width."""
        return self._array.write_row(row, self._pad_to_active_width(bits))

    def _pad_matrix_to_active_width(self, matrix: np.ndarray, what: str) -> np.ndarray:
        """Zero-pad a (batch, <=active_width) block to the full word width."""
        if matrix.shape[1] > self.active_word_bits:
            raise ValueError(
                f"{what} of {matrix.shape[1]} bits exceeds the active word width "
                f"{self.active_word_bits}"
            )
        padded = np.zeros((matrix.shape[0], self.config.max_word_bits), dtype=np.uint8)
        padded[:, : matrix.shape[1]] = matrix
        return padded

    def write_rows(self, bits_matrix: np.ndarray, start_row: int = 0) -> float:
        """Write several signatures starting at ``start_row``.

        The block is padded to the full word width in one vectorised pass
        and handed to the underlying array as a single bulk write.
        """
        matrix = np.asarray(bits_matrix)
        if matrix.ndim != 2:
            raise ValueError("bits_matrix must be 2-D")
        if matrix.shape[0] == 0:
            return 0.0
        return self._array.write_rows(
            self._pad_matrix_to_active_width(matrix, "data"), start_row)

    def search(self, query_bits: np.ndarray) -> CamSearchResult:
        """Search at the active word width.

        Only the enabled chunks contribute mismatches and search energy; the
        raw result from the full-width array is corrected accordingly.
        """
        query = np.asarray(query_bits).ravel()
        if query.size > self.active_word_bits:
            raise ValueError(
                f"query of {query.size} bits exceeds the active word width "
                f"{self.active_word_bits}"
            )
        padded = self._pad_to_active_width(query)
        result = self._array.search(padded)
        # Scale energy down to the enabled fraction of the row: disabled
        # chunks are isolated by the transmission gates.
        fraction = self.active_word_bits / self.config.max_word_bits
        scaled_energy = result.energy_pj * fraction
        return CamSearchResult(
            distances=result.distances,
            true_distances=result.true_distances,
            energy_pj=scaled_energy,
            latency_cycles=result.latency_cycles,
            matched_rows=result.matched_rows,
        )

    def search_batch(self, queries: np.ndarray) -> tuple[np.ndarray, float, int]:
        """Search several queries back to back at the active width.

        One vectorised XOR+popcount over the whole batch (via
        :meth:`CamArray.search_batch`), with the energy scaled down to the
        enabled fraction of the row exactly as :meth:`search` does.
        """
        query_matrix = np.asarray(queries)
        if query_matrix.ndim != 2:
            raise ValueError("queries must be a 2-D bit matrix")
        if query_matrix.shape[0] == 0:
            return np.full((0, self.rows), -1, dtype=np.int64), 0.0, 0
        padded = self._pad_matrix_to_active_width(query_matrix, "query")
        distances, energy, latency = self._array.search_batch(padded)
        fraction = self.active_word_bits / self.config.max_word_bits
        return distances, energy * fraction, latency

    def _extend_packed_queries(self, packed_queries: np.ndarray) -> np.ndarray | None:
        """Validate an active-width packed batch and zero-extend it to full width.

        Shared front half of both packed search paths.  Returns ``None``
        for an empty batch (the callers' no-op case).  Disabled chunks
        compare all-zero against the zero-filled storage tail, so they
        contribute no mismatches -- exactly as the bit-level path pads.
        """
        packed = np.ascontiguousarray(packed_queries, dtype=np.uint64)
        if packed.ndim != 2:
            raise ValueError("packed queries must be a 2-D word matrix")
        if packed.shape[0] == 0:
            return None
        expected = words_for_bits(self.active_word_bits)
        if packed.shape[1] != expected:
            raise ValueError(
                f"packed queries must have {expected} words for the active "
                f"width {self.active_word_bits}, got {packed.shape[1]}"
            )
        full_words = words_for_bits(self.config.max_word_bits)
        if packed.shape[1] < full_words:
            extended = np.zeros((packed.shape[0], full_words), dtype=np.uint64)
            extended[:, : packed.shape[1]] = packed
            packed = extended
        return packed

    @property
    def _active_energy_fraction(self) -> float:
        """Enabled fraction of each row (disabled chunks draw no energy)."""
        return self.active_word_bits / self.config.max_word_bits

    def search_batch_packed(self, packed_queries: np.ndarray) -> tuple[np.ndarray, float, int]:
        """Batch search over queries packed at the *active* word width.

        The packed counterpart of :meth:`search_batch`: queries arrive as
        ``(num_queries, words_for_bits(active_word_bits))`` ``uint64`` words
        (e.g. from ``hash_batch_packed``) and are zero-extended to the full
        word width in the packed domain.
        """
        packed = self._extend_packed_queries(packed_queries)
        if packed is None:
            return np.full((0, self.rows), -1, dtype=np.int64), 0.0, 0
        distances, energy, latency = self._array.search_batch_packed(packed)
        return distances, energy * self._active_energy_fraction, latency

    def mismatch_counts_packed(self, packed_queries: np.ndarray) -> tuple[np.ndarray, float, int]:
        """Raw mismatch counts at the active width (no sense-amp read-out).

        The dynamic-CAM counterpart of
        :meth:`repro.cam.array.CamArray.mismatch_counts_packed`, so chunked
        arrays can serve as shard ports too -- provided the port factory
        configures each array's *active* word width to the cluster's word
        width (the pipeline packs queries at its own width and does not
        repack per port; a narrower active width rejects the batch).
        """
        packed = self._extend_packed_queries(packed_queries)
        if packed is None:
            return np.zeros((0, self.rows), dtype=np.int64), 0.0, 0
        counts, energy, latency = self._array.mismatch_counts_packed(packed)
        return counts, energy * self._active_energy_fraction, latency

    def topk_packed(self, packed_queries: np.ndarray, k: int) -> TopKResult:
        """Top-k nearest rows at the active width (the retrieval fast path).

        The dynamic-CAM counterpart of :meth:`CamArray.topk_packed`:
        queries arrive packed at the *active* word width, are zero-extended
        to full width in the packed domain, and the search energy is scaled
        down to the enabled fraction of the row.  Indices, distances and
        the gather accounting are exactly the underlying array's.
        """
        packed = self._extend_packed_queries(packed_queries)
        if packed is None:
            return empty_topk(0, min(validate_k(k), self.occupancy))
        result = self._array.topk_packed(packed, k)
        return TopKResult(
            indices=result.indices,
            distances=result.distances,
            energy_pj=result.energy_pj * self._active_energy_fraction,
            latency_cycles=result.latency_cycles,
            gathered_values=result.gathered_values,
        )

    @property
    def populated_mask(self) -> np.ndarray:
        """Read-only boolean mask of populated rows."""
        return self._array.populated_mask

    # -- reporting -----------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of populated rows."""
        return self._array.occupancy

    @property
    def utilization(self) -> float:
        """Fraction of rows populated."""
        return self._array.utilization

    def area_um2(self) -> float:
        """Cell-array area including transmission-gate columns.

        One transmission-gate column (roughly two minimum-size transistors
        per row) sits between adjacent chunks.
        """
        gate_area_per_row = 0.4  # um^2 for an NMOS+PMOS pass gate at 45 nm
        gates = (self.config.num_chunks - 1) * self.rows
        return self._array.area_um2() + gates * gate_area_per_row
