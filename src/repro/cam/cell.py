"""CAM and TCAM cell models (CMOS SRAM-based and FeFET-based).

Paper Sec. II-A summarises the device-level trade-off DeepCAM builds on:

* a CMOS binary CAM cell needs 9-10 transistors and a CMOS TCAM cell needs
  16 transistors (SRAM storage plus a pull-down compare network);
* a non-volatile FeFET implementation needs only two transistors and two
  FeFET nodes, giving roughly **7.5x smaller cells** and **2.4x lower search
  energy** than the CMOS equivalent (Yin et al., FeCAM).

This module captures those relationships in a small, explicit data model so
that every higher-level energy/area estimate (array, dynamic CAM, Fig. 8
sweep) is derived from the same per-cell constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class CellTechnology(Enum):
    """Device technology of a CAM cell."""

    CMOS = "cmos"
    FEFET = "fefet"
    RRAM = "rram"


@dataclass(frozen=True)
class CamCell:
    """Per-cell physical and electrical parameters.

    Attributes
    ----------
    technology:
        Device technology of the storage/compare elements.
    ternary:
        ``True`` for a TCAM cell (stores 0/1/X), ``False`` for binary CAM.
    transistors:
        Transistor count per cell (FeFET devices count as transistors here
        since each FeFET is a gate-stack transistor).
    area_um2:
        Layout area of one cell in square micrometres (45 nm-class node).
    search_energy_fj:
        Dynamic energy of one compare (search) operation per cell in
        femtojoules, including its share of the search-line toggling.
    write_energy_fj:
        Energy to program one cell.
    leakage_nw:
        Static leakage per cell in nanowatts.
    match_pulldown_current_ua:
        Pull-down current contributed by one *mismatching* cell on the match
        line in microamperes; the discharge-time model in
        :mod:`repro.cam.array` uses this to convert mismatch counts into
        time.
    """

    technology: CellTechnology
    ternary: bool
    transistors: int
    area_um2: float
    search_energy_fj: float
    write_energy_fj: float
    leakage_nw: float
    match_pulldown_current_ua: float

    def __post_init__(self) -> None:
        if self.transistors <= 0:
            raise ValueError("transistors must be positive")
        if self.area_um2 <= 0:
            raise ValueError("area_um2 must be positive")
        if self.search_energy_fj < 0 or self.write_energy_fj < 0:
            raise ValueError("energies must be non-negative")
        if self.match_pulldown_current_ua <= 0:
            raise ValueError("match_pulldown_current_ua must be positive")

    @property
    def is_nonvolatile(self) -> bool:
        """Whether the cell retains its contents without power."""
        return self.technology in (CellTechnology.FEFET, CellTechnology.RRAM)

    def scaled_area_ratio(self, other: "CamCell") -> float:
        """Area of this cell relative to ``other`` (e.g. FeFET vs CMOS)."""
        return self.area_um2 / other.area_um2

    def scaled_energy_ratio(self, other: "CamCell") -> float:
        """Search energy of this cell relative to ``other``."""
        return self.search_energy_fj / other.search_energy_fj


# ---------------------------------------------------------------------------
# Reference cells.
#
# The CMOS numbers correspond to a 16T TCAM / 9T CAM at a 45 nm-class node
# (cell area ~1.4 um^2 for the TCAM).  The FeFET numbers follow the 7.5x
# area and 2.4x search-energy advantages reported in Yin et al. (FeCAM) and
# quoted by the DeepCAM paper.
# ---------------------------------------------------------------------------

CMOS_CAM_CELL = CamCell(
    technology=CellTechnology.CMOS,
    ternary=False,
    transistors=9,
    area_um2=0.90,
    search_energy_fj=1.20,
    write_energy_fj=0.80,
    leakage_nw=0.45,
    match_pulldown_current_ua=20.0,
)

CMOS_TCAM_CELL = CamCell(
    technology=CellTechnology.CMOS,
    ternary=True,
    transistors=16,
    area_um2=1.40,
    search_energy_fj=1.65,
    write_energy_fj=1.10,
    leakage_nw=0.80,
    match_pulldown_current_ua=20.0,
)

FEFET_CAM_CELL = CamCell(
    technology=CellTechnology.FEFET,
    ternary=True,
    transistors=2,
    area_um2=CMOS_TCAM_CELL.area_um2 / 7.5,
    search_energy_fj=CMOS_TCAM_CELL.search_energy_fj / 2.4,
    write_energy_fj=8.0,  # FeFET programming is more expensive than a search.
    leakage_nw=0.02,
    match_pulldown_current_ua=12.0,
)


def cell_for_technology(technology: CellTechnology | str, ternary: bool = True) -> CamCell:
    """Look up the reference cell for a technology.

    Parameters
    ----------
    technology:
        A :class:`CellTechnology` or its string value (``"cmos"``/``"fefet"``).
    ternary:
        For CMOS, selects the 16T TCAM cell instead of the 9T binary cell.
        FeFET cells are natively ternary-capable.
    """
    if isinstance(technology, str):
        technology = CellTechnology(technology.lower())
    if technology is CellTechnology.FEFET:
        return FEFET_CAM_CELL
    if technology is CellTechnology.CMOS:
        return CMOS_TCAM_CELL if ternary else CMOS_CAM_CELL
    raise ValueError(f"no reference CAM cell for technology {technology}")
