"""Deterministic top-k selection over CAM distance matrices.

Retrieval-style workloads (k-NN lookup, semantic dedup, cache probing) only
need the ``k`` best rows per query, not the full per-row distance vector a
classification search digitises and gathers.  This module is the shared
selection substrate for that path, used by :class:`~repro.cam.array.CamArray`,
:class:`~repro.cam.dynamic.DynamicCam` and the sharded pipeline's partial
gather:

* selection is over ``(distance, global row id)`` pairs, ascending, so ties
  between equidistant rows always break toward the lower global row id --
  the property that makes a sharded top-k bit-identical to a single-array
  full-sort regardless of shard count, placement policy or fan-out mode;
* ``np.argpartition`` does the heavy lifting (O(n) per query instead of the
  O(n log n) full sort), followed by one tiny sort of the k survivors.

The two are fused into one total order by encoding each candidate as a
single ``int64`` key ``distance * (max_row_id + 1) + row_id``; distances are
bounded by the word width and row ids by the cluster size, so the product
stays far below 2**63 for any geometry this codebase builds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Read-out cost model of the result gather: each candidate value crossing
#: the result bus costs one accelerator cycle.  A full gather moves every
#: populated row per query; a top-k partial gather moves only the
#: candidates -- the latency lever the retrieval path exists for.
GATHER_CYCLES_PER_VALUE = 1


@dataclass(frozen=True)
class TopKResult:
    """Outcome of one batched top-k CAM search.

    Attributes
    ----------
    indices:
        ``(num_queries, k_eff)`` global row ids of the best matches, sorted
        ascending by ``(distance, row id)``.  ``k_eff = min(k, occupancy)``:
        asking for more neighbours than populated rows returns them all.
    distances:
        ``(num_queries, k_eff)`` sensed Hamming distances aligned with
        ``indices``.
    energy_pj:
        Dynamic search energy of the operation in picojoules (the search
        itself still touches every populated cell -- top-k reduces the
        gather, not the match).
    latency_cycles:
        Search latency plus the gather read-out
        (:data:`GATHER_CYCLES_PER_VALUE` per gathered value per query).
    gathered_values:
        Total candidate values moved over the result bus for the whole
        batch -- ``num_queries * k_eff`` for a single array,
        ``num_queries * sum(min(k, shard_occupancy))`` for a sharded
        partial gather, versus ``num_queries * occupancy`` for a full
        gather.
    """

    indices: np.ndarray
    distances: np.ndarray
    energy_pj: float
    latency_cycles: int
    gathered_values: int

    @property
    def k_eff(self) -> int:
        """Number of neighbours actually returned per query."""
        return int(self.indices.shape[1])


def validate_k(k: int) -> int:
    """Top-k sizes must be non-negative integers (``0`` is a shaped no-op)."""
    size = int(k)
    if size < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return size


def combine_keys(values: np.ndarray, row_ids: np.ndarray,
                 id_bound: int) -> np.ndarray:
    """Fuse ``(value, row_id)`` into one int64 total-order key per candidate.

    ``id_bound`` must exceed every row id (the cluster's total row count
    does).  Broadcasting rules apply: ``row_ids`` may be one shared ``(n,)``
    column vector or a per-query ``(batch, n)`` matrix (the merge step of a
    partial gather, where each query selected different candidates).
    """
    return values.astype(np.int64) * np.int64(id_bound) + row_ids


def select_topk(values: np.ndarray, row_ids: np.ndarray, k: int,
                id_bound: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic batched top-k (smallest first) with row-id tie-break.

    Parameters
    ----------
    values:
        ``(batch, n)`` integer distances (raw mismatch counts or sensed).
    row_ids:
        Global row ids aligned with the columns of ``values`` -- either a
        shared ``(n,)`` vector or a per-query ``(batch, n)`` matrix.
    k:
        Neighbours to keep per query; clamped to ``n``.
    id_bound:
        Exclusive upper bound on row ids (see :func:`combine_keys`).

    Returns
    -------
    (indices, distances):
        ``(batch, k_eff)`` arrays sorted ascending by ``(value, row_id)``.
    """
    matrix = np.asarray(values)
    if matrix.ndim != 2:
        raise ValueError("values must be a 2-D (batch, candidates) matrix")
    batch, candidates = matrix.shape
    k_eff = min(validate_k(k), candidates)
    ids = np.asarray(row_ids, dtype=np.int64)
    if k_eff == 0:
        return (np.zeros((batch, 0), dtype=np.int64),
                np.zeros((batch, 0), dtype=np.int64))
    keys = combine_keys(matrix, ids, id_bound)
    if k_eff < candidates:
        picked = np.argpartition(keys, k_eff - 1, axis=1)[:, :k_eff]
        picked_keys = np.take_along_axis(keys, picked, axis=1)
    else:
        picked = np.broadcast_to(np.arange(candidates, dtype=np.int64),
                                 (batch, candidates))
        picked_keys = keys
    order = np.argsort(picked_keys, axis=1, kind="stable")
    columns = np.take_along_axis(picked, order, axis=1)
    if ids.ndim == 1:
        indices = ids[columns]
    else:
        indices = np.take_along_axis(ids, columns, axis=1)
    distances = np.take_along_axis(matrix, columns, axis=1).astype(np.int64)
    return indices, distances


def encode_topk_rows(indices: np.ndarray, distances: np.ndarray) -> np.ndarray:
    """Pack ``(batch, k)`` indices + distances into ``(batch, 2k)`` float rows.

    The serving stack moves one fixed-width float64 row per request
    (futures, result cache, ``np.stack``), so a top-k answer travels as
    ``[index_0..index_{k-1}, distance_0..distance_{k-1}]``.  Row ids and
    Hamming distances are small integers, exactly representable in float64,
    so the round-trip through :func:`decode_topk_rows` is lossless.
    """
    idx = np.asarray(indices)
    dist = np.asarray(distances)
    if idx.shape != dist.shape or idx.ndim != 2:
        raise ValueError(
            f"indices {idx.shape} and distances {dist.shape} must be "
            f"matching 2-D arrays")
    return np.concatenate([idx, dist], axis=1).astype(np.float64)


def decode_topk_rows(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split ``(batch, 2k)`` encoded rows back into (indices, distances)."""
    matrix = np.asarray(rows)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.shape[1] % 2 != 0:
        raise ValueError(
            f"encoded top-k rows must have even width, got {matrix.shape[1]}")
    half = matrix.shape[1] // 2
    return (matrix[:, :half].astype(np.int64),
            matrix[:, half:].astype(np.int64))


def empty_topk(num_queries: int, k_eff: int) -> TopKResult:
    """The shaped no-op result of an empty or ``k = 0`` top-k batch."""
    return TopKResult(
        indices=np.zeros((num_queries, k_eff), dtype=np.int64),
        distances=np.zeros((num_queries, k_eff), dtype=np.int64),
        energy_pj=0.0,
        latency_cycles=0,
        gathered_values=0,
    )
