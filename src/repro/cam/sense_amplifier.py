"""Clocked self-referenced sense amplifier (Ni et al., Nature Electronics 2019).

A conventional CAM sense amplifier only distinguishes *match* from
*mismatch*.  The clocked self-referenced sense amplifier the paper builds on
(Fig. 1c) instead measures *how long* the match line (ML) takes to discharge:
each mismatching cell adds pull-down current, so the discharge time is
(approximately) inversely proportional to the number of mismatching bits.
Sampling the ML with a clock converts that time into a digital count -- the
Hamming distance -- with O(1) latency regardless of word width.

This module models that conversion, including:

* the analog discharge-time law ``t = C_ML * V_DD / (n_mismatch * I_cell)``,
* quantisation to the sampling clock,
* an optional Gaussian timing-noise term that produces realistic off-by-one
  Hamming-distance errors for large mismatch counts (where discharge times
  for adjacent counts become too close to resolve).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cam.cell import CamCell, FEFET_CAM_CELL


@dataclass(frozen=True)
class SenseAmpReading:
    """One sense-amplifier measurement.

    Attributes
    ----------
    hamming_distance:
        The Hamming distance reported by the sense amplifier (after clock
        quantisation and noise).
    true_distance:
        The exact number of mismatching bits on the row.
    discharge_time_ns:
        Modelled ML discharge time in nanoseconds (``inf`` for a full match,
        which never discharges).
    sampling_cycles:
        Number of sampling-clock cycles the discharge took.
    """

    hamming_distance: int
    true_distance: int
    discharge_time_ns: float
    sampling_cycles: int


class ClockedSelfReferencedSenseAmp:
    """Converts ML discharge time into a Hamming distance.

    Parameters
    ----------
    word_bits:
        CAM word width; bounds the maximum resolvable distance.
    cell:
        CAM cell supplying the per-cell pull-down current.
    match_line_capacitance_ff:
        ML capacitance in femtofarads.  Scales linearly with word width by
        default (larger words -> longer wire); pass an explicit value to
        override.
    vdd:
        Supply voltage.
    sampling_frequency_ghz:
        Frequency of the sampling clock that digitises the discharge time.
    timing_noise_sigma_ps:
        Standard deviation of Gaussian noise added to the discharge time.
        Zero gives an ideal (noise-free) sense amplifier.
    seed:
        Seed of the noise generator (ignored when noise is zero).
    """

    def __init__(self, word_bits: int, cell: CamCell = FEFET_CAM_CELL,
                 match_line_capacitance_ff: float | None = None,
                 vdd: float = 1.0,
                 sampling_frequency_ghz: float = 4.0,
                 timing_noise_sigma_ps: float = 0.0,
                 seed: int = 0) -> None:
        if word_bits <= 0:
            raise ValueError("word_bits must be positive")
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        if sampling_frequency_ghz <= 0:
            raise ValueError("sampling_frequency_ghz must be positive")
        if timing_noise_sigma_ps < 0:
            raise ValueError("timing_noise_sigma_ps must be non-negative")
        self.word_bits = int(word_bits)
        self.cell = cell
        # 0.18 fF of ML capacitance per cell is typical for a compact NVM CAM.
        self.match_line_capacitance_ff = (
            match_line_capacitance_ff if match_line_capacitance_ff is not None
            else 0.18 * self.word_bits
        )
        self.vdd = float(vdd)
        self.sampling_frequency_ghz = float(sampling_frequency_ghz)
        self.timing_noise_sigma_ps = float(timing_noise_sigma_ps)
        self._rng = np.random.default_rng(seed)

    # -- analog model ------------------------------------------------------------

    def discharge_time_ns(self, mismatches: int | np.ndarray) -> np.ndarray | float:
        """ML discharge time for a given number of mismatching cells.

        A full match (zero mismatches) never discharges; ``inf`` is returned.
        """
        counts = np.asarray(mismatches, dtype=np.float64)
        if np.any(counts < 0) or np.any(counts > self.word_bits):
            raise ValueError("mismatch count must be in [0, word_bits]")
        current_ua = counts * self.cell.match_pulldown_current_ua
        with np.errstate(divide="ignore"):
            # t = C * V / I ; fF * V / uA = nanoseconds * 1e-3  -> convert.
            time_ns = np.where(
                current_ua > 0,
                self.match_line_capacitance_ff * self.vdd / np.where(current_ua > 0, current_ua, 1.0) * 1e-3 * 1e3,
                np.inf,
            )
        if np.isscalar(mismatches):
            return float(time_ns)
        return time_ns

    def _invert_time(self, time_ns: np.ndarray) -> np.ndarray:
        """Map a (possibly noisy) discharge time back to a mismatch count."""
        with np.errstate(divide="ignore"):
            estimate = np.where(
                np.isinf(time_ns),
                0.0,
                self.match_line_capacitance_ff * self.vdd
                / (self.cell.match_pulldown_current_ua * np.maximum(time_ns, 1e-9)),
            )
        return np.clip(np.round(estimate), 0, self.word_bits)

    # -- digital read-out ----------------------------------------------------------

    def read(self, true_distance: int) -> SenseAmpReading:
        """Measure a single row with ``true_distance`` mismatching bits."""
        readings = self.read_many(np.asarray([true_distance]))
        return readings[0]

    def _measure(self, true_distances: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shared measurement core: (counts, noisy discharge times, estimates).

        One call draws one contiguous block of timing noise, so measuring a
        concatenation of rows is bit-identical to measuring the pieces one
        after the other -- the property the vectorised batch search relies
        on to stay bit-exact with the serialised path.
        """
        counts = np.asarray(true_distances, dtype=np.int64).ravel()
        if np.any(counts < 0) or np.any(counts > self.word_bits):
            raise ValueError("hamming distance must be in [0, word_bits]")
        times = np.asarray(self.discharge_time_ns(counts), dtype=np.float64)

        if self.timing_noise_sigma_ps > 0.0:
            noise_ns = self._rng.normal(0.0, self.timing_noise_sigma_ps * 1e-3, size=times.shape)
            noisy = np.where(np.isinf(times), times, np.maximum(times + noise_ns, 1e-6))
        else:
            noisy = times

        estimated = self._invert_time(noisy).astype(np.int64)
        return counts, noisy, estimated

    def read_many(self, true_distances: np.ndarray) -> list[SenseAmpReading]:
        """Measure many rows at once (one search operation on a CAM array)."""
        counts, noisy, estimated = self._measure(true_distances)

        clock_period_ns = 1.0 / self.sampling_frequency_ghz
        cycles = np.where(np.isinf(noisy), 0, np.ceil(noisy / clock_period_ns)).astype(np.int64)

        readings = []
        for est, true, time_ns, cyc in zip(estimated, counts, noisy, cycles):
            readings.append(SenseAmpReading(
                hamming_distance=int(est),
                true_distance=int(true),
                discharge_time_ns=float(time_ns),
                sampling_cycles=int(cyc),
            ))
        return readings

    def estimate_distances(self, true_distances: np.ndarray) -> np.ndarray:
        """Vectorised read-out returning only the estimated distances.

        Unlike :meth:`read_many` this never materialises per-row
        :class:`SenseAmpReading` objects, so it is the hot path the CAM
        array uses for every search.
        """
        return self._measure(true_distances)[2]

    # -- characterisation ------------------------------------------------------------

    def resolution_limit(self) -> int:
        """Largest mismatch count that is still resolvable from its neighbour.

        Beyond this count the discharge times of ``n`` and ``n + 1``
        mismatches differ by less than one sampling-clock period, so the
        sense amplifier can no longer tell them apart.  DeepCAM tolerates
        this because large Hamming distances correspond to near-orthogonal
        vectors whose dot-product is near zero anyway.
        """
        clock_period_ns = 1.0 / self.sampling_frequency_ghz
        for count in range(1, self.word_bits):
            delta = self.discharge_time_ns(count) - self.discharge_time_ns(count + 1)
            if delta < clock_period_ns:
                return count
        return self.word_bits
