"""NVM crossbar substrate for on-chip hashing.

DeepCAM's post-processing & transformation unit hashes intermediate
activations on the fly using a non-volatile-memory crossbar that stores the
random projection matrix ``C`` as synaptic conductances (paper Sec. III-C).
Because only the *sign* of each projection is needed, the usual
high-resolution ADCs are replaced with simple sign-detecting sense
amplifiers.

* :mod:`repro.crossbar.crossbar` -- the functional + energy model of the
  crossbar, including conductance quantisation, bit-serial input streaming,
  device variation and the sign sense amplifiers.
"""

from repro.crossbar.crossbar import (
    CrossbarConfig,
    HashingCrossbar,
    SignSenseAmplifier,
)

__all__ = ["CrossbarConfig", "HashingCrossbar", "SignSenseAmplifier"]
