"""FeFET crossbar that computes sign(x C) for on-chip hashing.

The random projection matrix ``C`` (one per CNN layer) is programmed into a
crossbar as differential conductance pairs: column ``j`` holds ``C[:, j]``
split into a positive and a negative device so that signed weights can be
represented with unipolar conductances.  An input activation vector is
applied on the rows (bit-serially, one input bit per cycle), the column
currents accumulate the analog dot products, and a sign-detecting sense
amplifier per column outputs one hash bit.

Compared to a full analog PIM engine this datapath is drastically cheaper
because no ADC is needed -- only the sign matters -- which is exactly the
argument the paper makes for the on-the-fly activation-context generator.

The model covers:

* conductance quantisation (finite device levels),
* multiplicative log-normal device variation,
* input bit-serial streaming (cycles scale with input bit width),
* energy per hash operation built from device, DAC-less input driver and
  sense-amplifier contributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.components import CostLibrary, DEFAULT_COST_LIBRARY


@dataclass(frozen=True)
class CrossbarConfig:
    """Static parameters of the hashing crossbar.

    Attributes
    ----------
    rows:
        Number of word lines = dimensionality of the vectors being hashed.
    columns:
        Number of bit lines = hash length produced per pass.
    conductance_levels:
        Number of programmable conductance levels per device (FeFET devices
        give 16-32 usable levels; 32 is the NeuroSim default for FeFET).
    g_min_us / g_max_us:
        Minimum / maximum device conductance in microsiemens.
    read_voltage:
        Read voltage applied to active rows.
    device_variation_sigma:
        Sigma of the log-normal multiplicative conductance variation
        (0 disables variation).
    input_bits:
        Bit width of the streamed input activations (bit-serial DACs).
    device_read_energy_fj:
        Energy per device per read pulse.
    """

    rows: int
    columns: int
    conductance_levels: int = 32
    g_min_us: float = 0.1
    g_max_us: float = 5.0
    read_voltage: float = 0.2
    device_variation_sigma: float = 0.0
    input_bits: int = 8
    device_read_energy_fj: float = 0.04

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.columns <= 0:
            raise ValueError("rows and columns must be positive")
        if self.conductance_levels < 2:
            raise ValueError("conductance_levels must be at least 2")
        if not 0 < self.g_min_us < self.g_max_us:
            raise ValueError("require 0 < g_min_us < g_max_us")
        if self.input_bits <= 0:
            raise ValueError("input_bits must be positive")
        if self.device_variation_sigma < 0:
            raise ValueError("device_variation_sigma must be non-negative")


class SignSenseAmplifier:
    """Sign detector on a differential column pair.

    The positive and negative columns of a differential pair are compared;
    the output bit is 1 when the positive current wins.  An input-referred
    offset (in microamperes) models comparator mismatch.
    """

    def __init__(self, offset_sigma_ua: float = 0.0, seed: int = 0) -> None:
        if offset_sigma_ua < 0:
            raise ValueError("offset_sigma_ua must be non-negative")
        self.offset_sigma_ua = float(offset_sigma_ua)
        rng = np.random.default_rng(seed)
        # One static offset per instantiation; redrawn only on construction,
        # exactly like silicon mismatch.
        self._offset_ua = rng.normal(0.0, offset_sigma_ua) if offset_sigma_ua > 0 else 0.0

    @property
    def offset_ua(self) -> float:
        """The static input-referred offset of this comparator."""
        return self._offset_ua

    def decide(self, positive_current_ua: np.ndarray,
               negative_current_ua: np.ndarray) -> np.ndarray:
        """Return 1 where the (offset-corrupted) differential current is >= 0."""
        diff = np.asarray(positive_current_ua) - np.asarray(negative_current_ua)
        return (diff + self._offset_ua >= 0.0).astype(np.uint8)


class HashingCrossbar:
    """Crossbar that evaluates ``sign(x C)`` for activation hashing.

    Parameters
    ----------
    projection:
        The layer's random projection matrix ``C`` with shape
        ``(input_dim, hash_length)``.
    config:
        Crossbar geometry and device parameters; ``rows``/``columns`` must
        match the projection shape.  If ``None`` a config matching the
        projection is created.
    library:
        Digital cost library for the peripheral sense amplifiers.
    seed:
        Seed for device-variation sampling.
    """

    def __init__(self, projection: np.ndarray, config: CrossbarConfig | None = None,
                 library: CostLibrary | None = None, seed: int = 0) -> None:
        matrix = np.asarray(projection, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("projection must be a 2-D matrix")
        if config is None:
            config = CrossbarConfig(rows=matrix.shape[0], columns=matrix.shape[1])
        if config.rows != matrix.shape[0] or config.columns != matrix.shape[1]:
            raise ValueError(
                f"config geometry {(config.rows, config.columns)} does not match "
                f"projection shape {matrix.shape}"
            )
        self.config = config
        self.library = library if library is not None else DEFAULT_COST_LIBRARY
        self._rng = np.random.default_rng(seed)
        self.sense_amp = SignSenseAmplifier(offset_sigma_ua=0.0, seed=seed)
        self._g_positive, self._g_negative = self._program(matrix)

    # -- programming -----------------------------------------------------------

    def _program(self, matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map signed weights onto differential quantised conductances."""
        cfg = self.config
        scale = np.max(np.abs(matrix))
        if scale == 0.0:
            scale = 1.0
        normalised = matrix / scale  # in [-1, 1]

        positive = np.clip(normalised, 0.0, None)
        negative = np.clip(-normalised, 0.0, None)

        step = (cfg.g_max_us - cfg.g_min_us) / (cfg.conductance_levels - 1)

        def quantise(weights: np.ndarray) -> np.ndarray:
            conductance = cfg.g_min_us + weights * (cfg.g_max_us - cfg.g_min_us)
            levels = np.round((conductance - cfg.g_min_us) / step)
            return cfg.g_min_us + levels * step

        g_pos = quantise(positive)
        g_neg = quantise(negative)

        if cfg.device_variation_sigma > 0.0:
            g_pos = g_pos * self._rng.lognormal(0.0, cfg.device_variation_sigma, g_pos.shape)
            g_neg = g_neg * self._rng.lognormal(0.0, cfg.device_variation_sigma, g_neg.shape)
        return g_pos, g_neg

    # -- evaluation -------------------------------------------------------------

    def hash(self, vector: np.ndarray) -> np.ndarray:
        """Hash one input vector into ``columns`` bits."""
        return self.hash_batch(np.asarray(vector, dtype=np.float64).reshape(1, -1))[0]

    def hash_batch(self, matrix: np.ndarray) -> np.ndarray:
        """Hash a batch of vectors; returns ``(batch, columns)`` bits."""
        data = np.asarray(matrix, dtype=np.float64)
        if data.ndim != 2 or data.shape[1] != self.config.rows:
            raise ValueError(
                f"expected shape (batch, {self.config.rows}), got {data.shape}"
            )
        voltage = data * self.config.read_voltage
        current_pos = voltage @ self._g_positive  # uA (V * uS)
        current_neg = voltage @ self._g_negative
        return self.sense_amp.decide(current_pos, current_neg)

    def agreement_with_ideal(self, matrix: np.ndarray, ideal_bits: np.ndarray) -> float:
        """Fraction of hash bits matching an ideal software hash."""
        produced = self.hash_batch(matrix)
        ideal = np.asarray(ideal_bits, dtype=np.uint8)
        if produced.shape != ideal.shape:
            raise ValueError("shape mismatch between produced and ideal bits")
        return float(np.mean(produced == ideal))

    # -- cost model ---------------------------------------------------------------

    def energy_per_hash_pj(self) -> float:
        """Energy of hashing one input vector.

        Devices in both differential planes are read once per input bit
        (bit-serial streaming); each column pair fires one sign sense
        amplifier per hash.
        """
        cfg = self.config
        device_reads = 2 * cfg.rows * cfg.columns * cfg.input_bits
        device_energy_pj = device_reads * cfg.device_read_energy_fj * 1e-3
        driver_energy_pj = self.library.get("dac_1bit").energy_pj * cfg.rows * cfg.input_bits
        senseamp_energy_pj = self.library.get("sign_sense_amp").energy_pj * cfg.columns
        return device_energy_pj + driver_energy_pj + senseamp_energy_pj

    def latency_cycles(self) -> int:
        """Cycles to hash one vector (one per input bit plus one sensing cycle)."""
        return self.config.input_bits + 1

    def area_um2(self) -> float:
        """Macro area: differential device planes plus column sense amplifiers."""
        device_area = 0.05  # um^2 per FeFET device at 45 nm-class pitch
        devices = 2 * self.config.rows * self.config.columns
        senseamp_area = self.library.get("sign_sense_amp").area_um2 * self.config.columns
        return devices * device_area + senseamp_area
