"""The serial reference engine: every task runs in the calling thread.

``inline`` is both the baseline the other engines are measured against
and the crash-containment fallback of the process engine -- it has no
pool, no workers and no state, so it can never fail for infrastructure
reasons.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.exec import tasks
from repro.exec.base import Executor, Selector, StorageHandle


class InlineExecutor(Executor):
    """Serial reference execution of the fan-out primitives."""

    name = "inline"
    in_process = True

    def __init__(self) -> None:
        super().__init__(workers=1)

    def hamming_fanout(self, queries: np.ndarray,
                       storage: Union[np.ndarray, StorageHandle],
                       selectors: Sequence[Selector]) -> List[np.ndarray]:
        handle = self.as_handle(storage)
        data = handle.array
        rows = data.shape[0]
        return [tasks.count_rows(
                    data, tasks.normalize_selector(selector, rows), queries)
                for selector in selectors]

    def hamming_blocked(self, a_packed: np.ndarray,
                        b_packed: Union[np.ndarray, StorageHandle]) -> np.ndarray:
        a = np.ascontiguousarray(a_packed, dtype=np.uint64)
        b = self.as_handle(b_packed).array
        out = np.empty((a.shape[0], b.shape[0]), dtype=np.int64)
        if out.size == 0:
            return out
        for start, stop in tasks.kernel_spans(a.shape[0]):
            tasks.fill_block(a, b, out, start, stop)
        return out
