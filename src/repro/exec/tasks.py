"""Pure task kernels shared by every executor engine.

Each fan-out task is a function of ``uint64`` arrays only -- no sense
amplifiers, no accounting, no RNG -- which is the property that makes the
whole execution plane bit-identical by construction: whichever engine
runs a task, and in whatever order, the gathered results are the same
words.  Process workers import this module on their side of the fork;
the inline and thread engines call the same functions in the parent, so
the task bodies are exercised (and coverage-measured) without a pool.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.bitops import (
    KERNEL_BLOCK_ROWS,
    _accumulator_dtype,
    _hamming_block,
    packed_hamming_matrix,
)

#: A row selector: a contiguous ``(start, stop)`` span or an explicit
#: ``int64`` index array (strided shard plans).
Selector = Union[Tuple[int, int], np.ndarray]


def normalize_selector(selector: Selector, total_rows: int) -> Selector:
    """Validate a selector against the storage height and canonicalise it."""
    if isinstance(selector, tuple):
        start, stop = int(selector[0]), int(selector[1])
        if not 0 <= start <= stop <= total_rows:
            raise ValueError(
                f"span ({start}, {stop}) out of range for {total_rows} rows")
        return (start, stop)
    rows = np.asarray(selector, dtype=np.int64)
    if rows.ndim != 1:
        raise ValueError("index selectors must be 1-D")
    if rows.size and (rows.min() < 0 or rows.max() >= total_rows):
        raise ValueError(
            f"row indices out of range for {total_rows} rows")
    return rows


def select_storage_rows(storage: np.ndarray, selector: Selector) -> np.ndarray:
    """The selected rows: a zero-copy view for spans, a copy for indices."""
    if isinstance(selector, tuple):
        return storage[selector[0]:selector[1]]
    return storage[selector]


def selector_height(selector: Selector) -> int:
    """Number of rows a selector covers."""
    if isinstance(selector, tuple):
        return int(selector[1] - selector[0])
    return int(np.asarray(selector).size)


def count_rows(storage: np.ndarray, selector: Selector,
               queries: np.ndarray) -> np.ndarray:
    """One fan-out task: mismatch counts of ``queries`` vs selected rows.

    Returns the ``(num_queries, height)`` ``int64`` count matrix; the
    engine never touches the numbers, so the gather is a pure
    concatenation.
    """
    rows = select_storage_rows(storage, selector)
    # num_threads pinned: parallelism belongs to the engine running this
    # task, and process workers inherit REPRO_EXECUTOR across fork -- an
    # unpinned call would re-enter the plane recursively.
    return packed_hamming_matrix(queries, rows, num_threads=1)


def kernel_spans(rows_a: int,
                 block_rows: int = KERNEL_BLOCK_ROWS) -> List[Tuple[int, int]]:
    """The cache-sized row blocks of the pairwise kernel, as spans."""
    return [(start, min(start + block_rows, rows_a))
            for start in range(0, rows_a, block_rows)]


def fill_block(a: np.ndarray, b: np.ndarray, out: np.ndarray,
               start: int, stop: int) -> None:
    """One kernel block: ``out[start:stop] = hamming(a[start:stop], b)``.

    Delegates to the serial kernel's own block body
    (:func:`repro.bitops._hamming_block`), so every engine computes the
    exact bytes the unthreaded kernel would.
    """
    _hamming_block(a, b, out, start, stop, _accumulator_dtype(a.shape[1]))


def fill_span(a_block: np.ndarray, b: np.ndarray,
              out_span: np.ndarray) -> None:
    """Fill a whole output span, chunked into cache-sized kernel blocks.

    Process workers receive one contiguous span per worker (to bound the
    per-task pickle count); this walks it in :data:`KERNEL_BLOCK_ROWS`
    steps so the XOR temporary stays cache-resident exactly as in the
    serial kernel.
    """
    acc_dtype = _accumulator_dtype(a_block.shape[1])
    for start, stop in kernel_spans(a_block.shape[0]):
        _hamming_block(a_block, b, out_span, start, stop, acc_dtype)


def gather_counts(blocks: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise gather of per-span counts back into one matrix."""
    if len(blocks) == 1:
        return blocks[0]
    return np.concatenate(blocks, axis=1)
