"""The process engine: true-parallel fan-out over SharedMemory storage.

The GIL caps the thread engine at ~1x on CPU-bound popcount work; this
engine sidesteps it with ``multiprocessing`` workers.  The design keeps
the inter-process traffic asymptotically small:

* **storage is published once** -- :meth:`ProcessExecutor.publish` copies
  the packed ``uint64`` row matrix into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment.  Workers
  attach by name on first use and then read the rows **zero-copy** for
  every subsequent search (an ``np.ndarray`` view over the mapped
  buffer); only the (small) query batch and the per-task counts cross
  the pipe.
* **kernel outputs are written in place** -- the blocked pairwise kernel
  allocates a shared output segment and each worker writes its row block
  directly into it, so the ``(rows_a, rows_b)`` matrix never transits a
  pickle.
* **workers are lazy and reaped** -- the pool spawns on first task,
  survives across storage swaps and rebalances, and an idle timer
  shuts it down after :attr:`ProcessExecutor.idle_reap_s` without
  traffic (the next task respawns it).

A worker death (kill -9, OOM reaper, segfault) breaks the pool;
the engine converts that into a typed :class:`WorkerCrashError` and
discards the pool so the next task starts a fresh one.  Stacked under
:class:`~repro.exec.base.FallbackExecutor` (the default wiring of
``resolve_executor("processes")``), the crashed batch is replayed inline
and callers never observe the crash -- tasks are pure, so the replay is
bit-identical.

Segment hygiene: the parent registers every segment it creates with the
``multiprocessing`` resource tracker and unlinks it when the handle's
last reference drops; workers *unregister* their attachments immediately
(attaching registers too -- CPython issue bpo-39959 -- and a worker exit
must never unlink a segment the parent still serves from).  Worker-side
attachments live in a small LRU so long-lived pools cannot accumulate
mappings of retired segments.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exec import tasks
from repro.exec.base import (
    Executor,
    Selector,
    StorageHandle,
    WorkerCrashError,
    resolve_workers,
    split_rows,
)

#: Default idle window after which the worker pool is reaped.
DEFAULT_IDLE_REAP_S: float = 30.0

#: Worker-side attachment cache size (segments, LRU).
ATTACH_CACHE_SEGMENTS: int = 8

_SEGMENT_COUNTER = itertools.count()


def _segment_name() -> str:
    """A unique, recognisable segment name (helps leak forensics)."""
    return f"repro_exec_{os.getpid()}_{next(_SEGMENT_COUNTER)}"


class SharedPackedStorage(StorageHandle):
    """A packed row matrix published into one SharedMemory segment.

    The parent-side :attr:`array` is a view over the mapped buffer (the
    publish itself is the only copy); workers attach to
    :attr:`segment_name` and build the same view.  Destruction -- last
    ``release()`` after ``retire()`` -- closes the parent mapping and
    unlinks the segment.
    """

    def __init__(self, packed: np.ndarray) -> None:
        data = np.ascontiguousarray(packed, dtype=np.uint64)
        if data.ndim != 2:
            raise ValueError("published storage must be 2-D (rows, words)")
        self._shm = shared_memory.SharedMemory(
            create=True, name=_segment_name(),
            size=max(1, data.nbytes))
        view = np.ndarray(data.shape, dtype=np.uint64, buffer=self._shm.buf)
        view[...] = data
        super().__init__(view)

    # StorageHandle.__init__ calls ascontiguousarray, which preserves the
    # shm-backed view (already contiguous uint64), so self._array aliases
    # the segment -- no second copy.

    @property
    def segment_name(self) -> str:
        """Name workers attach to."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Mapped size of the segment."""
        return int(self._shm.size)

    def _destroy(self) -> None:
        # Drop the view before closing the mapping, else BufferError.
        self._array = np.empty((0, 0), dtype=np.uint64)
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-unlink race
            pass


# -- worker side -----------------------------------------------------------------

_ATTACHMENTS: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach (or reuse) a segment in this worker, LRU-capped.

    Attaching re-registers the segment name with the resource tracker
    (bpo-39959), but multiprocessing children share the parent's tracker
    process and its name cache is a set, so the duplicate is a no-op and
    the parent's single unlink-time unregister balances the books.
    Workers therefore leave the tracker strictly alone.
    """
    segment = _ATTACHMENTS.get(name)
    if segment is not None:
        _ATTACHMENTS.move_to_end(name)
        return segment
    segment = shared_memory.SharedMemory(name=name)
    _ATTACHMENTS[name] = segment
    while len(_ATTACHMENTS) > ATTACH_CACHE_SEGMENTS:
        _, stale = _ATTACHMENTS.popitem(last=False)
        stale.close()
    return segment


def _view(name: str, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
    """Zero-copy ndarray view over an attached segment."""
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=_attach(name).buf)


def _maybe_crash(crash: bool) -> None:
    """Fault-injection hook: die exactly like an OOM-killed worker."""
    if crash:
        os.kill(os.getpid(), signal.SIGKILL)


def _task_count_rows(name: str, shape: Tuple[int, int], selector: Selector,
                     queries: np.ndarray, crash: bool = False) -> np.ndarray:
    """Worker body of :meth:`ProcessExecutor.hamming_fanout` (one selector)."""
    _maybe_crash(crash)
    storage = _view(name, shape, "uint64")
    return tasks.count_rows(storage, selector, queries)


def _task_fill_block(b_name: str, b_shape: Tuple[int, int],
                     out_name: str, out_shape: Tuple[int, int],
                     a_block: np.ndarray, start: int,
                     crash: bool = False) -> None:
    """Worker body of :meth:`ProcessExecutor.hamming_blocked` (one block).

    The block result is written straight into the shared output segment;
    nothing but the (small) ``a`` block and this ``None`` cross the pipe.
    """
    _maybe_crash(crash)
    b = _view(b_name, b_shape, "uint64")
    out = _view(out_name, out_shape, "int64")
    tasks.fill_span(a_block, b, out[start:start + a_block.shape[0]])


# -- parent side -----------------------------------------------------------------


class CrashInjector:
    """Deterministic fault injection for the crash-containment tests.

    ``arm(n)`` makes the next ``n`` submitted tasks kill their worker
    with ``SIGKILL`` before touching any data -- the exact failure mode
    of an OOM-reaped worker, injected at a chosen point instead of a
    random one (the FlakyTransport philosophy: seeded faults, not flaky
    tests).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._armed = 0
        self.injected = 0

    def arm(self, count: int = 1) -> None:
        with self._lock:
            self._armed += int(count)

    def take(self) -> bool:
        with self._lock:
            if self._armed <= 0:
                return False
            self._armed -= 1
            self.injected += 1
            return True


class ProcessExecutor(Executor):
    """True-parallel fan-out on a lazily spawned process pool.

    Parameters
    ----------
    workers:
        Worker processes (``None``/``0`` = one per CPU).
    idle_reap_s:
        Idle window after which the pool is shut down; the next task
        respawns it.  ``None`` disables reaping.
    mp_context:
        ``multiprocessing`` context (default: the platform default --
        ``fork`` on Linux, which makes lazy spawn cheap).
    crash_injector:
        Optional :class:`CrashInjector` consulted once per task.
    """

    name = "processes"
    in_process = False

    def __init__(self, workers: Optional[int] = None,
                 idle_reap_s: Optional[float] = DEFAULT_IDLE_REAP_S,
                 mp_context: Any = None,
                 crash_injector: Optional[CrashInjector] = None) -> None:
        super().__init__(workers=resolve_workers(workers))
        self.idle_reap_s = idle_reap_s
        self._mp_context = mp_context
        self.crash_injector = crash_injector
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._reap_timer: Optional[threading.Timer] = None
        self._last_use = 0.0
        self._spawned_pools = 0
        self._crashes = 0
        self._tasks = 0

    # -- pool lifecycle ----------------------------------------------------------

    def _get_pool(self) -> ProcessPoolExecutor:
        """The pool, spawned lazily so fused-mode clusters never pay for it."""
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self._mp_context)
                self._spawned_pools += 1
            if self._reap_timer is not None:
                self._reap_timer.cancel()
                self._reap_timer = None
            self._last_use = time.monotonic()
            return self._pool

    def _note_done(self) -> None:
        """Schedule the idle reaper after a completed fan-out."""
        if self.idle_reap_s is None:
            return
        with self._lock:
            if self._pool is None:
                return
            self._last_use = time.monotonic()
            if self._reap_timer is not None:
                self._reap_timer.cancel()
            timer = threading.Timer(self.idle_reap_s, self._reap_if_idle)
            timer.daemon = True
            self._reap_timer = timer
            timer.start()

    def _reap_if_idle(self) -> None:
        with self._lock:
            if self._pool is None or self.idle_reap_s is None:
                return
            if time.monotonic() - self._last_use < self.idle_reap_s * 0.5:
                return  # a task slipped in; its completion rearms the timer
            pool, self._pool = self._pool, None
            self._reap_timer = None
        pool.shutdown(wait=False)

    def _discard_broken_pool(self, pool: ProcessPoolExecutor) -> None:
        with self._lock:
            self._crashes += 1
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False)

    def _submit_all(self, fn: Any, arg_tuples: Sequence[tuple]) -> List[Any]:
        """Submit one task per tuple; typed crash on a broken pool."""
        pool = self._get_pool()
        injector = self.crash_injector
        try:
            futures = []
            for args in arg_tuples:
                crash = injector.take() if injector is not None else False
                futures.append(pool.submit(fn, *args, crash=crash))
            results = [future.result() for future in futures]
        except BrokenExecutor as error:
            self._discard_broken_pool(pool)
            raise WorkerCrashError(
                f"process worker died mid-fan-out ({len(arg_tuples)} tasks "
                f"in flight): {error}") from error
        self._note_done()
        self._tasks += len(arg_tuples)
        return results

    # -- storage -----------------------------------------------------------------

    def publish(self, packed: np.ndarray) -> SharedPackedStorage:
        return SharedPackedStorage(packed)

    def _shared(self, storage: Union[np.ndarray, StorageHandle],
                ) -> Tuple[SharedPackedStorage, bool]:
        """(shared handle, transient?) for any storage argument.

        Raw arrays and plain in-process handles are published for the
        duration of one call -- correct but one memcpy per call; callers
        with long-lived storage should :meth:`publish` once instead.
        """
        if isinstance(storage, SharedPackedStorage):
            return storage, False
        array = storage.array if isinstance(storage, StorageHandle) else storage
        return SharedPackedStorage(array), True

    # -- primitives --------------------------------------------------------------

    def hamming_fanout(self, queries: np.ndarray,
                       storage: Union[np.ndarray, StorageHandle],
                       selectors: Sequence[Selector]) -> List[np.ndarray]:
        if not selectors:
            return []
        handle, transient = self._shared(storage)
        handle.acquire()
        try:
            rows = handle.rows
            shape = tuple(handle.array.shape)
            name = handle.segment_name
            packed = np.ascontiguousarray(queries, dtype=np.uint64)
            normalized = [tasks.normalize_selector(selector, rows)
                          for selector in selectors]
            return self._submit_all(
                _task_count_rows,
                [(name, shape, selector, packed) for selector in normalized])
        finally:
            handle.release()
            if transient:
                handle.retire()

    def hamming_blocked(self, a_packed: np.ndarray,
                        b_packed: Union[np.ndarray, StorageHandle]) -> np.ndarray:
        a = np.ascontiguousarray(a_packed, dtype=np.uint64)
        handle, transient = self._shared(b_packed)
        handle.acquire()
        out_shm: Optional[shared_memory.SharedMemory] = None
        try:
            rows_a, rows_b = a.shape[0], handle.rows
            out = np.empty((rows_a, rows_b), dtype=np.int64)
            if out.size == 0:
                return out
            out_shm = shared_memory.SharedMemory(
                create=True, name=_segment_name(), size=out.nbytes)
            out_view = np.ndarray(out.shape, dtype=np.int64, buffer=out_shm.buf)
            try:
                # Workers fill disjoint row spans of the shared output, so
                # the full matrix never crosses a pickle; one span per
                # worker bounds the per-task ``a``-block pickles, and each
                # worker re-chunks its span into cache-sized blocks.
                spans = split_rows(rows_a, self.workers,
                                   min_rows=min(rows_a, 64))
                self._submit_all(
                    _task_fill_block,
                    [(handle.segment_name, tuple(handle.array.shape),
                      out_shm.name, out.shape, a[start:stop], start)
                     for start, stop in spans])
                out[...] = out_view
            finally:
                # The view must drop before close(), else the mapping's
                # memoryview refuses to release.
                del out_view
            return out
        finally:
            if out_shm is not None:
                out_shm.close()
                out_shm.unlink()
            handle.release()
            if transient:
                handle.retire()

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            timer, self._reap_timer = self._reap_timer, None
        if timer is not None:
            timer.cancel()
        if pool is not None:
            pool.shutdown(wait=True)

    def stats(self) -> dict:
        with self._lock:
            alive = self._pool is not None
            return {
                "executor": self.name,
                "workers": self.workers,
                "pool_alive": alive,
                "pools_spawned": self._spawned_pools,
                "worker_crashes": self._crashes,
                "tasks_executed": self._tasks,
            }
