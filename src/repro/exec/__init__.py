"""repro.exec -- the true-parallel execution plane.

Three interchangeable fan-out engines behind one interface::

    from repro.exec import resolve_executor

    executor = resolve_executor("processes", workers=4)
    with executor:
        handle = executor.publish(packed_rows)          # one copy, then zero-copy
        counts = executor.hamming_fanout(queries, handle,
                                         [(0, 1024), (1024, 2048)])

Selection precedence: an explicit ``executor=`` argument, then the shard
config, then the ``REPRO_EXECUTOR`` environment variable, then the
``"threads"`` default.  Results are bit-identical across engines by
construction; see :mod:`repro.exec.base` for the design notes.
"""

from repro.exec.base import (
    DEFAULT_EXECUTOR,
    EXECUTOR_ENV,
    EXECUTOR_NAMES,
    Executor,
    FallbackExecutor,
    StorageHandle,
    WorkerCrashError,
    resolve_executor,
    resolve_executor_name,
    resolve_workers,
    split_rows,
)
from repro.exec.inline import InlineExecutor
from repro.exec.processes import (
    CrashInjector,
    ProcessExecutor,
    SharedPackedStorage,
)
from repro.exec.threads import ThreadExecutor

__all__ = [
    "DEFAULT_EXECUTOR",
    "EXECUTOR_ENV",
    "EXECUTOR_NAMES",
    "CrashInjector",
    "Executor",
    "FallbackExecutor",
    "InlineExecutor",
    "ProcessExecutor",
    "SharedPackedStorage",
    "StorageHandle",
    "ThreadExecutor",
    "WorkerCrashError",
    "resolve_executor",
    "resolve_executor_name",
    "resolve_workers",
    "split_rows",
]
