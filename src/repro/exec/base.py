"""The execution plane: one fan-out interface, three interchangeable engines.

Every speedup the reproduction shipped before this module was algorithmic
-- the packed kernel, micro-batching, sharding and the partial gather all
cut *work*, while the fan-outs that spread the remaining work across cores
ran on ``ThreadPoolExecutor`` under the GIL and bought ~1x.  The paper's
CAM banks search in true hardware parallel; this package is the software
counterpart: the two hot fan-outs (kernel row blocks, shard ports) run
behind one small :class:`Executor` interface with three implementations:

* ``inline``    -- serial reference execution in the calling thread
                   (:class:`~repro.exec.inline.InlineExecutor`);
* ``threads``   -- the pre-existing behaviour: a shared thread pool,
                   effective only where NumPy releases the GIL
                   (:class:`~repro.exec.threads.ThreadExecutor`);
* ``processes`` -- ``multiprocessing`` workers that read the packed
                   ``uint64`` row storage zero-copy out of
                   ``multiprocessing.shared_memory.SharedMemory`` segments
                   (:class:`~repro.exec.processes.ProcessExecutor`).

The engine is selected per call site (an ``executor=`` argument), per
cluster (shard config), or globally through the :data:`EXECUTOR_ENV`
environment variable; :func:`resolve_executor` folds the three sources
into an executor instance.  Results are bit-identical across engines by
construction -- every task is a pure XOR+popcount over ``uint64`` words,
and digitisation/accounting stay in the caller -- which is what lets the
bit-identity property suite act as the oracle for the whole plane.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

# Canonically defined in the leaf kernel module so it can consult the
# plane without an import cycle; re-exported here as the public home.
from repro.bitops import EXECUTOR_ENV
# The leaf metrics module (not the repro.obs package) keeps the exec
# plane import-light and cycle-free.
from repro.obs.metrics import default_registry as _default_metrics_registry

#: The pluggable engines, in cost order.
EXECUTOR_NAMES: Tuple[str, ...] = ("inline", "threads", "processes")

#: Default executor when neither argument nor environment chooses one.
DEFAULT_EXECUTOR: str = "threads"

#: A row selector: a contiguous ``(start, stop)`` span or an explicit
#: ``int64`` array of row indices (strided shard plans).
Selector = Union[Tuple[int, int], np.ndarray]


class WorkerCrashError(RuntimeError):
    """A worker process died mid-task (killed, OOM-reaped, segfaulted).

    Raised by :class:`~repro.exec.processes.ProcessExecutor` when its pool
    breaks; :class:`FallbackExecutor` catches it and replays the batch on
    the fallback engine so layers above the plane never see the crash.
    """


class StorageHandle:
    """A published packed ``uint64`` matrix the executor can fan out over.

    The base class wraps a parent-process array (inline/threads engines
    read it directly); :class:`~repro.exec.processes.SharedPackedStorage`
    subclasses it with a SharedMemory segment workers attach to by name.

    Handles are reference counted so copy-on-write storage swaps stay
    safe under concurrent searches: a search ``acquire()``s the handle it
    snapshotted and ``release()``s it when done, while the owner calls
    :meth:`retire` when it re-publishes -- the backing segment is only
    destroyed when the last in-flight reader releases it.
    """

    def __init__(self, array: np.ndarray) -> None:
        data = np.ascontiguousarray(array, dtype=np.uint64)
        if data.ndim != 2:
            raise ValueError("published storage must be 2-D (rows, words)")
        self._array = data
        self._lock = threading.Lock()
        self._refs = 1
        self._retired = False

    @property
    def array(self) -> np.ndarray:
        """Parent-side view of the published ``(rows, words)`` matrix."""
        return self._array

    @property
    def rows(self) -> int:
        """Row count of the published matrix."""
        return int(self._array.shape[0])

    def acquire(self) -> "StorageHandle":
        """Pin the handle for one in-flight fan-out."""
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError("storage handle already destroyed")
            self._refs += 1
        return self

    def release(self) -> None:
        """Unpin; the last release after :meth:`retire` frees the backing."""
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError("storage handle already destroyed")
            self._refs -= 1
            destroy = self._refs == 0
        if destroy:
            self._destroy()

    def retire(self) -> None:
        """Owner drop: destroy once every in-flight reader has released."""
        with self._lock:
            if self._retired:
                return
            self._retired = True
        self.release()

    def _destroy(self) -> None:  # pragma: no cover - trivial base hook
        """Free the backing storage (overridden by shared-memory handles)."""


class Executor(ABC):
    """One fan-out engine behind the execution plane.

    The interface is deliberately narrow and data-parallel: the only
    compute it fans out is ``popcount(queries XOR storage_rows)``, a pure
    function of two ``uint64`` matrices, so results cannot depend on the
    engine.  Everything stateful (sense amplifiers, energy accounting,
    observers) stays in the caller.
    """

    #: Registry name of the engine (``"inline"``/``"threads"``/``"processes"``).
    name: str = "abstract"

    #: Whether tasks run in the calling process (object tasks allowed).
    in_process: bool = True

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))

    # -- storage -----------------------------------------------------------------

    def publish(self, packed: np.ndarray) -> StorageHandle:
        """Register packed row storage for fan-outs; returns its handle.

        In-process engines just wrap the array; the process engine copies
        it once into a SharedMemory segment that workers then read
        zero-copy for every subsequent search.
        """
        return StorageHandle(packed)

    @staticmethod
    def as_handle(storage: Union[np.ndarray, StorageHandle]) -> StorageHandle:
        """Accept raw arrays where callers have no long-lived storage."""
        if isinstance(storage, StorageHandle):
            return storage
        return StorageHandle(storage)

    # -- fan-out primitives --------------------------------------------------------

    @abstractmethod
    def hamming_fanout(self, queries: np.ndarray,
                       storage: Union[np.ndarray, StorageHandle],
                       selectors: Sequence[Selector]) -> List[np.ndarray]:
        """Mismatch counts of ``queries`` against each selected row set.

        Returns one ``(num_queries, len(selector))`` ``int64`` matrix per
        selector -- the scatter half of a shard fan-out, or the column
        blocks of a fused search.
        """

    @abstractmethod
    def hamming_blocked(self, a_packed: np.ndarray,
                        b_packed: Union[np.ndarray, StorageHandle]) -> np.ndarray:
        """Full pairwise ``(rows_a, rows_b)`` distance matrix, row-blocked.

        The kernel-side port: ``rows_a`` splits into cache-sized blocks
        that run on the engine (the same spans the serial kernel uses), so
        the output is bit-identical to
        :func:`repro.bitops.packed_hamming_matrix`.
        """

    def run_tasks(self, fns: Sequence[Callable[[], Any]]) -> List[Any]:
        """Generic object-task fan-out (ports holding Python state).

        Engines that cannot ship arbitrary callables (the process pool)
        run them serially in the calling process instead -- a documented
        degradation, never an error, so custom ports (e.g. ``DynamicCam``)
        keep working under every engine.
        """
        return [fn() for fn in fns]

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release pools and workers (idempotent)."""

    def stats(self) -> dict:
        """Engine snapshot for ``stats()`` surfaces and tests."""
        return {"executor": self.name, "workers": self.workers}

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def split_rows(total_rows: int, parts: int,
               min_rows: int = 1) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` spans covering ``total_rows``.

    At most ``parts`` spans, each at least ``min_rows`` tall (except when
    ``total_rows`` itself is smaller) -- the splitter both the fused
    column fan-out and the process kernel blocks use, so span arithmetic
    lives in exactly one place.
    """
    if total_rows <= 0:
        return []
    parts = max(1, min(int(parts), -(-total_rows // max(1, int(min_rows)))))
    base, extra = divmod(total_rows, parts)
    spans: List[Tuple[int, int]] = []
    start = 0
    for index in range(parts):
        stop = start + base + (1 if index < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker budget: ``None``/``0`` mean one worker per CPU."""
    if workers is None or int(workers) == 0:
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 0:
        raise ValueError("workers must be non-negative")
    return workers


def resolve_executor_name(name: Optional[str] = None) -> str:
    """Fold argument and :data:`EXECUTOR_ENV` into one engine name."""
    if name is None:
        name = os.environ.get(EXECUTOR_ENV, "").strip() or DEFAULT_EXECUTOR
    name = str(name).lower()
    if name not in EXECUTOR_NAMES:
        raise ValueError(
            f"executor must be one of {EXECUTOR_NAMES}, got {name!r}")
    return name


def resolve_executor(spec: Union[str, Executor, None] = None,
                     workers: Optional[int] = None,
                     fallback: bool = True) -> Executor:
    """Build (or pass through) the executor for one fan-out site.

    ``spec`` may be an :class:`Executor` instance (returned as-is -- the
    caller owns its lifecycle), an engine name, or ``None`` to defer to
    ``REPRO_EXECUTOR`` and then the default.  The process engine is
    wrapped in a :class:`FallbackExecutor` over an inline engine unless
    ``fallback=False``, so a crashed worker pool degrades to correct
    serial execution instead of failing the search.
    """
    if isinstance(spec, Executor):
        return spec
    from repro.exec.inline import InlineExecutor
    from repro.exec.processes import ProcessExecutor
    from repro.exec.threads import ThreadExecutor

    name = resolve_executor_name(spec)
    budget = resolve_workers(workers)
    if name == "inline":
        return InlineExecutor()
    if name == "threads":
        return ThreadExecutor(workers=budget)
    executor: Executor = ProcessExecutor(workers=budget)
    if fallback:
        executor = FallbackExecutor(executor, InlineExecutor())
    return executor


class FallbackExecutor(Executor):
    """Crash containment: replay a failed fan-out on a fallback engine.

    Wraps a primary engine (in practice the process pool) and an
    always-safe fallback (inline).  A :class:`WorkerCrashError` from the
    primary is counted, the primary's broken pool is left to respawn
    lazily, and the *whole batch* is retried on the fallback -- tasks are
    pure, so the replayed results are bit-identical to an uncrashed run.
    Layers above the plane (shard/serve/net) never see the crash.
    """

    def __init__(self, primary: Executor, fallback: Executor) -> None:
        super().__init__(workers=primary.workers)
        self.name = primary.name
        # Callers branch on in_process (object tasks vs shared storage);
        # the wrapper must look exactly like the engine it guards.
        self.in_process = primary.in_process
        self.primary = primary
        self.fallback = fallback
        self._lock = threading.Lock()
        self._crashes = 0
        self._fallback_batches = 0

    def _guarded(self, attempt: Callable[[Executor], Any]) -> Any:
        try:
            return attempt(self.primary)
        except WorkerCrashError:
            with self._lock:
                self._crashes += 1
                self._fallback_batches += 1
            registry = _default_metrics_registry()
            registry.counter(
                "exec_worker_crashes",
                "Worker-pool crashes contained by the fallback engine",
                labels={"engine": self.name}).inc()
            registry.counter(
                "exec_fallback_batches",
                "Batches replayed on the fallback engine",
                labels={"engine": self.name}).inc()
            return attempt(self.fallback)

    def publish(self, packed: np.ndarray) -> StorageHandle:
        # The primary's handle keeps a parent-side view, so the fallback
        # engine can read the very same storage during a replay.
        return self.primary.publish(packed)

    def hamming_fanout(self, queries, storage, selectors):
        return self._guarded(
            lambda engine: engine.hamming_fanout(queries, storage, selectors))

    def hamming_blocked(self, a_packed, b_packed):
        return self._guarded(
            lambda engine: engine.hamming_blocked(a_packed, b_packed))

    def run_tasks(self, fns):
        return self._guarded(lambda engine: engine.run_tasks(fns))

    def close(self) -> None:
        self.primary.close()
        self.fallback.close()

    def stats(self) -> dict:
        with self._lock:
            crashes, fallbacks = self._crashes, self._fallback_batches
        return {**self.primary.stats(), "worker_crashes": crashes,
                "fallback_batches": fallbacks}
