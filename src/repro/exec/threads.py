"""The thread engine: today's fan-out behaviour behind the plane interface.

A lazily created, persistent ``ThreadPoolExecutor`` sized by the worker
budget (never by shard count -- the pool-reuse bug the plane fixes).
Threads only overlap where NumPy releases the GIL, so this engine is a
wash on pure-Python work and on single-core boxes; it exists so the
pre-plane behaviour stays selectable and measurable against the others.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Union

import numpy as np

from repro.exec import tasks
from repro.exec.base import Executor, Selector, StorageHandle, resolve_workers


class ThreadExecutor(Executor):
    """Fan-out on a shared thread pool of ``workers`` threads."""

    name = "threads"
    in_process = True

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(workers=resolve_workers(workers))
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None

    def _get_pool(self) -> ThreadPoolExecutor:
        """The pool, spawned on first use so idle engines cost nothing."""
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-exec")
            return self._pool

    def _map(self, fn: Callable[..., Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``items``; serial when fanning out cannot help."""
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._get_pool().map(fn, items))

    def hamming_fanout(self, queries: np.ndarray,
                       storage: Union[np.ndarray, StorageHandle],
                       selectors: Sequence[Selector]) -> List[np.ndarray]:
        handle = self.as_handle(storage)
        data = handle.array
        rows = data.shape[0]
        normalized = [tasks.normalize_selector(selector, rows)
                      for selector in selectors]
        return self._map(
            lambda selector: tasks.count_rows(data, selector, queries),
            normalized)

    def hamming_blocked(self, a_packed: np.ndarray,
                        b_packed: Union[np.ndarray, StorageHandle]) -> np.ndarray:
        a = np.ascontiguousarray(a_packed, dtype=np.uint64)
        b = self.as_handle(b_packed).array
        out = np.empty((a.shape[0], b.shape[0]), dtype=np.int64)
        if out.size == 0:
            return out
        spans = tasks.kernel_spans(a.shape[0])
        self._map(lambda span: tasks.fill_block(a, b, out, *span), spans)
        return out

    def run_tasks(self, fns: Sequence[Callable[[], Any]]) -> List[Any]:
        return self._map(lambda fn: fn(), fns)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
