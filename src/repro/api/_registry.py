"""Generic string-keyed registry shared by the backend and experiment APIs.

Both public registries (:mod:`repro.api.backend` and
:mod:`repro.api.experiments`) expose the same behaviour -- duplicate keys
rejected unless overwritten, lookups that name the known keys on failure,
sorted listing, idempotent unregister -- so the mechanics live here once and
each facade contributes only its domain-specific error types and wording.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Type, TypeVar

T = TypeVar("T")


class RegistryNotFoundError(KeyError):
    """A requested key is not in a registry; subclasses set ``kind``."""

    kind = "key"

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return (f"no {self.kind} registered under {self.name!r}; "
                f"known {self.kind}s: {', '.join(self.known) or '(none)'}")


class Registry(Generic[T]):
    """Minimal string-keyed registry with explicit error types."""

    def __init__(self, kind: str,
                 not_found_error: Type[RegistryNotFoundError],
                 duplicate_error: Type[ValueError]) -> None:
        self._kind = kind
        self._not_found_error = not_found_error
        self._duplicate_error = duplicate_error
        self._items: Dict[str, T] = {}

    def register(self, name: str, value: T, *, overwrite: bool = False) -> T:
        """Add ``value`` under ``name``; duplicates raise unless ``overwrite``."""
        if not name or not isinstance(name, str):
            raise ValueError(f"{self._kind} name must be a non-empty string")
        if not overwrite and name in self._items:
            raise self._duplicate_error(
                f"{self._kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it")
        self._items[name] = value
        return value

    def unregister(self, name: str) -> None:
        """Remove a key; missing keys are ignored."""
        self._items.pop(name, None)

    def get(self, name: str) -> T:
        """Look up a key; unknown keys raise the registry's not-found error."""
        try:
            return self._items[name]
        except KeyError:
            raise self._not_found_error(name, self.keys()) from None

    def keys(self) -> List[str]:
        """Sorted registered keys."""
        return sorted(self._items)
