"""The :class:`Backend` protocol and the string-keyed backend registry.

A *backend* is anything that can (a) estimate the cost of running a network
trace and (b) functionally execute a model on a batch of inputs.  DeepCAM
itself and all three baselines are exposed through this one contract (see
:mod:`repro.api.adapters`), so sweeps, benchmarks and the smoke checker can
iterate ``for name in list_backends(): get_backend(name).estimate(trace)``
without knowing any model-specific constructor.

Backends are registered under a string key with :func:`register_backend`
(usable as a decorator) and instantiated with :func:`get_backend`; extra
keyword arguments are forwarded to the registered factory, so configured
variants (``get_backend("deepcam", config=...)``) need no extra keys.
"""

from __future__ import annotations

from typing import Any, Callable, List, Protocol, runtime_checkable

import numpy as np

from repro.api._registry import Registry, RegistryNotFoundError
from repro.api.results import CostReport
from repro.workloads.specs import NetworkTrace


@runtime_checkable
class Backend(Protocol):
    """Uniform contract every accelerator model satisfies.

    Implementations must expose a ``name`` (the registry key they were
    created under), an analytical ``estimate`` and a functional ``infer``.
    """

    name: str

    def estimate(self, trace: NetworkTrace) -> CostReport:
        """Analytical cost (cycles/energy/utilization) of one inference."""
        ...

    def infer(self, model: Any, batch: np.ndarray) -> np.ndarray:
        """Functionally execute ``model`` on ``batch``; returns the logits."""
        ...


BackendFactory = Callable[..., Backend]


class BackendNotFoundError(RegistryNotFoundError):
    """Requested backend key is not in the registry."""

    kind = "backend"


class DuplicateBackendError(ValueError):
    """A backend key is already taken and ``overwrite`` was not requested."""


_REGISTRY: Registry[BackendFactory] = Registry(
    "backend", BackendNotFoundError, DuplicateBackendError)


def register_backend(name: str, factory: BackendFactory | None = None, *,
                     overwrite: bool = False):
    """Register a backend factory under ``name``.

    Usable directly (``register_backend("cpu", CPUBackend)``) or as a class
    decorator (``@register_backend("cpu")``).  Raises
    :class:`DuplicateBackendError` if the key is taken, unless
    ``overwrite=True``.
    """

    def _register(target: BackendFactory) -> BackendFactory:
        return _REGISTRY.register(name, target, overwrite=overwrite)

    if factory is None:
        return _register
    return _register(factory)


def unregister_backend(name: str) -> None:
    """Remove a backend key (primarily for tests); missing keys are ignored."""
    _REGISTRY.unregister(name)


def get_backend(name: str, **kwargs: Any) -> Backend:
    """Instantiate the backend registered under ``name``.

    Keyword arguments are forwarded to the registered factory.  When the
    instance allows it, its ``name`` attribute is stamped with the registry
    key so reports are traceable to how the backend was obtained; frozen or
    slotted implementations keep their own ``name``.
    """
    backend = _REGISTRY.get(name)(**kwargs)
    if getattr(backend, "name", None) != name:
        try:
            backend.name = name
        except (AttributeError, TypeError):
            pass
    return backend


def list_backends() -> List[str]:
    """Sorted registry keys."""
    return _REGISTRY.keys()
