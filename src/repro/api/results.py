"""Typed result schema shared by every backend and experiment.

Three dataclasses replace the ad-hoc dicts/dataclasses the individual models
return, so that benchmarks, examples and downstream tooling can consume any
backend or experiment through one shape:

* :class:`CostReport` -- the uniform cost estimate every
  :class:`~repro.api.backend.Backend` produces for a network trace (cycles,
  energy, utilization, per-component breakdown);
* :class:`RunResult` -- the outcome of one functional inference run
  (predictions, optional accuracy, backend statistics);
* :class:`ExperimentResult` -- the outcome of one registered experiment
  (tabular rows plus metadata, with the legacy raw object attached).

All three round-trip through JSON via ``to_dict()`` / ``from_dict()``;
``to_dict`` sanitises NumPy scalars, enums and nested dataclasses so the
output is always ``json.dumps``-able.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np


def json_sanitize(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable plain Python.

    NumPy scalars become Python numbers, arrays become lists, enums their
    values, dataclasses dicts; anything else unrecognised falls back to
    ``str``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [json_sanitize(v) for v in value.tolist()]
    if isinstance(value, Enum):
        return json_sanitize(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        to_dict = getattr(value, "to_dict", None)
        if callable(to_dict):
            return json_sanitize(to_dict())
        return {k: json_sanitize(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(k): json_sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_sanitize(v) for v in value]
    return str(value)


class SchemaError(ValueError):
    """A result object violates the typed schema."""


@dataclass(frozen=True)
class CostReport:
    """Uniform cost estimate of one network on one backend.

    Attributes
    ----------
    backend:
        Registry key of the backend that produced the estimate.
    network:
        Name of the network trace that was estimated.
    total_cycles:
        Computation cycles per inference.
    total_energy_uj:
        Dynamic energy per inference in microjoules; ``None`` for backends
        whose model does not estimate energy (the CPU baseline).
    mean_utilization:
        Average compute-array utilization in [0, 1]; ``None`` where the
        concept does not apply.
    breakdown:
        Per-component totals (units encoded in the key, e.g. ``"sram_pj"``).
    meta:
        Free-form JSON-serialisable annotations (row counts, hash policy,
        dataflow, ...).
    """

    backend: str
    network: str
    total_cycles: int
    total_energy_uj: Optional[float] = None
    mean_utilization: Optional[float] = None
    breakdown: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.backend:
            raise SchemaError("CostReport.backend must be a non-empty string")
        if not self.network:
            raise SchemaError("CostReport.network must be a non-empty string")
        if self.total_cycles < 0:
            raise SchemaError("CostReport.total_cycles must be non-negative")
        if self.total_energy_uj is not None and self.total_energy_uj < 0:
            raise SchemaError("CostReport.total_energy_uj must be non-negative")
        if self.mean_utilization is not None and not 0.0 <= self.mean_utilization <= 1.0:
            raise SchemaError("CostReport.mean_utilization must be in [0, 1]")

    @property
    def total_energy_pj(self) -> Optional[float]:
        """Energy per inference in picojoules (``None`` if not modelled)."""
        if self.total_energy_uj is None:
            return None
        return self.total_energy_uj * 1e6

    def latency_s(self, clock_hz: float) -> float:
        """Latency in seconds at a given clock frequency."""
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        return self.total_cycles / clock_hz

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dict representation."""
        return {
            "backend": self.backend,
            "network": self.network,
            "total_cycles": int(self.total_cycles),
            "total_energy_uj": json_sanitize(self.total_energy_uj),
            "mean_utilization": json_sanitize(self.mean_utilization),
            "breakdown": json_sanitize(self.breakdown),
            "meta": json_sanitize(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CostReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            backend=data["backend"],
            network=data["network"],
            total_cycles=int(data["total_cycles"]),
            total_energy_uj=(None if data.get("total_energy_uj") is None
                             else float(data["total_energy_uj"])),
            mean_utilization=(None if data.get("mean_utilization") is None
                              else float(data["mean_utilization"])),
            breakdown=dict(data.get("breakdown", {})),
            meta=dict(data.get("meta", {})),
        )


@dataclass(frozen=True)
class RunResult:
    """Outcome of one functional inference run through ``Backend.infer``.

    Attributes
    ----------
    backend:
        Registry key of the backend that executed the model.
    num_samples:
        Batch size of the run.
    predictions:
        Argmax class index per sample.
    accuracy:
        Top-1 accuracy against the provided labels, if any were given.
    stats:
        Backend-specific counters (CAM searches, fills, hash lengths, ...).
    """

    backend: str
    num_samples: int
    predictions: tuple
    accuracy: Optional[float] = None
    stats: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.backend:
            raise SchemaError("RunResult.backend must be a non-empty string")
        if self.num_samples < 0:
            raise SchemaError("RunResult.num_samples must be non-negative")
        if len(self.predictions) != self.num_samples:
            raise SchemaError("RunResult.predictions must have num_samples entries")
        if self.accuracy is not None and not 0.0 <= self.accuracy <= 1.0:
            raise SchemaError("RunResult.accuracy must be in [0, 1]")

    @classmethod
    def from_logits(cls, backend: str, logits: np.ndarray,
                    labels: Optional[np.ndarray] = None,
                    stats: Optional[Mapping[str, Any]] = None) -> "RunResult":
        """Build a result from a ``(batch, classes)`` logit matrix."""
        logits = np.asarray(logits)
        if logits.ndim != 2:
            raise SchemaError("logits must be a (batch, classes) matrix")
        predictions = np.argmax(logits, axis=1)
        accuracy = None
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape[0] != logits.shape[0]:
                raise SchemaError("labels must match the logit batch size")
            accuracy = float(np.mean(predictions == labels))
        return cls(backend=backend,
                   num_samples=int(logits.shape[0]),
                   predictions=tuple(int(p) for p in predictions),
                   accuracy=accuracy,
                   stats=dict(stats) if stats else {})

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dict representation."""
        return {
            "backend": self.backend,
            "num_samples": int(self.num_samples),
            "predictions": [int(p) for p in self.predictions],
            "accuracy": json_sanitize(self.accuracy),
            "stats": json_sanitize(self.stats),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            backend=data["backend"],
            num_samples=int(data["num_samples"]),
            predictions=tuple(int(p) for p in data.get("predictions", ())),
            accuracy=(None if data.get("accuracy") is None
                      else float(data["accuracy"])),
            stats=dict(data.get("stats", {})),
        )


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one registered experiment.

    Attributes
    ----------
    experiment:
        Registry key of the experiment that ran.
    params:
        The (sanitised) parameters the experiment ran with, defaults merged.
    rows:
        The tabular form of the result: one plain dict per reported row.
    meta:
        Experiment-level scalars that are not per-row (headline ratios,
        titles, ...).
    raw:
        The object the underlying implementation returned, in its legacy
        shape.  Excluded from serialisation and equality.
    """

    experiment: str
    params: Dict[str, Any] = field(default_factory=dict)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)
    raw: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.experiment:
            raise SchemaError("ExperimentResult.experiment must be a non-empty string")
        for index, row in enumerate(self.rows):
            if not isinstance(row, Mapping):
                raise SchemaError(f"ExperimentResult.rows[{index}] must be a mapping")

    def column(self, name: str) -> List[Any]:
        """Extract one column across all rows (missing cells become None)."""
        return [row.get(name) for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable dict representation (``raw`` is dropped)."""
        return {
            "experiment": self.experiment,
            "params": json_sanitize(self.params),
            "rows": json_sanitize(self.rows),
            "meta": json_sanitize(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (``raw`` stays None)."""
        return cls(
            experiment=data["experiment"],
            params=dict(data.get("params", {})),
            rows=[dict(row) for row in data.get("rows", [])],
            meta=dict(data.get("meta", {})),
        )
