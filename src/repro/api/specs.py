"""Registered experiment specs for every table/figure of the paper.

Importing this module (which :mod:`repro.api` does on import) populates the
experiment registry with one :class:`~repro.api.experiments.ExperimentSpec`
per paper experiment, wrapping the implementations in
:mod:`repro.evaluation.experiments`.  Each spec converts the
implementation's native return shape into plain-dict rows so the results
serialise uniformly; the native object stays reachable via
``ExperimentResult.raw``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

from repro.api.experiments import ExperimentSpec, register_experiment
from repro.evaluation import experiments as _impl


def _fig2_rows(raw: Dict[int, Dict[str, float]]) -> List[Dict[str, Any]]:
    return [{"hash_length": length, **stats} for length, stats in sorted(raw.items())]


def _fig5_rows(raw: List[_impl.Fig5Result]) -> List[Dict[str, Any]]:
    return [{**dataclasses.asdict(r), "accuracy_drop": r.accuracy_drop} for r in raw]


def _fig8_rows(raw: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [dataclasses.asdict(report) for report in raw["sweep"]]


def _fig8_meta(raw: Dict[str, Any]) -> Dict[str, Any]:
    return {"fefet_vs_cmos_energy_ratio": raw["fefet_vs_cmos_energy_ratio"],
            "fefet_vs_cmos_area_ratio": raw["fefet_vs_cmos_area_ratio"]}


def _fig9_rows(raw: List[_impl.Fig9Row]) -> List[Dict[str, Any]]:
    return [{**dataclasses.asdict(r),
             "speedup_vs_eyeriss_as": r.speedup_vs_eyeriss_as,
             "speedup_vs_cpu_as": r.speedup_vs_cpu_as,
             "speedup_vs_cpu_ws": r.speedup_vs_cpu_ws} for r in raw]


def _fig10_rows(raw: List[_impl.Fig10Row]) -> List[Dict[str, Any]]:
    return [{**dataclasses.asdict(r),
             "vhl_normalized": r.vhl_normalized,
             "max_normalized": r.max_normalized,
             "eyeriss_normalized": r.eyeriss_normalized,
             "energy_reduction_vs_eyeriss": r.energy_reduction_vs_eyeriss}
            for r in raw]


def _table_rows(raw: List[Any]) -> List[Dict[str, Any]]:
    return [row if isinstance(row, dict) else dataclasses.asdict(row) for row in raw]


def _single_row(raw: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [dict(raw)]


PAPER_EXPERIMENTS: tuple = (
    ExperimentSpec(
        name="fig2_dot_product_sweep",
        title="Fig. 2: approximate vs algebraic dot-product error by hash length",
        runner=_impl._fig2_dot_product_sweep_impl,
        to_rows=_fig2_rows,
        tags=("fast", "figure"),
    ),
    ExperimentSpec(
        name="fig5_accuracy",
        title="Fig. 5: baseline vs DeepCAM accuracy with variable hash lengths",
        runner=_impl._fig5_accuracy_impl,
        to_rows=_fig5_rows,
        tags=("slow", "training", "figure"),
    ),
    ExperimentSpec(
        name="fig8_cam_overhead",
        title="Fig. 8: CAM hardware overhead vs rows and word width",
        runner=_impl._fig8_cam_overhead_impl,
        to_rows=_fig8_rows,
        to_meta=_fig8_meta,
        tags=("fast", "figure"),
    ),
    ExperimentSpec(
        name="fig9_cycles",
        title="Fig. 9: computation cycles and utilization vs Eyeriss and CPU",
        runner=_impl._fig9_cycles_impl,
        to_rows=_fig9_rows,
        tags=("fast", "figure"),
    ),
    ExperimentSpec(
        name="fig10_energy",
        title="Fig. 10: normalized energy per inference vs Eyeriss",
        runner=_impl._fig10_energy_impl,
        to_rows=_fig10_rows,
        tags=("fast", "figure"),
    ),
    ExperimentSpec(
        name="table1_setup",
        title="Table I: hardware evaluation setup",
        runner=_impl._table1_setup_impl,
        to_rows=_table_rows,
        tags=("fast", "table"),
    ),
    ExperimentSpec(
        name="table2_pim_comparison",
        title="Table II: DeepCAM vs prior analog PIM accelerators (VGG11)",
        runner=_impl._table2_pim_comparison_impl,
        to_rows=_table_rows,
        tags=("fast", "table"),
    ),
    ExperimentSpec(
        name="headline_claims",
        title="Headline speedup/energy ratios from the abstract",
        runner=_impl._headline_claims_impl,
        to_rows=_single_row,
        tags=("fast",),
    ),
)

for _spec in PAPER_EXPERIMENTS:
    register_experiment(_spec, overwrite=True)
