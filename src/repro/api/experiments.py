"""Experiment specs, registry, and the observer-driven ``ExperimentRunner``.

An :class:`ExperimentSpec` packages one paper experiment -- a runner
callable, a converter from the runner's native return value to tabular rows,
and optional metadata extraction -- under a registry key.  The
:class:`ExperimentRunner` orchestrates execution: it resolves specs, merges
parameters, notifies observers (start, per-row, completion, failure) and
returns a typed :class:`~repro.api.results.ExperimentResult`.

Every ``run_fig*``/``run_table*`` function of
:mod:`repro.evaluation.experiments` is registered as a spec in
:mod:`repro.api.specs`; custom experiments register the same way::

    spec = ExperimentSpec(name="my_sweep", title="...", runner=my_fn,
                          to_rows=lambda raw: [...])
    register_experiment(spec)
    result = ExperimentRunner().run("my_sweep", depth=3)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.api._registry import Registry, RegistryNotFoundError
from repro.api.results import ExperimentResult, json_sanitize


@runtime_checkable
class ExperimentObserver(Protocol):
    """Hook points the runner notifies during one experiment execution.

    Implementations may define any subset of the hooks; missing ones are
    skipped.  Because the underlying experiment implementations return their
    whole result at once, ``experiment_row`` events fire back-to-back after
    the computation finishes (they report the produced rows, not live
    progress inside the computation).
    """

    def experiment_started(self, name: str, params: Mapping[str, Any]) -> None: ...

    def experiment_row(self, name: str, index: int, row: Mapping[str, Any]) -> None: ...

    def experiment_completed(self, name: str, result: ExperimentResult) -> None: ...

    def experiment_failed(self, name: str, error: Exception) -> None: ...


class CallbackObserver:
    """Adapter turning plain callables into an :class:`ExperimentObserver`.

    Any hook may be omitted; ``on_row`` receives ``(name, index, row)`` which
    makes per-row progress callbacks a one-liner.
    """

    def __init__(self,
                 on_started: Optional[Callable[[str, Mapping[str, Any]], None]] = None,
                 on_row: Optional[Callable[[str, int, Mapping[str, Any]], None]] = None,
                 on_completed: Optional[Callable[[str, ExperimentResult], None]] = None,
                 on_failed: Optional[Callable[[str, Exception], None]] = None) -> None:
        self._on_started = on_started
        self._on_row = on_row
        self._on_completed = on_completed
        self._on_failed = on_failed

    def experiment_started(self, name: str, params: Mapping[str, Any]) -> None:
        if self._on_started:
            self._on_started(name, params)

    def experiment_row(self, name: str, index: int, row: Mapping[str, Any]) -> None:
        if self._on_row:
            self._on_row(name, index, row)

    def experiment_completed(self, name: str, result: ExperimentResult) -> None:
        if self._on_completed:
            self._on_completed(name, result)

    def experiment_failed(self, name: str, error: Exception) -> None:
        if self._on_failed:
            self._on_failed(name, error)


class PrintProgressObserver:
    """Minimal console progress reporter used by the examples and smoke test."""

    def __init__(self, stream: Any = None) -> None:
        self._stream = stream

    def _emit(self, message: str) -> None:
        # Resolve stdout at emit time so redirect_stdout/capsys still work
        # for observers constructed before the redirection.
        import sys
        print(message, file=self._stream if self._stream is not None else sys.stdout)

    def experiment_started(self, name: str, params: Mapping[str, Any]) -> None:
        self._emit(f"[{name}] started")

    def experiment_row(self, name: str, index: int, row: Mapping[str, Any]) -> None:
        self._emit(f"[{name}] row {index}")

    def experiment_completed(self, name: str, result: ExperimentResult) -> None:
        self._emit(f"[{name}] completed with {len(result.rows)} rows")

    def experiment_failed(self, name: str, error: Exception) -> None:
        self._emit(f"[{name}] FAILED: {error}")


def _one_row_per_mapping(raw: Any) -> List[Dict[str, Any]]:
    """Default ``to_rows``: a mapping becomes one row; a list, one per item."""
    if isinstance(raw, Mapping):
        return [dict(raw)]
    if isinstance(raw, Iterable) and not isinstance(raw, (str, bytes)):
        return [item if isinstance(item, dict) else {"value": item} for item in raw]
    return [{"value": raw}]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    Attributes
    ----------
    name:
        Registry key (``"fig9_cycles"``, ...).
    title:
        Human-readable description (which paper figure/table it reproduces).
    runner:
        Callable executing the experiment; receives the merged parameters
        and returns the experiment's native ("raw") result object.
    to_rows:
        Converts the raw result into a list of plain-dict rows.
    to_meta:
        Optional extraction of experiment-level scalars from the raw result.
    defaults:
        Parameter defaults merged under the caller's overrides.
    tags:
        Free-form labels (``"fast"``, ``"training"``) used for selection.
    """

    name: str
    title: str
    runner: Callable[..., Any]
    to_rows: Callable[[Any], List[Dict[str, Any]]] = _one_row_per_mapping
    to_meta: Optional[Callable[[Any], Dict[str, Any]]] = None
    defaults: Mapping[str, Any] = field(default_factory=dict)
    tags: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ExperimentSpec.name must be a non-empty string")
        if not callable(self.runner):
            raise ValueError(f"experiment {self.name!r}: runner must be callable")


class ExperimentNotFoundError(RegistryNotFoundError):
    """Requested experiment key is not in the registry."""

    kind = "experiment"


class DuplicateExperimentError(ValueError):
    """An experiment key is already taken and ``overwrite`` was not requested."""


_REGISTRY: Registry[ExperimentSpec] = Registry(
    "experiment", ExperimentNotFoundError, DuplicateExperimentError)


def register_experiment(spec: ExperimentSpec, *, overwrite: bool = False) -> ExperimentSpec:
    """Add a spec to the registry; duplicate keys raise unless ``overwrite``."""
    return _REGISTRY.register(spec.name, spec, overwrite=overwrite)


def unregister_experiment(name: str) -> None:
    """Remove an experiment key (primarily for tests); missing keys are ignored."""
    _REGISTRY.unregister(name)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered spec by key."""
    return _REGISTRY.get(name)


def list_experiments(tag: str | None = None) -> List[str]:
    """Sorted registry keys, optionally filtered to one tag."""
    return [name for name in _REGISTRY.keys()
            if tag is None or tag in _REGISTRY.get(name).tags]


class ExperimentRunner:
    """Executes registered experiments and emits typed results.

    Observers receive structured events (started / per-row / completed /
    failed); failures propagate after notification, there is no
    catch-and-continue.
    """

    def __init__(self, observers: Iterable[Any] = ()) -> None:
        self._observers: List[Any] = list(observers)

    def add_observer(self, observer: Any) -> "ExperimentRunner":
        """Attach an observer; returns self for chaining."""
        self._observers.append(observer)
        return self

    # -- notification fan-out ------------------------------------------------------

    def _notify(self, hook: str, *args: Any) -> None:
        # Observers may implement only the hooks they care about.
        for observer in self._observers:
            method = getattr(observer, hook, None)
            if callable(method):
                method(*args)

    # -- execution -----------------------------------------------------------------

    def run(self, experiment: str | ExperimentSpec, **params: Any) -> ExperimentResult:
        """Run one experiment (by key or spec) and return its typed result."""
        spec = experiment if isinstance(experiment, ExperimentSpec) else get_experiment(experiment)
        merged = dict(spec.defaults)
        merged.update(params)

        self._notify("experiment_started", spec.name, dict(merged))
        try:
            raw = spec.runner(**merged)
            rows = [dict(json_sanitize(row)) for row in spec.to_rows(raw)]
            meta: Dict[str, Any] = {"title": spec.title}
            if spec.to_meta is not None:
                meta.update(json_sanitize(spec.to_meta(raw)))
        except Exception as error:
            self._notify("experiment_failed", spec.name, error)
            raise

        for index, row in enumerate(rows):
            self._notify("experiment_row", spec.name, index, row)

        result = ExperimentResult(
            experiment=spec.name,
            params=dict(json_sanitize(merged)),
            rows=rows,
            meta=meta,
            raw=raw,
        )
        self._notify("experiment_completed", spec.name, result)
        return result

    def run_many(self, names: Iterable[str],
                 params_by_name: Mapping[str, Mapping[str, Any]] | None = None
                 ) -> Dict[str, ExperimentResult]:
        """Run several registered experiments; returns results keyed by name."""
        results: Dict[str, ExperimentResult] = {}
        for name in names:
            overrides = dict((params_by_name or {}).get(name, {}))
            results[name] = self.run(name, **overrides)
        return results
