"""Benchmark harness: the machinery behind ``make bench`` and BENCH_*.json.

Every PR leaves a perf trail: ``scripts/bench.py`` (wired to ``make bench``)
runs two suites and writes one machine-readable JSON file per suite at the
repository root:

* ``BENCH_kernels.json`` -- microbenchmarks of the Hamming kernels: the
  packed XOR+popcount kernel (:func:`repro.core.bitops.packed_hamming_matrix`)
  versus the legacy +-1 GEMM path
  (:func:`repro.core.hashing.hamming_distance_matrix_unpacked`) across a
  rows x hash-length grid, plus the packing cost itself.
* ``BENCH_e2e.json`` -- end-to-end workloads: approximate inference through
  the DeepCAM backend, bit-level CAM batch search, batch hashing, the
  serving/sharding suites, the retrieval partial-vs-full-gather curve, and
  (unless skipped) the pytest-benchmark timings of the paper-figure
  workloads under ``benchmarks/``.

Each file carries the environment (commit, timestamp, versions) so future
PRs can diff their numbers against this baseline.  Records report the
*median* wall-clock of several rounds -- medians are robust to the odd
scheduler hiccup that ruins means on shared CI machines.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.bitops import (
    HAVE_BITWISE_COUNT,
    KERNEL_BLOCK_ROWS,
    pack_bits,
    packed_hamming_matrix,
)
from repro.core.hashing import hamming_distance_matrix_unpacked

#: Schema version of the BENCH_*.json files; bump when the layout changes.
BENCH_SCHEMA_VERSION = 1

#: The acceptance workload the packed kernel is gated on: a 2048x2048
#: distance matrix at 128-bit signatures must be >= 5x faster than the
#: legacy GEMM path.
ACCEPTANCE_WORKLOAD: tuple[int, int] = (2048, 128)
ACCEPTANCE_MIN_SPEEDUP: float = 5.0

#: The serving acceptance gate: on a 1000-request uniform load, the
#: micro-batcher at ``max_batch=64`` must reach >= 5x the throughput of
#: batch-size-1 serving on the same engine.
SERVE_ACCEPTANCE_REQUESTS: int = 1000
SERVE_ACCEPTANCE_MAX_BATCH: int = 64
SERVE_ACCEPTANCE_MIN_SPEEDUP: float = 5.0

#: Engine geometry of the serving benchmark (shared with the acceptance
#: test so BENCH_e2e.json and the test measure the same workload).
SERVE_BENCH_ENGINE: dict[str, int] = {
    "classes": 32, "input_dim": 256, "hash_length": 512,
}

#: Worker counts of the process-engine kernel scaling curve
#: (``kernel/scaling/workers=N`` on the acceptance workload).
KERNEL_SCALING_WORKERS: tuple[int, ...] = (1, 2, 4, 8)

#: Shard counts of the scaling curve recorded by :func:`shard_benchmarks`.
SHARD_SCALING_COUNTS: tuple[int, ...] = (1, 2, 4, 8)

#: Direct-search workload of the executor scaling curve
#: (``shard/scaling/executor={inline,threads,processes}``): deliberately
#: word-heavy (8192-bit rows) so the popcount kernel dominates the
#: per-search fan-out overhead -- the regime the process engine exists
#: for.  On a tiny cluster the pipe/pickle overhead would swamp the
#: comparison and measure the plumbing instead of the engines.
EXECUTOR_BENCH_WORKLOAD: dict[str, int] = {
    "rows": 2048, "word_bits": 8192, "shards": 4, "batch": 64,
}
#: Cores below which the processes-vs-threads speedup gate is skipped
#: (recorded as ``skipped: single-core``) and replaced by the parity band.
EXECUTOR_MIN_CORES: int = 4
#: Acceptance on >= EXECUTOR_MIN_CORES cores: processes >= 1.5x threads.
EXECUTOR_ACCEPTANCE_MIN_SPEEDUP: float = 1.5
#: Acceptance below EXECUTOR_MIN_CORES cores: the three engines must stay
#: within this factor of each other (no engine may regress the search).
EXECUTOR_PARITY_MAX_RATIO: float = 1.3

#: Engine geometry of the shard scaling curve (256 prototype rows spread
#: across 1/2/4/8 shards, served over the same 1000-request uniform load).
SHARD_BENCH_ENGINE: dict[str, int] = {
    "classes": 256, "input_dim": 64, "hash_length": 512,
}

#: The sharding acceptance workload: 2048 prototype rows at 1024-bit
#: signatures -- far beyond one array's capacity (the paper evaluates
#: 64-512 rows per array).  The replica-routed cluster (16 resident shards
#: of 128 rows, 2 replicas, least-loaded routing) is compared against the
#: honest single-engine alternative: one 128-row array time-multiplexed
#: over the row set, paying a full segment rewrite per segment per batch.
SHARD_ACCEPTANCE_WORKLOAD: dict[str, int] = {
    "rows": 2048, "capacity": 128, "input_dim": 64, "hash_length": 1024,
    "max_batch": 8, "num_replicas": 2, "num_workers": 2,
}
SHARD_ACCEPTANCE_REQUESTS: int = 1000
SHARD_ACCEPTANCE_MIN_SPEEDUP: float = 1.5

#: The retrieval acceptance workload: a 16384-row cluster (4 shards) at
#: 256-bit signatures, batches of 64 queries asking for the 16 nearest
#: rows.  The top-k partial gather must reach >= 2x the throughput of the
#: full-gather-then-sort path (digitise every row, gather all of them,
#: argsort) on the same cluster -- results asserted bit-identical first.
RETRIEVAL_ACCEPTANCE_WORKLOAD: dict[str, int] = {
    "rows": 16384, "k": 16, "shards": 4, "word_bits": 256, "batch": 64,
}
RETRIEVAL_ACCEPTANCE_MIN_SPEEDUP: float = 2.0

#: k values of the partial-vs-full gather curve (the acceptance k included).
RETRIEVAL_CURVE_KS: tuple[int, ...] = (4, 16, 64)

#: (rows, hash_length) grid of the kernel microbench.
DEFAULT_KERNEL_GRID: tuple[tuple[int, int], ...] = (
    (256, 128),
    (256, 1024),
    (1024, 256),
    (2048, 128),
    (2048, 1024),
)
QUICK_KERNEL_GRID: tuple[tuple[int, int], ...] = (
    (256, 128),
    (512, 256),
    (2048, 128),
)

#: Benchmark files under ``benchmarks/`` that are kernel microbenchmarks,
#: not paper-figure reproductions; the paper sweep skips them.
NON_PAPER_BENCH_FILES: tuple[str, ...] = (
    "benchmarks/test_bench_kernel_popcount.py",
    "benchmarks/test_bench_cam_microbench.py",
)


@dataclass(frozen=True)
class BenchRecord:
    """Median wall-clock of one benchmark workload.

    Attributes
    ----------
    name:
        Unique benchmark id, e.g. ``"kernel/packed/rows=2048,k=128"``.
    group:
        Suite the record belongs to (``"kernel"``, ``"e2e"``, ``"paper"``).
    params:
        Workload parameters (rows, hash length, batch size, ...).
    median_s / mean_s / std_s / min_s:
        Wall-clock statistics over ``rounds`` repetitions, in seconds.
    rounds:
        Number of timed repetitions.
    """

    name: str
    group: str
    params: Mapping[str, Any]
    median_s: float
    mean_s: float
    std_s: float
    min_s: float
    rounds: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation."""
        return {
            "name": self.name,
            "group": self.group,
            "params": dict(self.params),
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "std_s": self.std_s,
            "min_s": self.min_s,
            "rounds": self.rounds,
        }


def time_callable(fn: Callable[[], Any], rounds: int = 5,
                  warmup: int = 1) -> list[float]:
    """Wall-clock ``fn`` ``rounds`` times (after ``warmup`` unrecorded runs)."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    for _ in range(warmup):
        fn()
    times: list[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return times


def record_from_times(name: str, group: str, params: Mapping[str, Any],
                      times: Sequence[float]) -> BenchRecord:
    """Fold raw wall-clock samples into a :class:`BenchRecord`."""
    samples = np.asarray(list(times), dtype=np.float64)
    if samples.size == 0:
        raise ValueError("at least one timing sample is required")
    return BenchRecord(
        name=name,
        group=group,
        params=dict(params),
        median_s=float(np.median(samples)),
        mean_s=float(samples.mean()),
        std_s=float(samples.std()),
        min_s=float(samples.min()),
        rounds=int(samples.size),
    )


def benchmark_callable(name: str, group: str, params: Mapping[str, Any],
                       fn: Callable[[], Any], rounds: int = 5,
                       warmup: int = 1) -> BenchRecord:
    """Time ``fn`` and fold the samples into a record in one call."""
    return record_from_times(name, group, params,
                             time_callable(fn, rounds=rounds, warmup=warmup))


def collect_environment(repo_root: str | Path | None = None) -> dict[str, Any]:
    """Commit, timestamp and library versions stamped into every BENCH file."""
    root = Path(repo_root) if repo_root is not None else Path.cwd()
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        commit = "unknown"
    return {
        "commit": commit,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "have_bitwise_count": HAVE_BITWISE_COUNT,
    }


def write_bench_report(path: str | Path, records: Sequence[BenchRecord],
                       environment: Mapping[str, Any] | None = None,
                       extra: Mapping[str, Any] | None = None) -> dict[str, Any]:
    """Write a BENCH_*.json report; returns the written document."""
    document: dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "environment": dict(environment) if environment is not None
        else collect_environment(),
        "benchmarks": [record.to_dict() for record in records],
    }
    if extra:
        document.update({key: value for key, value in extra.items()
                         if key not in document})
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


# -- kernel microbench ---------------------------------------------------------


def kernel_microbench(grid: Sequence[tuple[int, int]] = DEFAULT_KERNEL_GRID,
                      rounds: int = 5,
                      seed: int = 0,
                      thread_counts: Sequence[int] | None = None,
                      ) -> tuple[list[BenchRecord], dict[str, Any]]:
    """Packed vs unpacked Hamming kernel across a rows x hash-length grid.

    For every ``(rows, k)`` cell the same random signature sets are pushed
    through the legacy +-1 GEMM path and the packed XOR+popcount kernel
    (operands pre-packed -- packed words are the pipeline's native currency,
    and the packing cost is reported as its own record).  The two kernels
    are asserted bit-identical on every cell before timing.

    ``thread_counts`` additionally times the row-block-threaded kernel
    (``packed_hamming_matrix(..., num_threads=n)``, the ``REPRO_NUM_THREADS``
    lever) at each requested worker count, on the cells that span more than
    one row block (threading never engages on a single block); ``None``
    picks one count from the machine (up to 4 workers).  Threaded results
    are asserted identical to the serial kernel and their speedup *over the
    serial packed kernel* is reported per cell -- expect ~1x on single-core
    boxes.

    The execution-plane scaling curve rides along: the acceptance workload
    also runs through the process engine at each of
    :data:`KERNEL_SCALING_WORKERS` workers (``kernel/scaling/workers=N``,
    results asserted bit-identical to the serial kernel first), so every
    BENCH_kernels.json carries the true-parallel trajectory next to the
    GIL-bound one.

    Returns
    -------
    (records, summary):
        ``records`` holds one record per (kernel, cell); ``summary`` maps
        ``"rows=R,k=K"`` to the measured speedup, plus the acceptance
        verdict for the 2048 x 2048, k=128 workload, the per-cell
        ``threaded_speedups`` and the process-engine ``worker_scaling``.
    """
    if thread_counts is None:
        thread_counts = (max(2, min(4, os.cpu_count() or 1)),)
    rng = np.random.default_rng(seed)
    records: list[BenchRecord] = []
    speedups: dict[str, float] = {}
    threaded_speedups: dict[str, dict[str, float]] = {}
    acceptance: dict[str, Any] | None = None

    for rows, k in grid:
        bits_a = rng.integers(0, 2, size=(rows, k), dtype=np.uint8)
        bits_b = rng.integers(0, 2, size=(rows, k), dtype=np.uint8)
        packed_a = pack_bits(bits_a)
        packed_b = pack_bits(bits_b)

        reference = hamming_distance_matrix_unpacked(bits_a, bits_b)
        packed_result = packed_hamming_matrix(packed_a, packed_b)
        if not np.array_equal(reference, packed_result):
            raise AssertionError(
                f"packed kernel diverged from GEMM reference at rows={rows}, k={k}"
            )

        params = {"rows_a": rows, "rows_b": rows, "hash_length": k}
        cell = f"rows={rows},k={k}"
        unpacked_record = benchmark_callable(
            f"kernel/unpacked_gemm/{cell}", "kernel", params,
            lambda a=bits_a, b=bits_b: hamming_distance_matrix_unpacked(a, b),
            rounds=rounds)
        packed_record = benchmark_callable(
            f"kernel/packed_popcount/{cell}", "kernel", params,
            lambda a=packed_a, b=packed_b: packed_hamming_matrix(a, b),
            rounds=rounds)
        pack_record = benchmark_callable(
            f"kernel/pack_bits/{cell}", "kernel", params,
            lambda a=bits_a: pack_bits(a), rounds=rounds)
        records.extend((unpacked_record, packed_record, pack_record))

        # Threaded records only where threading actually engages (the
        # kernel runs serially on a single row block); timing the serial
        # fallback as "threaded" would misreport ~1.0x as a null result.
        cell_thread_counts = thread_counts if rows > KERNEL_BLOCK_ROWS else ()
        for workers in cell_thread_counts:
            threaded_result = packed_hamming_matrix(packed_a, packed_b,
                                                    num_threads=workers)
            if not np.array_equal(packed_result, threaded_result):
                raise AssertionError(
                    f"threaded kernel ({workers} threads) diverged from "
                    f"serial at rows={rows}, k={k}"
                )
            threaded_record = benchmark_callable(
                f"kernel/packed_popcount_threads={workers}/{cell}", "kernel",
                {**params, "num_threads": workers},
                lambda a=packed_a, b=packed_b, w=workers:
                    packed_hamming_matrix(a, b, num_threads=w),
                rounds=rounds)
            records.append(threaded_record)
            threaded_speedups.setdefault(cell, {})[f"threads={workers}"] = (
                packed_record.median_s / max(threaded_record.median_s, 1e-12))

        speedup = unpacked_record.median_s / max(packed_record.median_s, 1e-12)
        speedups[cell] = speedup
        if (rows, k) == ACCEPTANCE_WORKLOAD:
            acceptance = {
                "workload": cell,
                "unpacked_median_s": unpacked_record.median_s,
                "packed_median_s": packed_record.median_s,
                "speedup": speedup,
                "min_required_speedup": ACCEPTANCE_MIN_SPEEDUP,
                "passed": speedup >= ACCEPTANCE_MIN_SPEEDUP,
            }

    # -- execution-plane worker scaling ----------------------------------------
    # The process engine at 1/2/4/8 workers on the acceptance workload
    # (kernel/scaling/workers=N), against the serial packed kernel.  Row
    # blocks write into a SharedMemory output segment, so the curve times
    # compute, not result pickling; expect ~1x on single-core boxes and
    # near-linear wins where cores exist.
    from repro.exec import resolve_executor

    rows, k = ACCEPTANCE_WORKLOAD
    scale_a = pack_bits(rng.integers(0, 2, size=(rows, k), dtype=np.uint8))
    scale_b = pack_bits(rng.integers(0, 2, size=(rows, k), dtype=np.uint8))
    serial_record = benchmark_callable(
        "kernel/scaling/serial", "kernel",
        {"rows_a": rows, "rows_b": rows, "hash_length": k},
        lambda: packed_hamming_matrix(scale_a, scale_b), rounds=rounds)
    records.append(serial_record)
    serial_result = packed_hamming_matrix(scale_a, scale_b)
    worker_scaling: dict[str, float] = {}
    for workers in KERNEL_SCALING_WORKERS:
        engine = resolve_executor("processes", workers=workers,
                                  fallback=False)
        try:
            if not np.array_equal(engine.hamming_blocked(scale_a, scale_b),
                                  serial_result):
                raise AssertionError(
                    f"process engine ({workers} workers) diverged from the "
                    f"serial kernel at rows={rows}, k={k}")
            record = benchmark_callable(
                f"kernel/scaling/workers={workers}", "kernel",
                {"rows_a": rows, "rows_b": rows, "hash_length": k,
                 "executor": "processes", "workers": workers},
                lambda e=engine: e.hamming_blocked(scale_a, scale_b),
                rounds=rounds)
        finally:
            engine.close()
        records.append(record)
        worker_scaling[f"workers={workers}"] = (
            serial_record.median_s / max(record.median_s, 1e-12))

    summary: dict[str, Any] = {"speedups": speedups,
                               "threaded_speedups": threaded_speedups,
                               "thread_counts": list(thread_counts),
                               "worker_scaling": worker_scaling,
                               "cores": os.cpu_count() or 1}
    if acceptance is not None:
        summary["acceptance"] = acceptance
    return records, summary


# -- end-to-end workloads ------------------------------------------------------


def _deepcam_inference_workload(quick: bool) -> tuple[Callable[[], Any], dict[str, Any]]:
    from repro.api import deepcam
    from repro.nn.models.lenet import build_lenet5

    batch = 2 if quick else 8
    rng = np.random.default_rng(0)
    model = build_lenet5(seed=0)
    images = rng.standard_normal((batch, 1, 32, 32))
    backend = deepcam(rows=64, hash_length=256)
    params = {"model": "lenet5", "batch": batch, "hash_length": 256, "rows": 64}
    return (lambda: backend.infer(model, images)), params


def _cam_search_workload(quick: bool) -> tuple[Callable[[], Any], dict[str, Any]]:
    from repro.cam.dynamic import DynamicCam, DynamicCamConfig

    queries_n = 64 if quick else 256
    rng = np.random.default_rng(0)
    cam = DynamicCam(DynamicCamConfig(rows=64))
    cam.configure_word_bits(1024)
    cam.write_rows(rng.integers(0, 2, size=(64, 1024), dtype=np.uint8))
    queries = rng.integers(0, 2, size=(queries_n, 1024), dtype=np.uint8)
    params = {"rows": 64, "word_bits": 1024, "queries": queries_n}
    return (lambda: cam.search_batch(queries)), params


def _hashing_workload(quick: bool) -> tuple[Callable[[], Any], dict[str, Any]]:
    from repro.core.hashing import RandomProjectionHasher

    batch = 256 if quick else 1024
    rng = np.random.default_rng(0)
    hasher = RandomProjectionHasher(input_dim=576, hash_length=512, seed=0)
    matrix = rng.standard_normal((batch, 576))
    params = {"batch": batch, "input_dim": 576, "hash_length": 512}
    return (lambda: hasher.hash_batch_packed(matrix)), params


def e2e_benchmarks(quick: bool = False, rounds: int | None = None) -> list[BenchRecord]:
    """End-to-end workloads of the packed pipeline (inference, CAM, hashing)."""
    effective_rounds = rounds if rounds is not None else (3 if quick else 5)
    workloads = {
        "e2e/deepcam_infer_lenet5": _deepcam_inference_workload,
        "e2e/dynamic_cam_search_batch": _cam_search_workload,
        "e2e/hash_batch_packed": _hashing_workload,
    }
    records = []
    for name, factory in workloads.items():
        fn, params = factory(quick)
        records.append(benchmark_callable(name, "e2e", params, fn,
                                          rounds=effective_rounds))
    return records


# -- serving workloads ---------------------------------------------------------


def _serve_run_seconds(max_batch: int, queries: np.ndarray,
                       cache_capacity: int = 0,
                       max_wait_ms: float = 5.0) -> tuple[float, dict[str, Any]]:
    """Serve ``queries`` through a fresh demo server; returns (wall_s, stats)."""
    from repro.serve import MicroBatchServer, ServeConfig, build_demo_engine

    engine = build_demo_engine(**SERVE_BENCH_ENGINE)
    config = ServeConfig(max_batch=max_batch, max_wait_ms=max_wait_ms,
                         queue_depth=max(len(queries), 1),
                         cache_capacity=cache_capacity)
    server = MicroBatchServer(engine, config=config)
    server.start()
    try:
        start = time.perf_counter()
        futures = [server.submit(query) for query in queries]
        for future in futures:
            future.result(timeout=300.0)
        elapsed = time.perf_counter() - start
    finally:
        server.stop(drain=True)
    return elapsed, server.stats()


def _serve_workload_record(name: str, params: Mapping[str, Any],
                           run: Callable[[], tuple[float, dict[str, Any]]],
                           rounds: int,
                           warmup: int) -> tuple[BenchRecord, dict[str, Any]]:
    """Time a serving run over the *serving window* only.

    ``run`` returns ``(serving_seconds, stats)``; the record's statistics
    are over the submit-to-last-result window, excluding engine/server
    construction and shutdown, which is what "serving throughput" means.
    """
    for _ in range(warmup):
        run()
    times: list[float] = []
    stats: dict[str, Any] = {}
    for _ in range(rounds):
        elapsed, stats = run()
        times.append(elapsed)
    return record_from_times(name, "serve", params, times), stats


def serve_benchmarks(total_requests: int = SERVE_ACCEPTANCE_REQUESTS,
                     max_batch: int = SERVE_ACCEPTANCE_MAX_BATCH,
                     quick: bool = False, rounds: int | None = None,
                     seed: int = 0) -> tuple[list[BenchRecord], dict[str, Any]]:
    """Serving throughput suite: micro-batched vs batch-1, plus Zipf caching.

    Three workloads on the shared demo CAM-pipeline engine
    (:data:`SERVE_BENCH_ENGINE`), all over the same 1000-request uniform
    load (``quick`` trims rounds, not the load -- short loads under-fill
    the batcher and would misstate the speedup):

    * ``serve/microbatch`` -- the uniform load served at ``max_batch``;
    * ``serve/serial`` -- the same load at ``max_batch=1`` (the baseline
      the acceptance gate divides by);
    * ``serve/zipf_cached`` -- Zipf-skewed repeats with the
      packed-signature cache on, exercising the hit path.

    Records time the serving window only (submit of the first request to
    the last resolved future).  Returns ``(records, summary)``; the summary
    carries the throughputs, the measured speedup and the pass/fail
    acceptance verdict (>= :data:`SERVE_ACCEPTANCE_MIN_SPEEDUP`), which
    ``scripts/bench.py`` folds into ``BENCH_e2e.json``.
    """
    requests = total_requests
    effective_rounds = rounds if rounds is not None else (2 if quick else 3)
    rng = np.random.default_rng(seed)
    input_dim = SERVE_BENCH_ENGINE["input_dim"]
    uniform = rng.standard_normal((requests, input_dim))

    params = {"requests": requests, **SERVE_BENCH_ENGINE}
    batched_record, _ = _serve_workload_record(
        f"serve/microbatch/max_batch={max_batch}",
        {**params, "max_batch": max_batch},
        lambda: _serve_run_seconds(max_batch, uniform),
        rounds=effective_rounds, warmup=1)
    serial_record, _ = _serve_workload_record(
        "serve/serial/max_batch=1", {**params, "max_batch": 1},
        lambda: _serve_run_seconds(1, uniform),
        rounds=effective_rounds, warmup=0)

    pool = rng.standard_normal((max(32, requests // 8), input_dim))
    zipf_draws = rng.zipf(1.3, size=requests) % pool.shape[0]
    zipf_queries = pool[zipf_draws]
    zipf_record, zipf_stats = _serve_workload_record(
        f"serve/zipf_cached/max_batch={max_batch}",
        {**params, "max_batch": max_batch, "pool": int(pool.shape[0]),
         "cache": True},
        lambda: _serve_run_seconds(max_batch, zipf_queries,
                                   cache_capacity=pool.shape[0] * 2),
        rounds=effective_rounds, warmup=1)

    throughput_batched = requests / batched_record.median_s
    throughput_serial = requests / serial_record.median_s
    speedup = throughput_batched / max(throughput_serial, 1e-12)
    summary: dict[str, Any] = {
        "requests": requests,
        "engine": dict(SERVE_BENCH_ENGINE),
        "throughput_rps": {
            f"microbatch_{max_batch}": throughput_batched,
            "serial_1": throughput_serial,
            f"zipf_cached_{max_batch}": requests / zipf_record.median_s,
        },
        "zipf_cache_hit_rate": zipf_stats["cache"]["hit_rate"],
        "acceptance": {
            "workload": f"uniform_{requests}_requests",
            "max_batch": max_batch,
            "speedup": speedup,
            "min_required_speedup": SERVE_ACCEPTANCE_MIN_SPEEDUP,
            "passed": speedup >= SERVE_ACCEPTANCE_MIN_SPEEDUP,
        },
    }
    return [batched_record, serial_record, zipf_record], summary


# -- sharded serving workloads -------------------------------------------------


def _engine_serve_seconds(engine: Any, queries: np.ndarray, max_batch: int,
                          num_workers: int = 1,
                          max_wait_ms: float = 5.0) -> tuple[float, dict[str, Any]]:
    """Serve ``queries`` through a fresh server over ``engine``."""
    from repro.serve import MicroBatchServer, ServeConfig

    config = ServeConfig(max_batch=max_batch, max_wait_ms=max_wait_ms,
                         queue_depth=max(len(queries), 1),
                         num_workers=num_workers, cache_capacity=0)
    server = MicroBatchServer(engine, config=config)
    server.start()
    try:
        start = time.perf_counter()
        futures = [server.submit(query) for query in queries]
        for future in futures:
            future.result(timeout=300.0)
        elapsed = time.perf_counter() - start
    finally:
        server.stop(drain=True)
    return elapsed, server.stats()


def shard_benchmarks(total_requests: int = SHARD_ACCEPTANCE_REQUESTS,
                     quick: bool = False, rounds: int | None = None,
                     seed: int = 0) -> tuple[list[BenchRecord], dict[str, Any]]:
    """Shard-count scaling curve plus the replica-routed acceptance pair.

    Two suites over 1000-request uniform loads (``quick`` trims rounds,
    never the load):

    * ``shard/scaling/shards=N`` -- the :data:`SHARD_BENCH_ENGINE` demo
      cluster served at 1/2/4/8 shards: the curve that tracks what the
      cluster bookkeeping costs while the rows would still fit one array
      (a few percent per shard on this workload);
    * ``shard/replica_routed`` vs ``shard/single_engine_multiplexed`` --
      the :data:`SHARD_ACCEPTANCE_WORKLOAD` row set, which does *not* fit
      one array: the resident, replica-routed cluster against a single
      capacity-limited array that must page row segments in and out every
      batch.  The acceptance gate requires the cluster to be
      >= :data:`SHARD_ACCEPTANCE_MIN_SPEEDUP` x faster; both engines'
      responses are asserted bit-identical first, so the comparison
      isolates throughput.

    Returns ``(records, summary)``; ``scripts/bench.py`` folds the summary
    into ``BENCH_e2e.json`` under ``"shard"``.
    """
    from repro.shard import (
        ShardedEngine,
        TimeMultiplexedCamEngine,
        build_demo_sharded_engine,
    )

    effective_rounds = rounds if rounds is not None else (2 if quick else 3)
    rng = np.random.default_rng(seed)
    records: list[BenchRecord] = []

    # -- scaling curve --------------------------------------------------------
    scaling_queries = rng.standard_normal(
        (total_requests, SHARD_BENCH_ENGINE["input_dim"]))
    scaling_rps: dict[str, float] = {}
    for num_shards in SHARD_SCALING_COUNTS:
        engine = build_demo_sharded_engine(**SHARD_BENCH_ENGINE,
                                           num_shards=num_shards)
        record, _ = _serve_workload_record(
            f"shard/scaling/shards={num_shards}",
            {**SHARD_BENCH_ENGINE, "requests": total_requests,
             "num_shards": num_shards, "max_batch": 32},
            lambda e=engine: _engine_serve_seconds(e, scaling_queries, 32),
            rounds=effective_rounds, warmup=1)
        records.append(record)
        scaling_rps[f"shards={num_shards}"] = total_requests / record.median_s

    # -- replica-routed vs time-multiplexed single engine ---------------------
    workload = SHARD_ACCEPTANCE_WORKLOAD
    prototypes = rng.standard_normal((workload["rows"], workload["input_dim"]))
    queries = rng.standard_normal((total_requests, workload["input_dim"]))
    num_shards = workload["rows"] // workload["capacity"]
    sharded = ShardedEngine(
        prototypes, num_shards=num_shards,
        num_replicas=workload["num_replicas"], routing="least_loaded",
        hash_length=workload["hash_length"], seed=seed + 1)
    multiplexed = TimeMultiplexedCamEngine(
        prototypes, capacity=workload["capacity"],
        hash_length=workload["hash_length"], seed=seed + 1)

    # Same answers first, then throughput: the gate compares work, not math.
    probe = queries[:64]
    reference = multiplexed.execute(multiplexed.prepare(probe))
    if not np.array_equal(sharded.execute(sharded.prepare(probe)), reference):
        raise AssertionError(
            "sharded responses diverged from the single-engine baseline")

    params = {**workload, "requests": total_requests, "num_shards": num_shards}
    routed_record, routed_stats = _serve_workload_record(
        "shard/replica_routed", {**params, "routing": "least_loaded"},
        lambda: _engine_serve_seconds(sharded, queries, workload["max_batch"],
                                      num_workers=workload["num_workers"]),
        rounds=effective_rounds, warmup=1)
    multiplexed_record, multiplexed_stats = _serve_workload_record(
        "shard/single_engine_multiplexed", params,
        lambda: _engine_serve_seconds(multiplexed, queries,
                                      workload["max_batch"]),
        rounds=effective_rounds, warmup=0)
    records.extend((routed_record, multiplexed_record))

    throughput_routed = total_requests / routed_record.median_s
    throughput_single = total_requests / multiplexed_record.median_s
    speedup = throughput_routed / max(throughput_single, 1e-12)
    summary: dict[str, Any] = {
        "requests": total_requests,
        "scaling_engine": dict(SHARD_BENCH_ENGINE),
        "scaling_throughput_rps": scaling_rps,
        "acceptance_workload": dict(workload),
        "throughput_rps": {
            "replica_routed": throughput_routed,
            "single_engine_multiplexed": throughput_single,
        },
        "segment_rewrites_per_batch": (
            multiplexed_stats["engine"]["multiplexing"]["segments"]),
        "router": routed_stats["engine"]["shards"]["router"],
        "acceptance": {
            "workload": f"uniform_{total_requests}_requests_"
                        f"{workload['rows']}_rows",
            "speedup": speedup,
            "min_required_speedup": SHARD_ACCEPTANCE_MIN_SPEEDUP,
            "passed": speedup >= SHARD_ACCEPTANCE_MIN_SPEEDUP,
        },
    }
    return records, summary


# -- execution-plane workloads ---------------------------------------------------


def executor_benchmarks(quick: bool = False, rounds: int | None = None,
                        seed: int = 0) -> tuple[list[BenchRecord], dict[str, Any]]:
    """Executor scaling curve: the same cluster search on all three engines.

    The :data:`EXECUTOR_BENCH_WORKLOAD` cluster (2048 rows of 8192-bit
    words across 4 shards) answers the same 64-query packed batch under
    ``executor=inline``, ``threads`` and ``processes``
    (``shard/scaling/executor=NAME``), with every engine's counts asserted
    bit-identical to the first before any timing -- the executor is a pure
    substitution, so the curve isolates throughput.

    The acceptance gate adapts to the machine:

    * on >= :data:`EXECUTOR_MIN_CORES` cores, the process engine must be
      >= :data:`EXECUTOR_ACCEPTANCE_MIN_SPEEDUP` x faster than threads
      (true parallelism must actually buy something);
    * below that the speedup is unmeasurable, so the verdict records
      ``"skipped": "single-core"`` and instead requires the three engines
      to stay within :data:`EXECUTOR_PARITY_MAX_RATIO` x of each other --
      the plane must never *cost* a serial box its throughput.

    Returns ``(records, summary)``; ``scripts/bench.py`` folds the summary
    into ``BENCH_e2e.json`` under ``"executor"``.
    """
    from repro.exec import EXECUTOR_NAMES
    from repro.shard import ShardedCamPipeline

    workload = EXECUTOR_BENCH_WORKLOAD
    effective_rounds = rounds if rounds is not None else (2 if quick else 3)
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=(workload["rows"], workload["word_bits"]),
                        dtype=np.uint8)
    queries = pack_bits(rng.integers(
        0, 2, size=(workload["batch"], workload["word_bits"]),
        dtype=np.uint8))

    records: list[BenchRecord] = []
    medians: dict[str, float] = {}
    throughput_qps: dict[str, float] = {}
    reference: np.ndarray | None = None
    for name in EXECUTOR_NAMES:
        pipeline = ShardedCamPipeline(
            total_rows=workload["rows"], word_bits=workload["word_bits"],
            num_shards=workload["shards"], executor=name)
        try:
            pipeline.write_rows(bits)
            counts, _, _ = pipeline.search_batch_packed(queries)
            if reference is None:
                reference = counts
            elif not np.array_equal(counts, reference):
                raise AssertionError(
                    f"executor={name} diverged from {EXECUTOR_NAMES[0]} on "
                    f"the scaling workload")
            record = benchmark_callable(
                f"shard/scaling/executor={name}", "shard",
                {**workload, "executor": name},
                lambda p=pipeline: p.search_batch_packed(queries),
                rounds=effective_rounds)
        finally:
            pipeline.close()
        records.append(record)
        medians[name] = record.median_s
        throughput_qps[name] = workload["batch"] / record.median_s

    cell = (f"rows={workload['rows']},word_bits={workload['word_bits']},"
            f"shards={workload['shards']}")
    cores = os.cpu_count() or 1
    if cores >= EXECUTOR_MIN_CORES:
        speedup = medians["threads"] / max(medians["processes"], 1e-12)
        acceptance: dict[str, Any] = {
            "workload": cell,
            "cores": cores,
            "speedup": speedup,
            "min_required_speedup": EXECUTOR_ACCEPTANCE_MIN_SPEEDUP,
            "passed": speedup >= EXECUTOR_ACCEPTANCE_MIN_SPEEDUP,
        }
    else:
        parity = max(medians.values()) / max(min(medians.values()), 1e-12)
        acceptance = {
            "workload": cell,
            "cores": cores,
            "skipped": "single-core",
            "parity_ratio": parity,
            "max_allowed_ratio": EXECUTOR_PARITY_MAX_RATIO,
            "passed": parity <= EXECUTOR_PARITY_MAX_RATIO,
        }
    summary: dict[str, Any] = {
        "workload": dict(workload),
        "medians_s": medians,
        "throughput_qps": throughput_qps,
        "acceptance": acceptance,
    }
    return records, summary


# -- retrieval workloads -------------------------------------------------------


def build_retrieval_workload(rows: int, word_bits: int, shards: int,
                             batch: int, seed: int = 0) -> tuple[Any, np.ndarray]:
    """A populated sharded cluster plus one packed query batch.

    Shared by :func:`retrieval_benchmarks` and the acceptance test so the
    recorded numbers and the asserted gate measure the same workload.
    """
    from repro.shard import ShardedCamPipeline

    rng = np.random.default_rng(seed)
    pipeline = ShardedCamPipeline(total_rows=rows, word_bits=word_bits,
                                  num_shards=shards)
    pipeline.write_rows(rng.integers(0, 2, size=(rows, word_bits),
                                     dtype=np.uint8))
    queries = pack_bits(rng.integers(0, 2, size=(batch, word_bits),
                                     dtype=np.uint8))
    return pipeline, queries


def retrieval_benchmarks(quick: bool = False, rounds: int | None = None,
                         seed: int = 0) -> tuple[list[BenchRecord], dict[str, Any]]:
    """Partial-gather vs full-gather-then-sort curve on the retrieval cluster.

    For every ``k`` in :data:`RETRIEVAL_CURVE_KS` (``quick`` trims the
    curve to the acceptance ``k``, never the workload), the
    :data:`RETRIEVAL_ACCEPTANCE_WORKLOAD` cluster answers the same packed
    query batch twice:

    * ``retrieval/partial_gather`` -- the native top-k path
      (``ShardedCamPipeline.topk_packed``): per-shard selection on raw
      mismatch counts, ``k x shards`` gathered values per query, only the
      survivors digitised;
    * ``retrieval/full_gather_sort`` -- the sort-after-the-fact baseline
      (:func:`repro.retrieval.topk_via_full_search`): digitise and gather
      every row, then argsort.

    Both paths are asserted bit-identical (indices and distances) before
    any timing.  Returns ``(records, summary)``; the summary carries the
    per-k throughputs and speedups, the gather-traffic reduction and the
    acceptance verdict (>= :data:`RETRIEVAL_ACCEPTANCE_MIN_SPEEDUP` x at
    the acceptance ``k``), which ``scripts/bench.py`` folds into
    ``BENCH_e2e.json`` under ``"retrieval"``.
    """
    from repro.retrieval import topk_via_full_search

    workload = RETRIEVAL_ACCEPTANCE_WORKLOAD
    effective_rounds = rounds if rounds is not None else (3 if quick else 5)
    # The acceptance k is always measured, whatever the curve is edited to
    # -- the summary's "acceptance" entry must exist unconditionally.
    curve = ((workload["k"],) if quick
             else tuple(dict.fromkeys((*RETRIEVAL_CURVE_KS, workload["k"]))))
    pipeline, queries = build_retrieval_workload(
        workload["rows"], workload["word_bits"], workload["shards"],
        workload["batch"], seed=seed)
    batch = int(queries.shape[0])

    records: list[BenchRecord] = []
    throughput_qps: dict[str, float] = {}
    speedups: dict[str, float] = {}
    gathered_values: dict[str, dict[str, int]] = {}
    acceptance: dict[str, Any] | None = None
    for k in curve:
        partial = pipeline.topk_packed(queries, k)
        full_indices, full_distances = topk_via_full_search(pipeline, queries,
                                                            k)
        if not (np.array_equal(partial.indices, full_indices)
                and np.array_equal(partial.distances, full_distances)):
            raise AssertionError(
                f"partial gather diverged from full-gather-sort at k={k}")

        cell = (f"rows={workload['rows']},k={k},shards={workload['shards']}")
        params = {**workload, "k": k}
        partial_record = benchmark_callable(
            f"retrieval/partial_gather/{cell}", "retrieval", params,
            lambda k=k: pipeline.topk_packed(queries, k),
            rounds=effective_rounds)
        full_record = benchmark_callable(
            f"retrieval/full_gather_sort/{cell}", "retrieval", params,
            lambda k=k: topk_via_full_search(pipeline, queries, k),
            rounds=effective_rounds)
        records.extend((partial_record, full_record))

        speedup = full_record.median_s / max(partial_record.median_s, 1e-12)
        speedups[f"k={k}"] = speedup
        throughput_qps[f"partial_gather_k={k}"] = batch / partial_record.median_s
        throughput_qps[f"full_gather_sort_k={k}"] = batch / full_record.median_s
        gathered_values[f"k={k}"] = {
            "partial": int(partial.gathered_values),
            "full": batch * workload["rows"],
        }
        if k == workload["k"]:
            acceptance = {
                "workload": cell,
                "partial_median_s": partial_record.median_s,
                "full_median_s": full_record.median_s,
                "speedup": speedup,
                "min_required_speedup": RETRIEVAL_ACCEPTANCE_MIN_SPEEDUP,
                "passed": speedup >= RETRIEVAL_ACCEPTANCE_MIN_SPEEDUP,
            }

    summary: dict[str, Any] = {
        "workload": dict(workload),
        "throughput_qps": throughput_qps,
        "speedups": speedups,
        "gathered_values": gathered_values,
    }
    if acceptance is not None:
        summary["acceptance"] = acceptance
    return records, summary


# -- network transparency ------------------------------------------------------

#: Engine geometry of the remote-vs-in-process overhead record.
NET_BENCH_ENGINE: dict[str, int] = {
    "classes": 64, "input_dim": 128, "hash_length": 256,
}


def net_benchmarks(quick: bool = False, rounds: int | None = None,
                   seed: int = 0) -> tuple[list[BenchRecord], dict[str, Any]]:
    """Remote :class:`~repro.net.client.NetClient` vs in-process serving.

    The same classify and top-k batches run twice against identically
    seeded demo engines -- once through an in-process
    :class:`~repro.serve.client.ServeClient`, once over loopback HTTP
    through a serve-plane :class:`~repro.net.server.NetServer` -- with the
    responses asserted bit-identical before any timing.  The summary's
    ``remote_vs_inproc`` entries record the wire's overhead factor
    (remote median / in-process median) per operation.  Report-only:
    ``scripts/bench.py`` folds it into ``BENCH_e2e.json`` under ``"net"``
    but no acceptance gate hangs off it -- loopback overhead is a number
    to watch, not a property of the substrate.
    """
    from repro.net.client import NetClient
    from repro.net.server import NetServer
    from repro.serve import ServeClient, build_demo_engine, demo_queries

    effective_rounds = rounds if rounds is not None else (3 if quick else 5)
    batch = 16 if quick else 64
    k = 8
    geometry = NET_BENCH_ENGINE
    params = {**geometry, "batch": batch, "k": k}

    records: list[BenchRecord] = []
    overhead: dict[str, float] = {}
    throughput_rps: dict[str, float] = {}
    with ServeClient(build_demo_engine(seed=seed, **geometry)) as inproc:
        queries = demo_queries(inproc.server.engine, batch, seed=seed)
        with NetServer(engine=build_demo_engine(seed=seed, **geometry)) as server:
            with NetClient(server.base_url) as remote:
                if not np.array_equal(remote.infer_many(queries),
                                      inproc.infer_many(queries)):
                    raise AssertionError(
                        "remote classify diverged from in-process serving")
                remote_topk = remote.topk_many(queries, k)
                local_topk = inproc.topk_many(queries, k)
                if not (np.array_equal(remote_topk[0], local_topk[0])
                        and np.array_equal(remote_topk[1], local_topk[1])):
                    raise AssertionError(
                        "remote top-k diverged from in-process serving")

                cell = f"batch={batch}"
                pairs = {
                    "classify": (lambda: inproc.infer_many(queries),
                                 lambda: remote.infer_many(queries)),
                    f"topk_k={k}": (lambda: inproc.topk_many(queries, k),
                                    lambda: remote.topk_many(queries, k)),
                }
                for op, (local_fn, remote_fn) in pairs.items():
                    local_record = benchmark_callable(
                        f"net/inproc/{op}/{cell}", "net", params, local_fn,
                        rounds=effective_rounds)
                    remote_record = benchmark_callable(
                        f"net/remote/{op}/{cell}", "net", params, remote_fn,
                        rounds=effective_rounds)
                    records.extend((local_record, remote_record))
                    overhead[op] = (remote_record.median_s
                                    / max(local_record.median_s, 1e-12))
                    throughput_rps[f"inproc_{op}"] = (
                        batch / local_record.median_s)
                    throughput_rps[f"remote_{op}"] = (
                        batch / remote_record.median_s)

    summary: dict[str, Any] = {
        "workload": dict(params),
        "remote_vs_inproc": overhead,
        "throughput_rps": throughput_rps,
        "verified_bit_identical": True,
    }
    return records, summary


# -- observability overhead ----------------------------------------------------

#: Engine geometry of the traced-vs-untraced serving pair.  Deliberately
#: compute-heavy (large CAM, sharded, no cache hits): span bookkeeping is a
#: fixed few microseconds per request, so it is measured against requests
#: that do real work -- the regime tracing must be cheap in (same reasoning
#: as ``scripts/trace_smoke.py``).
OBS_BENCH_ENGINE: dict[str, int] = {
    "classes": 2048, "input_dim": 256, "hash_length": 1024, "num_shards": 2,
}


def _obs_serve_seconds(queries: np.ndarray, max_batch: int, traced: bool,
                       seed: int = 0) -> tuple[float, dict[str, Any]]:
    """Serve ``queries`` through a fresh sharded server, optionally traced."""
    from repro.obs import InMemoryExporter, Tracer
    from repro.serve import MicroBatchServer, ServeConfig
    from repro.shard import build_demo_sharded_engine

    engine = build_demo_sharded_engine(seed=seed, **OBS_BENCH_ENGINE)
    tracer = Tracer(exporters=[InMemoryExporter()]) if traced else None
    config = ServeConfig(max_batch=max_batch, max_wait_ms=2.0,
                         queue_depth=max(len(queries), 1), cache_capacity=0)
    server = MicroBatchServer(engine, config=config, tracer=tracer)
    server.start()
    try:
        start = time.perf_counter()
        futures = [server.submit(query) for query in queries]
        for future in futures:
            future.result(timeout=300.0)
        elapsed = time.perf_counter() - start
        stats = server.stats()
    finally:
        server.stop(drain=True)
        close = getattr(engine, "close", None)
        if callable(close):
            close()
        if tracer is not None:
            tracer.shutdown()
    return elapsed, stats


def obs_benchmarks(total_requests: int = 400, max_batch: int = 64,
                   quick: bool = False, rounds: int | None = None,
                   seed: int = 0) -> tuple[list[BenchRecord], dict[str, Any]]:
    """Tracing overhead: the same serving load untraced vs fully traced.

    The :data:`OBS_BENCH_ENGINE` sharded demo cluster serves an identical
    uniform load twice per round -- once with ``tracer=None`` and once with
    a ``sample_rate=1.0`` tracer exporting every span in memory -- and the
    summary's ``overhead_pct`` compares the medians (``quick`` trims
    rounds, never the load).  Runs are interleaved per round so machine
    drift hits both sides equally.  Report-only: ``scripts/bench.py``
    folds the summary into ``BENCH_e2e.json`` under ``"obs"`` with no
    acceptance gate attached -- the <5% gate lives in ``make trace-smoke``;
    this entry tracks the trajectory of the number across PRs.
    """
    effective_rounds = rounds if rounds is not None else (2 if quick else 3)
    rng = np.random.default_rng(seed)
    queries = rng.standard_normal((total_requests,
                                   OBS_BENCH_ENGINE["input_dim"]))
    params = {"requests": total_requests, "max_batch": max_batch,
              **OBS_BENCH_ENGINE}

    _obs_serve_seconds(queries, max_batch, traced=False, seed=seed)  # warmup
    untraced_s: list[float] = []
    traced_s: list[float] = []
    traced_stats: dict[str, Any] = {}
    for _ in range(effective_rounds):
        elapsed, _ = _obs_serve_seconds(queries, max_batch, traced=False,
                                        seed=seed)
        untraced_s.append(elapsed)
        elapsed, traced_stats = _obs_serve_seconds(queries, max_batch,
                                                   traced=True, seed=seed)
        traced_s.append(elapsed)

    untraced_record = record_from_times(
        f"obs/untraced/max_batch={max_batch}", "obs",
        {**params, "traced": False}, untraced_s)
    traced_record = record_from_times(
        f"obs/traced/max_batch={max_batch}", "obs",
        {**params, "traced": True}, traced_s)

    obs_counters = traced_stats.get("obs", {})
    spans_ended = int(obs_counters.get("spans_ended", 0))
    overhead_pct = 100.0 * (traced_record.median_s - untraced_record.median_s
                            ) / max(untraced_record.median_s, 1e-12)
    summary: dict[str, Any] = {
        "workload": dict(params),
        "overhead_pct": overhead_pct,
        "throughput_rps": {
            "untraced": total_requests / untraced_record.median_s,
            "traced": total_requests / traced_record.median_s,
        },
        "spans_per_request": spans_ended / max(total_requests, 1),
        "spans_dropped": int(obs_counters.get("export_dropped", 0)),
        "report_only": True,
    }
    return [untraced_record, traced_record], summary


# -- paper-figure workloads (pytest-benchmark) ---------------------------------


def run_paper_benchmarks(repo_root: str | Path,
                         files: Sequence[str] | None = None,
                         max_time_s: float = 0.5,
                         timeout_s: float = 1800.0) -> list[BenchRecord]:
    """Run the ``benchmarks/`` pytest-benchmark suite and fold in its stats.

    Parameters
    ----------
    repo_root:
        Repository root (the directory holding ``benchmarks/``).
    files:
        Benchmark files to run, relative to the root; defaults to the whole
        directory.
    max_time_s:
        Per-benchmark time cap handed to pytest-benchmark.
    """
    root = Path(repo_root)
    report_path = root / ".bench_paper_report.json"
    if files:
        targets = [str(root / f) for f in files]
        ignores: list[str] = []
    else:
        targets = [str(root / "benchmarks")]
        # Non-paper microbenchmarks are excluded from the whole-directory
        # sweep: their trajectory already lives in BENCH_kernels.json and
        # they would pollute the "paper" group.
        ignores = [f"--ignore={root / f}" for f in NON_PAPER_BENCH_FILES]
    command = [
        sys.executable, "-m", "pytest", *targets, *ignores,
        "--benchmark-only", "-q", "-p", "no:cacheprovider",
        "--benchmark-min-rounds=1", f"--benchmark-max-time={max_time_s}",
        f"--benchmark-json={report_path}",
    ]
    env_path = str(root / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    try:
        completed = subprocess.run(command, cwd=root, capture_output=True,
                                   text=True, timeout=timeout_s, env=env)
        if completed.returncode != 0 or not report_path.exists():
            raise RuntimeError(
                "paper benchmark run failed:\n" + completed.stdout[-2000:]
                + completed.stderr[-2000:]
            )
        raw = json.loads(report_path.read_text())
    finally:
        report_path.unlink(missing_ok=True)

    records = []
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        records.append(BenchRecord(
            name=f"paper/{bench['name']}",
            group="paper",
            params={"fullname": bench.get("fullname", bench["name"])},
            median_s=float(stats["median"]),
            mean_s=float(stats["mean"]),
            std_s=float(stats["stddev"]),
            min_s=float(stats["min"]),
            rounds=int(stats["rounds"]),
        ))
    return records
